file(REMOVE_RECURSE
  "CMakeFiles/crew_storage.dir/database.cc.o"
  "CMakeFiles/crew_storage.dir/database.cc.o.d"
  "CMakeFiles/crew_storage.dir/table.cc.o"
  "CMakeFiles/crew_storage.dir/table.cc.o.d"
  "CMakeFiles/crew_storage.dir/wal.cc.o"
  "CMakeFiles/crew_storage.dir/wal.cc.o.d"
  "libcrew_storage.a"
  "libcrew_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
