#ifndef CREW_NET_FRAME_H_
#define CREW_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "sim/network.h"

namespace crew::net {

/// One unit of the socket protocol. Byte layout:
///
///   [u32 length][u8 kind][u32 header_len][header kv][payload bytes]
///
/// `length` (little-endian) covers everything after itself. The header
/// is the line-oriented kv text already used for workflow-interface
/// payloads (runtime/kv.h); the payload rides behind it as raw bytes so
/// it needs no escaping — it is itself kv text produced by wire.h, and
/// may contain newlines.
///
/// Kinds:
///  - kHello: first frame on every connection; identifies the sending
///    endpoint and its incarnation (bumped on process restart, which
///    tells the receiver to reset its dedup watermark).
///  - kData: one sim::Message, tagged with a per-directed-endpoint-pair
///    sequence number. The sender retains the frame until acked and
///    replays retained frames after a reconnect; the receiver drops
///    sequence numbers at or below its watermark, so steady-state
///    delivery is exactly-once and crash-restart is at-least-once.
///  - kAck: cumulative receive watermark for the reverse direction,
///    scoped to the incarnation of the stream it acknowledges: the
///    receiver of the ACK drops it unless the incarnation matches its
///    own, so a watermark learned from a peer's *previous* life can
///    never discard frames of the restarted sequence space.
struct Frame {
  enum class Kind : uint8_t { kHello = 1, kData = 2, kAck = 3 };

  Kind kind = Kind::kData;

  // kHello: sender process generation. kAck: generation of the acked
  // stream, as learned from that sender's HELLO.
  uint64_t incarnation = 0;

  // kHello
  std::string endpoint;  ///< sender's listening address
  /// kHello: the sender's local clock (runtime ticks) when the HELLO was
  /// built, or -1 when the sender has no clock installed. Receivers pair
  /// it with their own receive tick — one (send, recv) sample per
  /// connection establishment — and the trace merge step estimates
  /// per-process clock offsets from the bidirectional minima
  /// (NTP-style), which is what puts every shard on a common timeline.
  int64_t sent_ticks = -1;

  // kAck
  uint64_t watermark = 0;  ///< highest delivered seq, cumulative

  // kData
  uint64_t seq = 0;
  sim::Message message;  ///< carries trace_id / trace_sent_ticks when set
};

/// Frames larger than this poison the decoder (corrupt length prefix).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

std::string EncodeFrame(const Frame& frame);

/// InvalidArgument when a DATA frame carrying `message` could exceed
/// kMaxFrameBytes (computed against the worst-case sequence-number
/// header). Senders must reject such messages before admitting them to
/// an outbound stream: the receiving decoder treats an oversize length
/// prefix as corruption and drops the connection, and a retained
/// oversize frame would then replay on every reconnect forever.
Status CheckShippable(const sim::Message& message);

/// Incremental decoder: feed arbitrary byte slices exactly as read from
/// a socket — single bytes, half a length prefix, several concatenated
/// frames — and pop complete frames out in order. A malformed frame
/// poisons the stream permanently (the transport drops the connection).
class FrameDecoder {
 public:
  void Feed(std::string_view bytes);

  /// Moves the next complete frame into *out. Returns false when no
  /// complete frame is buffered or the stream is poisoned (check ok()).
  bool Next(Frame* out);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t buffered_bytes() const { return buffer_.size() - offset_; }

 private:
  std::string buffer_;
  size_t offset_ = 0;
  Status status_;
};

}  // namespace crew::net

#endif  // CREW_NET_FRAME_H_
