# Empty dependencies file for bench_sweep_coordination.
# This may be replaced when dependencies are built.
