file(REMOVE_RECURSE
  "libcrew_rules.a"
)
