#include "net/frame.h"

#include <cstring>
#include <limits>

#include "runtime/binio.h"
#include "runtime/kv.h"
#include "sim/metrics.h"

namespace crew::net {
namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::string AssembleEnvelope(Frame::Kind kind, std::string_view body,
                             std::string_view payload = {}) {
  std::string out;
  out.reserve(4 + 1 + body.size() + payload.size());
  PutU32(&out, static_cast<uint32_t>(1 + body.size() + payload.size()));
  out.push_back(static_cast<char>(kind));
  out.append(body);
  out.append(payload);
  return out;
}

// kDataBin flags byte.
constexpr uint8_t kDataFlagTraced = 1;      // trace_id + sent_ticks follow
constexpr uint8_t kDataFlagInlineType = 2;  // type rides as bytes, not id

std::string EncodeKvFrame(const Frame& frame) {
  runtime::KvWriter header;
  const std::string* payload = nullptr;
  switch (frame.kind) {
    case Frame::Kind::kHello:
    case Frame::Kind::kHelloBin:
      header.Add("endpoint", frame.endpoint);
      header.AddInt("incarnation", static_cast<int64_t>(frame.incarnation));
      if (frame.sent_ticks >= 0) {
        header.AddInt("sent", frame.sent_ticks);
      }
      break;
    case Frame::Kind::kAck:
    case Frame::Kind::kAckBin:
      header.AddInt("watermark", static_cast<int64_t>(frame.watermark));
      header.AddInt("incarnation", static_cast<int64_t>(frame.incarnation));
      break;
    case Frame::Kind::kData:
    case Frame::Kind::kDataBin:
    case Frame::Kind::kBatch:
      header.AddInt("seq", static_cast<int64_t>(frame.seq));
      header.AddInt("from", frame.message.from);
      header.AddInt("to", frame.message.to);
      header.Add("type", frame.message.type);
      header.AddInt("category", static_cast<int>(frame.message.category));
      // Trace context, omitted for untraced messages so the steady-state
      // frame stays exactly as before. The id is a raw 64-bit pattern
      // (endpoint hash | incarnation | counter); it rides as int64.
      if (frame.message.trace_id != 0) {
        header.AddInt("trace",
                      static_cast<int64_t>(frame.message.trace_id));
        if (frame.message.trace_sent_ticks >= 0) {
          header.AddInt("sent", frame.message.trace_sent_ticks);
        }
      }
      payload = &frame.message.payload;
      break;
  }
  std::string head = header.Finish();
  size_t payload_size = payload != nullptr ? payload->size() : 0;
  std::string out;
  out.reserve(4 + 1 + 4 + head.size() + payload_size);
  PutU32(&out, static_cast<uint32_t>(1 + 4 + head.size() + payload_size));
  Frame::Kind kind = frame.kind;
  if (kind == Frame::Kind::kHelloBin) kind = Frame::Kind::kHello;
  if (kind == Frame::Kind::kAckBin) kind = Frame::Kind::kAck;
  if (kind == Frame::Kind::kDataBin || kind == Frame::Kind::kBatch) {
    kind = Frame::Kind::kData;
  }
  out.push_back(static_cast<char>(kind));
  PutU32(&out, static_cast<uint32_t>(head.size()));
  out += head;
  if (payload != nullptr) out += *payload;
  return out;
}

std::string EncodeBinaryFrame(const Frame& frame) {
  std::string body;
  switch (frame.kind) {
    case Frame::Kind::kHello:
    case Frame::Kind::kHelloBin: {
      // HELLO carries the sender's type dictionary: names in id order.
      size_t dict = runtime::WireTypeCount();
      size_t bound = 3 * runtime::kMaxVarintBytes +
                     runtime::BytesBound(frame.endpoint);
      for (size_t i = 0; i < dict; ++i) {
        bound += runtime::BytesBound(runtime::WireTypeName(i));
      }
      runtime::BinWriter w(&body, bound);
      w.Varint(frame.incarnation);
      w.Zig(frame.sent_ticks);
      w.Bytes(frame.endpoint);
      w.Varint(dict);
      for (size_t i = 0; i < dict; ++i) {
        w.Bytes(runtime::WireTypeName(i));
      }
      w.Finish();
      return AssembleEnvelope(Frame::Kind::kHelloBin, body);
    }
    case Frame::Kind::kAck:
    case Frame::Kind::kAckBin: {
      runtime::BinWriter w(&body, 2 * runtime::kMaxVarintBytes);
      w.Varint(frame.watermark);
      w.Varint(frame.incarnation);
      w.Finish();
      return AssembleEnvelope(Frame::Kind::kAckBin, body);
    }
    case Frame::Kind::kData:
    case Frame::Kind::kDataBin:
    case Frame::Kind::kBatch: {
      int type_id = runtime::WireTypeId(frame.message.type);
      const bool traced = frame.message.trace_id != 0;
      uint8_t flags = (traced ? kDataFlagTraced : 0) |
                      (type_id < 0 ? kDataFlagInlineType : 0);
      size_t bound = 2 + 5 * runtime::kMaxVarintBytes +
                     runtime::BytesBound(frame.message.type) +
                     2 * runtime::kMaxVarintBytes;
      runtime::BinWriter w(&body, bound);
      w.U8(flags);
      w.Varint(frame.seq);
      w.Zig(frame.message.from);
      w.Zig(frame.message.to);
      w.U8(static_cast<uint8_t>(frame.message.category));
      if (type_id < 0) {
        w.Bytes(frame.message.type);
      } else {
        w.Varint(static_cast<uint64_t>(type_id));
      }
      if (traced) {
        w.Varint(frame.message.trace_id);
        w.Zig(frame.message.trace_sent_ticks);
      }
      w.Finish();
      return AssembleEnvelope(Frame::Kind::kDataBin, body,
                              frame.message.payload);
    }
  }
  return {};
}

}  // namespace

std::string EncodeFrame(const Frame& frame) { return EncodeKvFrame(frame); }

std::string EncodeFrame(const Frame& frame, runtime::PayloadCodec codec) {
  return codec == runtime::PayloadCodec::kBinary ? EncodeBinaryFrame(frame)
                                                 : EncodeKvFrame(frame);
}

void AppendBatchHeader(std::string* out, size_t count, size_t inner_bytes) {
  char cnt[runtime::kMaxVarintBytes];
  size_t n = 0;
  uint64_t v = count;
  while (v >= 0x80) {
    cnt[n++] = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  cnt[n++] = static_cast<char>(v);
  PutU32(out, static_cast<uint32_t>(1 + n + inner_bytes));
  out->push_back(static_cast<char>(Frame::Kind::kBatch));
  out->append(cnt, n);
}

std::string EncodeSuperframe(const std::vector<std::string>& frames) {
  size_t inner = 0;
  for (const std::string& f : frames) inner += f.size();
  std::string out;
  out.reserve(4 + 1 + runtime::kMaxVarintBytes + inner);
  AppendBatchHeader(&out, frames.size(), inner);
  for (const std::string& f : frames) out += f;
  return out;
}

Status CheckShippable(const sim::Message& message) {
  // Mirror the kv kData header of EncodeFrame with the widest possible
  // sequence number, so the check holds for any seq assigned later
  // (held messages are sequenced only on recovery). The kv header is
  // strictly larger than the binary one, so this bound covers both
  // codecs — and a batch never grows past its policy cap, which is far
  // below the frame limit.
  runtime::KvWriter header;
  header.AddInt("seq", std::numeric_limits<int64_t>::max());
  header.AddInt("from", message.from);
  header.AddInt("to", message.to);
  header.Add("type", message.type);
  header.AddInt("category", static_cast<int>(message.category));
  // Worst-case trace context: a transport-assigned id and send tick may
  // be added after admission, so the bound must cover them even when the
  // message is untraced at check time.
  header.AddInt("trace", std::numeric_limits<int64_t>::min());
  header.AddInt("sent", std::numeric_limits<int64_t>::max());
  size_t length = 1 + 4 + header.Finish().size() + message.payload.size();
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "message frame of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte frame limit");
  }
  return Status::OK();
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (!status_.ok()) return;
  // Compact once the consumed prefix dominates the buffer, so a
  // long-lived connection doesn't grow its buffer without bound.
  if (offset_ > 4096 && offset_ > buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

bool FrameDecoder::Next(Frame* out) {
  if (!status_.ok()) return false;
  while (ready_.empty()) {
    if (!DecodeOne()) return false;
  }
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

bool FrameDecoder::DecodeOne() {
  if (buffer_.size() - offset_ < 4) return false;
  const char* base = buffer_.data() + offset_;
  uint32_t length = GetU32(base);
  if (length < 2 || length > kMaxFrameBytes) {
    status_ = Status::Corruption("bad frame length " +
                                 std::to_string(length));
    return false;
  }
  if (buffer_.size() - offset_ < 4 + static_cast<size_t>(length)) {
    return false;  // frame split across reads: wait for the rest
  }
  const char* body = base + 4;
  auto kind = static_cast<Frame::Kind>(static_cast<unsigned char>(body[0]));
  size_t body_len = length - 1;
  offset_ += 4 + static_cast<size_t>(length);

  if (kind == Frame::Kind::kBatch) {
    // A superframe: [varint count][count inner envelopes], which must
    // exactly tile the body. Inner batches are forbidden (no nesting).
    runtime::BinReader r(std::string_view(body + 1, body_len));
    uint64_t count;
    if (!r.Varint(&count)) {
      status_ = Status::Corruption("malformed batch header");
      return false;
    }
    const char* p = body + 1 + (body_len - r.remaining());
    size_t rest = r.remaining();
    for (uint64_t i = 0; i < count; ++i) {
      if (rest < 5) {
        status_ = Status::Corruption("batch truncated mid-frame");
        return false;
      }
      uint32_t inner_len = GetU32(p);
      if (inner_len < 2 || 4 + static_cast<size_t>(inner_len) > rest) {
        status_ = Status::Corruption("bad inner frame length " +
                                     std::to_string(inner_len));
        return false;
      }
      auto inner_kind =
          static_cast<Frame::Kind>(static_cast<unsigned char>(p[4]));
      if (inner_kind == Frame::Kind::kBatch) {
        status_ = Status::Corruption("nested batch frame");
        return false;
      }
      Frame frame;
      if (!ParseBody(inner_kind, p + 5, inner_len - 1, &frame)) {
        return false;
      }
      ready_.push_back(std::move(frame));
      p += 4 + static_cast<size_t>(inner_len);
      rest -= 4 + static_cast<size_t>(inner_len);
    }
    if (rest != 0) {
      status_ = Status::Corruption("batch body not exactly tiled by frames");
      return false;
    }
    return true;
  }

  Frame frame;
  if (!ParseBody(kind, body + 1, body_len, &frame)) return false;
  ready_.push_back(std::move(frame));
  return true;
}

bool FrameDecoder::ParseBody(Frame::Kind kind, const char* body,
                             size_t body_len, Frame* out) {
  // ---- binary wire forms ----
  switch (kind) {
    case Frame::Kind::kHelloBin: {
      runtime::BinReader r(std::string_view(body, body_len));
      uint64_t incarnation, count;
      int64_t ticks;
      std::string_view endpoint;
      if (!r.Varint(&incarnation) || !r.Zig(&ticks) || !r.Bytes(&endpoint) ||
          !r.Varint(&count) || count > r.remaining()) {
        status_ = Status::Corruption("malformed hello frame");
        return false;
      }
      std::vector<std::string> dict;
      dict.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        std::string_view name;
        if (!r.Bytes(&name)) {
          status_ = Status::Corruption("malformed hello dictionary");
          return false;
        }
        dict.emplace_back(name);
      }
      if (!r.done()) {
        status_ = Status::Corruption("trailing bytes in hello frame");
        return false;
      }
      out->kind = Frame::Kind::kHello;
      out->incarnation = incarnation;
      out->sent_ticks = ticks;
      out->endpoint.assign(endpoint);
      type_dict_ = std::move(dict);
      return true;
    }
    case Frame::Kind::kAckBin: {
      runtime::BinReader r(std::string_view(body, body_len));
      uint64_t watermark, incarnation;
      if (!r.Varint(&watermark) || !r.Varint(&incarnation) || !r.done()) {
        status_ = Status::Corruption("malformed ack frame");
        return false;
      }
      out->kind = Frame::Kind::kAck;
      out->watermark = watermark;
      out->incarnation = incarnation;
      return true;
    }
    case Frame::Kind::kDataBin: {
      runtime::BinReader r(std::string_view(body, body_len));
      uint8_t flags, category;
      uint64_t seq;
      int64_t from, to;
      if (!r.U8(&flags) || !r.Varint(&seq) || !r.Zig(&from) || !r.Zig(&to) ||
          !r.U8(&category) || category >= sim::kNumMsgCategories) {
        status_ = Status::Corruption("malformed data frame");
        return false;
      }
      out->kind = Frame::Kind::kData;
      out->seq = seq;
      out->message.from = static_cast<NodeId>(from);
      out->message.to = static_cast<NodeId>(to);
      out->message.category = static_cast<sim::MsgCategory>(category);
      if (flags & kDataFlagInlineType) {
        std::string_view type;
        if (!r.Bytes(&type)) {
          status_ = Status::Corruption("malformed data frame type");
          return false;
        }
        out->message.type.assign(type);
      } else {
        uint64_t id;
        if (!r.Varint(&id) || id >= type_dict_.size()) {
          status_ = Status::Corruption("data frame type id outside the "
                                       "dictionary declared by hello");
          return false;
        }
        out->message.type = type_dict_[id];
      }
      if (flags & kDataFlagTraced) {
        uint64_t trace_id;
        int64_t sent;
        if (!r.Varint(&trace_id) || !r.Zig(&sent)) {
          status_ = Status::Corruption("malformed data frame trace");
          return false;
        }
        out->message.trace_id = trace_id;
        out->message.trace_sent_ticks = sent;
      }
      // Everything after the header is the payload, zero parsing needed.
      out->message.payload.assign(body + (body_len - r.remaining()),
                                  r.remaining());
      return true;
    }
    default:
      break;
  }

  // ---- kv wire forms: [u32 header_len][kv header][payload] ----
  if (body_len < 4) {
    status_ = Status::Corruption("truncated kv frame header");
    return false;
  }
  uint32_t header_len = GetU32(body);
  if (header_len > body_len - 4) {
    status_ = Status::Corruption("frame header overruns frame");
    return false;
  }
  std::string head(body + 4, header_len);
  const char* payload = body + 4 + header_len;
  size_t payload_len = body_len - 4 - header_len;

  Result<runtime::KvReader> reader = runtime::KvReader::Parse(head);
  if (!reader.ok()) {
    status_ = reader.status();
    return false;
  }
  const runtime::KvReader& kv = reader.value();
  out->kind = kind;
  switch (kind) {
    case Frame::Kind::kHello: {
      Result<std::string> endpoint = kv.GetRequired("endpoint");
      Result<int64_t> incarnation = kv.GetInt("incarnation");
      if (!endpoint.ok() || !incarnation.ok()) {
        status_ = Status::Corruption("malformed hello frame");
        return false;
      }
      out->endpoint = std::move(endpoint).value();
      out->incarnation = static_cast<uint64_t>(incarnation.value());
      out->sent_ticks = kv.GetIntOr("sent", -1);
      break;
    }
    case Frame::Kind::kAck: {
      Result<int64_t> watermark = kv.GetInt("watermark");
      Result<int64_t> incarnation = kv.GetInt("incarnation");
      if (!watermark.ok() || !incarnation.ok()) {
        status_ = Status::Corruption("malformed ack frame");
        return false;
      }
      out->watermark = static_cast<uint64_t>(watermark.value());
      out->incarnation = static_cast<uint64_t>(incarnation.value());
      break;
    }
    case Frame::Kind::kData: {
      Result<int64_t> seq = kv.GetInt("seq");
      Result<int64_t> from = kv.GetInt("from");
      Result<int64_t> to = kv.GetInt("to");
      Result<std::string> type = kv.GetRequired("type");
      int64_t category = kv.GetIntOr("category", 0);
      if (!seq.ok() || !from.ok() || !to.ok() || !type.ok() ||
          category < 0 || category >= sim::kNumMsgCategories) {
        status_ = Status::Corruption("malformed data frame");
        return false;
      }
      out->seq = static_cast<uint64_t>(seq.value());
      out->message.from = static_cast<NodeId>(from.value());
      out->message.to = static_cast<NodeId>(to.value());
      out->message.type = std::move(type).value();
      out->message.category = static_cast<sim::MsgCategory>(category);
      out->message.trace_id =
          static_cast<uint64_t>(kv.GetIntOr("trace", 0));
      out->message.trace_sent_ticks = kv.GetIntOr("sent", -1);
      out->message.payload.assign(payload, payload_len);
      break;
    }
    default:
      status_ = Status::Corruption("unknown frame kind " +
                                   std::to_string(static_cast<int>(kind)));
      return false;
  }
  return true;
}

}  // namespace crew::net
