#include "laws/export.h"

#include <sstream>

namespace crew::laws {
namespace {

std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

const std::string& StepName(const model::Schema& schema, StepId id) {
  return schema.step(id).name;
}

std::string FindName(const std::vector<const model::Schema*>& schemas,
                     const std::string& workflow, StepId id) {
  for (const model::Schema* schema : schemas) {
    if (schema->name() == workflow) return StepName(*schema, id);
  }
  return "S" + std::to_string(id);
}

}  // namespace

std::string ExportWorkflow(const model::Schema& schema) {
  std::ostringstream os;
  os << "workflow " << schema.name() << " {\n";
  for (const std::string& input : schema.workflow_inputs()) {
    os << "  input " << input << "\n";
  }

  for (const model::Step& step : schema.steps()) {
    if (step.kind == model::StepKind::kSubWorkflow) {
      os << "  subworkflow " << step.name << " schema "
         << step.sub_workflow;
    } else {
      os << "  step " << step.name << " program " << Quote(step.program)
         << " cost " << step.cost;
    }
    if (step.access == model::AccessKind::kQuery) os << " query";
    if (!step.compensate_on_abort) os << " no_abort_comp";
    if (!step.inputs.empty()) {
      os << " inputs ";
      for (size_t i = 0; i < step.inputs.size(); ++i) {
        if (i) os << ", ";
        os << step.inputs[i];
      }
    }
    os << "\n";
  }

  for (const model::ControlArc& arc : schema.control_arcs()) {
    os << "  " << (arc.is_back_edge ? "back " : "arc ")
       << StepName(schema, arc.from) << " -> " << StepName(schema, arc.to);
    if (arc.condition) {
      os << " when " << Quote(arc.condition->ToString());
    } else if (arc.is_else) {
      os << " else";
    }
    os << "\n";
  }
  for (const model::DataArc& arc : schema.data_arcs()) {
    os << "  data " << StepName(schema, arc.from) << " -> "
       << StepName(schema, arc.to) << " " << arc.item << "\n";
  }

  for (const model::Step& step : schema.steps()) {
    if (step.join == model::JoinKind::kAnd) {
      os << "  join " << step.name << " and\n";
    } else if (step.join == model::JoinKind::kOr) {
      os << "  join " << step.name << " or\n";
    }
  }
  os << "  start " << StepName(schema, schema.start_step()) << "\n";

  for (const model::Step& step : schema.steps()) {
    if (step.failure.rollback_to != kInvalidStep) {
      os << "  on_fail " << step.name << " rollback_to "
         << StepName(schema, step.failure.rollback_to) << " max_attempts "
         << step.failure.max_attempts << "\n";
    }
    if (step.ocr.reexec_condition) {
      os << "  reexec " << step.name << " when "
         << Quote(step.ocr.reexec_condition->ToString()) << "\n";
    }
    bool has_compensation =
        !step.compensation_program.empty() ||
        step.ocr.partial_compensation_fraction < 1.0 ||
        step.ocr.incremental_reexec_fraction < 1.0 ||
        step.ocr.partial_applicable_condition != nullptr;
    if (has_compensation) {
      os << "  compensation " << step.name;
      if (!step.compensation_program.empty()) {
        os << " program " << Quote(step.compensation_program);
      }
      if (step.ocr.partial_compensation_fraction < 1.0) {
        os << " partial " << step.ocr.partial_compensation_fraction;
      }
      if (step.ocr.incremental_reexec_fraction < 1.0) {
        os << " incremental " << step.ocr.incremental_reexec_fraction;
      }
      if (step.ocr.partial_applicable_condition) {
        os << " applicable "
           << Quote(step.ocr.partial_applicable_condition->ToString());
      }
      os << "\n";
    }
  }

  for (const model::CompDepSet& set : schema.comp_dep_sets()) {
    os << "  comp_dep_set ";
    for (size_t i = 0; i < set.steps.size(); ++i) {
      if (i) os << ", ";
      os << StepName(schema, set.steps[i]);
    }
    os << "\n";
  }
  // Singleton terminal groups are implicit; emit only multi-step groups.
  for (const auto& group : schema.terminal_groups()) {
    if (group.size() < 2) continue;
    os << "  terminal_group ";
    for (size_t i = 0; i < group.size(); ++i) {
      if (i) os << ", ";
      os << StepName(schema, group[i]);
    }
    os << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string ExportCoordination(
    const runtime::CoordinationSpec& coordination,
    const std::vector<const model::Schema*>& schemas) {
  if (coordination.relative_orders.empty() &&
      coordination.mutexes.empty() && coordination.rollback_deps.empty()) {
    return "";
  }
  std::ostringstream os;
  os << "coordination {\n";
  for (const runtime::RelativeOrderReq& ro : coordination.relative_orders) {
    os << "  relative_order " << ro.id << " between " << ro.workflow_a
       << " and " << ro.workflow_b << " pairs ";
    for (size_t i = 0; i < ro.step_pairs.size(); ++i) {
      if (i) os << ", ";
      os << "( " << FindName(schemas, ro.workflow_a, ro.step_pairs[i].first)
         << " , "
         << FindName(schemas, ro.workflow_b, ro.step_pairs[i].second)
         << " )";
    }
    os << "\n";
  }
  for (const runtime::MutexReq& me : coordination.mutexes) {
    os << "  mutex " << me.id << " resource " << Quote(me.resource)
       << " steps ";
    for (size_t i = 0; i < me.critical_steps.size(); ++i) {
      if (i) os << ", ";
      os << me.critical_steps[i].first << "."
         << FindName(schemas, me.critical_steps[i].first,
                     me.critical_steps[i].second);
    }
    os << "\n";
  }
  for (const runtime::RollbackDepReq& rd : coordination.rollback_deps) {
    os << "  rollback_dep " << rd.id << " from " << rd.workflow_a << "."
       << FindName(schemas, rd.workflow_a, rd.step_a) << " to "
       << rd.workflow_b << "."
       << FindName(schemas, rd.workflow_b, rd.step_b) << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string ExportLaws(const std::vector<const model::Schema*>& schemas,
                       const runtime::CoordinationSpec& coordination) {
  std::string out;
  for (const model::Schema* schema : schemas) {
    out += ExportWorkflow(*schema);
    out += "\n";
  }
  out += ExportCoordination(coordination, schemas);
  return out;
}

}  // namespace crew::laws
