#include "net/telemetry.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/trace.h"

namespace crew::net {

namespace {

/// Fixed two-decimal ratio (as a JSON number), 0.00 when divisor is 0.
std::string Ratio2(int64_t numer, int64_t denom) {
  char buf[32];
  double v = denom > 0 ? static_cast<double>(numer) / denom : 0.0;
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

std::string NodeTelemetryJson(
    const std::string& endpoint, uint64_t incarnation,
    const sim::Metrics& metrics, const rt::RuntimeStats& runtime_stats,
    const SocketTransportStats& transport_stats,
    const std::vector<SocketTransportPeerStats>& peer_stats) {
  std::ostringstream os;
  os << "{\"endpoint\":\"" << obs::JsonEscape(endpoint) << "\""
     << ",\"incarnation\":" << incarnation;
  os << ",\"transport\":{"
     << "\"frames_sent\":" << transport_stats.frames_sent
     << ",\"frames_delivered\":" << transport_stats.frames_delivered
     << ",\"frames_deduped\":" << transport_stats.frames_deduped
     << ",\"frames_replayed\":" << transport_stats.frames_replayed
     << ",\"frames_batched\":" << transport_stats.frames_batched
     << ",\"batches_sent\":" << transport_stats.batches_sent
     << ",\"bytes_sent\":" << transport_stats.bytes_sent
     << ",\"write_syscalls\":" << transport_stats.write_syscalls
     << ",\"mean_frames_per_batch\":"
     << Ratio2(transport_stats.frames_batched, transport_stats.batches_sent)
     << ",\"bytes_per_syscall\":"
     << Ratio2(transport_stats.bytes_sent, transport_stats.write_syscalls)
     << ",\"reconnects\":" << transport_stats.reconnects
     << ",\"retained_bytes_total\":" << transport_stats.retained_bytes
     << ",\"held_bytes_total\":" << transport_stats.held_bytes
     << ",\"peers\":[";
  bool first = true;
  for (const auto& p : peer_stats) {
    if (!first) os << ",";
    first = false;
    os << "{\"peer\":\"" << obs::JsonEscape(p.peer) << "\""
       << ",\"connected\":" << (p.connected ? "true" : "false")
       << ",\"next_seq\":" << p.next_seq
       << ",\"ack_lag_frames\":" << p.ack_lag_frames
       << ",\"retained_bytes\":" << p.retained_bytes
       << ",\"held_bytes\":" << p.held_bytes << "}";
  }
  os << "]}";
  os << ",\"runtime\":{"
     << "\"messages_delivered\":" << runtime_stats.messages_delivered
     << ",\"messages_parked\":" << runtime_stats.messages_parked
     << ",\"timers_fired\":" << runtime_stats.timers_fired
     << ",\"mailbox_parks\":" << runtime_stats.mailbox_parks
     << ",\"mailbox_depth\":" << runtime_stats.mailbox_depth
     << ",\"max_mailbox_depth\":" << runtime_stats.max_mailbox_depth
     << ",\"num_workers\":" << runtime_stats.num_workers << "}";
  os << ",\"metrics\":" << metrics.ReportJson() << "}";
  return os.str();
}

int64_t ExtractJsonInt(const std::string& json, const std::string& anchor,
                       int64_t fallback) {
  size_t pos = json.find(anchor);
  if (pos == std::string::npos) return fallback;
  pos += anchor.size();
  while (pos < json.size() &&
         (json[pos] == ' ' || json[pos] == '\t')) {
    ++pos;
  }
  bool negative = false;
  if (pos < json.size() && json[pos] == '-') {
    negative = true;
    ++pos;
  }
  if (pos >= json.size() || !std::isdigit(static_cast<unsigned char>(json[pos]))) {
    return fallback;
  }
  int64_t v = 0;
  while (pos < json.size() &&
         std::isdigit(static_cast<unsigned char>(json[pos]))) {
    v = v * 10 + (json[pos] - '0');
    ++pos;
  }
  return negative ? -v : v;
}

ClusterAggregate AggregateTelemetry(const std::vector<NodeTelemetry>& nodes) {
  ClusterAggregate a;
  for (const auto& node : nodes) {
    const std::string& j = node.json;
    ++a.nodes;
    a.messages_total += ExtractJsonInt(j, "\"messages\":{\"total\":");
    a.message_bytes += ExtractJsonInt(j, "\"bytes\":");
    a.load_total += ExtractJsonInt(j, "\"load\":{\"total\":");
    a.frames_sent += ExtractJsonInt(j, "\"frames_sent\":");
    a.frames_delivered += ExtractJsonInt(j, "\"frames_delivered\":");
    a.frames_deduped += ExtractJsonInt(j, "\"frames_deduped\":");
    a.frames_replayed += ExtractJsonInt(j, "\"frames_replayed\":");
    a.frames_batched += ExtractJsonInt(j, "\"frames_batched\":");
    a.batches_sent += ExtractJsonInt(j, "\"batches_sent\":");
    a.write_syscalls += ExtractJsonInt(j, "\"write_syscalls\":");
    a.reconnects += ExtractJsonInt(j, "\"reconnects\":");
    a.retained_bytes += ExtractJsonInt(j, "\"retained_bytes_total\":");
    a.held_bytes += ExtractJsonInt(j, "\"held_bytes_total\":");
    a.messages_delivered += ExtractJsonInt(j, "\"messages_delivered\":");
    a.messages_parked += ExtractJsonInt(j, "\"messages_parked\":");
    a.mailbox_parks += ExtractJsonInt(j, "\"mailbox_parks\":");
    a.mailbox_depth += ExtractJsonInt(j, "\"mailbox_depth\":");
    a.wf_committed += ExtractJsonInt(j, "\"wf.committed\":");
    a.wf_aborted += ExtractJsonInt(j, "\"wf.aborted\":");
  }
  return a;
}

std::map<NodeId, int64_t> PlacementCounts(
    const std::vector<NodeTelemetry>& nodes) {
  static const std::string kAnchor = "\"placement.wf.n";
  std::map<NodeId, int64_t> counts;
  for (const auto& node : nodes) {
    const std::string& j = node.json;
    size_t pos = 0;
    while ((pos = j.find(kAnchor, pos)) != std::string::npos) {
      pos += kAnchor.size();
      size_t id_end = pos;
      while (id_end < j.size() &&
             std::isdigit(static_cast<unsigned char>(j[id_end]))) {
        ++id_end;
      }
      // Expect the counter's `":<value>` tail right after the node id.
      if (id_end == pos || j.compare(id_end, 2, "\":") != 0) continue;
      NodeId id = std::atoi(j.c_str() + pos);
      counts[id] += std::atoll(j.c_str() + id_end + 2);
      pos = id_end;
    }
  }
  return counts;
}

PlacementImbalance ComputeImbalance(const std::map<NodeId, int64_t>& counts,
                                    int expected_nodes) {
  PlacementImbalance im;
  im.nodes = std::max(expected_nodes, static_cast<int>(counts.size()));
  for (const auto& [id, n] : counts) {
    im.total += n;
    im.max_count = std::max(im.max_count, n);
  }
  if (im.nodes > 0 && im.total > 0) {
    im.mean = static_cast<double>(im.total) / im.nodes;
    im.max_over_mean = static_cast<double>(im.max_count) / im.mean;
  }
  return im;
}

obs::LatencyHistogram PooledLatency(const std::vector<NodeTelemetry>& nodes,
                                    const std::string& name) {
  obs::LatencyHistogram pooled(name);
  const std::string head = "\"" + name + "\":{";
  for (const auto& node : nodes) {
    const std::string& j = node.json;
    size_t pos = j.find(head);
    if (pos == std::string::npos) continue;
    size_t b = j.find("\"buckets\":[", pos);
    if (b == std::string::npos) continue;
    b += std::strlen("\"buckets\":[");
    // Sparse pairs: [index,count],[index,count],... up to the closing ]
    while (b < j.size() && j[b] == '[') {
      ++b;
      int index = std::atoi(j.c_str() + b);
      size_t comma = j.find(',', b);
      size_t close = j.find(']', b);
      if (comma == std::string::npos || close == std::string::npos ||
          comma > close) {
        break;
      }
      pooled.AddBucket(index, std::atoll(j.c_str() + comma + 1));
      b = close + 1;
      if (b < j.size() && j[b] == ',') ++b;
    }
  }
  return pooled;
}

std::string AggregateSummaryLine(const ClusterAggregate& a) {
  std::ostringstream os;
  os << "cluster n=" << a.nodes << " msgs=" << a.messages_total
     << " load=" << a.load_total << " frames: sent=" << a.frames_sent
     << " dlv=" << a.frames_delivered << " dup=" << a.frames_deduped
     << " replay=" << a.frames_replayed << " batch=" << a.frames_batched
     << "/" << a.batches_sent << " reconn=" << a.reconnects
     << " retained=" << a.retained_bytes << "B held=" << a.held_bytes
     << "B mbox=" << a.mailbox_depth << " wf=" << a.wf_committed << "/"
     << a.wf_aborted;
  return os.str();
}

std::string NodeSummaryLine(const NodeTelemetry& node) {
  const std::string& j = node.json;
  std::ostringstream os;
  os << "  " << node.endpoint << ": sent="
     << ExtractJsonInt(j, "\"frames_sent\":")
     << " dlv=" << ExtractJsonInt(j, "\"frames_delivered\":")
     << " dup=" << ExtractJsonInt(j, "\"frames_deduped\":")
     << " replay=" << ExtractJsonInt(j, "\"frames_replayed\":")
     << " batch=" << ExtractJsonInt(j, "\"frames_batched\":")
     << "/" << ExtractJsonInt(j, "\"batches_sent\":")
     << " reconn=" << ExtractJsonInt(j, "\"reconnects\":")
     << " retained=" << ExtractJsonInt(j, "\"retained_bytes_total\":")
     << "B held=" << ExtractJsonInt(j, "\"held_bytes_total\":")
     << "B mbox=" << ExtractJsonInt(j, "\"mailbox_depth\":")
     << " parks=" << ExtractJsonInt(j, "\"mailbox_parks\":");
  return os.str();
}

std::string ClusterTelemetryJson(const std::vector<NodeTelemetry>& nodes) {
  ClusterAggregate a = AggregateTelemetry(nodes);
  std::ostringstream os;
  os << "{\"aggregate\":{"
     << "\"nodes\":" << a.nodes
     << ",\"messages_total\":" << a.messages_total
     << ",\"message_bytes\":" << a.message_bytes
     << ",\"load_total\":" << a.load_total
     << ",\"frames_sent\":" << a.frames_sent
     << ",\"frames_delivered\":" << a.frames_delivered
     << ",\"frames_deduped\":" << a.frames_deduped
     << ",\"frames_replayed\":" << a.frames_replayed
     << ",\"frames_batched\":" << a.frames_batched
     << ",\"batches_sent\":" << a.batches_sent
     << ",\"write_syscalls\":" << a.write_syscalls
     << ",\"reconnects\":" << a.reconnects
     << ",\"retained_bytes\":" << a.retained_bytes
     << ",\"held_bytes\":" << a.held_bytes
     << ",\"messages_delivered\":" << a.messages_delivered
     << ",\"messages_parked\":" << a.messages_parked
     << ",\"mailbox_parks\":" << a.mailbox_parks
     << ",\"mailbox_depth\":" << a.mailbox_depth
     << ",\"wf_committed\":" << a.wf_committed
     << ",\"wf_aborted\":" << a.wf_aborted << "}";
  PlacementImbalance im = ComputeImbalance(PlacementCounts(nodes));
  os << ",\"placement\":{\"nodes\":" << im.nodes
     << ",\"total\":" << im.total << ",\"max\":" << im.max_count
     << ",\"mean\":" << Ratio2(im.total, im.nodes)
     << ",\"max_over_mean\":"
     << Ratio2(static_cast<int64_t>(im.max_over_mean * 100), 100) << "}";
  os << ",\"nodes\":[";
  bool first = true;
  for (const auto& node : nodes) {
    if (!first) os << ",";
    first = false;
    os << node.json;
  }
  os << "]}";
  return os.str();
}

}  // namespace crew::net
