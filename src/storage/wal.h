#ifndef CREW_STORAGE_WAL_H_
#define CREW_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "common/status.h"

namespace crew::storage {

/// A minimal write-ahead log: length+checksum framed records appended to a
/// file. Provides the persistence the paper's WFDB/AGDB need for forward
/// recovery after an engine or agent crash.
///
/// Record frame: "<length> <crc32>\n<payload>\n". Replay stops cleanly at
/// the first torn/corrupt record (crash-consistent).
class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if needed) the log at `path` for appending.
  Status Open(const std::string& path);

  /// Appends one record and flushes it to the OS.
  Status Append(const std::string& payload);

  /// Replays all intact records in order. A corrupt tail is tolerated
  /// (records after it are ignored) — that is the crash case.
  /// The WAL may be open or closed during replay.
  Status Replay(const std::string& path,
                const std::function<void(const std::string&)>& apply) const;

  /// Crash recovery: replays the intact prefix like Replay, then
  /// truncates the file to that prefix. Without the truncation a torn
  /// tail left by a crash would sit between the old records and anything
  /// appended after reopening, making every later record unreadable (a
  /// replay stops at the first corrupt frame). Call before Open when
  /// taking over a log that may have died mid-append. Returns the number
  /// of records recovered. Precondition: the log is not open here.
  static Result<int64_t> Recover(
      const std::string& path,
      const std::function<void(const std::string&)>& apply);

  /// Truncates the log (after a checkpoint/snapshot has been taken).
  Status Truncate();

  void Close();
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// CRC-32 (polynomial 0xEDB88320) of a payload; exposed for tests.
  static uint32_t Crc32(const std::string& payload);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace crew::storage

#endif  // CREW_STORAGE_WAL_H_
