#include "central/agent.h"

#include <cmath>

#include "common/logging.h"
#include "runtime/wire.h"

namespace crew::central {

ThinAgent::ThinAgent(NodeId id, sim::Context* context,
                     const runtime::ProgramRegistry* programs)
    : id_(id),
      ctx_(context),
      programs_(programs),
      rng_(context->rng().Fork()) {
  ctx_->network().Register(id_, this);
}

void ThinAgent::HandleMessage(const sim::Message& message) {
  if (message.type == runtime::wi::kRunProgram) {
    HandleRunProgram(message);
    return;
  }
  CREW_LOG(Warn) << "thin agent " << id_ << " ignoring message of type "
                 << message.type;
}

void ThinAgent::HandleRunProgram(const sim::Message& message) {
  Result<runtime::RunProgramMsg> parsed =
      runtime::RunProgramMsg::Parse(message.payload);
  if (!parsed.ok()) {
    CREW_LOG(Error) << "agent " << id_ << ": bad RunProgram: "
                    << parsed.status().ToString();
    return;
  }
  const runtime::RunProgramMsg& req = parsed.value();

  runtime::RunProgramReplyMsg reply;
  reply.instance = req.instance;
  reply.step = req.step;
  reply.compensation = req.compensation;
  reply.epoch = req.epoch;
  reply.responder = id_;

  if (req.designated != id_) {
    // Offer copy: acknowledge with current load so the engine can pick
    // the least-loaded agent next time.
    reply.ack_only = true;
    reply.agent_load = active_programs_;
    sim::Message out{id_, message.from, runtime::wi::kRunProgramReply,
                     reply.Serialize(), message.category};
    (void)ctx_->network().Send(std::move(out));
    return;
  }

  ++active_programs_;
  runtime::ProgramContext context;
  context.instance = req.instance;
  context.step = req.step;
  context.attempt = req.attempt;
  context.compensation = req.compensation;
  context.inputs = req.inputs;
  context.rng = &rng_;

  Result<runtime::ProgramOutcome> outcome =
      programs_->Run(req.program, context);
  --active_programs_;

  if (!outcome.ok()) {
    CREW_LOG(Error) << "agent " << id_ << ": program '" << req.program
                    << "' failed to run: " << outcome.status().ToString();
    reply.success = false;
  } else {
    reply.success = outcome.value().success;
    reply.outputs = outcome.value().outputs;
    int64_t base = outcome.value().cost > 0 ? outcome.value().cost
                                            : req.nominal_cost;
    reply.cost =
        static_cast<int64_t>(std::llround(base * req.cost_fraction));
  }
  reply.agent_load = active_programs_;
  // The black-box program cost is charged at this agent.
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kProgram,
                                reply.cost);
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.Instant(obs::SpanKind::kProgram, id_, req.instance, req.step,
               req.compensation ? "program.compensate" : "program.run",
               reply.cost,
               req.program + (reply.success ? "" : " FAILED"),
               static_cast<int>(message.category));
  }

  sim::Message out{id_, message.from, runtime::wi::kRunProgramReply,
                   reply.Serialize(), message.category};
  (void)ctx_->network().Send(std::move(out));
}

}  // namespace crew::central
