// Insurance claims processing exercising three mechanisms at once:
//  - a *nested workflow* (fraud investigation runs as a child workflow);
//  - a *user input change* mid-flight (the claimed amount is corrected,
//    rolling the assessment back and re-executing it with OCR);
//  - a *user abort* of a second claim, compensating the executed steps.
//
//   ./build/examples/claims_processing
#include <cstdio>
#include <vector>

#include "dist/system.h"
#include "laws/parser.h"

using namespace crew;

namespace {

const char kSpec[] = R"LAWS(
workflow Investigation {
  step PullRecords program "pull"    cost 600 query
  step ScoreRisk   program "score"   cost 900
  arc PullRecords -> ScoreRisk
}

workflow Claim {
  input WF.I1                        # claimed amount
  step Intake      program "intake"  cost 300
  step Assess      program "assess"  cost 1200 inputs WF.I1
  subworkflow Investigate schema Investigation inputs S2.O1
  step Approve     program "approve" cost 400
  step Payout      program "payout"  cost 700
  arc Intake -> Assess
  arc Assess -> Investigate
  arc Investigate -> Approve
  arc Approve -> Payout
  reexec Assess when "changed(WF.I1)"
  compensation Payout program "clawback"
}
)LAWS";

}  // namespace

int main() {
  Result<laws::LawsFile> parsed = laws::ParseLaws(kSpec);
  if (!parsed.ok()) {
    fprintf(stderr, "LAWS error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  sim::Simulator simulator(/*seed=*/19);
  std::vector<std::string> trace;
  runtime::ProgramRegistry programs;
  auto log_program = [&](const char* name) {
    programs.Register(name, [&trace, name](
                                const runtime::ProgramContext& ctx) {
      trace.push_back(std::string(name) + "  " + ctx.instance.ToString() +
                      (ctx.compensation ? " (compensation)" : "") +
                      " attempt " + std::to_string(ctx.attempt));
      runtime::ProgramOutcome out;
      auto amount = ctx.inputs.find("WF.I1");
      out.outputs["O1"] = amount != ctx.inputs.end()
                              ? amount->second
                              : Value(int64_t{1});
      return out;
    });
  };
  for (const char* name :
       {"intake", "assess", "approve", "payout", "pull", "score",
        "clawback"}) {
    log_program(name);
  }

  model::Deployment deployment;
  dist::DistributedSystem system(&simulator, &programs, &deployment,
                                 &parsed.value().coordination,
                                 /*num_agents=*/7);
  for (const model::CompiledSchemaPtr& schema : parsed.value().schemas) {
    deployment.AssignRandom(*schema, system.agent_ids(), 2,
                            &simulator.rng());
    system.RegisterSchema(schema);
  }

  // Claim #1: amount corrected mid-flight -> partial rollback + OCR.
  Result<InstanceId> claim1 = system.front_end().StartWorkflow(
      "Claim", {{"WF.I1", Value(int64_t{12000})}});
  if (!claim1.ok()) return 1;
  simulator.queue().RunUntil(simulator.now() + 5);
  (void)system.front_end().RequestChangeInputs(
      claim1.value(), {{"WF.I1", Value(int64_t{9500})}});

  // Claim #2: the customer withdraws -> user abort with compensation.
  Result<InstanceId> claim2 = system.front_end().StartWorkflow(
      "Claim", {{"WF.I1", Value(int64_t{400})}});
  if (!claim2.ok()) return 1;
  simulator.queue().RunUntil(simulator.now() + 6);
  (void)system.front_end().RequestAbort(claim2.value());

  simulator.Run();

  printf("event trace:\n");
  for (const std::string& line : trace) printf("  %s\n", line.c_str());
  printf("\nclaim %s -> %s (amount corrected mid-flight)\n",
         claim1.value().ToString().c_str(),
         runtime::WorkflowStateName(
             system.front_end().KnownStatus(claim1.value())));
  printf("claim %s -> %s (withdrawn by the customer)\n",
         claim2.value().ToString().c_str(),
         runtime::WorkflowStateName(
             system.front_end().KnownStatus(claim2.value())));
  std::map<std::string, Value> data = system.ArchivedData(claim1.value());
  auto payout = data.find("S5.O1");
  if (payout != data.end()) {
    printf("claim 1 payout based on corrected amount: %s\n",
           payout->second.ToString().c_str());
  }
  return 0;
}
