#include "analysis/model.h"

namespace crew::analysis {

const char* MechanismName(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kNormal: return "Normal Execution";
    case Mechanism::kInputChange: return "Workflow Input Change";
    case Mechanism::kAbort: return "Workflow Abort";
    case Mechanism::kFailureHandling: return "Failure Handling";
    case Mechanism::kCoordination: return "Coordinated Execution";
  }
  return "?";
}

namespace {

double Cx(const workload::Params& p) {
  return static_cast<double>(p.coordination_intensity());
}

}  // namespace

// ---- Table 4: centralized control ----

std::vector<ModelRow> CentralLoad(const workload::Params& p) {
  const double s = p.steps_per_workflow;
  const double r = p.rollback_depth;
  const double w = p.abort_compensated_steps;
  return {
      {Mechanism::kNormal, "l*s", s},
      {Mechanism::kInputChange, "l*r*pi", r * p.p_input_change},
      {Mechanism::kAbort, "l*w*pa", w * p.p_abort},
      {Mechanism::kFailureHandling, "l*r*pf", r * p.p_step_failure},
      {Mechanism::kCoordination, "l*(me+ro+rd)*s", Cx(p) * s},
  };
}

std::vector<ModelRow> CentralMessages(const workload::Params& p) {
  const double s = p.steps_per_workflow;
  const double r = p.rollback_depth;
  const double w = p.abort_compensated_steps;
  const double a = p.eligible_per_step;
  return {
      {Mechanism::kNormal, "2*s*a", 2 * s * a},
      {Mechanism::kInputChange, "2*r*pi*pr*a",
       2 * r * p.p_input_change * p.p_reexecution * a},
      {Mechanism::kAbort, "2*w*pa*a", 2 * w * p.p_abort * a},
      {Mechanism::kFailureHandling, "2*r*pf*pr*a",
       2 * r * p.p_step_failure * p.p_reexecution * a},
      {Mechanism::kCoordination, "0", 0},
  };
}

// ---- Table 5: parallel control ----

std::vector<ModelRow> ParallelLoad(const workload::Params& p) {
  const double s = p.steps_per_workflow;
  const double r = p.rollback_depth;
  const double w = p.abort_compensated_steps;
  const double e = p.num_engines;
  return {
      {Mechanism::kNormal, "l*s/e", s / e},
      {Mechanism::kInputChange, "(l*r*pi)/e", r * p.p_input_change / e},
      {Mechanism::kAbort, "(l*w*pa)/e", w * p.p_abort / e},
      {Mechanism::kFailureHandling, "(l*r*pf)/e",
       r * p.p_step_failure / e},
      // The paper notes e cancels: load comparable to central.
      {Mechanism::kCoordination, "l*(me+ro+rd)*s", Cx(p) * s},
  };
}

std::vector<ModelRow> ParallelMessages(const workload::Params& p) {
  std::vector<ModelRow> rows = CentralMessages(p);
  const double s = p.steps_per_workflow;
  const double e = p.num_engines;
  rows[4] = {Mechanism::kCoordination, "(me+ro+rd)*e*s", Cx(p) * e * s};
  return rows;
}

// ---- Table 6: distributed control ----

std::vector<ModelRow> DistributedLoad(const workload::Params& p) {
  const double s = p.steps_per_workflow;
  const double r = p.rollback_depth;
  const double w = p.abort_compensated_steps;
  const double z = p.num_agents;
  const double a = p.eligible_per_step;
  const double d = p.conflicting_defs_per_step;
  return {
      {Mechanism::kNormal, "l*s/z", s / z},
      {Mechanism::kInputChange, "(l*r*pi)/z", r * p.p_input_change / z},
      {Mechanism::kAbort, "(l*w*pa)/z", w * p.p_abort / z},
      {Mechanism::kFailureHandling, "(l*r*pf)/z",
       r * p.p_step_failure / z},
      {Mechanism::kCoordination, "(l*(me+ro+rd)*a*d*s)/z",
       Cx(p) * a * d * s / z},
  };
}

std::vector<ModelRow> DistributedMessages(const workload::Params& p) {
  const double s = p.steps_per_workflow;
  const double r = p.rollback_depth;
  const double v = p.invalidated_steps;
  const double w = p.abort_compensated_steps;
  const double a = p.eligible_per_step;
  const double d = p.conflicting_defs_per_step;
  const double f = p.final_steps;
  return {
      {Mechanism::kNormal, "s*a + f", s * a + f},
      {Mechanism::kInputChange, "(r+v)*pi*a",
       (r + v) * p.p_input_change * a},
      {Mechanism::kAbort, "2*w*pa*a", 2 * w * p.p_abort * a},
      {Mechanism::kFailureHandling, "(r+v)*pf*a",
       (r + v) * p.p_step_failure * a},
      {Mechanism::kCoordination, "(me+ro+rd)*a*d*s", Cx(p) * a * d * s},
  };
}

}  // namespace crew::analysis
