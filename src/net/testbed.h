#ifndef CREW_NET_TESTBED_H_
#define CREW_NET_TESTBED_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "central/agent.h"
#include "central/engine.h"
#include "dist/agent.h"
#include "dist/frontend.h"
#include "model/deployment.h"
#include "net/topology.h"
#include "rt/runtime.h"
#include "runtime/coord.h"
#include "runtime/placement.h"
#include "runtime/programs.h"

namespace crew::net {

struct TestbedOptions {
  /// Control architecture: "central", "parallel" or "dist".
  std::string mode = "dist";
  int num_engines = 2;  ///< parallel only
  int num_agents = 5;
  /// Pending-rule timeout (ticks). The default suppresses §5.2 overdue
  /// probes so equivalence runs count the same messages as sim/rt.
  sim::Time pending_timeout = 5000;
  /// dist: directory for durable per-agent AGDBs (empty = in-memory).
  std::string agdb_dir;
  /// Instance placement policy: "static" (legacy), "rr", "hash" or
  /// "least" (see runtime/placement.h). Every endpoint must agree.
  std::string placement = "static";
  /// 0 = the standard mixed workload (Good/Flaky/Doomed[/Par]).
  /// N > 0 = N all-committing 4-step classes "Wf0".."Wf<N-1>" whose
  /// eligibility windows are offset per class, so a cluster-wide sweep
  /// spreads load over every agent instead of the first few.
  int num_classes = 0;
  /// dist: "targeted" (default, eligibility-footprint purge) or
  /// "broadcast" (purge message to every agent — the pre-fix scaling
  /// behaviour, kept for before/after curves).
  std::string purge = "targeted";
};

/// Builds the slice of a standard mixed workload deployment that one
/// endpoint hosts. The System wrappers (CentralSystem &c.) assemble every
/// node against one backend; across processes each endpoint must
/// construct only its own engines/agents, while agreeing byte-for-byte
/// on the shared inputs — schemas, eligibility tables, coordination
/// spec — which this class derives deterministically from its options.
///
/// Workload (rt_test's equivalence mix): Good = 4-step sequence,
/// Flaky = fails once then commits via OnFail retry, Doomed =
/// deterministically aborts, Par (central/parallel only) = split-join.
///
/// Node-id layout per mode:
///   central:  engine 1, thin agents 2..1+A
///   parallel: engines 1..E (must all share one endpoint — they share an
///             in-memory conflict tracker), thin agents E+1..E+A
///   dist:     front end 0, full agents 1..A
class Testbed : public central::ParallelTopology {
 public:
  /// Every logical node id of the deployment, for topology authoring.
  static std::vector<NodeId> AllNodes(const TestbedOptions& options);
  /// Ids that must be co-hosted at a single endpoint.
  static std::vector<NodeId> CoHosted(const TestbedOptions& options);

  /// Canonical multi-process layout over `num_endpoints` Unix sockets in
  /// `dir` ("ep<i>.sock"): the control side (front end / engines) at
  /// endpoint 0, agents round-robin over the rest. Shared by
  /// crew_launch and the process tests so every process derives the
  /// same mapping.
  static Result<Topology> UnixTopology(const TestbedOptions& options,
                                       const std::string& dir,
                                       int num_endpoints);

  /// Constructs the local fragment: only nodes at `self` get objects
  /// (and cells, via backend->ContextFor). With an all-nodes-at-self
  /// topology this degenerates to the single-process assembly.
  Testbed(sim::Backend* backend, const Topology& topology,
          const Endpoint& self, TestbedOptions options);
  ~Testbed() override;

  /// Schema name of the i-th workload instance (1-based).
  std::string ScheduleSchema(int i) const;
  runtime::WorkflowState ExpectedState(const std::string& schema) const;

  /// Node whose worker must run the start call for this instance.
  NodeId StartNode(const std::string& schema, int64_t number) const;
  bool Hosts(NodeId id) const { return local_.count(id) != 0; }

  /// Starts an instance; must run on StartNode's worker (Post there).
  /// For dist, verifies the front end assigned the expected number.
  Status StartInstance(const std::string& schema, int64_t number);

  /// Whether this endpoint holds the instance's authoritative terminal
  /// state (central: the engine; parallel: the owner engine; dist: the
  /// coordination agent).
  bool Authoritative(const InstanceId& instance) const;
  /// Node id holding that authoritative state (kInvalidNode if unknown).
  NodeId AuthorityNode(const InstanceId& instance) const;
  runtime::WorkflowState Terminal(const InstanceId& instance) const;

  /// Sums over local engines/agents only.
  int64_t committed_count() const;
  int64_t aborted_count() const;

  /// dist mode: installs Agent::RecoverFromLog as each local agent's
  /// runtime recovery hook, so SetNodeDown(id, false) replays the WAL
  /// before the parked backlog — the in-process twin of killing and
  /// restarting the agent's crew_node process.
  void InstallRecoveryHooks(rt::Runtime* runtime);

  // ---- central::ParallelTopology (parallel mode) ----
  NodeId OwnerEngine(const InstanceId& instance) const override;
  NodeId LockOwnerEngine(const std::string& resource) const override;
  std::vector<NodeId> AllEngines() const override;

  const std::vector<NodeId>& agent_ids() const { return agent_ids_; }
  dist::Agent* dist_agent(NodeId id);

  /// The placement policy in effect (null when options.placement is
  /// "static"). crew_node's "feed" verb pushes cluster load samples here.
  runtime::PlacementPolicy* placement() { return placement_.get(); }
  /// dist mode only (and only on the endpoint hosting node 0).
  dist::FrontEnd* front_end() { return front_end_.get(); }

 private:
  const model::CompiledSchemaPtr* FindSchema(const std::string& name) const;
  central::WorkflowEngine* ParallelOwner(const InstanceId& instance) const;
  /// dist: node holding the authoritative terminal state under the
  /// active placement policy (see Authoritative()).
  NodeId DistAuthority(const InstanceId& instance) const;

  TestbedOptions options_;
  std::set<NodeId> local_;
  std::vector<NodeId> engine_ids_;  // parallel
  std::vector<NodeId> agent_ids_;

  runtime::ProgramRegistry programs_;
  std::unique_ptr<runtime::PlacementPolicy> placement_;
  model::Deployment deployment_;
  runtime::CoordinationSpec coordination_;
  std::map<std::string, model::CompiledSchemaPtr> schemas_;

  // central / parallel
  std::unique_ptr<runtime::ConflictTracker> tracker_;
  std::vector<std::unique_ptr<central::WorkflowEngine>> engines_;
  std::vector<std::unique_ptr<central::ThinAgent>> thin_agents_;

  // dist
  std::unique_ptr<dist::FrontEnd> front_end_;
  std::vector<std::unique_ptr<dist::Agent>> agents_;
};

}  // namespace crew::net

#endif  // CREW_NET_TESTBED_H_
