file(REMOVE_RECURSE
  "CMakeFiles/crew_sim.dir/event_queue.cc.o"
  "CMakeFiles/crew_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/crew_sim.dir/metrics.cc.o"
  "CMakeFiles/crew_sim.dir/metrics.cc.o.d"
  "CMakeFiles/crew_sim.dir/network.cc.o"
  "CMakeFiles/crew_sim.dir/network.cc.o.d"
  "CMakeFiles/crew_sim.dir/simulator.cc.o"
  "CMakeFiles/crew_sim.dir/simulator.cc.o.d"
  "libcrew_sim.a"
  "libcrew_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
