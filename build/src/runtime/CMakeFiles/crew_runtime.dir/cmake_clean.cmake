file(REMOVE_RECURSE
  "CMakeFiles/crew_runtime.dir/coord.cc.o"
  "CMakeFiles/crew_runtime.dir/coord.cc.o.d"
  "CMakeFiles/crew_runtime.dir/instance.cc.o"
  "CMakeFiles/crew_runtime.dir/instance.cc.o.d"
  "CMakeFiles/crew_runtime.dir/kv.cc.o"
  "CMakeFiles/crew_runtime.dir/kv.cc.o.d"
  "CMakeFiles/crew_runtime.dir/ocr.cc.o"
  "CMakeFiles/crew_runtime.dir/ocr.cc.o.d"
  "CMakeFiles/crew_runtime.dir/packet.cc.o"
  "CMakeFiles/crew_runtime.dir/packet.cc.o.d"
  "CMakeFiles/crew_runtime.dir/programs.cc.o"
  "CMakeFiles/crew_runtime.dir/programs.cc.o.d"
  "CMakeFiles/crew_runtime.dir/rulegen.cc.o"
  "CMakeFiles/crew_runtime.dir/rulegen.cc.o.d"
  "CMakeFiles/crew_runtime.dir/wire.cc.o"
  "CMakeFiles/crew_runtime.dir/wire.cc.o.d"
  "libcrew_runtime.a"
  "libcrew_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
