// Figure-style sweep B: messages per instance vs coordination intensity
// (me+ro+rd, 0..9). The paper's §6 conclusion: centralized control pays
// no messages for coordination, so it overtakes distributed/parallel
// control as coordination requirements grow — this sweep locates the
// crossover.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

crew::workload::Params BaseParams(int intensity) {
  crew::workload::Params params;
  params.num_schemas = 8;
  params.instances_per_schema = 8;
  params.num_engines = 4;
  params.num_agents = 50;
  params.p_step_failure = 0.0;
  params.p_input_change = 0.0;
  params.p_abort = 0.0;
  // Split the intensity across the three requirement kinds (me and ro
  // first, rd last, like the Table 3 midpoints' 2/2/1 split).
  params.mutex_steps = (intensity + 2) / 3;
  params.relative_order_steps = (intensity + 1) / 3;
  params.rollback_dep_steps = intensity / 3;
  return params;
}

double CoordPlusNormalMessages(const crew::workload::RunResult& result) {
  return result.MessagesPerInstance(crew::sim::MsgCategory::kNormal) +
         result.MessagesPerInstance(crew::sim::MsgCategory::kCoordination);
}

}  // namespace

int main(int argc, char** argv) {
  crew::bench::BenchSession session("sweep_coordination", argc, argv);
  crew::bench::PrintHeader(
      "Sweep B: normal+coordination messages/instance vs me+ro+rd",
      BaseParams(3));

  printf("\n%10s | %10s | %10s | %12s\n", "me+ro+rd", "central",
         "parallel", "distributed");
  printf("%s\n", std::string(52, '-').c_str());
  using crew::workload::Architecture;
  for (int intensity : {0, 3, 6, 9, 12}) {
    crew::workload::Params params = BaseParams(intensity);
    std::string suffix = "-i=" + std::to_string(intensity);
    crew::workload::RunResult central_run = crew::workload::RunWorkload(
        params, Architecture::kCentral, session.tracer());
    crew::workload::RunResult parallel_run =
        crew::workload::RunWorkload(params, Architecture::kParallel);
    crew::workload::RunResult distributed_run =
        crew::workload::RunWorkload(params, Architecture::kDistributed);
    session.Record("central" + suffix, central_run);
    session.Record("parallel" + suffix, parallel_run);
    session.Record("distributed" + suffix, distributed_run);
    printf("%10d | %10.2f | %10.2f | %12.2f\n",
           params.coordination_intensity(),
           CoordPlusNormalMessages(central_run),
           CoordPlusNormalMessages(parallel_run),
           CoordPlusNormalMessages(distributed_run));
  }
  printf(
      "\nExpected shape: central stays flat (coordination is engine-"
      "local);\nparallel and distributed grow with intensity; distributed "
      "starts\nlowest (s*a+f < 2*s*a) and the growing coordination "
      "traffic erodes\nits lead — the paper's 'central or parallel "
      "preferable in the\nunlikely case of heavy coordination'.\n");
  session.Finish();
  return 0;
}
