// Travel booking with failure handling: flight + hotel + car are booked
// in sequence; payment fails transiently and the workflow partially
// rolls back. The OCR strategy (§3) reuses the flight booking (its
// inputs did not change), while hotel+car form a compensation dependent
// set and are compensated in reverse order before re-execution.
//
//   ./build/examples/travel_booking
#include <cstdio>
#include <vector>

#include "dist/system.h"
#include "expr/parser.h"
#include "model/builder.h"

using namespace crew;

int main() {
  model::SchemaBuilder builder("Travel");
  StepId flight = builder.AddTask("book_flight", "book", /*cost=*/2000);
  builder.step(flight).inputs = {"WF.I1"};
  // Reuse the flight if the trip dates (WF.I1) did not change.
  builder.step(flight).ocr.reexec_condition =
      expr::ParseExpression("changed(WF.I1)").value();
  StepId hotel = builder.AddTask("book_hotel", "book", 1500);
  builder.step(hotel).compensation_program = "cancel";
  StepId car = builder.AddTask("book_car", "book", 800);
  builder.step(car).compensation_program = "cancel";
  StepId pay = builder.AddTask("charge_card", "charge", 500);
  builder.Sequence({flight, hotel, car, pay});
  // Payment failure rolls back to the hotel; the flight stays.
  builder.OnFail(pay, hotel, /*max_attempts=*/3);
  // Hotel and car must be compensated in reverse booking order.
  builder.AddCompDepSet({hotel, car});

  Result<model::Schema> schema = builder.Build();
  if (!schema.ok()) {
    fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  Result<model::CompiledSchemaPtr> compiled =
      model::CompiledSchema::Compile(std::move(schema).value());
  if (!compiled.ok()) return 1;

  sim::Simulator simulator(/*seed=*/3);
  std::vector<std::string> trace;
  runtime::ProgramRegistry programs;
  programs.Register("book", [&trace](const runtime::ProgramContext& ctx) {
    trace.push_back((ctx.compensation ? "cancel   S" : "book     S") +
                    std::to_string(ctx.step) + " attempt " +
                    std::to_string(ctx.attempt));
    runtime::ProgramOutcome out;
    out.outputs["O1"] = Value("confirmation-" + std::to_string(ctx.step));
    return out;
  });
  programs.Register("cancel", [&trace](const runtime::ProgramContext& ctx) {
    trace.push_back("cancel   S" + std::to_string(ctx.step));
    return runtime::ProgramOutcome{};
  });
  programs.Register("charge", [&trace](const runtime::ProgramContext& ctx) {
    runtime::ProgramOutcome out;
    if (ctx.attempt == 1) {
      trace.push_back("charge   declined (attempt 1)");
      out.success = false;
      return out;
    }
    trace.push_back("charge   approved (attempt " +
                    std::to_string(ctx.attempt) + ")");
    out.outputs["O1"] = Value("receipt");
    return out;
  });

  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  dist::DistributedSystem system(&simulator, &programs, &deployment,
                                 &coordination, /*num_agents=*/5);
  deployment.AssignRandom(*compiled.value(), system.agent_ids(), 2,
                          &simulator.rng());
  system.RegisterSchema(compiled.value());

  Result<InstanceId> trip = system.front_end().StartWorkflow(
      "Travel", {{"WF.I1", Value("2026-07-14")}});
  if (!trip.ok()) return 1;
  simulator.Run();

  printf("event trace:\n");
  for (const std::string& line : trace) printf("  %s\n", line.c_str());
  printf("\ntrip %s: %s\n", trip.value().ToString().c_str(),
         runtime::WorkflowStateName(
             system.front_end().KnownStatus(trip.value())));
  printf("Note: the flight (S1) was booked once and *reused* on recovery;\n"
         "hotel (S2) and car (S3) were cancelled in reverse order, then\n"
         "rebooked before the payment retry — opportunistic compensation\n"
         "and re-execution instead of a full Saga-style rollback.\n");
  return 0;
}
