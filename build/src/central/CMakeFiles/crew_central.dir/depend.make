# Empty dependencies file for crew_central.
# This may be replaced when dependencies are built.
