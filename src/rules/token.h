#ifndef CREW_RULES_TOKEN_H_
#define CREW_RULES_TOKEN_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace crew::rules {

/// Interned event token: a dense process-wide id for one event-name
/// string. All hot-path rule/event bookkeeping (rule triggers, event
/// tables, inverted indexes, packet payloads) stores and compares these
/// instead of strings; the spelled-out name only materializes at the
/// wire/debug boundary.
using EventToken = uint32_t;
inline constexpr EventToken kInvalidEventToken = 0xFFFFFFFFu;

/// Transparent hash so std::string-keyed maps can be probed with a
/// string_view without allocating.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// String <-> EventToken interner. Tokens are assigned densely in
/// first-intern order and never recycled, so a token is valid for the
/// table's lifetime and Name() views stay stable. Thread-safe:
/// interning and Find() take the mutex; Name() is lock-free — names
/// live in fixed-size chunks that never move, and a token is published
/// with a release store of the count after its chunk slot is written.
class TokenTable {
 public:
  TokenTable() = default;
  ~TokenTable();
  TokenTable(const TokenTable&) = delete;
  TokenTable& operator=(const TokenTable&) = delete;

  /// Returns the token for `name`, interning it on first sight.
  EventToken Intern(std::string_view name);

  /// Returns the token for `name`, or kInvalidEventToken if it was never
  /// interned. Never allocates.
  EventToken Find(std::string_view name) const;

  /// Spelled-out name of `token`; empty view for invalid tokens. The
  /// view is valid for the table's lifetime. Lock-free.
  std::string_view Name(EventToken token) const {
    if (token >= count_.load(std::memory_order_acquire)) return {};
    return chunks_[token >> kChunkBits].load(std::memory_order_relaxed)
        [token & (kChunkSize - 1)];
  }

  size_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  static constexpr uint32_t kChunkBits = 10;
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr uint32_t kMaxChunks = 1u << 14;  // 16M tokens

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string_view, EventToken> index_;
  /// token -> name, in kChunkSize-string blocks that never move or free
  /// while the table lives (so Name() views stay valid).
  std::atomic<std::string*> chunks_[kMaxChunks] = {};
  std::atomic<uint32_t> count_ = 0;
};

/// The process-wide table every engine, instance table, and packet codec
/// shares, so token ids agree across nodes of one simulation.
TokenTable& GlobalTokens();

inline EventToken InternToken(std::string_view name) {
  // Thread-local direct-mapped cache in front of the shared table. Hot
  // parse paths intern the same few event names over and over; a hit
  // skips the table's shared_mutex entirely. Safe because tokens are
  // never recycled and Name() views are stable for the table's
  // lifetime, so a hit is verified with one lock-free string compare.
  struct CacheEntry {
    size_t hash = 0;
    EventToken token_plus_one = 0;  // 0 = empty slot
  };
  constexpr size_t kCacheSlots = 256;
  static thread_local CacheEntry cache[kCacheSlots];
  // Word-at-a-time FNV: event names are short ("S12.done"), and the
  // byte-at-a-time std::hash costs as much as the table probe it is
  // here to avoid. Quality only has to spread 256 slots.
  uint64_t hash = 0xcbf29ce484222325ull ^ name.size();
  std::string_view rest = name;
  while (rest.size() >= 8) {
    uint64_t word;
    std::memcpy(&word, rest.data(), 8);
    hash = (hash ^ word) * 0x100000001b3ull;
    rest.remove_prefix(8);
  }
  if (!rest.empty()) {
    uint64_t word = 0;
    std::memcpy(&word, rest.data(), rest.size());
    hash = (hash ^ word) * 0x100000001b3ull;
  }
  // Final avalanche: multiplication only carries entropy upward, so
  // without this the low slot-index bits never see bytes past the
  // first — fold the high half back down.
  hash ^= hash >> 32;
  hash *= 0xd6e8feb86659fd93ull;
  hash ^= hash >> 32;
  CacheEntry& entry = cache[hash & (kCacheSlots - 1)];
  if (entry.token_plus_one != 0 && entry.hash == hash &&
      GlobalTokens().Name(entry.token_plus_one - 1) == name) {
    return entry.token_plus_one - 1;
  }
  EventToken token = GlobalTokens().Intern(name);
  if (token != kInvalidEventToken) entry = {hash, token + 1};
  return token;
}
inline EventToken FindToken(std::string_view name) {
  return GlobalTokens().Find(name);
}
inline std::string_view TokenName(EventToken token) {
  return GlobalTokens().Name(token);
}
inline std::string TokenNameStr(EventToken token) {
  return std::string(GlobalTokens().Name(token));
}

}  // namespace crew::rules

#endif  // CREW_RULES_TOKEN_H_
