#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>

namespace crew::bench {

sim::LoadCategory LoadCategoryOf(analysis::Mechanism mechanism) {
  switch (mechanism) {
    case analysis::Mechanism::kNormal:
      return sim::LoadCategory::kNavigation;
    case analysis::Mechanism::kInputChange:
      return sim::LoadCategory::kInputChange;
    case analysis::Mechanism::kAbort:
      return sim::LoadCategory::kAbort;
    case analysis::Mechanism::kFailureHandling:
      return sim::LoadCategory::kFailureHandling;
    case analysis::Mechanism::kCoordination:
      return sim::LoadCategory::kCoordination;
  }
  return sim::LoadCategory::kNavigation;
}

sim::MsgCategory MsgCategoryOf(analysis::Mechanism mechanism) {
  switch (mechanism) {
    case analysis::Mechanism::kNormal:
      return sim::MsgCategory::kNormal;
    case analysis::Mechanism::kInputChange:
      return sim::MsgCategory::kInputChange;
    case analysis::Mechanism::kAbort:
      return sim::MsgCategory::kAbort;
    case analysis::Mechanism::kFailureHandling:
      return sim::MsgCategory::kFailureHandling;
    case analysis::Mechanism::kCoordination:
      return sim::MsgCategory::kCoordination;
  }
  return sim::MsgCategory::kNormal;
}

double MeasuredLoad(const workload::RunResult& result,
                    analysis::Mechanism mechanism,
                    const std::vector<NodeId>& nodes, int64_t l) {
  sim::LoadCategory category = LoadCategoryOf(mechanism);
  int64_t best = 0;
  for (NodeId node : nodes) {
    best = std::max(best, result.metrics.LoadAt(node, category));
  }
  return static_cast<double>(best) /
         (static_cast<double>(l) * result.instances());
}

double MeasuredMessages(const workload::RunResult& result,
                        analysis::Mechanism mechanism) {
  return result.MessagesPerInstance(MsgCategoryOf(mechanism));
}

void PrintHeader(const std::string& title,
                 const workload::Params& params) {
  printf("\n================================================================\n");
  printf("%s\n", title.c_str());
  printf("================================================================\n");
  printf("Table 3 parameters:\n%s", params.Describe().c_str());
}

void PrintTable(const std::string& title, const workload::Params& params,
                const workload::RunResult& result,
                const std::vector<analysis::ModelRow>& load_rows,
                const std::vector<analysis::ModelRow>& msg_rows,
                const std::vector<NodeId>& nodes) {
  PrintHeader(title, params);
  printf("\nrun: started=%lld committed=%lld aborted=%lld ticks=%lld\n",
         static_cast<long long>(result.started),
         static_cast<long long>(result.committed),
         static_cast<long long>(result.aborted),
         static_cast<long long>(result.sim_ticks));

  printf("\n%-24s | %-22s | %10s | %10s\n", "Load at node (units of l)",
         "paper expression", "paper", "measured");
  printf("%s\n", std::string(78, '-').c_str());
  for (const analysis::ModelRow& row : load_rows) {
    double measured = MeasuredLoad(result, row.mechanism, nodes,
                                   params.navigation_load);
    printf("%-24s | %-22s | %10.4f | %10.4f\n",
           analysis::MechanismName(row.mechanism), row.expression.c_str(),
           row.value, measured);
  }

  printf("\n%-24s | %-22s | %10s | %10s\n", "Messages per instance",
         "paper expression", "paper", "measured");
  printf("%s\n", std::string(78, '-').c_str());
  for (const analysis::ModelRow& row : msg_rows) {
    double measured = MeasuredMessages(result, row.mechanism);
    printf("%-24s | %-22s | %10.4f | %10.4f\n",
           analysis::MechanismName(row.mechanism), row.expression.c_str(),
           row.value, measured);
  }
  printf("\nnormal traffic by wire type:\n%s",
         result.metrics.TypeBreakdown(sim::MsgCategory::kNormal).c_str());
  printf("\nfailure-handling traffic by wire type:\n%s",
         result.metrics.TypeBreakdown(sim::MsgCategory::kFailureHandling)
             .c_str());
  printf("\nunmodelled traffic: election=%lld admin=%lld (see DESIGN.md)\n",
         static_cast<long long>(
             result.metrics.MessagesIn(sim::MsgCategory::kElection)),
         static_cast<long long>(
             result.metrics.MessagesIn(sim::MsgCategory::kAdmin)));
}

std::vector<NodeId> CentralEngineNodes() { return {1}; }

std::vector<NodeId> ParallelEngineNodes(int num_engines) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < num_engines; ++i) nodes.push_back(1 + i);
  return nodes;
}

std::vector<NodeId> DistributedAgentNodes(int num_agents) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < num_agents; ++i) nodes.push_back(1 + i);
  return nodes;
}

}  // namespace crew::bench
