#ifndef CREW_MODEL_STEP_H_
#define CREW_MODEL_STEP_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "expr/ast.h"

namespace crew::model {

/// Whether the step's program updates shared resources or only queries
/// them. The distributed recovery protocol treats them differently when a
/// predecessor agent fails (§5.2): a query step may be re-run elsewhere,
/// an update step must wait for its agent to come back.
enum class AccessKind { kUpdate, kQuery };

/// Regular black-box task vs. a nested workflow invocation.
enum class StepKind { kTask, kSubWorkflow };

/// Join semantics for a step with multiple incoming control arcs.
/// kAnd: confluence step — fires when *all* incoming branches arrive.
/// kOr:  fires on the first arriving branch (after an if-then-else, or a
///       loop head fed by entry + back edge).
enum class JoinKind { kNone, kAnd, kOr };

/// Per-step failure-handling specification: on step.fail, the workflow is
/// partially rolled back to `rollback_to` and re-executed from there
/// (§3, Figure 3). After `max_attempts` failures of this step the
/// workflow aborts.
struct FailureSpec {
  StepId rollback_to = kInvalidStep;  ///< kInvalidStep => abort on failure
  int max_attempts = 3;
};

/// Opportunistic compensation and re-execution knobs (§3, Figure 5).
struct OcrSpec {
  /// Evaluated when a StepExecute arrives for an already-executed step.
  /// False => the previous results are reused (no compensation, no
  /// re-execution; a step.done is generated from the stored outputs).
  /// Null => always re-execute. Typical value: changed(S2.O1).
  expr::NodePtr reexec_condition;

  /// Cost of *partial* compensation relative to complete compensation
  /// (1.0 = only complete compensation available).
  double partial_compensation_fraction = 1.0;

  /// Cost of *incremental* re-execution relative to complete re-execution
  /// (1.0 = only complete re-execution available).
  double incremental_reexec_fraction = 1.0;

  /// Evaluated (when partial/incremental fractions < 1) to decide whether
  /// the cheap path applies in the current context; null => always
  /// applicable when fractions < 1.
  expr::NodePtr partial_applicable_condition;

  /// False for loop-body steps: a loop iteration re-executes the step
  /// without compensating the previous iteration. SchemaBuilder::Build()
  /// sets this automatically for steps enclosed by a BackArc().
  bool compensate_before_reexec = true;
};

/// One node of the workflow graph. Steps are black boxes: the WFMS sees
/// only the program name, declared inputs/outputs, and cost.
struct Step {
  StepId id = kInvalidStep;
  std::string name;

  StepKind kind = StepKind::kTask;
  AccessKind access = AccessKind::kUpdate;

  /// ProgramRegistry key executed to perform the step (kTask).
  std::string program;
  /// Optional compensation program; empty => compensation is a pure
  /// state rollback with the same cost class as the program.
  std::string compensation_program;
  /// Schema name of the child workflow (kSubWorkflow).
  std::string sub_workflow;

  /// Data items the program reads (e.g. "WF.I1", "S2.O1"). Outputs are
  /// written under this step's namespace: "S<id>.O<n>".
  std::vector<std::string> inputs;
  /// Number of outputs the program produces.
  int num_outputs = 1;

  /// Nominal program cost in instructions (the black-box part of load).
  int64_t cost = 1000;

  JoinKind join = JoinKind::kNone;
  FailureSpec failure;
  OcrSpec ocr;

  /// True if this step's effects must be compensated when the whole
  /// workflow is aborted by the user (the paper's "steps which are to be
  /// compensated ... as specified in the workflow schema").
  bool compensate_on_abort = true;
};

}  // namespace crew::model

#endif  // CREW_MODEL_STEP_H_
