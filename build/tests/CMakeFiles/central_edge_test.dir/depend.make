# Empty dependencies file for central_edge_test.
# This may be replaced when dependencies are built.
