#include <gtest/gtest.h>

#include "analysis/model.h"
#include "analysis/recommend.h"
#include "workload/driver.h"
#include "workload/generator.h"

namespace crew::workload {
namespace {

Params SmallParams() {
  Params p;
  p.steps_per_workflow = 6;
  p.num_schemas = 3;
  p.instances_per_schema = 5;
  p.num_engines = 2;
  p.num_agents = 8;
  p.eligible_per_step = 2;
  p.rollback_depth = 2;
  p.p_step_failure = 0.2;
  p.p_input_change = 0.1;
  p.p_abort = 0.1;
  p.mutex_steps = 1;
  p.relative_order_steps = 1;
  p.rollback_dep_steps = 0;
  return p;
}

TEST(GeneratorTest, SchemasHaveDeclaredShape) {
  Params p = SmallParams();
  Rng rng(p.seed);
  WorkloadGenerator generator(p, &rng);
  Result<std::vector<GeneratedSchema>> schemas = generator.GenerateAll();
  ASSERT_TRUE(schemas.ok()) << schemas.status().ToString();
  ASSERT_EQ(schemas.value().size(), 3u);
  for (const GeneratedSchema& g : schemas.value()) {
    EXPECT_EQ(g.schema->schema().num_steps(), 6);
    EXPECT_NE(g.failure_step, kInvalidStep);
    const model::Step& fail =
        g.schema->schema().step(g.failure_step);
    EXPECT_NE(fail.failure.rollback_to, kInvalidStep);
    EXPECT_LT(fail.failure.rollback_to, g.failure_step);
    // w steps marked compensate-on-abort.
    int comp = 0;
    for (const model::Step& step : g.schema->schema().steps()) {
      if (step.compensate_on_abort) ++comp;
    }
    EXPECT_EQ(comp, p.abort_compensated_steps);
  }
}

TEST(GeneratorTest, DisruptionSetsAreDisjoint) {
  Params p = SmallParams();
  p.instances_per_schema = 200;
  Rng rng(p.seed);
  WorkloadGenerator generator(p, &rng);
  ASSERT_TRUE(generator.GenerateAll().ok());
  for (int c = 0; c < p.num_schemas; ++c) {
    for (int64_t n : generator.failing_instances(c)) {
      EXPECT_EQ(generator.input_change_instances(c).count(n), 0u);
      EXPECT_EQ(generator.abort_instances(c).count(n), 0u);
    }
  }
  // Roughly pf of instances fail.
  double frac = generator.failing_instances(0).size() / 200.0;
  EXPECT_NEAR(frac, p.p_step_failure, 0.1);
}

TEST(GeneratorTest, CoordinationSpecMatchesIntensity) {
  Params p = SmallParams();
  p.mutex_steps = 2;
  p.relative_order_steps = 3;
  p.rollback_dep_steps = 1;
  Rng rng(p.seed);
  WorkloadGenerator generator(p, &rng);
  Result<std::vector<GeneratedSchema>> schemas = generator.GenerateAll();
  ASSERT_TRUE(schemas.ok());
  runtime::CoordinationSpec spec =
      generator.MakeCoordinationSpec(schemas.value());
  EXPECT_EQ(spec.mutexes.size(), 3u * 2u);
  EXPECT_EQ(spec.relative_orders.size(), 3u);
  EXPECT_EQ(spec.rollback_deps.size(), 3u * 1u);
}

class DriverTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(DriverTest, AllInstancesTerminate) {
  Params p = SmallParams();
  RunResult result = RunWorkload(p, GetParam());
  EXPECT_EQ(result.started, 15);
  EXPECT_EQ(result.committed + result.aborted, result.started)
      << result.Describe();
  EXPECT_GT(result.committed, 0);
  EXPECT_GT(result.metrics.TotalMessages(), 0);
}

TEST_P(DriverTest, DeterministicForSameSeed) {
  Params p = SmallParams();
  RunResult a = RunWorkload(p, GetParam());
  RunResult b = RunWorkload(p, GetParam());
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.metrics.TotalMessages(), b.metrics.TotalMessages());
  EXPECT_EQ(a.metrics.TotalLoad(), b.metrics.TotalLoad());
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, DriverTest,
                         ::testing::Values(Architecture::kCentral,
                                           Architecture::kParallel,
                                           Architecture::kDistributed),
                         [](const auto& info) {
                           return std::string(
                               ArchitectureName(info.param));
                         });

TEST(AnalysisModelTest, Table4NormalizedValuesMatchPaper) {
  // With Table 3 midpoints the paper's normalized column follows.
  Params p;  // defaults are the midpoints
  auto load = analysis::CentralLoad(p);
  EXPECT_DOUBLE_EQ(load[0].value, 15.0);    // l*s = 15l
  EXPECT_DOUBLE_EQ(load[1].value, 0.125);   // l*r*pi
  EXPECT_DOUBLE_EQ(load[2].value, 0.05);    // l*w*pa
  EXPECT_DOUBLE_EQ(load[3].value, 0.5);     // l*r*pf
  EXPECT_DOUBLE_EQ(load[4].value, 75.0);    // l*(me+ro+rd)*s
  auto msgs = analysis::CentralMessages(p);
  EXPECT_DOUBLE_EQ(msgs[0].value, 60.0);    // 2*s*a
  EXPECT_DOUBLE_EQ(msgs[1].value, 0.125);
  EXPECT_DOUBLE_EQ(msgs[2].value, 0.2);
  EXPECT_DOUBLE_EQ(msgs[3].value, 0.5);
  EXPECT_DOUBLE_EQ(msgs[4].value, 0.0);
}

TEST(AnalysisModelTest, Table5And6NormalizedValuesMatchPaper) {
  Params p;
  auto pl = analysis::ParallelLoad(p);
  EXPECT_DOUBLE_EQ(pl[0].value, 3.75);      // l*s/e
  EXPECT_DOUBLE_EQ(pl[4].value, 75.0);      // e cancels
  auto pm = analysis::ParallelMessages(p);
  EXPECT_DOUBLE_EQ(pm[0].value, 60.0);
  EXPECT_DOUBLE_EQ(pm[4].value, 300.0);     // (me+ro+rd)*e*s
  auto dl = analysis::DistributedLoad(p);
  EXPECT_DOUBLE_EQ(dl[0].value, 0.3);       // l*s/z
  EXPECT_DOUBLE_EQ(dl[3].value, 0.01);      // (l*r*pf)/z
  // Note: the paper's normalized column prints 1.5·l here, which implies
  // a·d = 0.5; its own expression with the Table 3 midpoints (a=2, d=1)
  // gives 3.0. We evaluate the expression as printed.
  EXPECT_DOUBLE_EQ(dl[4].value, 3.0);       // l*(me+ro+rd)*a*d*s/z
  auto dm = analysis::DistributedMessages(p);
  EXPECT_DOUBLE_EQ(dm[0].value, 32.0);      // s*a + f
  EXPECT_NEAR(dm[3].value, 1.8, 1e-9);      // (r+v)*pf*a
  EXPECT_DOUBLE_EQ(dm[4].value, 150.0);     // (me+ro+rd)*a*d*s
}

TEST(RecommendTest, MeasuredRankingFavoursDistributedLoad) {
  Params p = SmallParams();
  p.p_step_failure = 0.15;
  // The distributed-load advantage rests on z >> e (§6); give the
  // distributed run a realistically larger agent pool.
  p.num_agents = 24;
  RunResult central = RunWorkload(p, Architecture::kCentral);
  RunResult par = RunWorkload(p, Architecture::kParallel);
  RunResult dist = RunWorkload(p, Architecture::kDistributed);
  analysis::Recommendation rec =
      analysis::Recommend(central, par, dist, p);
  // Paper Table 7: distributed is rank (1) for load in every scenario.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rec.load[i].ranks[0].first, Architecture::kDistributed)
        << "scenario " << i;
  }
  std::string table = analysis::FormatTable7(rec);
  EXPECT_NE(table.find("distributed"), std::string::npos);
}

}  // namespace
}  // namespace crew::workload
