#include <gtest/gtest.h>

#include "model/builder.h"
#include "model/compiled.h"
#include "model/deployment.h"

namespace crew::model {
namespace {

// The paper's Figure 3 workflow: S1 -> S2 -> choice(S3 | S5') ... here
// modelled as: S1 -> S2 -> {S3 (top) | S4 (bottom)} -> S5.
Schema MakeIfThenElse() {
  SchemaBuilder b("Fig3");
  StepId s1 = b.AddTask("S1", "noop");
  StepId s2 = b.AddTask("S2", "noop");
  StepId s3 = b.AddTask("S3", "noop");
  StepId s4 = b.AddTask("S4", "noop");
  StepId s5 = b.AddTask("S5", "noop");
  b.Arc(s1, s2);
  b.CondArc(s2, s3, "S2.O1 >= 10");
  b.ElseArc(s2, s4);
  b.Arc(s3, s5);
  b.Arc(s4, s5);
  b.SetJoin(s5, JoinKind::kOr);
  Result<Schema> schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

TEST(BuilderTest, SequentialWorkflowBuilds) {
  SchemaBuilder b("Seq");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.Sequence({s1, s2, s3});
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().start_step(), s1);
  EXPECT_EQ(schema.value().num_steps(), 3);
  ASSERT_EQ(schema.value().terminal_groups().size(), 1u);
  EXPECT_EQ(schema.value().terminal_groups()[0],
            (std::vector<StepId>{s3}));
}

TEST(BuilderTest, RejectsEmptySchema) {
  SchemaBuilder b("Empty");
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, RejectsMissingJoinKind) {
  SchemaBuilder b("BadJoin");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  StepId s4 = b.AddTask("D", "noop");
  b.Arc(s1, s2).Arc(s1, s3).Arc(s2, s4).Arc(s3, s4);
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, RejectsMixedConditionalSplit) {
  SchemaBuilder b("BadSplit");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.CondArc(s1, s2, "x > 1");
  b.Arc(s1, s3);
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, RejectsUndeclaredCycle) {
  SchemaBuilder b("Cycle");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  b.Arc(s1, s2);
  b.Arc(s2, s1);  // should have been BackArc
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, AcceptsDeclaredLoop) {
  SchemaBuilder b("Loop");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.Arc(s1, s2);
  b.BackArc(s2, s1, "S2.O1 < 3");
  b.CondArc(s2, s3, "S2.O1 >= 3");
  b.SetJoin(s1, JoinKind::kOr);
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  // Loop body steps must not compensate on plain re-execution.
  EXPECT_FALSE(schema.value().step(s1).ocr.compensate_before_reexec);
  EXPECT_FALSE(schema.value().step(s2).ocr.compensate_before_reexec);
  EXPECT_TRUE(schema.value().step(s3).ocr.compensate_before_reexec);
}

TEST(BuilderTest, RejectsUnreachableStep) {
  SchemaBuilder b("Island");
  StepId s1 = b.AddTask("A", "noop");
  b.AddTask("B", "noop");  // no arcs at all -> two start candidates
  (void)s1;
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, RejectsBadArcCondition) {
  SchemaBuilder b("BadCond");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  b.CondArc(s1, s2, "1 +");
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, TerminalGroupsCoverChoiceAlternatives) {
  SchemaBuilder b("TwoEnds");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.CondArc(s1, s2, "x > 0");
  b.ElseArc(s1, s3);
  b.TerminalGroup({s2, s3});
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().terminal_groups().size(), 1u);
}

TEST(BuilderTest, RejectsNonTerminalInGroup) {
  SchemaBuilder b("BadGroup");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  b.Arc(s1, s2);
  b.TerminalGroup({s1});
  EXPECT_FALSE(b.Build().ok());
}

TEST(CompiledTest, SuccessorsAndJoinRequirements) {
  SchemaBuilder b("Par");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  StepId s4 = b.AddTask("D", "noop");
  b.Parallel(s1, {{s2, s2}, {s3, s3}}, s4);
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok());
  Result<CompiledSchemaPtr> compiled =
      CompiledSchema::Compile(std::move(schema).value());
  ASSERT_TRUE(compiled.ok());
  const CompiledSchema& cs = *compiled.value();
  EXPECT_EQ(cs.forward_out(s1).size(), 2u);
  EXPECT_EQ(cs.required_incoming(s4), 2);
  EXPECT_EQ(cs.required_incoming(s2), 1);
  EXPECT_TRUE(cs.IsDownstream(s1, s4));
  EXPECT_FALSE(cs.IsDownstream(s2, s3));
  EXPECT_EQ(cs.terminal_steps(), (std::vector<StepId>{s4}));
}

TEST(CompiledTest, DownstreamIncludesSelfAndIsSorted) {
  Schema schema = MakeIfThenElse();
  Result<CompiledSchemaPtr> compiled =
      CompiledSchema::Compile(std::move(schema));
  ASSERT_TRUE(compiled.ok());
  const CompiledSchema& cs = *compiled.value();
  std::vector<StepId> down = cs.downstream_including(2);
  EXPECT_EQ(down, (std::vector<StepId>{2, 3, 4, 5}));
  EXPECT_EQ(cs.downstream_including(5), (std::vector<StepId>{5}));
}

TEST(CompiledTest, UpstreamOfFindsAncestors) {
  Schema schema = MakeIfThenElse();
  Result<CompiledSchemaPtr> compiled =
      CompiledSchema::Compile(std::move(schema));
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.value()->UpstreamOf(5),
            (std::vector<StepId>{1, 2, 3, 4}));
  EXPECT_EQ(compiled.value()->UpstreamOf(1), (std::vector<StepId>{}));
}

TEST(CompiledTest, TopoOrderRespectsArcs) {
  Schema schema = MakeIfThenElse();
  Result<CompiledSchemaPtr> compiled =
      CompiledSchema::Compile(std::move(schema));
  ASSERT_TRUE(compiled.ok());
  const std::vector<StepId>& topo = compiled.value()->topo_order();
  auto pos = [&](StepId id) {
    return std::find(topo.begin(), topo.end(), id) - topo.begin();
  };
  EXPECT_LT(pos(1), pos(2));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_LT(pos(2), pos(4));
  EXPECT_LT(pos(3), pos(5));
}

TEST(CompiledTest, ChoiceSplitFlag) {
  Schema schema = MakeIfThenElse();
  Result<CompiledSchemaPtr> compiled =
      CompiledSchema::Compile(std::move(schema));
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled.value()->is_choice_split(2));
  EXPECT_FALSE(compiled.value()->is_choice_split(1));
}

TEST(CompiledTest, CompDepSetsIndexed) {
  SchemaBuilder b("Sets");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.Sequence({s1, s2, s3});
  b.AddCompDepSet({s1, s3});
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok());
  Result<CompiledSchemaPtr> compiled =
      CompiledSchema::Compile(std::move(schema).value());
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.value()->comp_dep_sets_of(s1).size(), 1u);
  EXPECT_EQ(compiled.value()->comp_dep_sets_of(s2).size(), 0u);
}

TEST(DeploymentTest, EligibleAndCoordinationAgent) {
  SchemaBuilder b("Dep");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  b.Arc(s1, s2);
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok());
  Result<CompiledSchemaPtr> compiled =
      CompiledSchema::Compile(std::move(schema).value());
  ASSERT_TRUE(compiled.ok());

  Deployment deployment;
  EXPECT_FALSE(deployment.Check(*compiled.value()).ok());
  deployment.SetEligible("Dep", s1, {5, 3});
  deployment.SetEligible("Dep", s2, {7});
  ASSERT_TRUE(deployment.Check(*compiled.value()).ok());
  Result<NodeId> coord = deployment.CoordinationAgent(*compiled.value());
  ASSERT_TRUE(coord.ok());
  EXPECT_EQ(coord.value(), 5);
}

TEST(DeploymentTest, AssignRandomRespectsCount) {
  SchemaBuilder b("Rand");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  b.Arc(s1, s2);
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok());
  Result<CompiledSchemaPtr> compiled =
      CompiledSchema::Compile(std::move(schema).value());
  ASSERT_TRUE(compiled.ok());

  Rng rng(5);
  Deployment deployment;
  deployment.AssignRandom(*compiled.value(), {10, 11, 12, 13, 14}, 3, &rng);
  for (StepId id = 1; id <= 2; ++id) {
    const std::vector<NodeId>& eligible = deployment.Eligible("Rand", id);
    EXPECT_EQ(eligible.size(), 3u);
    EXPECT_TRUE(std::is_sorted(eligible.begin(), eligible.end()));
  }
}

TEST(SchemaTest, DescribeMentionsStructure) {
  Schema schema = MakeIfThenElse();
  std::string text = schema.Describe();
  EXPECT_NE(text.find("Fig3"), std::string::npos);
  EXPECT_NE(text.find("S2 -> S3"), std::string::npos);
  EXPECT_NE(text.find("(else)"), std::string::npos);
}

TEST(SchemaTest, FindStepByName) {
  Schema schema = MakeIfThenElse();
  EXPECT_EQ(schema.FindStepByName("S3"), 3);
  EXPECT_EQ(schema.FindStepByName("nope"), kInvalidStep);
}

}  // namespace
}  // namespace crew::model
