#ifndef CREW_NET_SUPERVISOR_H_
#define CREW_NET_SUPERVISOR_H_

#include <sys/types.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "net/telemetry.h"
#include "net/topology.h"

namespace crew::net {

/// Everything a crew_node process needs to assemble its slice of the
/// deployment. The supervisor passes these through as command-line
/// flags; every process gets identical values except endpoint,
/// incarnation and drive.
struct LaunchOptions {
  std::string node_binary;    ///< path to the crew_node executable
  std::string topology_file;  ///< shared topology spec
  std::string mode = "dist";  ///< central | parallel | dist
  int num_engines = 2;
  int num_agents = 3;
  int num_instances = 9;
  uint64_t seed = 42;
  int64_t tick_us = 20;
  int64_t pending_timeout = 5000;
  std::string agdb_dir;  ///< durable AGDB directory (dist)
  /// Directory for per-process trace shards. Empty = tracing off. Each
  /// spawn gets "<dir>/<socket basename>.inc<k>.shard"; crew_trace_merge
  /// (or trace_merge.h) joins the shards into one Chrome trace.
  std::string trace_dir;
  /// Metrics snapshot cadence inside each node (0 = off).
  int64_t telemetry_interval_ms = 200;
  /// Wire codec each node sends with ("kv" | "binary"). Empty = the
  /// node binary's default (binary). Receivers accept both, so mixed
  /// clusters interoperate.
  std::string codec;
  /// Instance placement policy ("static" | "rr" | "hash" | "least").
  std::string placement = "static";
  /// Sweep workload classes (0 = the standard mixed workload).
  int num_classes = 0;
  /// Purge scope ("targeted" | "broadcast"), see TestbedOptions.
  std::string purge = "targeted";
  /// When false, nodes start idle and the caller triggers the workload
  /// later via the "drive" control verb (open-loop bench runs).
  bool drive_on_start = true;
};

/// Launcher/supervisor for multi-process deployments: spawns one
/// crew_node per distinct endpoint of the topology (fork + exec), tracks
/// pids, and coordinates the run over each node's control socket —
/// including SIGKILLing a node mid-run and restarting it with a bumped
/// incarnation, the crash-recovery path under test.
///
/// Unix-domain endpoints only (each node's control socket lives at
/// "<data socket path>.ctl").
class Supervisor {
 public:
  struct NodeProcess {
    Endpoint endpoint;
    std::string control_path;
    uint64_t incarnation = 1;
    pid_t pid = -1;
    /// Shard paths of every incarnation spawned with tracing on. Only
    /// cleanly-exited incarnations actually write theirs; collectors
    /// skip paths that never appeared.
    std::vector<std::string> trace_shards;
  };

  Supervisor(Topology topology, LaunchOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every node process. Only the process hosting an instance's
  /// start node drives it, so the workload starts exactly once.
  Status StartAll();

  /// SIGKILL + reap: the crash. Data and control sockets die with it;
  /// peers park outbound traffic for its nodes.
  Status Kill(const Endpoint& endpoint);

  /// Respawns a killed node with incarnation+1 and drive off. The new
  /// process replays its durable AGDB before serving.
  Status Restart(const Endpoint& endpoint);

  /// One control round-trip to the node at `endpoint`.
  Result<std::string> Request(const Endpoint& endpoint,
                              const std::string& request);

  /// Polls the cluster until every process reports quiet twice around an
  /// unchanged total admission count (the cross-process Quiesce).
  Status WaitQuiescent(int timeout_ms);

  /// Asks every process for the instance's terminal state; exactly one
  /// is authoritative (the others answer "n/a"). Returns the bare state
  /// token (the node appends its telemetry document after it).
  Result<std::string> QueryState(const std::string& workflow,
                                 int64_t number);

  /// Scrapes every live process's telemetry document ("telemetry"
  /// verb). Unreachable processes are skipped — the caller sees fewer
  /// entries than processes() during a crash window.
  std::vector<NodeTelemetry> CollectTelemetry(int timeout_ms = 2000);

  /// Every shard path any traced incarnation may have written, in spawn
  /// order. Paths whose process was killed never exist on disk.
  std::vector<std::string> TraceShardPaths() const;

  /// Clean stop: "exit" to every process, then reap (SIGKILL stragglers).
  void ShutdownAll();

  const std::vector<NodeProcess>& processes() const { return processes_; }
  const Topology& topology() const { return topology_; }

 private:
  NodeProcess* FindProcess(const Endpoint& endpoint);
  Status Spawn(NodeProcess* process, bool drive);

  Topology topology_;
  LaunchOptions options_;
  std::vector<NodeProcess> processes_;
};

}  // namespace crew::net

#endif  // CREW_NET_SUPERVISOR_H_
