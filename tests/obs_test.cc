#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "central/system.h"
#include "model/builder.h"

namespace crew::obs {
namespace {

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

TEST(LatencyHistogramTest, SmallValuesUseExactBuckets) {
  for (int64_t v = 0; v < LatencyHistogram::kLinearBuckets; ++v) {
    int index = LatencyHistogram::BucketIndex(v);
    EXPECT_EQ(index, static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::BucketLower(index), v);
    EXPECT_EQ(LatencyHistogram::BucketUpper(index), v);
  }
}

TEST(LatencyHistogramTest, BucketsCoverAllValuesInOrder) {
  // Every value lands inside its bucket's [lower, upper] range, and
  // bucket indices are monotone in the value.
  int previous = -1;
  for (int64_t v : std::vector<int64_t>{0, 1, 63, 64, 65, 100, 127, 128,
                                        1000, 4097, 1 << 20,
                                        int64_t{1} << 40}) {
    int index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(index, previous) << "value " << v;
    EXPECT_LE(LatencyHistogram::BucketLower(index), v) << "value " << v;
    EXPECT_GE(LatencyHistogram::BucketUpper(index), v) << "value " << v;
    previous = index;
  }
}

TEST(LatencyHistogramTest, RelativeBucketErrorBounded) {
  // Sub-bucketing keeps the bucket width within ~1/32 of the value.
  for (int64_t v = 64; v < (1 << 16); v = v * 5 / 4 + 1) {
    int index = LatencyHistogram::BucketIndex(v);
    int64_t width = LatencyHistogram::BucketUpper(index) -
                    LatencyHistogram::BucketLower(index) + 1;
    EXPECT_LE(width * 16, v) << "value " << v << " width " << width;
  }
}

TEST(LatencyHistogramTest, CountMinMaxMean) {
  LatencyHistogram h("t", "ticks");
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LatencyHistogramTest, ExactPercentilesBelowLinearRange) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 50; ++v) h.Add(v);  // small values are exact
  EXPECT_NEAR(h.Percentile(50), 25.0, 1.0);
  EXPECT_NEAR(h.Percentile(95), 47.5, 1.0);
  EXPECT_NEAR(h.Percentile(99), 49.5, 1.0);
  EXPECT_NEAR(h.Percentile(100), 50.0, 0.5);
  EXPECT_LE(h.Percentile(0), 1.0);
}

TEST(LatencyHistogramTest, PercentileOfConstantIsConstant) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Add(4096);
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    // Clamped to observed [min, max], so exact despite wide buckets.
    EXPECT_DOUBLE_EQ(h.Percentile(p), 4096.0) << "p" << p;
  }
}

TEST(LatencyHistogramTest, LargeValuePercentileWithinBucketError) {
  LatencyHistogram h;
  for (int64_t v = 1000; v < 2000; ++v) h.Add(v);
  // 3.2% worst-case relative bucket error at this magnitude.
  EXPECT_NEAR(h.Percentile(50), 1500.0, 50.0);
  EXPECT_NEAR(h.Percentile(99), 1990.0, 70.0);
}

// ---------------------------------------------------------------------
// Tracer / RingBufferTracer span pairing
// ---------------------------------------------------------------------

TEST(TracerTest, NullTracerDropsEverything) {
  Tracer* null = Tracer::Null();
  EXPECT_FALSE(null->enabled());
  null->Instant(SpanKind::kStep, 1, {"WF", 1}, 1, "step");  // no crash
}

TEST(RingBufferTracerTest, PairsBeginEndIntoCompleteSpan) {
  RingBufferTracer ring;
  int64_t clock = 100;
  ring.SetClock(&clock);
  ring.Begin(SpanKind::kStep, 7, {"WF", 1}, 3, "step");
  clock = 140;
  ring.End(SpanKind::kStep, 7, {"WF", 1}, 3, "step", 0, "done");
  ASSERT_EQ(ring.records().size(), 1u);
  const TraceRecord& r = ring.records().front();
  EXPECT_EQ(r.phase, TracePhase::kComplete);
  EXPECT_EQ(r.time, 100);
  EXPECT_EQ(r.dur, 40);
  EXPECT_EQ(r.node, 7);
  EXPECT_EQ(r.detail, "done");  // end's detail wins
  EXPECT_EQ(ring.open_spans(), 0u);
  EXPECT_EQ(ring.step_latency().count(), 1);
  EXPECT_EQ(ring.step_latency().max(), 40);
}

TEST(RingBufferTracerTest, UnmatchedEndIsCountedAndDropped) {
  RingBufferTracer ring;
  ring.End(SpanKind::kCoord, 1, {"WF", 1}, 2, "mutex.wait");
  EXPECT_EQ(ring.records().size(), 0u);
  EXPECT_EQ(ring.unmatched_ends(), 1);
  EXPECT_EQ(ring.lock_wait().count(), 0);
}

TEST(RingBufferTracerTest, FirstBeginWinsOnDuplicateKey) {
  RingBufferTracer ring;
  int64_t clock = 10;
  ring.SetClock(&clock);
  ring.Begin(SpanKind::kCoord, 1, {"WF", 1}, 2, "mutex.wait");
  clock = 20;
  ring.Begin(SpanKind::kCoord, 1, {"WF", 1}, 2, "mutex.wait");
  clock = 30;
  ring.End(SpanKind::kCoord, 1, {"WF", 1}, 2, "mutex.wait");
  ASSERT_EQ(ring.records().size(), 1u);
  EXPECT_EQ(ring.records().front().time, 10);
  EXPECT_EQ(ring.records().front().dur, 20);
}

TEST(RingBufferTracerTest, RingEvictsOldestWhenFull) {
  RingBufferTracer ring(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ring.Instant(SpanKind::kNode, 1, {}, kInvalidStep,
                 "tick" + std::to_string(i));
  }
  EXPECT_EQ(ring.records().size(), 4u);
  EXPECT_EQ(ring.recorded(), 10);
  EXPECT_EQ(ring.dropped(), 6);
  EXPECT_EQ(ring.records().front().name, "tick6");
}

TEST(RingBufferTracerTest, HistogramsKeyOnWellKnownNames) {
  RingBufferTracer ring;
  int64_t clock = 0;
  ring.SetClock(&clock);
  ring.Begin(SpanKind::kInstance, 1, {"WF", 1}, kInvalidStep, "instance");
  clock = 500;
  ring.End(SpanKind::kInstance, 1, {"WF", 1}, kInvalidStep, "instance");
  // "instance.e2e" (front-end view) must NOT feed the same histogram.
  ring.Begin(SpanKind::kInstance, 0, {"WF", 1}, kInvalidStep,
             "instance.e2e");
  clock = 600;
  ring.End(SpanKind::kInstance, 0, {"WF", 1}, kInvalidStep,
           "instance.e2e");
  ring.Instant(SpanKind::kOcr, 1, {"WF", 1}, 3, "rollback", 4);
  ring.Instant(SpanKind::kOcr, 2, {"WF", 1}, 3, "halt", 2);
  EXPECT_EQ(ring.instance_latency().count(), 1);
  EXPECT_EQ(ring.instance_latency().max(), 500);
  EXPECT_EQ(ring.rollback_depth().count(), 2);
  EXPECT_EQ(ring.rollback_depth().max(), 4);
}

// ---------------------------------------------------------------------
// JSON export well-formedness
// ---------------------------------------------------------------------

/// Minimal recursive-descent JSON checker — accepts exactly the JSON
/// grammar, no extensions. Returns true iff `text` is one valid value.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(JsonExportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonExportTest, ChromeTraceIsWellFormedJson) {
  RingBufferTracer ring;
  int64_t clock = 1;
  ring.SetClock(&clock);
  ring.SetNodeName(1, "engine-1");
  ring.Begin(SpanKind::kStep, 1, {"WF\"x", 2}, 1, "step");
  clock = 5;
  ring.End(SpanKind::kStep, 1, {"WF\"x", 2}, 1, "step", 0,
           "detail with \\ and \"quotes\"");
  ring.Instant(SpanKind::kOcr, 2, {"WF\"x", 2}, 1, "rollback", 3);
  ring.Complete(SpanKind::kMessage, 2, {"WF\"x", 2}, 1, "msg:Run", 1, 2,
                1, "1->2");

  std::string json = ring.ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Structural spot checks chrome://tracing depends on.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("engine-1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(JsonExportTest, JsonlLinesAreEachWellFormed) {
  RingBufferTracer ring;
  ring.Instant(SpanKind::kNode, 3, {"WF", 1}, kInvalidStep, "node.down");
  ring.Instant(SpanKind::kOcr, 3, {"WF", 1}, 2, "halt", 2, "origin=S2");
  std::string log = ring.JsonlLog();
  size_t lines = 0;
  size_t start = 0;
  while (start < log.size()) {
    size_t end = log.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_TRUE(JsonChecker(log.substr(start, end - start)).Valid())
        << log.substr(start, end - start);
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(JsonExportTest, HistogramsJsonIsWellFormed) {
  RingBufferTracer ring;
  int64_t clock = 0;
  ring.SetClock(&clock);
  ring.Begin(SpanKind::kStep, 1, {"WF", 1}, 1, "step");
  clock = 7;
  ring.End(SpanKind::kStep, 1, {"WF", 1}, 1, "step");
  EXPECT_TRUE(JsonChecker(ring.HistogramsJson()).Valid());
  EXPECT_TRUE(JsonChecker(ring.step_latency().ToJson()).Valid());
}

// ---------------------------------------------------------------------
// Integration: a central failure + rollback emits the expected spans
// ---------------------------------------------------------------------

std::vector<const TraceRecord*> Select(const RingBufferTracer& ring,
                                       SpanKind kind,
                                       const std::string& name) {
  std::vector<const TraceRecord*> out;
  for (const TraceRecord& r : ring.records()) {
    if (r.kind == kind && r.name == name) out.push_back(&r);
  }
  return out;
}

TEST(TraceIntegrationTest, CentralFailureRollbackSpanSequence) {
  RingBufferTracer ring;
  sim::Simulator simulator(42);
  simulator.set_tracer(&ring);

  runtime::ProgramRegistry programs;
  programs.RegisterBuiltins();
  programs.RegisterFailFirstN("flaky", 1);
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  central::CentralSystem system(&simulator, &programs, &deployment,
                                &coordination, /*num_agents=*/4);

  model::SchemaBuilder b("Retry");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "flaky");
  StepId s3 = b.AddTask("C", "noop");
  b.Sequence({s1, s2, s3});
  b.OnFail(s2, s1, /*max_attempts=*/3);
  auto compiled =
      model::CompiledSchema::Compile(std::move(b.Build()).value());
  ASSERT_TRUE(compiled.ok());
  for (StepId s = 1; s <= 3; ++s) {
    deployment.SetEligible("Retry", s, system.agent_ids());
  }
  system.engine().RegisterSchema(compiled.value());

  ASSERT_TRUE(system.engine().StartWorkflow("Retry", 1, {}).ok());
  simulator.Run();
  ASSERT_EQ(system.engine().QueryStatus({"Retry", 1}),
            runtime::WorkflowState::kCommitted);

  // One instance span covering the whole run.
  auto instances = Select(ring, SpanKind::kInstance, "instance");
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0]->detail, "committed");
  EXPECT_EQ(instances[0]->time, 0);
  EXPECT_GT(instances[0]->dur, 0);

  // S2 fails once, so it runs twice; S1 and S3 run once... plus S1's
  // re-execution after the rollback (4 or 5 step spans depending on
  // OCR's reuse decision for S1).
  auto steps = Select(ring, SpanKind::kStep, "step");
  ASSERT_GE(steps.size(), 4u);
  int failed = 0;
  for (const TraceRecord* r : steps) failed += r->detail == "failed";
  EXPECT_EQ(failed, 1);

  // Exactly one step-failure instant at S2, and one rollback instant
  // whose value (steps touched) is positive.
  auto failures = Select(ring, SpanKind::kOcr, "step.failed");
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0]->step, s2);
  auto rollbacks = Select(ring, SpanKind::kOcr, "rollback");
  ASSERT_EQ(rollbacks.size(), 1u);
  EXPECT_GT(rollbacks[0]->value, 0);

  // Ordering along virtual time: first S2 failure, then the rollback
  // decision, then the instance commits at the very end.
  EXPECT_LE(failures[0]->time, rollbacks[0]->time);
  EXPECT_LE(rollbacks[0]->time,
            instances[0]->time + instances[0]->dur);

  // Every OCR decision instant names a decision from runtime/ocr.h.
  int decisions = 0;
  for (const TraceRecord& r : ring.records()) {
    if (r.kind != SpanKind::kOcr || r.name.rfind("ocr.", 0) != 0) continue;
    if (r.name == "ocr.result-reused") continue;
    EXPECT_TRUE(r.name == "ocr.first-execution" || r.name == "ocr.reuse" ||
                r.name == "ocr.partial+incremental" ||
                r.name == "ocr.full-comp+reexec")
        << r.name;
    ++decisions;
  }
  EXPECT_GT(decisions, 0);

  // Messages were traced with send->delivery durations.
  auto messages = Select(ring, SpanKind::kMessage, "msg:RunProgram");
  EXPECT_FALSE(messages.empty());
  for (const TraceRecord* r : messages) EXPECT_GT(r->dur, 0);

  // The whole trace exports to valid JSON.
  EXPECT_TRUE(JsonChecker(ring.ChromeTraceJson()).Valid());
}

}  // namespace
}  // namespace crew::obs
