file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_election.dir/bench_ablation_election.cc.o"
  "CMakeFiles/bench_ablation_election.dir/bench_ablation_election.cc.o.d"
  "bench_ablation_election"
  "bench_ablation_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
