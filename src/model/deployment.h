#ifndef CREW_MODEL_DEPLOYMENT_H_
#define CREW_MODEL_DEPLOYMENT_H_

#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "model/compiled.h"

namespace crew::model {

/// Maps every (schema, step) to the agents *eligible* to execute it —
/// the step-table information the paper keeps in the workflow class
/// tables. The same schema can be deployed differently on different
/// system topologies, so eligibility lives outside the Schema.
class Deployment {
 public:
  /// Declares the eligible agents for a step (>= 1 agent).
  void SetEligible(const std::string& workflow, StepId step,
                   std::vector<NodeId> agents);

  /// Eligible agents for a step; empty vector if never declared.
  const std::vector<NodeId>& Eligible(const std::string& workflow,
                                      StepId step) const;

  /// The coordination agent of a workflow is the first eligible agent of
  /// its start step (§4.1: "typically the agent responsible for executing
  /// the first step").
  Result<NodeId> CoordinationAgent(const CompiledSchema& schema) const;

  /// Assigns every step of `schema` a uniformly random eligible set of
  /// size `eligible_per_step` drawn from `agents`. Used by the workload
  /// generator (Table 3's parameter a).
  void AssignRandom(const CompiledSchema& schema,
                    const std::vector<NodeId>& agents,
                    int eligible_per_step, Rng* rng);

  /// Validates that every step of `schema` has at least one eligible
  /// agent.
  Status Check(const CompiledSchema& schema) const;

 private:
  std::map<std::pair<std::string, StepId>, std::vector<NodeId>> eligible_;
  static const std::vector<NodeId> kEmpty;
};

}  // namespace crew::model

#endif  // CREW_MODEL_DEPLOYMENT_H_
