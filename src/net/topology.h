#ifndef CREW_NET_TOPOLOGY_H_
#define CREW_NET_TOPOLOGY_H_

#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace crew::net {

/// A socket address a node process listens on: a Unix-domain socket path
/// or a TCP host:port. Rendered as "unix:/tmp/n0.sock" or
/// "tcp:127.0.0.1:9100"; the rendering is the endpoint's identity.
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: filesystem path of the socket
  std::string host;  ///< kTcp: numeric host or name
  int port = 0;      ///< kTcp

  std::string Address() const;
  static Result<Endpoint> Parse(const std::string& address);

  bool operator==(const Endpoint& o) const {
    return Address() == o.Address();
  }
  bool operator!=(const Endpoint& o) const { return !(*this == o); }
  bool operator<(const Endpoint& o) const {
    return Address() < o.Address();
  }
};

/// Maps every logical node id to the endpoint of the process hosting it.
/// Several nodes may share one endpoint (co-hosted in one process) — the
/// parallel topology needs this, since its engines share an in-memory
/// conflict tracker.
///
/// Text form, one mapping per line ('#' starts a comment):
///   node <id> <address>
class Topology {
 public:
  Status Add(NodeId id, Endpoint endpoint);

  static Result<Topology> Parse(const std::string& text);
  static Result<Topology> Load(const std::string& file);
  std::string Serialize() const;
  Status Save(const std::string& file) const;

  /// Endpoint hosting `id`, or nullptr if the node is unknown.
  const Endpoint* Find(NodeId id) const;

  /// Distinct endpoints, ordered by address.
  std::vector<Endpoint> Endpoints() const;

  /// Node ids hosted at `endpoint`, ascending.
  std::vector<NodeId> NodesAt(const Endpoint& endpoint) const;

  const std::map<NodeId, Endpoint>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }

 private:
  std::map<NodeId, Endpoint> nodes_;
};

}  // namespace crew::net

#endif  // CREW_NET_TOPOLOGY_H_
