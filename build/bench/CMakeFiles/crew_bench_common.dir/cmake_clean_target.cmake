file(REMOVE_RECURSE
  "libcrew_bench_common.a"
)
