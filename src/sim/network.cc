#include "sim/network.h"

#include <utility>

#include "common/logging.h"

namespace crew::sim {

void Network::Register(NodeId id, MessageHandler* handler) {
  handlers_[id] = handler;
}

void Network::SetNodeDown(NodeId id, bool down) {
  down_[id] = down;
  if (!down) {
    // Recovery: flush parked messages in arrival order.
    auto it = parked_.find(id);
    if (it == parked_.end()) return;
    std::vector<Message> batch = std::move(it->second);
    parked_.erase(it);
    for (Message& m : batch) {
      queue_->ScheduleAfter(latency_,
                            [this, m = std::move(m)]() { Deliver(m); });
    }
  }
}

bool Network::IsNodeDown(NodeId id) const {
  auto it = down_.find(id);
  return it != down_.end() && it->second;
}

Status Network::Send(Message message) {
  auto it = handlers_.find(message.to);
  if (it == handlers_.end()) {
    return Status::NotFound("no node registered with id " +
                            std::to_string(message.to));
  }
  metrics_->CountMessage(message.from, message.to, message.category,
                         message.payload.size(), message.type);
  queue_->ScheduleAfter(
      latency_, [this, m = std::move(message)]() { Deliver(m); });
  return Status::OK();
}

void Network::Deliver(const Message& message) {
  if (IsNodeDown(message.to)) {
    parked_[message.to].push_back(message);
    return;
  }
  auto it = handlers_.find(message.to);
  if (it == handlers_.end()) {
    CREW_LOG(Warn) << "dropping message to vanished node " << message.to;
    return;
  }
  it->second->HandleMessage(message);
}

}  // namespace crew::sim
