#ifndef CREW_SIM_METRICS_H_
#define CREW_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "obs/trace.h"

namespace crew::sim {

/// Message categories mirroring the mechanisms in the paper's Tables 4-6.
/// Every physical message is tagged with exactly one category so benches
/// can report per-mechanism counts.
enum class MsgCategory {
  kNormal = 0,        // step scheduling / packets / step-completion
  kFailureHandling,   // rollback, halt, compensate-set, step-status probes
  kInputChange,       // workflow input change propagation
  kAbort,             // user-initiated abort + its compensations
  kCoordination,      // AddRule/AddEvent/AddPrecondition traffic
  kElection,          // successor-selection / leader-election traffic
  kAdmin,             // front-end requests, status queries, purge broadcast
};

/// Returns a short label for a category ("normal", "failure", ...).
const char* MsgCategoryName(MsgCategory category);
inline constexpr int kNumMsgCategories = 7;

/// Load categories: what kind of work a node performed. Navigation load
/// (`l` per step in the paper) is separated from black-box program cost.
enum class LoadCategory {
  kNavigation = 0,    // scheduling / rule evaluation for normal execution
  kFailureHandling,   // rollback / halt / OCR decision work
  kInputChange,
  kAbort,
  kCoordination,      // ME / RO / RD requirement processing
  kProgram,           // the step program itself (black box)
};

const char* LoadCategoryName(LoadCategory category);
inline constexpr int kNumLoadCategories = 6;

/// Per-run counters: messages by (node, category) and load (instructions)
/// by (node, category). Owned by the Simulator; all components hold a
/// pointer to it.
class Metrics {
 public:
  void CountMessage(NodeId from, NodeId to, MsgCategory category,
                    size_t bytes, const std::string& type = "");
  void AddLoad(NodeId node, LoadCategory category, int64_t instructions);

  /// Free-form named counters for subsystem statistics that do not fit
  /// the message/load taxonomy (e.g. conflict-tracker shard contention).
  /// Dotted names group related counters ("conflict_tracker.acquires").
  /// Stored in a sorted map, so counters() iteration — and therefore
  /// the "counters" object in ReportJson() — is always in key order.
  void AddCounter(const std::string& name, int64_t delta);
  int64_t Counter(const std::string& name) const;
  const std::map<std::string, int64_t>& counters() const {
    return counters_;
  }

  /// Named latency histogram, created on first use. Cheap enough for
  /// per-instance events (e.g. commit sojourn); buckets ship in
  /// ReportJson so a cluster collector can pool exact percentiles
  /// across process shards.
  obs::LatencyHistogram& Latency(const std::string& name);
  const std::map<std::string, obs::LatencyHistogram>& latencies() const {
    return latencies_;
  }

  int64_t TotalMessages() const { return total_messages_; }
  int64_t TotalBytes() const { return total_bytes_; }
  int64_t MessagesIn(MsgCategory category) const;
  /// Total messages excluding `kElection` and `kAdmin` — the categories the
  /// paper's expressions do not model (see DESIGN.md §5).
  int64_t ModelledMessages() const;

  int64_t LoadAt(NodeId node) const;
  int64_t LoadAt(NodeId node, LoadCategory category) const;
  int64_t TotalLoad(LoadCategory category) const;
  int64_t TotalLoad() const;

  /// Maximum per-node load over all nodes that registered any load
  /// (the paper's "load at engine / at an agent" headline number).
  int64_t MaxNodeLoad() const;
  /// Mean per-node load over nodes with nonzero load.
  double MeanNodeLoad() const;
  /// Nodes that recorded any load.
  std::vector<NodeId> LoadedNodes() const;

  void Reset();

  /// Adds every counter of `other` into this. The live runtime keeps one
  /// Metrics shard per node (single-writer, no locks on the hot path)
  /// and merges the shards into one report after quiescing.
  void MergeFrom(const Metrics& other);

  /// Message counts by (category, wire type) — the per-WI breakdown.
  const std::map<std::pair<int, std::string>, int64_t>& by_type() const {
    return by_type_;
  }
  /// Formats the per-type breakdown of one category.
  std::string TypeBreakdown(MsgCategory category) const;

  /// Multi-line human-readable dump used by benches.
  std::string Report() const;

  /// Machine-readable counterpart of Report(): one JSON object with
  /// message totals, per-category and per-type counts, and per-node
  /// load. Benches write this next to their stdout tables so
  /// BENCH_*.json trajectories need no text scraping.
  ///
  /// Byte-stable: every compound key (by_type, by_node, counters) is
  /// backed by a sorted map, so two Metrics holding the same counts
  /// serialize to identical bytes regardless of the order the counts
  /// (or MergeFrom shards) arrived in. Telemetry diffs rely on this.
  std::string ReportJson() const;

 private:
  int64_t total_messages_ = 0;
  int64_t total_bytes_ = 0;
  int64_t messages_by_category_[kNumMsgCategories] = {};
  std::map<std::pair<int, std::string>, int64_t> by_type_;
  std::map<NodeId, std::map<int, int64_t>> load_;  // node -> category -> n
  std::map<std::string, int64_t> counters_;
  std::map<std::string, obs::LatencyHistogram> latencies_;
};

}  // namespace crew::sim

#endif  // CREW_SIM_METRICS_H_
