# Empty dependencies file for crew_bench_common.
# This may be replaced when dependencies are built.
