#ifndef CREW_OBS_TRACE_H_
#define CREW_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace crew::obs {

/// What a trace record describes. One SpanKind per subsystem so exports
/// can be filtered per mechanism (the paper's Tables 4-6 taxonomy).
enum class SpanKind {
  kStep = 0,   // step lifecycle: scheduled -> dispatched -> done/failed
  kInstance,   // workflow-instance end-to-end
  kOcr,        // failure handling: rollback, halt, compensation, reuse
  kCoord,      // coordination waits: RO blocks, ME lock waits, RD triggers
  kMessage,    // one network message in flight (send -> delivery)
  kProgram,    // black-box step-program execution
  kNode,       // node lifecycle: crash / recovery
};

const char* SpanKindName(SpanKind kind);
inline constexpr int kNumSpanKinds = 7;

/// Record phase. Begin/End pairs are matched by the sink on the key
/// (kind, instance, step, name); Complete carries its duration directly.
/// FlowBegin/FlowEnd are the two halves of a *cross-process* span: the
/// sink stores them unmatched (the halves live in different processes'
/// rings) and the trace merge step pairs them by `flow` id after
/// aligning the shard clocks.
enum class TracePhase {
  kBegin = 0,
  kEnd,
  kInstant,
  kComplete,
  kFlowBegin,
  kFlowEnd,
};

/// One structured trace record, stamped with virtual time. `category` is
/// a sim::MsgCategory cast to int (obs deliberately does not depend on
/// sim; sim links against obs).
struct TraceRecord {
  int64_t time = 0;  // virtual ticks (begin time for kComplete)
  int64_t dur = 0;   // kComplete only
  TracePhase phase = TracePhase::kInstant;
  SpanKind kind = SpanKind::kStep;
  NodeId node = kInvalidNode;
  InstanceId instance;
  StepId step = kInvalidStep;
  int category = 0;   // sim::MsgCategory value
  int64_t value = 0;  // kind-specific payload (rollback depth, cost, ...)
  uint64_t flow = 0;  // cross-process span id (kFlowBegin/kFlowEnd only)
  std::string name;   // span identity within the key ("step", "mutex.wait")
  std::string detail; // freeform annotation, shown in export args
};

/// Label for a sim::MsgCategory value. Mirrors sim::MsgCategoryName —
/// duplicated here (seven stable values) so obs stays sim-independent.
const char* TraceCategoryLabel(int category);

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(std::string_view text);

/// Sink interface. The base class IS the null sink: `enabled()` is false
/// and `Record` drops everything, so instrumentation sites pay one
/// virtual-free bool check when tracing is off. Helpers (Begin/End/...)
/// no-op unless enabled.
class Tracer {
 public:
  virtual ~Tracer() = default;

  virtual bool enabled() const { return false; }
  virtual void Record(TraceRecord record) { (void)record; }
  /// Registers a display name for a node's export track ("engine-1").
  virtual void SetNodeName(NodeId node, const std::string& name) {
    (void)node;
    (void)name;
  }

  /// Registers the virtual clock the helpers stamp records with
  /// (the Simulator points this at its event queue's now()).
  void SetClock(const int64_t* clock) { clock_ = clock; }
  /// Time the helpers stamp records with. Virtual so a wall-clock
  /// backend (rt::Runtime's serializing wrapper) can stamp real ticks
  /// without a clock variable to point at.
  virtual int64_t now() const { return clock_ != nullptr ? *clock_ : 0; }

  /// Process-wide null sink (never deleted).
  static Tracer* Null();

  // ---- convenience emitters ----
  void Begin(SpanKind kind, NodeId node, const InstanceId& instance,
             StepId step, std::string name, int category = 0,
             std::string detail = {});
  void End(SpanKind kind, NodeId node, const InstanceId& instance,
           StepId step, std::string name, int category = 0,
           std::string detail = {});
  void Instant(SpanKind kind, NodeId node, const InstanceId& instance,
               StepId step, std::string name, int64_t value = 0,
               std::string detail = {}, int category = 0);
  /// A span whose duration is known at record time (message delivery).
  void Complete(SpanKind kind, NodeId node, const InstanceId& instance,
                StepId step, std::string name, int64_t begin_time,
                int64_t dur, int category = 0, std::string detail = {});
  /// Opens the sender half of a cross-process span. `begin_time` is the
  /// caller's clock reading (the transport stamps its own send tick,
  /// which is not this tracer's now()). Closed by a FlowEnd with the
  /// same `flow` id, typically recorded in a different process.
  void FlowBegin(SpanKind kind, NodeId node, uint64_t flow,
                 std::string name, int64_t begin_time, int category = 0,
                 std::string detail = {}, int64_t value = 0);
  /// Closes the receiver half of a cross-process span at now().
  void FlowEnd(SpanKind kind, NodeId node, uint64_t flow, std::string name,
               int category = 0, std::string detail = {},
               int64_t value = 0);

 protected:
  const int64_t* clock_ = nullptr;
};

/// Fixed-bucket latency histogram: exact buckets below 64, then 32
/// sub-buckets per power of two (HDR-style), so percentile error is
/// bounded at ~3% while Add() stays a couple of shifts.
class LatencyHistogram {
 public:
  static constexpr int kLinearBuckets = 64;
  static constexpr int kSubBuckets = 32;
  // Values up to 2^58 land in a real bucket; larger clamp to the last.
  static constexpr int kNumBuckets =
      kLinearBuckets + kSubBuckets * 52 + 1;

  explicit LatencyHistogram(std::string name = {}, std::string unit = {});

  void Add(int64_t value);

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double mean() const;
  /// Interpolated percentile, `p` in [0, 100]. 0 when empty.
  double Percentile(double p) const;

  const std::string& name() const { return name_; }
  /// One-line summary: "name: n=… p50=… p95=… p99=… max=…".
  std::string Summary() const;
  /// {"name":…,"count":…,"p50":…,…} JSON object.
  std::string ToJson() const;

  static int BucketIndex(int64_t value);
  static int64_t BucketLower(int index);
  static int64_t BucketUpper(int index);

  /// Raw bucket counts (kNumBuckets entries, mostly zero).
  const std::vector<int64_t>& buckets() const { return buckets_; }
  /// Adds `count` samples directly into bucket `index` (for merging
  /// sparse bucket dumps shipped across processes). min/max are
  /// approximated by the bucket bounds; mean uses the bucket midpoint.
  void AddBucket(int index, int64_t count);
  /// Pools another histogram's samples into this one.
  void MergeFrom(const LatencyHistogram& other);

 private:
  std::string name_;
  std::string unit_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

/// In-memory ring-buffer sink. Matches Begin/End pairs into complete
/// spans (first Begin wins; an End with no Begin is counted and
/// dropped), feeds the latency histograms as spans close, and exports
/// Chrome trace_event JSON / JSONL on demand.
class RingBufferTracer : public Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  explicit RingBufferTracer(size_t capacity = kDefaultCapacity);

  bool enabled() const override { return true; }
  void Record(TraceRecord record) override;
  void SetNodeName(NodeId node, const std::string& name) override;

  const std::deque<TraceRecord>& records() const { return records_; }
  /// Display names registered via SetNodeName (for shard export).
  const std::map<NodeId, std::string>& node_names() const {
    return node_names_;
  }
  int64_t recorded() const { return recorded_; }
  int64_t dropped() const { return dropped_; }
  int64_t unmatched_ends() const { return unmatched_ends_; }
  size_t open_spans() const { return open_.size(); }

  const LatencyHistogram& step_latency() const { return step_latency_; }
  const LatencyHistogram& instance_latency() const {
    return instance_latency_;
  }
  const LatencyHistogram& lock_wait() const { return lock_wait_; }
  const LatencyHistogram& rollback_depth() const {
    return rollback_depth_;
  }

  /// Chrome trace_event JSON (object form), loadable in chrome://tracing
  /// and Perfetto. pid 0 is the simulation; one thread track per node.
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Compact JSONL event log: one record object per line.
  std::string JsonlLog() const;
  Status WriteJsonl(const std::string& path) const;

  /// Human-readable latency/percentile block; benches print it after
  /// sim::Metrics::Report() so the two together form the run summary.
  std::string SummaryReport() const;
  /// {"step":{…},"instance":{…},"lock_wait":{…},"rollback_depth":{…}}.
  std::string HistogramsJson() const;

 private:
  using SpanKey = std::tuple<int, InstanceId, StepId, std::string>;

  void Push(TraceRecord record);
  void FeedHistograms(const TraceRecord& record);

  size_t capacity_;
  std::deque<TraceRecord> records_;
  std::map<SpanKey, TraceRecord> open_;
  std::map<NodeId, std::string> node_names_;
  int64_t recorded_ = 0;
  int64_t dropped_ = 0;
  int64_t unmatched_ends_ = 0;

  LatencyHistogram step_latency_;
  LatencyHistogram instance_latency_;
  LatencyHistogram lock_wait_;
  LatencyHistogram rollback_depth_;
};

}  // namespace crew::obs

#endif  // CREW_OBS_TRACE_H_
