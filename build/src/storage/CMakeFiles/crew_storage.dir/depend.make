# Empty dependencies file for crew_storage.
# This may be replaced when dependencies are built.
