#include "central/system.h"

namespace crew::central {

CentralSystem::CentralSystem(sim::Simulator* simulator,
                             const runtime::ProgramRegistry* programs,
                             const model::Deployment* deployment,
                             const runtime::CoordinationSpec* coordination,
                             int num_agents, EngineOptions options)
    : simulator_(simulator) {
  engine_ = std::make_unique<WorkflowEngine>(
      /*id=*/1, simulator, programs, deployment, coordination,
      std::move(options));
  simulator->tracer().SetNodeName(1, "engine-1");
  for (int i = 0; i < num_agents; ++i) {
    NodeId id = kFirstAgentId + i;
    agents_.push_back(std::make_unique<ThinAgent>(id, simulator, programs));
    agent_ids_.push_back(id);
    simulator->tracer().SetNodeName(id, "agent-" + std::to_string(id));
  }
}

}  // namespace crew::central
