#include "net/node.h"

#include "common/logging.h"

namespace crew::net {

NetNode::NetNode(const Topology& topology, const Endpoint& self,
                 rt::RuntimeOptions runtime_options,
                 SocketTransportOptions transport_options)
    : runtime_(runtime_options) {
  transport_ = std::make_unique<SocketTransport>(
      topology, self,
      [this](sim::Message message) {
        NodeId to = message.to;
        Status status = runtime_.DeliverRemote(std::move(message));
        if (!status.ok()) {
          CREW_LOG(Warn) << "net: inbound frame for node " << to
                         << " dropped: " << status.ToString();
        }
      },
      transport_options);
  local_nodes_ = transport_->topology().NodesAt(self);
  runtime_.SetRemoteRouter(transport_.get());
  // Flow spans and HELLO clock samples use the runtime's serializing
  // tracer and tick clock, so transport records land in the same shard
  // and timebase as the cells' own spans.
  transport_->InstallTelemetry(runtime_.tracer(),
                               [this] { return runtime_.now(); });
}

NetNode::~NetNode() { Shutdown(); }

Status NetNode::Bind() { return transport_->Bind(); }

void NetNode::Start() {
  if (started_) return;
  started_ = true;
  runtime_.Start();
  transport_->Start();
}

bool NetNode::WaitConnected(std::chrono::milliseconds timeout) {
  return transport_->WaitConnected(timeout);
}

bool NetNode::LooksQuiet() const {
  return runtime_.LooksQuiet() && transport_->Idle();
}

int64_t NetNode::AdmittedWork() const { return runtime_.AdmittedWork(); }

void NetNode::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  transport_->Shutdown();
  runtime_.Shutdown();
}

}  // namespace crew::net
