#ifndef CREW_COMMON_RNG_H_
#define CREW_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace crew {

/// One SplitMix64 step: mixes `x` into a well-distributed 64-bit value.
/// Used to derive independent per-node RNG streams from a root seed so
/// stream identity depends only on (seed, node), never on construction
/// or thread order — the live runtime's determinism hinges on that.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic random source used throughout the simulator and the
/// workload generator. Every experiment takes an explicit seed so runs
/// are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Picks a uniformly random index in [0, n). Precondition: n > 0.
  size_t Index(size_t n) {
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  /// Derives an independent child generator (for per-node streams).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace crew

#endif  // CREW_COMMON_RNG_H_
