#ifndef CREW_ANALYSIS_RECOMMEND_H_
#define CREW_ANALYSIS_RECOMMEND_H_

#include <array>
#include <string>
#include <vector>

#include "analysis/model.h"
#include "workload/driver.h"

namespace crew::analysis {

/// Table 7's criteria columns.
enum class Scenario { kNormal, kNormalPlusFailures, kNormalPlusCoordinated };
const char* ScenarioName(Scenario scenario);

/// A ranking of the three architectures for one (criterion, scenario)
/// cell; architectures with near-equal scores share a rank, as the paper
/// does ("(2) Parallel / (2) Central").
struct Ranking {
  /// Ordered best-first; ranks[i] pairs the architecture with its rank
  /// number (1 = best). Equal scores share a rank.
  std::vector<std::pair<workload::Architecture, int>> ranks;
  std::string ToString() const;
};

/// Derives Table 7 from three *measured* runs (one per architecture):
/// per-scenario scores for node load and physical messages, ranked.
struct Recommendation {
  Ranking load[3];      ///< indexed by Scenario
  Ranking messages[3];  ///< indexed by Scenario
};

Recommendation Recommend(const workload::RunResult& central,
                         const workload::RunResult& parallel,
                         const workload::RunResult& distributed,
                         const workload::Params& params);

/// Formats the recommendation as the paper's Table 7 layout.
std::string FormatTable7(const Recommendation& recommendation);

}  // namespace crew::analysis

#endif  // CREW_ANALYSIS_RECOMMEND_H_
