// Live-runtime throughput bench: sustained WorkflowStart traffic against
// the real-thread backend (src/rt), one run per architecture. Reports
// workflows/sec and wall-clock completion-latency percentiles (p50/p95/
// p99) from the flight recorder's instance histogram, and writes the
// machine-readable summary to BENCH_rt.json.
//
// Flags:
//   --smoke        tiny workload (<2s total) for CI
//   --workflows=N  instances per architecture (default 4000; smoke 250)
//   --agents=N     agent count (default 4)
//   --engines=N    parallel-control engine count (default 2)
//   --json=PATH    output path (default BENCH_rt.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "central/system.h"
#include "dist/system.h"
#include "model/builder.h"
#include "obs/trace.h"
#include "parallel/system.h"
#include "rt/runtime.h"

namespace crew {
namespace {

constexpr uint64_t kSeed = 42;
constexpr int64_t kTickUs = 10;

model::CompiledSchemaPtr JobSchema() {
  model::SchemaBuilder b("Job");
  StepId s1 = b.AddTask("T1", "noop");
  StepId s2 = b.AddTask("T2", "noop");
  StepId s3 = b.AddTask("T3", "noop");
  StepId s4 = b.AddTask("T4", "noop");
  b.Sequence({s1, s2, s3, s4});
  auto compiled = model::CompiledSchema::Compile(std::move(b.Build()).value());
  return compiled.value();
}

void SetEligibleRoundRobin(model::Deployment* deployment,
                           const std::vector<NodeId>& ids,
                           const model::CompiledSchema& schema) {
  for (StepId s = 1; s <= schema.schema().num_steps(); ++s) {
    std::vector<NodeId> agents = {ids[(s - 1) % ids.size()],
                                  ids[s % ids.size()]};
    std::sort(agents.begin(), agents.end());
    deployment->SetEligible(schema.schema().name(), s, agents);
  }
}

struct ArchResult {
  std::string label;
  int workflows = 0;
  int64_t committed = 0;
  double wall_ms = 0;
  double wf_per_sec = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  rt::RuntimeStats stats;
  std::string metrics_json;
};

double Ticks2Us(double ticks) { return ticks * static_cast<double>(kTickUs); }

ArchResult Summarize(const std::string& label, int workflows,
                     int64_t committed,
                     std::chrono::steady_clock::duration wall,
                     const obs::RingBufferTracer& ring,
                     const rt::Runtime& runtime) {
  ArchResult r;
  r.label = label;
  r.workflows = workflows;
  r.committed = committed;
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(wall).count() /
      1000.0;
  r.wf_per_sec = r.wall_ms > 0 ? workflows / (r.wall_ms / 1000.0) : 0;
  const obs::LatencyHistogram& h = ring.instance_latency();
  r.p50_us = Ticks2Us(h.Percentile(50));
  r.p95_us = Ticks2Us(h.Percentile(95));
  r.p99_us = Ticks2Us(h.Percentile(99));
  r.max_us = Ticks2Us(static_cast<double>(h.max()));
  r.stats = runtime.Stats();
  r.metrics_json = runtime.MergedMetrics().ReportJson();
  return r;
}

void Print(const ArchResult& r) {
  std::printf(
      "%-12s %6d wf in %8.1f ms  => %9.0f wf/s   "
      "latency p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus\n",
      r.label.c_str(), r.workflows, r.wall_ms, r.wf_per_sec, r.p50_us,
      r.p95_us, r.p99_us, r.max_us);
  std::printf(
      "             workers=%d delivered=%lld timers=%lld "
      "mailbox_parks=%lld max_depth=%zu\n",
      r.stats.num_workers,
      static_cast<long long>(r.stats.messages_delivered),
      static_cast<long long>(r.stats.timers_fired),
      static_cast<long long>(r.stats.mailbox_parks),
      r.stats.max_mailbox_depth);
}

std::string Json(const ArchResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"arch\":\"%s\",\"workflows\":%d,\"committed\":%lld,"
      "\"wall_ms\":%.3f,\"wf_per_sec\":%.1f,"
      "\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,"
      "\"max\":%.1f},"
      "\"rt\":{\"workers\":%d,\"delivered\":%lld,\"parked\":%lld,"
      "\"timers\":%lld,\"mailbox_parks\":%lld,\"max_depth\":%zu},"
      "\"metrics\":",
      r.label.c_str(), r.workflows, static_cast<long long>(r.committed),
      r.wall_ms, r.wf_per_sec, r.p50_us, r.p95_us, r.p99_us, r.max_us,
      r.stats.num_workers,
      static_cast<long long>(r.stats.messages_delivered),
      static_cast<long long>(r.stats.messages_parked),
      static_cast<long long>(r.stats.timers_fired),
      static_cast<long long>(r.stats.mailbox_parks),
      r.stats.max_mailbox_depth);
  return std::string(buf) + r.metrics_json + "}";
}

ArchResult RunCentral(int workflows, int agents) {
  obs::RingBufferTracer ring;
  rt::Runtime runtime({.seed = kSeed, .tick_us = kTickUs, .tracer = &ring});
  runtime::ProgramRegistry programs;
  programs.RegisterBuiltins();
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  central::CentralSystem system(&runtime, &programs, &deployment,
                                &coordination, agents);
  auto schema = JobSchema();
  SetEligibleRoundRobin(&deployment, system.agent_ids(), *schema);
  system.engine().RegisterSchema(schema);
  runtime.Start();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= workflows; ++i) {
    runtime.Post(1, [&system, i]() {
      (void)system.engine().StartWorkflow("Job", i, {});
    });
  }
  runtime.Quiesce();
  auto wall = std::chrono::steady_clock::now() - t0;
  runtime.Shutdown();
  return Summarize("central", workflows, system.engine().committed_count(),
                   wall, ring, runtime);
}

ArchResult RunParallel(int workflows, int engines, int agents) {
  obs::RingBufferTracer ring;
  rt::Runtime runtime({.seed = kSeed, .tick_us = kTickUs, .tracer = &ring});
  runtime::ProgramRegistry programs;
  programs.RegisterBuiltins();
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  parallel::ParallelSystem system(&runtime, &programs, &deployment,
                                  &coordination, engines, agents);
  auto schema = JobSchema();
  SetEligibleRoundRobin(&deployment, system.agent_ids(), *schema);
  system.RegisterSchema(schema);
  runtime.Start();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= workflows; ++i) {
    NodeId owner = system.OwnerEngine({"Job", i});
    runtime.Post(owner, [&system, i]() {
      (void)system.StartWorkflow("Job", i, {});
    });
  }
  runtime.Quiesce();
  auto wall = std::chrono::steady_clock::now() - t0;
  runtime.Shutdown();
  return Summarize("parallel", workflows, system.committed_count(), wall,
                   ring, runtime);
}

ArchResult RunDistributed(int workflows, int agents) {
  obs::RingBufferTracer ring;
  rt::Runtime runtime({.seed = kSeed, .tick_us = kTickUs, .tracer = &ring});
  runtime::ProgramRegistry programs;
  programs.RegisterBuiltins();
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  dist::AgentOptions options;
  options.exec_latency = 1;
  // Keep overdue-step probes out of a healthy run even when the machine
  // stalls: 5000 ticks = 50ms at the bench tick rate.
  options.pending_timeout = 5000;
  dist::DistributedSystem system(&runtime, &programs, &deployment,
                                 &coordination, agents, options);
  auto schema = JobSchema();
  SetEligibleRoundRobin(&deployment, system.agent_ids(), *schema);
  system.RegisterSchema(schema);
  runtime.Start();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= workflows; ++i) {
    runtime.Post(kFrontEndNode, [&system]() {
      (void)system.front_end().StartWorkflow("Job", {});
    });
  }
  runtime.Quiesce();
  auto wall = std::chrono::steady_clock::now() - t0;
  runtime.Shutdown();
  return Summarize("dist", workflows, system.committed_count(), wall, ring,
                   runtime);
}

int Main(int argc, char** argv) {
  int workflows = 4000;
  int agents = 4;
  int engines = 2;
  std::string json_path = "BENCH_rt.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--workflows=", 0) == 0) {
      workflows = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--agents=", 0) == 0) {
      agents = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--engines=", 0) == 0) {
      engines = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (smoke) workflows = 250;

  std::printf("rt throughput: %d workflows/arch, %d agents, %d engines, "
              "tick=%lldus\n",
              workflows, agents, engines,
              static_cast<long long>(kTickUs));
  std::vector<ArchResult> results;
  results.push_back(RunCentral(workflows, agents));
  Print(results.back());
  results.push_back(RunParallel(workflows, engines, agents));
  Print(results.back());
  results.push_back(RunDistributed(workflows, agents));
  Print(results.back());

  int failures = 0;
  for (const ArchResult& r : results) {
    if (r.committed != r.workflows) {
      std::fprintf(stderr, "FAIL: %s committed %lld of %d workflows\n",
                   r.label.c_str(), static_cast<long long>(r.committed),
                   r.workflows);
      ++failures;
    }
    if (r.stats.num_workers < 4) {
      std::fprintf(stderr, "FAIL: %s ran on %d workers (< 4)\n",
                   r.label.c_str(), r.stats.num_workers);
      ++failures;
    }
  }

  std::ofstream out(json_path);
  out << "{\"bench\":\"rt_throughput\",\"smoke\":" << (smoke ? "true" : "false")
      << ",\"tick_us\":" << kTickUs << ",\"runs\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out << ",";
    out << Json(results[i]);
  }
  out << "]}\n";
  out.close();
  std::printf("wrote %s\n", json_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace crew

int main(int argc, char** argv) { return crew::Main(argc, argv); }
