#ifndef CREW_RUNTIME_KV_H_
#define CREW_RUNTIME_KV_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace crew::runtime {

/// Line-oriented key=value wire format for workflow-interface messages
/// and packets. Repeated keys are allowed (lists). Values containing
/// newlines must be escaped by the caller (Value::ToString already does).
class KvWriter {
 public:
  KvWriter& Add(std::string_view key, std::string_view raw);
  /// Emits "<prefix><key>=<raw>" without building the concatenated key.
  KvWriter& AddPrefixed(std::string_view prefix, std::string_view key,
                        std::string_view raw);
  KvWriter& AddInt(std::string_view key, int64_t v);
  KvWriter& AddValue(std::string_view key, const Value& v);

  /// Pre-sizes the output buffer (callers that know their payload size
  /// avoid repeated reallocation).
  void Reserve(size_t bytes) { buffer_.reserve(bytes); }

  std::string Finish() const { return buffer_; }

 private:
  std::string buffer_;
};

class KvReader {
 public:
  /// Parses the payload; malformed lines yield kCorruption.
  static Result<KvReader> Parse(const std::string& payload);

  /// First occurrence of key; nullopt if absent.
  std::optional<std::string> Get(const std::string& key) const;
  /// All occurrences, in order.
  std::vector<std::string> GetAll(const std::string& key) const;

  Result<int64_t> GetInt(const std::string& key) const;
  /// Missing key => `fallback`.
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  Result<Value> GetValue(const std::string& key) const;
  Result<std::string> GetRequired(const std::string& key) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_KV_H_
