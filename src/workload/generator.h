#ifndef CREW_WORKLOAD_GENERATOR_H_
#define CREW_WORKLOAD_GENERATOR_H_

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "model/compiled.h"
#include "runtime/coord.h"
#include "runtime/programs.h"
#include "workload/params.h"

namespace crew::workload {

/// One generated workflow class plus the bookkeeping the driver needs to
/// reproduce the paper's failure/recovery behaviour.
struct GeneratedSchema {
  model::CompiledSchemaPtr schema;
  /// The step designated to fail (on its first attempt) in instances
  /// selected for failure; its FailureSpec rolls back `r` steps.
  StepId failure_step = kInvalidStep;
  /// The step consuming WF.I1 — the input-change rollback origin.
  StepId input_consumer = kInvalidStep;
};

/// Synthesizes the Table 3 workload: `c` workflow classes of `s` steps
/// each, with failure specs of depth `r`, OCR re-execution conditions
/// calibrated so a fraction `pr` of rolled-back steps re-execute (the
/// rest reuse), `w` compensate-on-abort steps, and RO/ME/RD requirements
/// on `ro`/`me`/`rd` steps per class.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const Params& params, Rng* rng)
      : params_(params), rng_(rng) {}

  /// Generates schema `index` (class name "WF<index>"): a sequential
  /// chain of `s` steps (the Table 3 analysis shape).
  Result<GeneratedSchema> Generate(int index);

  /// Generates a *structured* schema "SWF<index>" exercising every
  /// control construct: a prologue, an if-then-else block, a parallel
  /// block with an AND-join, a bounded loop, and an epilogue carrying
  /// the failure spec. Used by integration/property tests to cover the
  /// constructs the sequential analysis shape does not.
  Result<GeneratedSchema> GenerateStructured(int index);

  /// Generates the full class set.
  Result<std::vector<GeneratedSchema>> GenerateAll();

  /// Builds the coordination requirements across the generated classes:
  /// RO between consecutive instances of each class (ro step pairs), ME
  /// on shared resources (me steps), RD from each class to the next
  /// (rd links).
  runtime::CoordinationSpec MakeCoordinationSpec(
      const std::vector<GeneratedSchema>& schemas) const;

  /// Registers the synthetic step program for each class:
  ///  - "syn_WF<index>": O1 = attempt number; fails on attempt 1 when the
  ///    instance number is in the failing set.
  void RegisterPrograms(const std::vector<GeneratedSchema>& schemas,
                        runtime::ProgramRegistry* programs);

  /// Instance numbers (1..i) of class `index` designated to fail, drawn
  /// with probability pf.
  const std::set<int64_t>& failing_instances(int index) const {
    return failing_[index];
  }
  /// Instances designated for a user input change (probability pi).
  const std::set<int64_t>& input_change_instances(int index) const {
    return input_changes_[index];
  }
  /// Instances designated for a user abort (probability pa).
  const std::set<int64_t>& abort_instances(int index) const {
    return aborts_[index];
  }

 private:
  Params params_;
  Rng* rng_;
  std::vector<std::set<int64_t>> failing_;
  std::vector<std::set<int64_t>> input_changes_;
  std::vector<std::set<int64_t>> aborts_;
};

}  // namespace crew::workload

#endif  // CREW_WORKLOAD_GENERATOR_H_
