# Empty dependencies file for crew_rules.
# This may be replaced when dependencies are built.
