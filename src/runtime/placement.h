#ifndef CREW_RUNTIME_PLACEMENT_H_
#define CREW_RUNTIME_PLACEMENT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.h"

namespace crew::runtime {

/// Instance->node placement policies (the scale-out seam). Parallel
/// control uses them to pick the owner engine of a new instance; the
/// distributed front end uses them to pick the coordination agent among
/// the start step's eligible agents. The chosen node travels with the
/// instance (WorkflowPacket::coordinator), so only the *placer* needs
/// the policy — every other node reads the decision off the wire.
enum class PlacementKind {
  /// First candidate (dist legacy: Deployment::CoordinationAgent).
  kStatic = 0,
  /// candidates[number % n] (parallel legacy owner-engine rule).
  kRoundRobin,
  /// Rendezvous (highest-random-weight) hashing of (instance, node):
  /// deterministic, uniform, and stable — adding or removing one
  /// candidate only remaps the instances that hashed to it.
  kConsistentHash,
  /// Lowest (external load feed + in-flight placements); sticky per
  /// instance because the decision is load-dependent, not derivable.
  kLeastLoaded,
};

const char* PlacementKindName(PlacementKind kind);
/// Accepts the canonical names and common aliases ("rr", "hash",
/// "least"). Returns false on unknown input.
bool ParsePlacementKind(const std::string& name, PlacementKind* kind);

/// Strategy interface. Candidates are passed per call (eligibility is
/// per workflow class), and must be non-empty, sorted and duplicate
/// free — exactly what model::Deployment::Eligible returns.
///
/// Threading: Place/Owner/Forget run on whoever drives instance starts
/// (one thread at a time); UpdateLoad may arrive concurrently from a
/// telemetry feed, so stateful policies lock internally. Deterministic
/// policies are immutable and need no synchronization.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual PlacementKind kind() const = 0;
  const char* name() const { return PlacementKindName(kind()); }

  /// Chooses the owner of `instance` among `candidates`, recording the
  /// choice when the policy is sticky. kInvalidNode iff no candidates.
  virtual NodeId Place(const InstanceId& instance,
                       const std::vector<NodeId>& candidates) = 0;

  /// Re-derives (deterministic policies) or recalls (sticky policies)
  /// the owner. kInvalidNode when sticky and the instance was never
  /// placed here.
  virtual NodeId Owner(const InstanceId& instance,
                       const std::vector<NodeId>& candidates) const = 0;

  /// Drops a sticky record once the instance ended. No-op otherwise.
  virtual void Forget(const InstanceId& instance) { (void)instance; }

  /// External load gauge for `node` (queue depth / wf-in-flight from
  /// the live merged metrics). Ignored by deterministic policies.
  virtual void UpdateLoad(NodeId node, int64_t load) {
    (void)node;
    (void)load;
  }
};

class StaticPlacement : public PlacementPolicy {
 public:
  PlacementKind kind() const override { return PlacementKind::kStatic; }
  NodeId Place(const InstanceId& instance,
               const std::vector<NodeId>& candidates) override;
  NodeId Owner(const InstanceId& instance,
               const std::vector<NodeId>& candidates) const override;
};

class RoundRobinPlacement : public PlacementPolicy {
 public:
  PlacementKind kind() const override {
    return PlacementKind::kRoundRobin;
  }
  NodeId Place(const InstanceId& instance,
               const std::vector<NodeId>& candidates) override;
  NodeId Owner(const InstanceId& instance,
               const std::vector<NodeId>& candidates) const override;
};

class ConsistentHashPlacement : public PlacementPolicy {
 public:
  PlacementKind kind() const override {
    return PlacementKind::kConsistentHash;
  }
  NodeId Place(const InstanceId& instance,
               const std::vector<NodeId>& candidates) override;
  NodeId Owner(const InstanceId& instance,
               const std::vector<NodeId>& candidates) const override;

  /// The rendezvous weight of hosting `instance` at `node` (exposed for
  /// the stability tests).
  static uint64_t Weight(const InstanceId& instance, NodeId node);
};

class LeastLoadedPlacement : public PlacementPolicy {
 public:
  PlacementKind kind() const override {
    return PlacementKind::kLeastLoaded;
  }
  NodeId Place(const InstanceId& instance,
               const std::vector<NodeId>& candidates) override;
  NodeId Owner(const InstanceId& instance,
               const std::vector<NodeId>& candidates) const override;
  void Forget(const InstanceId& instance) override;
  void UpdateLoad(NodeId node, int64_t load) override;

  /// Current effective load of `node` (feed + in-flight placements).
  int64_t LoadOf(NodeId node) const;

 private:
  mutable std::mutex mu_;
  std::map<NodeId, int64_t> load_;      // external feed (gauge)
  std::map<NodeId, int64_t> inflight_;  // Place() minus Forget()
  std::map<InstanceId, NodeId> placed_;
};

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementKind kind);

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_PLACEMENT_H_
