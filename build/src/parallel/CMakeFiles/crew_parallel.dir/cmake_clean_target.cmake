file(REMOVE_RECURSE
  "libcrew_parallel.a"
)
