#ifndef CREW_PARALLEL_SYSTEM_H_
#define CREW_PARALLEL_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "central/agent.h"
#include "central/engine.h"
#include "runtime/coord.h"
#include "runtime/placement.h"

namespace crew::parallel {

/// Parallel workflow control (Figure 6(b)): `e` centralized engines share
/// the instance load; each instance is controlled by exactly one engine
/// (assigned round-robin at start). Engines exchange coordination
/// messages — RO broadcasts, ME lock arbitration, RD rollbacks — which is
/// the traffic the paper's (me+ro+rd)·e·s expression models.
///
/// Engines occupy nodes 1..e; thin agents nodes e+1..e+z.
class ParallelSystem : public central::ParallelTopology {
 public:
  ParallelSystem(sim::Backend* backend,
                 const runtime::ProgramRegistry* programs,
                 const model::Deployment* deployment,
                 const runtime::CoordinationSpec* coordination,
                 int num_engines, int num_agents,
                 central::EngineOptions options = {});

  /// Registers a schema with every engine.
  void RegisterSchema(model::CompiledSchemaPtr schema);

  /// Installs the instance->engine placement policy (non-owning; null
  /// reverts to the legacy round-robin-by-number rule). With a sticky
  /// policy (least-loaded), StartWorkflow records the decision and
  /// later lookups recall it; the in-flight component then counts
  /// instances *routed*, since engines commit without telling us.
  void set_placement(runtime::PlacementPolicy* placement) {
    placement_ = placement;
  }

  /// Starts an instance on its owner engine (round-robin by number).
  Status StartWorkflow(const std::string& workflow, int64_t number,
                       std::map<std::string, Value> inputs);
  Status AbortWorkflow(const InstanceId& instance);
  Status ChangeInputs(const InstanceId& instance,
                      std::map<std::string, Value> new_inputs);
  runtime::WorkflowState QueryStatus(const InstanceId& instance) const;
  std::map<std::string, Value> FinalData(const InstanceId& instance) const;

  // ParallelTopology:
  NodeId OwnerEngine(const InstanceId& instance) const override;
  NodeId LockOwnerEngine(const std::string& resource) const override;
  std::vector<NodeId> AllEngines() const override;

  central::WorkflowEngine& engine(int index) { return *engines_[index]; }
  int num_engines() const { return static_cast<int>(engines_.size()); }
  const std::vector<NodeId>& agent_ids() const { return agent_ids_; }

  int64_t committed_count() const;
  int64_t aborted_count() const;

  /// The shared tracker, for shard-contention stats (ExportStats).
  const runtime::ConflictTracker& tracker() const { return tracker_; }

 private:
  central::WorkflowEngine& OwnerOf(const InstanceId& instance);
  const central::WorkflowEngine& OwnerOf(const InstanceId& instance) const;

  runtime::ConflictTracker tracker_;
  runtime::PlacementPolicy* placement_ = nullptr;
  std::vector<std::unique_ptr<central::WorkflowEngine>> engines_;
  std::vector<std::unique_ptr<central::ThinAgent>> agents_;
  std::vector<NodeId> engine_ids_;
  std::vector<NodeId> agent_ids_;
};

}  // namespace crew::parallel

#endif  // CREW_PARALLEL_SYSTEM_H_
