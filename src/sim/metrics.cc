#include "sim/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/trace.h"

namespace crew::sim {

const char* MsgCategoryName(MsgCategory category) {
  switch (category) {
    case MsgCategory::kNormal: return "normal";
    case MsgCategory::kFailureHandling: return "failure";
    case MsgCategory::kInputChange: return "input-change";
    case MsgCategory::kAbort: return "abort";
    case MsgCategory::kCoordination: return "coordination";
    case MsgCategory::kElection: return "election";
    case MsgCategory::kAdmin: return "admin";
  }
  return "?";
}

const char* LoadCategoryName(LoadCategory category) {
  switch (category) {
    case LoadCategory::kNavigation: return "navigation";
    case LoadCategory::kFailureHandling: return "failure";
    case LoadCategory::kInputChange: return "input-change";
    case LoadCategory::kAbort: return "abort";
    case LoadCategory::kCoordination: return "coordination";
    case LoadCategory::kProgram: return "program";
  }
  return "?";
}

void Metrics::CountMessage(NodeId /*from*/, NodeId /*to*/,
                           MsgCategory category, size_t bytes,
                           const std::string& type) {
  ++total_messages_;
  total_bytes_ += static_cast<int64_t>(bytes);
  ++messages_by_category_[static_cast<int>(category)];
  if (!type.empty()) {
    ++by_type_[{static_cast<int>(category), type}];
  }
}

std::string Metrics::TypeBreakdown(MsgCategory category) const {
  std::ostringstream os;
  for (const auto& [key, count] : by_type_) {
    if (key.first != static_cast<int>(category)) continue;
    os << "    " << key.second << " = " << count << "\n";
  }
  return os.str();
}

void Metrics::AddLoad(NodeId node, LoadCategory category,
                      int64_t instructions) {
  load_[node][static_cast<int>(category)] += instructions;
}

void Metrics::AddCounter(const std::string& name, int64_t delta) {
  counters_[name] += delta;
}

int64_t Metrics::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

obs::LatencyHistogram& Metrics::Latency(const std::string& name) {
  auto it = latencies_.find(name);
  if (it == latencies_.end()) {
    it = latencies_.emplace(name, obs::LatencyHistogram(name)).first;
  }
  return it->second;
}

int64_t Metrics::MessagesIn(MsgCategory category) const {
  return messages_by_category_[static_cast<int>(category)];
}

int64_t Metrics::ModelledMessages() const {
  return total_messages_ - MessagesIn(MsgCategory::kElection) -
         MessagesIn(MsgCategory::kAdmin);
}

int64_t Metrics::LoadAt(NodeId node) const {
  auto it = load_.find(node);
  if (it == load_.end()) return 0;
  int64_t sum = 0;
  for (const auto& [cat, n] : it->second) sum += n;
  return sum;
}

int64_t Metrics::LoadAt(NodeId node, LoadCategory category) const {
  auto it = load_.find(node);
  if (it == load_.end()) return 0;
  auto jt = it->second.find(static_cast<int>(category));
  return jt == it->second.end() ? 0 : jt->second;
}

int64_t Metrics::TotalLoad(LoadCategory category) const {
  int64_t sum = 0;
  for (const auto& [node, per_cat] : load_) {
    auto it = per_cat.find(static_cast<int>(category));
    if (it != per_cat.end()) sum += it->second;
  }
  return sum;
}

int64_t Metrics::TotalLoad() const {
  int64_t sum = 0;
  for (const auto& [node, per_cat] : load_) {
    for (const auto& [cat, n] : per_cat) sum += n;
  }
  return sum;
}

int64_t Metrics::MaxNodeLoad() const {
  int64_t best = 0;
  for (const auto& [node, per_cat] : load_) {
    best = std::max(best, LoadAt(node));
  }
  return best;
}

double Metrics::MeanNodeLoad() const {
  int64_t sum = 0;
  int64_t n = 0;
  for (const auto& [node, per_cat] : load_) {
    int64_t l = LoadAt(node);
    if (l > 0) {
      sum += l;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

std::vector<NodeId> Metrics::LoadedNodes() const {
  std::vector<NodeId> out;
  for (const auto& [node, per_cat] : load_) {
    if (LoadAt(node) > 0) out.push_back(node);
  }
  return out;
}

void Metrics::MergeFrom(const Metrics& other) {
  total_messages_ += other.total_messages_;
  total_bytes_ += other.total_bytes_;
  for (int i = 0; i < kNumMsgCategories; ++i) {
    messages_by_category_[i] += other.messages_by_category_[i];
  }
  for (const auto& [key, count] : other.by_type_) {
    by_type_[key] += count;
  }
  for (const auto& [node, per_cat] : other.load_) {
    auto& mine = load_[node];
    for (const auto& [cat, n] : per_cat) mine[cat] += n;
  }
  for (const auto& [name, n] : other.counters_) counters_[name] += n;
  for (const auto& [name, hist] : other.latencies_) {
    Latency(name).MergeFrom(hist);
  }
}

void Metrics::Reset() {
  total_messages_ = 0;
  total_bytes_ = 0;
  std::fill(std::begin(messages_by_category_),
            std::end(messages_by_category_), 0);
  by_type_.clear();
  load_.clear();
  counters_.clear();
  latencies_.clear();
}

std::string Metrics::Report() const {
  std::ostringstream os;
  os << "messages total=" << total_messages_ << " bytes=" << total_bytes_
     << "\n";
  for (int i = 0; i < kNumMsgCategories; ++i) {
    if (messages_by_category_[i] == 0) continue;
    os << "  " << MsgCategoryName(static_cast<MsgCategory>(i)) << "="
       << messages_by_category_[i] << "\n";
  }
  os << "load max-node=" << MaxNodeLoad() << " mean-node=" << MeanNodeLoad()
     << " total=" << TotalLoad() << "\n";
  return os.str();
}

std::string Metrics::ReportJson() const {
  std::ostringstream os;
  os << "{\"messages\":{\"total\":" << total_messages_
     << ",\"bytes\":" << total_bytes_ << ",\"by_category\":{";
  bool first = true;
  for (int i = 0; i < kNumMsgCategories; ++i) {
    if (!first) os << ",";
    first = false;
    os << "\"" << MsgCategoryName(static_cast<MsgCategory>(i))
       << "\":" << messages_by_category_[i];
  }
  os << "},\"by_type\":[";
  first = true;
  for (const auto& [key, count] : by_type_) {
    if (!first) os << ",";
    first = false;
    os << "{\"category\":\""
       << MsgCategoryName(static_cast<MsgCategory>(key.first))
       << "\",\"type\":\"" << obs::JsonEscape(key.second)
       << "\",\"count\":" << count << "}";
  }
  os << "]},\"load\":{\"total\":" << TotalLoad()
     << ",\"max_node\":" << MaxNodeLoad()
     << ",\"mean_node\":" << MeanNodeLoad() << ",\"by_node\":[";
  first = true;
  for (const auto& [node, per_cat] : load_) {
    if (!first) os << ",";
    first = false;
    os << "{\"node\":" << node;
    for (const auto& [cat, n] : per_cat) {
      os << ",\"" << LoadCategoryName(static_cast<LoadCategory>(cat))
         << "\":" << n;
    }
    os << "}";
  }
  os << "]},\"counters\":{";
  first = true;
  for (const auto& [name, n] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::JsonEscape(name) << "\":" << n;
  }
  os << "}";
  // Latency section only when histograms exist, so reports from code
  // paths that predate them keep their exact bytes.
  if (!latencies_.empty()) {
    os << ",\"latencies\":{";
    first = true;
    for (const auto& [name, hist] : latencies_) {
      if (!first) os << ",";
      first = false;
      char head[160];
      std::snprintf(head, sizeof(head),
                    "\"count\":%lld,\"min\":%lld,\"max\":%lld,"
                    "\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f",
                    static_cast<long long>(hist.count()),
                    static_cast<long long>(hist.min()),
                    static_cast<long long>(hist.max()),
                    hist.Percentile(50), hist.Percentile(95),
                    hist.Percentile(99));
      os << "\"" << obs::JsonEscape(name) << "\":{" << head
         << ",\"buckets\":[";
      // Sparse [index,count] pairs: a remote collector replays them via
      // AddBucket to pool exact cross-process percentiles.
      const auto& buckets = hist.buckets();
      bool first_bucket = true;
      for (size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0) continue;
        if (!first_bucket) os << ",";
        first_bucket = false;
        os << "[" << i << "," << buckets[i] << "]";
      }
      os << "]}";
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace crew::sim
