file(REMOVE_RECURSE
  "CMakeFiles/crew_expr.dir/eval.cc.o"
  "CMakeFiles/crew_expr.dir/eval.cc.o.d"
  "CMakeFiles/crew_expr.dir/lexer.cc.o"
  "CMakeFiles/crew_expr.dir/lexer.cc.o.d"
  "CMakeFiles/crew_expr.dir/parser.cc.o"
  "CMakeFiles/crew_expr.dir/parser.cc.o.d"
  "libcrew_expr.a"
  "libcrew_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
