file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_distributed.dir/bench_table6_distributed.cc.o"
  "CMakeFiles/bench_table6_distributed.dir/bench_table6_distributed.cc.o.d"
  "bench_table6_distributed"
  "bench_table6_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
