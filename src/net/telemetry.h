#ifndef CREW_NET_TELEMETRY_H_
#define CREW_NET_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/socket_transport.h"
#include "obs/trace.h"
#include "rt/runtime.h"
#include "sim/metrics.h"

namespace crew::net {

/// One node process's telemetry document: the full sim::Metrics JSON
/// plus transport/runtime health gauges, as produced by
/// NodeTelemetryJson below and returned (prefixed with the schedule
/// state) by crew_node's `status` and `telemetry` control verbs.
struct NodeTelemetry {
  std::string endpoint;  ///< listening address of the node process
  std::string json;      ///< its NodeTelemetryJson document
};

/// Serializes one process's health into a single JSON object:
///
///   {"endpoint":…,"incarnation":…,
///    "transport":{frames_*, bytes_sent, write_syscalls,
///                 mean_frames_per_batch, bytes_per_syscall, reconnects,
///                 retained_bytes_total, held_bytes_total,
///                 "peers":[{peer, connected, ack_lag_frames, …}]},
///    "runtime":{messages_delivered, messages_parked, timers_fired,
///               mailbox_parks, mailbox_depth, max_mailbox_depth},
///    "metrics":<sim::Metrics::ReportJson()>}
///
/// Every key is emitted in a fixed order, so two documents from the
/// same state are byte-identical (diffable, like ReportJson itself).
std::string NodeTelemetryJson(
    const std::string& endpoint, uint64_t incarnation,
    const sim::Metrics& metrics, const rt::RuntimeStats& runtime_stats,
    const SocketTransportStats& transport_stats,
    const std::vector<SocketTransportPeerStats>& peer_stats);

/// Finds the literal substring `anchor` in `json` and parses the
/// (possibly negative) integer immediately following it. Not a JSON
/// parser: callers pass anchors unique within the document, e.g.
/// "\"frames_replayed\":" or the two-level "\"messages\":{\"total\":".
/// Returns `fallback` when the anchor is absent or no digits follow.
int64_t ExtractJsonInt(const std::string& json, const std::string& anchor,
                       int64_t fallback = 0);

/// Cluster-level sums scraped out of a set of NodeTelemetry documents.
struct ClusterAggregate {
  int nodes = 0;  ///< documents aggregated
  // sim::Metrics sums (sender-side counting: no double count).
  int64_t messages_total = 0;
  int64_t message_bytes = 0;
  int64_t load_total = 0;
  // Transport sums.
  int64_t frames_sent = 0;
  int64_t frames_delivered = 0;
  int64_t frames_deduped = 0;
  int64_t frames_replayed = 0;
  int64_t frames_batched = 0;  ///< DATA frames that rode inside a batch
  int64_t batches_sent = 0;    ///< kBatch superframes emitted
  int64_t write_syscalls = 0;  ///< successful write() calls
  int64_t reconnects = 0;
  int64_t retained_bytes = 0;  ///< gauge, summed over nodes
  int64_t held_bytes = 0;      ///< gauge, summed over nodes
  // Runtime sums.
  int64_t messages_delivered = 0;
  int64_t messages_parked = 0;
  int64_t mailbox_parks = 0;
  int64_t mailbox_depth = 0;   ///< gauge, summed over nodes
  // Workflow outcome sums (the "wf.committed"/"wf.aborted" counters
  // bumped by the coordination authority at each terminal transition).
  int64_t wf_committed = 0;
  int64_t wf_aborted = 0;
};

ClusterAggregate AggregateTelemetry(const std::vector<NodeTelemetry>& nodes);

/// One-line rolling summary for the live --status-interval view:
///   "cluster n=3 msgs=1234 frames: sent=… dlv=… replay=… reconn=… …"
std::string AggregateSummaryLine(const ClusterAggregate& a);

/// Per-node one-liner (transport health) for the live view, scraped
/// from that node's telemetry document.
std::string NodeSummaryLine(const NodeTelemetry& node);

/// Merged cluster snapshot document:
///   {"aggregate":{…sums…},"placement":{…imbalance…},
///    "nodes":[<per-node documents verbatim>]}
std::string ClusterTelemetryJson(const std::vector<NodeTelemetry>& nodes);

/// Instances-placed-per-node, scraped from the "placement.wf.n<id>"
/// counters the workflow authorities bump at instance start. Nodes that
/// never hosted an instance do not appear.
std::map<NodeId, int64_t> PlacementCounts(
    const std::vector<NodeTelemetry>& nodes);

/// Load-imbalance summary of a PlacementCounts map. `expected_nodes` is
/// the number of nodes that *could* host instances (>= counts.size());
/// the mean divides by it so idle nodes count against balance. Pass 0
/// to use counts.size().
struct PlacementImbalance {
  int nodes = 0;        ///< nodes the mean divides by
  int64_t total = 0;    ///< instances placed cluster-wide
  int64_t max_count = 0;
  double mean = 0.0;
  double max_over_mean = 0.0;  ///< 1.0 = perfectly balanced; 0 = no data
};
PlacementImbalance ComputeImbalance(
    const std::map<NodeId, int64_t>& counts, int expected_nodes = 0);

/// Pools one named latency histogram across the documents into a single
/// exact merge, via the sparse [index,count] bucket pairs ReportJson
/// emits under "latencies". Percentiles of the result equal those of a
/// single histogram fed every sample.
obs::LatencyHistogram PooledLatency(const std::vector<NodeTelemetry>& nodes,
                                    const std::string& name);

}  // namespace crew::net

#endif  // CREW_NET_TELEMETRY_H_
