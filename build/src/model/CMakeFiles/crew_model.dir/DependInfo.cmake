
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/builder.cc" "src/model/CMakeFiles/crew_model.dir/builder.cc.o" "gcc" "src/model/CMakeFiles/crew_model.dir/builder.cc.o.d"
  "/root/repo/src/model/compiled.cc" "src/model/CMakeFiles/crew_model.dir/compiled.cc.o" "gcc" "src/model/CMakeFiles/crew_model.dir/compiled.cc.o.d"
  "/root/repo/src/model/deployment.cc" "src/model/CMakeFiles/crew_model.dir/deployment.cc.o" "gcc" "src/model/CMakeFiles/crew_model.dir/deployment.cc.o.d"
  "/root/repo/src/model/schema.cc" "src/model/CMakeFiles/crew_model.dir/schema.cc.o" "gcc" "src/model/CMakeFiles/crew_model.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crew_common.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/crew_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
