#include "net/testbed.h"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "common/logging.h"
#include "model/builder.h"

namespace crew::net {
namespace {

model::CompiledSchemaPtr Compile(Result<model::Schema> schema) {
  if (!schema.ok()) {
    CREW_LOG(Error) << "testbed schema build failed: "
                    << schema.status().ToString();
    std::abort();
  }
  auto compiled = model::CompiledSchema::Compile(std::move(schema).value());
  if (!compiled.ok()) {
    CREW_LOG(Error) << "testbed schema compile failed: "
                    << compiled.status().ToString();
    std::abort();
  }
  return compiled.value();
}

model::CompiledSchemaPtr GoodSchema() {
  model::SchemaBuilder b("Good");
  std::vector<StepId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(b.AddTask("T" + std::to_string(i + 1), "noop"));
  }
  b.Sequence(ids);
  return Compile(b.Build());
}

model::CompiledSchemaPtr FlakySchema() {
  model::SchemaBuilder b("Flaky");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "flaky");
  b.Sequence({s1, s2});
  b.OnFail(s2, s1, /*max_attempts=*/3);
  return Compile(b.Build());
}

model::CompiledSchemaPtr DoomedSchema() {
  model::SchemaBuilder b("Doomed");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "fail_always");
  b.Sequence({s1, s2});
  b.OnFail(s2, s1, /*max_attempts=*/2);
  return Compile(b.Build());
}

/// Sweep workload class k: a Good-shaped 4-step sequence under its own
/// name, so a num_classes run exercises many schemas whose eligibility
/// windows (offset per class) jointly cover every agent.
model::CompiledSchemaPtr ClassSchema(int k) {
  model::SchemaBuilder b("Wf" + std::to_string(k));
  std::vector<StepId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(b.AddTask("T" + std::to_string(i + 1), "noop"));
  }
  b.Sequence(ids);
  return Compile(b.Build());
}

model::CompiledSchemaPtr ParSchema() {
  model::SchemaBuilder b("Par");
  StepId s1 = b.AddTask("split", "noop");
  StepId s2 = b.AddTask("left", "noop");
  StepId s3 = b.AddTask("right", "noop");
  StepId s4 = b.AddTask("join", "noop");
  b.Parallel(s1, {{s2, s2}, {s3, s3}}, s4);
  return Compile(b.Build());
}

void SetEligibleRoundRobin(model::Deployment* deployment,
                           const std::vector<NodeId>& ids,
                           const model::CompiledSchema& schema,
                           int eligible = 2, int offset = 0) {
  for (StepId s = 1; s <= schema.schema().num_steps(); ++s) {
    std::vector<NodeId> agents;
    for (int k = 0; k < eligible; ++k) {
      agents.push_back(ids[(s - 1 + k + offset) % ids.size()]);
    }
    std::sort(agents.begin(), agents.end());
    deployment->SetEligible(schema.schema().name(), s, agents);
  }
}

}  // namespace

std::vector<NodeId> Testbed::AllNodes(const TestbedOptions& options) {
  std::vector<NodeId> out;
  if (options.mode == "dist") {
    out.push_back(kFrontEndNode);
    for (int i = 0; i < options.num_agents; ++i) out.push_back(1 + i);
    return out;
  }
  int engines = options.mode == "parallel" ? options.num_engines : 1;
  for (int i = 0; i < engines; ++i) out.push_back(1 + i);
  for (int i = 0; i < options.num_agents; ++i) {
    out.push_back(engines + 1 + i);
  }
  return out;
}

std::vector<NodeId> Testbed::CoHosted(const TestbedOptions& options) {
  if (options.mode != "parallel") return {};
  std::vector<NodeId> out;
  for (int i = 0; i < options.num_engines; ++i) out.push_back(1 + i);
  return out;
}

Result<Topology> Testbed::UnixTopology(const TestbedOptions& options,
                                       const std::string& dir,
                                       int num_endpoints) {
  if (num_endpoints < 1) {
    return Status::InvalidArgument("need at least one endpoint");
  }
  std::vector<Endpoint> endpoints;
  for (int i = 0; i < num_endpoints; ++i) {
    Endpoint endpoint;
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = dir + "/ep" + std::to_string(i) + ".sock";
    endpoints.push_back(std::move(endpoint));
  }
  Topology topology;
  std::set<NodeId> pinned;
  // Control side at endpoint 0: the dist front end, the central engine,
  // or all parallel engines (they share an in-memory tracker).
  if (options.mode == "dist") {
    CREW_RETURN_IF_ERROR(topology.Add(kFrontEndNode, endpoints[0]));
    pinned.insert(kFrontEndNode);
  } else {
    int engines = options.mode == "parallel" ? options.num_engines : 1;
    for (int i = 0; i < engines; ++i) {
      CREW_RETURN_IF_ERROR(topology.Add(1 + i, endpoints[0]));
      pinned.insert(1 + i);
    }
  }
  int spread = 0;
  for (NodeId id : AllNodes(options)) {
    if (pinned.count(id) != 0) continue;
    const Endpoint& endpoint =
        num_endpoints == 1
            ? endpoints[0]
            : endpoints[1 + (spread++ % (num_endpoints - 1))];
    CREW_RETURN_IF_ERROR(topology.Add(id, endpoint));
  }
  return topology;
}

Testbed::Testbed(sim::Backend* backend, const Topology& topology,
                 const Endpoint& self, TestbedOptions options)
    : options_(std::move(options)) {
  for (NodeId id : topology.NodesAt(self)) local_.insert(id);

  // ---- shared deterministic inputs (identical on every endpoint) ----
  programs_.RegisterBuiltins();
  programs_.RegisterFailFirstN("flaky", 1);
  std::vector<model::CompiledSchemaPtr> all;
  if (options_.num_classes > 0) {
    for (int k = 0; k < options_.num_classes; ++k) {
      all.push_back(ClassSchema(k));
    }
  } else {
    all = {GoodSchema(), FlakySchema(), DoomedSchema()};
    if (options_.mode != "dist") all.push_back(ParSchema());
  }

  runtime::PlacementKind kind = runtime::PlacementKind::kStatic;
  if (!runtime::ParsePlacementKind(options_.placement, &kind)) {
    CREW_LOG(Error) << "testbed: unknown placement '" << options_.placement
                    << "'";
    std::abort();
  }
  // A sticky policy lives on the placer (the dist front end); the other
  // control modes keep their legacy deterministic owner rule, which any
  // endpoint can re-derive without shared state.
  if (kind != runtime::PlacementKind::kStatic &&
      (options_.mode == "dist" ||
       kind != runtime::PlacementKind::kLeastLoaded)) {
    placement_ = runtime::MakePlacementPolicy(kind);
  }

  int engines = options_.mode == "parallel" ? options_.num_engines
                : options_.mode == "central" ? 1
                                             : 0;
  for (int i = 0; i < engines; ++i) engine_ids_.push_back(1 + i);
  NodeId first_agent = options_.mode == "dist" ? 1 : engines + 1;
  for (int i = 0; i < options_.num_agents; ++i) {
    agent_ids_.push_back(first_agent + i);
  }
  int class_offset = 0;
  for (const auto& schema : all) {
    SetEligibleRoundRobin(&deployment_, agent_ids_, *schema, /*eligible=*/2,
                          options_.num_classes > 0 ? class_offset++ : 0);
    schemas_[schema->schema().name()] = schema;
  }

  // ---- local fragment ----
  if (options_.mode == "dist") {
    if (Hosts(kFrontEndNode)) {
      sim::Context* context = backend->ContextFor(kFrontEndNode);
      front_end_ = std::make_unique<dist::FrontEnd>(
          kFrontEndNode, context, &deployment_, &coordination_);
      if (placement_) front_end_->set_placement(placement_.get());
      context->tracer().SetNodeName(kFrontEndNode, "front-end-0");
    }
    dist::AgentOptions agent_options;
    agent_options.pending_timeout = options_.pending_timeout;
    agent_options.agdb_dir = options_.agdb_dir;
    agent_options.purge_broadcast = options_.purge == "broadcast";
    for (NodeId id : agent_ids_) {
      if (!Hosts(id)) continue;
      sim::Context* context = backend->ContextFor(id);
      agents_.push_back(std::make_unique<dist::Agent>(
          id, context, &programs_, &deployment_, &coordination_,
          agent_ids_, agent_options));
      context->tracer().SetNodeName(id, "agent-" + std::to_string(id));
    }
    for (const auto& schema : all) {
      if (front_end_) front_end_->RegisterSchema(schema);
      for (auto& agent : agents_) agent->RegisterSchema(schema);
    }
    return;
  }

  bool any_engine_local = false;
  bool all_engines_local = true;
  for (NodeId id : engine_ids_) {
    if (Hosts(id)) {
      any_engine_local = true;
    } else {
      all_engines_local = false;
    }
  }
  if (any_engine_local && !all_engines_local) {
    // Parallel engines share an in-memory conflict tracker; splitting
    // them across processes is a topology authoring error.
    CREW_LOG(Error) << "testbed: parallel engines must share one endpoint";
    std::abort();
  }
  if (any_engine_local) {
    if (options_.mode == "parallel") {
      tracker_ = std::make_unique<runtime::ConflictTracker>(&coordination_);
    }
    for (NodeId id : engine_ids_) {
      sim::Context* context = backend->ContextFor(id);
      engines_.push_back(std::make_unique<central::WorkflowEngine>(
          id, context, &programs_, &deployment_, &coordination_,
          central::EngineOptions{}));
      if (options_.mode == "parallel") {
        engines_.back()->set_shared_tracker(tracker_.get());
        engines_.back()->set_topology(this);
      }
      context->tracer().SetNodeName(id, "engine-" + std::to_string(id));
    }
  }
  for (NodeId id : agent_ids_) {
    if (!Hosts(id)) continue;
    sim::Context* context = backend->ContextFor(id);
    thin_agents_.push_back(
        std::make_unique<central::ThinAgent>(id, context, &programs_));
    context->tracer().SetNodeName(id, "agent-" + std::to_string(id));
  }
  for (const auto& schema : all) {
    for (auto& engine : engines_) engine->RegisterSchema(schema);
  }
}

Testbed::~Testbed() = default;

std::string Testbed::ScheduleSchema(int i) const {
  if (options_.num_classes > 0) {
    return "Wf" + std::to_string(i % options_.num_classes);
  }
  if (options_.mode == "dist") {
    switch (i % 3) {
      case 0: return "Doomed";
      case 1: return "Good";
      default: return "Flaky";
    }
  }
  switch (i % 4) {
    case 0: return "Doomed";
    case 1: return "Good";
    case 2: return "Flaky";
    default: return "Par";
  }
}

runtime::WorkflowState Testbed::ExpectedState(
    const std::string& schema) const {
  return schema == "Doomed" ? runtime::WorkflowState::kAborted
                            : runtime::WorkflowState::kCommitted;
}

NodeId Testbed::StartNode(const std::string& schema, int64_t number) const {
  if (options_.mode == "dist") return kFrontEndNode;
  if (options_.mode == "parallel") return OwnerEngine({schema, number});
  return 1;
}

Status Testbed::StartInstance(const std::string& schema, int64_t number) {
  if (options_.mode == "dist") {
    if (!front_end_) {
      return Status::FailedPrecondition("front end is not hosted here");
    }
    Result<InstanceId> id = front_end_->StartWorkflow(schema, {});
    CREW_RETURN_IF_ERROR(id.status());
    if (id.value().number != number) {
      return Status::Internal(
          "front end numbered instance " +
          std::to_string(id.value().number) + ", expected " +
          std::to_string(number));
    }
    return Status::OK();
  }
  central::WorkflowEngine* owner = ParallelOwner({schema, number});
  if (owner == nullptr) {
    return Status::FailedPrecondition("owner engine is not hosted here");
  }
  return owner->StartWorkflow(schema, number, {});
}

NodeId Testbed::DistAuthority(const InstanceId& instance) const {
  const model::CompiledSchemaPtr* schema = FindSchema(instance.workflow);
  if (schema == nullptr) return kInvalidNode;
  if (placement_ != nullptr) {
    if (placement_->kind() == runtime::PlacementKind::kLeastLoaded) {
      // The sticky decision lives only on the front end; route authority
      // there and answer from its status ledger.
      return kFrontEndNode;
    }
    NodeId owner = placement_->Owner(
        instance, deployment_.Eligible(instance.workflow,
                                       (*schema)->schema().start_step()));
    if (owner != kInvalidNode) return owner;
  }
  Result<NodeId> agent = deployment_.CoordinationAgent(**schema);
  return agent.ok() ? agent.value() : kInvalidNode;
}

bool Testbed::Authoritative(const InstanceId& instance) const {
  if (options_.mode == "dist") {
    NodeId authority = DistAuthority(instance);
    return authority != kInvalidNode && Hosts(authority);
  }
  if (options_.mode == "parallel") return Hosts(OwnerEngine(instance));
  return Hosts(1);
}

NodeId Testbed::AuthorityNode(const InstanceId& instance) const {
  if (options_.mode == "dist") return DistAuthority(instance);
  if (options_.mode == "parallel") return OwnerEngine(instance);
  return 1;
}

runtime::WorkflowState Testbed::Terminal(const InstanceId& instance) const {
  if (options_.mode == "dist") {
    NodeId authority = DistAuthority(instance);
    if (authority == kInvalidNode) return runtime::WorkflowState::kUnknown;
    if (authority == kFrontEndNode) {
      return front_end_ ? front_end_->KnownStatus(instance)
                        : runtime::WorkflowState::kUnknown;
    }
    for (const auto& agent : agents_) {
      if (agent->id() == authority) {
        return agent->CoordinationStatus(instance);
      }
    }
    return runtime::WorkflowState::kUnknown;
  }
  central::WorkflowEngine* owner = ParallelOwner(instance);
  if (owner == nullptr) return runtime::WorkflowState::kUnknown;
  return owner->QueryStatus(instance);
}

int64_t Testbed::committed_count() const {
  int64_t sum = 0;
  for (const auto& engine : engines_) sum += engine->committed_count();
  for (const auto& agent : agents_) sum += agent->committed_count();
  return sum;
}

int64_t Testbed::aborted_count() const {
  int64_t sum = 0;
  for (const auto& engine : engines_) sum += engine->aborted_count();
  for (const auto& agent : agents_) sum += agent->aborted_count();
  return sum;
}

void Testbed::InstallRecoveryHooks(rt::Runtime* runtime) {
  for (auto& agent : agents_) {
    dist::Agent* raw = agent.get();
    runtime->SetRecoveryHook(raw->id(), [raw]() { raw->RecoverFromLog(); });
  }
}

NodeId Testbed::OwnerEngine(const InstanceId& instance) const {
  if (engine_ids_.empty()) return 1;
  if (placement_ != nullptr) {
    NodeId owner = placement_->Owner(instance, engine_ids_);
    if (owner != kInvalidNode) return owner;
  }
  return engine_ids_[static_cast<size_t>(instance.number) %
                     engine_ids_.size()];
}

NodeId Testbed::LockOwnerEngine(const std::string& resource) const {
  if (engine_ids_.empty()) return 1;
  return engine_ids_[std::hash<std::string>()(resource) %
                     engine_ids_.size()];
}

std::vector<NodeId> Testbed::AllEngines() const { return engine_ids_; }

dist::Agent* Testbed::dist_agent(NodeId id) {
  for (auto& agent : agents_) {
    if (agent->id() == id) return agent.get();
  }
  return nullptr;
}

const model::CompiledSchemaPtr* Testbed::FindSchema(
    const std::string& name) const {
  auto it = schemas_.find(name);
  return it == schemas_.end() ? nullptr : &it->second;
}

central::WorkflowEngine* Testbed::ParallelOwner(
    const InstanceId& instance) const {
  if (engines_.empty()) return nullptr;
  if (options_.mode == "central") return engines_.front().get();
  // Parallel engines are all local (ids 1..E in construction order), so
  // the owner id maps straight to an index.
  return engines_[static_cast<size_t>(OwnerEngine(instance) - 1)].get();
}

}  // namespace crew::net
