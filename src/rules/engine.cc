#include "rules/engine.h"

#include <algorithm>

namespace crew::rules {

uint32_t RuleEngine::EventSlot(EventToken token) {
  auto [it, inserted] =
      event_index_.try_emplace(token, static_cast<uint32_t>(events_.size()));
  if (inserted) events_.emplace_back();
  return it->second;
}

const RuleEngine::EventState* RuleEngine::FindEvent(
    EventToken token) const {
  auto it = event_index_.find(token);
  return it == event_index_.end() ? nullptr : &events_[it->second];
}

void RuleEngine::MarkDirty(uint32_t rule_slot) {
  RuleState& state = rules_[rule_slot];
  if (!state.alive || state.dirty) return;
  state.dirty = true;
  dirty_.push_back(rule_slot);
}

Status RuleEngine::AddRule(Rule rule) {
  if (rule.id.empty()) {
    return Status::InvalidArgument("rule id must not be empty");
  }
  if (rule.events.empty()) {
    return Status::InvalidArgument("rule " + rule.id +
                                   " has no trigger events");
  }
  if (rule_index_.find(rule.id) != rule_index_.end()) {
    return Status::AlreadyExists("rule " + rule.id + " already present");
  }
  uint32_t slot = static_cast<uint32_t>(rules_.size());
  rule_index_.emplace(rule.id, slot);
  rules_.push_back(RuleState{std::move(rule), 0, true, false});
  for (EventToken token : rules_[slot].rule.events) {
    events_[EventSlot(token)].watchers.push_back(slot);
  }
  // The new rule may be fireable on already-posted events.
  MarkDirty(slot);
  return Status::OK();
}

bool RuleEngine::RemoveRule(std::string_view rule_id) {
  auto it = rule_index_.find(rule_id);
  if (it == rule_index_.end()) return false;
  RuleState& state = rules_[it->second];
  state.alive = false;
  state.dirty = false;
  state.rule = Rule{};  // release triggers/condition; slot is tombstoned
  rule_index_.erase(it);
  return true;
}

Status RuleEngine::AddPrecondition(std::string_view rule_id,
                                   EventToken extra_event) {
  auto it = rule_index_.find(rule_id);
  if (it == rule_index_.end()) {
    return Status::NotFound("no rule " + std::string(rule_id));
  }
  uint32_t slot = it->second;
  std::vector<EventToken>& events = rules_[slot].rule.events;
  if (std::find(events.begin(), events.end(), extra_event) ==
      events.end()) {
    events.push_back(extra_event);
    events_[EventSlot(extra_event)].watchers.push_back(slot);
    // A valid extra event can raise the rule's newest trigger stamp
    // above its last-fired stamp, making it fireable right now.
    MarkDirty(slot);
  }
  return Status::OK();
}

Status RuleEngine::AddPrecondition(std::string_view rule_id,
                                   std::string_view extra_event) {
  return AddPrecondition(rule_id, InternToken(extra_event));
}

void RuleEngine::Post(EventToken token) {
  EventState& state = events_[EventSlot(token)];
  state.valid = true;
  state.stamp = next_stamp_++;
  for (uint32_t slot : state.watchers) MarkDirty(slot);
}

void RuleEngine::Post(std::string_view token) { Post(InternToken(token)); }

void RuleEngine::Invalidate(EventToken token) {
  auto it = event_index_.find(token);
  if (it != event_index_.end()) events_[it->second].valid = false;
}

void RuleEngine::Invalidate(std::string_view token) {
  EventToken interned = FindToken(token);
  if (interned != kInvalidEventToken) Invalidate(interned);
}

bool RuleEngine::Occurred(EventToken token) const {
  const EventState* state = FindEvent(token);
  return state != nullptr && state->valid;
}

bool RuleEngine::Occurred(std::string_view token) const {
  EventToken interned = FindToken(token);
  return interned != kInvalidEventToken && Occurred(interned);
}

RuleEngine::Readiness RuleEngine::Evaluate(const RuleState& state,
                                           const expr::Environment& env,
                                           uint64_t* newest_stamp) const {
  uint64_t newest = 0;
  for (EventToken token : state.rule.events) {
    const EventState* event = FindEvent(token);
    if (event == nullptr || !event->valid) return Readiness::kNotReady;
    newest = std::max(newest, event->stamp);
  }
  if (newest <= state.last_fired_stamp) return Readiness::kNotReady;
  if (!expr::EvaluateCondition(state.rule.condition, env)) {
    return Readiness::kConditionFalse;
  }
  *newest_stamp = newest;
  return Readiness::kFire;
}

std::vector<RuleAction> RuleEngine::CollectFireable(
    const expr::Environment& env) {
  std::vector<RuleAction> fired;
  if (dirty_.empty()) return fired;
  // Rule-id order reproduces the firing order of a full id-ordered scan.
  std::sort(dirty_.begin(), dirty_.end(),
            [this](uint32_t a, uint32_t b) {
              return rules_[a].rule.id < rules_[b].rule.id;
            });
  std::vector<uint32_t> retained;
  for (uint32_t slot : dirty_) {
    RuleState& state = rules_[slot];
    state.dirty = false;
    if (!state.alive) continue;
    uint64_t newest = 0;
    switch (Evaluate(state, env, &newest)) {
      case Readiness::kFire:
        state.last_fired_stamp = newest;
        fired.push_back(state.rule.action);
        ++fire_count_;
        break;
      case Readiness::kConditionFalse:
        // Events satisfied, condition not (yet): the environment can
        // change without another Post, so keep the candidate hot.
        state.dirty = true;
        retained.push_back(slot);
        break;
      case Readiness::kNotReady:
        // Missing event or no fresh stamp: only a mutation that re-marks
        // this rule dirty can change that.
        break;
    }
  }
  dirty_ = std::move(retained);
  return fired;
}

void RuleEngine::AppendMissing(const RuleState& state,
                               std::vector<std::string>* missing) const {
  for (EventToken token : state.rule.events) {
    const EventState* event = FindEvent(token);
    if (event == nullptr || !event->valid) {
      missing->push_back(TokenNameStr(token));
    }
  }
}

std::vector<std::pair<std::string, std::vector<std::string>>>
RuleEngine::PendingRules() const {
  std::vector<std::pair<std::string, std::vector<std::string>>> out;
  for (const RuleState& state : rules_) {
    if (!state.alive) continue;
    std::vector<std::string> missing;
    AppendMissing(state, &missing);
    if (!missing.empty()) out.emplace_back(state.rule.id, std::move(missing));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::string> RuleEngine::MissingEvents(
    std::string_view rule_id) const {
  std::vector<std::string> missing;
  auto it = rule_index_.find(rule_id);
  if (it == rule_index_.end()) return missing;
  AppendMissing(rules_[it->second], &missing);
  return missing;
}

void RuleEngine::ResetFiringIf(
    const std::function<bool(const Rule&)>& pred) {
  for (uint32_t slot = 0; slot < rules_.size(); ++slot) {
    RuleState& state = rules_[slot];
    if (!state.alive || !pred(state.rule)) continue;
    state.last_fired_stamp = 0;
    // Still-valid triggers can now re-fire the rule.
    MarkDirty(slot);
  }
}

const Rule* RuleEngine::FindRule(std::string_view rule_id) const {
  auto it = rule_index_.find(rule_id);
  return it == rule_index_.end() ? nullptr : &rules_[it->second].rule;
}

}  // namespace crew::rules
