# Empty dependencies file for bench_table5_parallel.
# This may be replaced when dependencies are built.
