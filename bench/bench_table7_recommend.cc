// Reproduces Table 7: Recommended Choice of Architectures for Various
// Requirements — derived from *measured* runs of all three architectures
// on the same Table 3 workload.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  crew::bench::BenchSession session("table7_recommend", argc, argv,
                                    /*default_json=*/true);
  crew::workload::Params params;  // Table 3 midpoints
  params.num_schemas = 20;
  params.instances_per_schema = 10;
  params.num_engines = 4;
  params.num_agents = 50;

  crew::bench::PrintHeader(
      "Table 7: Architecture recommendation (derived from measurement)",
      params);

  using crew::workload::Architecture;
  // Only the first run is traced (one trace, one virtual-time axis).
  crew::workload::RunResult central = crew::workload::RunWorkload(
      params, Architecture::kCentral, session.tracer());
  crew::workload::RunResult parallel =
      crew::workload::RunWorkload(params, Architecture::kParallel);
  crew::workload::RunResult distributed =
      crew::workload::RunWorkload(params, Architecture::kDistributed);
  session.Record("central", central);
  session.Record("parallel", parallel);
  session.Record("distributed", distributed);

  printf("\n%s", central.Describe().c_str());
  printf("\n%s", parallel.Describe().c_str());
  printf("\n%s\n", distributed.Describe().c_str());

  crew::analysis::Recommendation recommendation = crew::analysis::Recommend(
      central, parallel, distributed, params);
  printf("\n%s", crew::analysis::FormatTable7(recommendation).c_str());

  printf(
      "\nPaper's Table 7 for comparison:\n"
      "  Load: distributed (1), parallel (2), central (3) in every "
      "scenario.\n"
      "  Messages: distributed (1) normal & failures; central (1) under "
      "heavy coordination.\n");
  session.Finish();
  return 0;
}
