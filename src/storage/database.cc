#include "storage/database.h"

#include "common/logging.h"
#include "common/strings.h"

namespace crew::storage {
namespace {

// Journal record: "<table>\x1f<key>\x1fP<row>" for put, "...\x1fD" delete.
constexpr char kUnitSep = '\x1f';

}  // namespace

Status Database::OpenDurable(const std::string& dir) {
  return wal_.Open(dir + "/" + name_ + ".wal");
}

Status Database::LoadSnapshot(const std::string& dir) {
  Wal snapshot_reader;
  return snapshot_reader.Replay(
      dir + "/" + name_ + ".snap", [this](const std::string& record) {
        std::vector<std::string> parts = Split(record, kUnitSep);
        if (parts.size() != 3 || parts[2].empty() || parts[2][0] != 'P') {
          return;
        }
        Result<Row> row = Row::Deserialize(parts[2].substr(1));
        if (row.ok()) table(parts[0]).ApplyRaw(parts[1], &row.value());
      });
}

void Database::ApplyWalRecord(const std::string& record) {
  std::vector<std::string> parts = Split(record, kUnitSep);
  if (parts.size() != 3) {
    CREW_LOG(Warn) << "skipping malformed WAL record in " << name_;
    return;
  }
  Table& t = table(parts[0]);
  if (parts[2].empty()) return;
  if (parts[2][0] == 'D') {
    t.ApplyRaw(parts[1], nullptr);
  } else if (parts[2][0] == 'P') {
    Result<Row> row = Row::Deserialize(parts[2].substr(1));
    if (row.ok()) {
      t.ApplyRaw(parts[1], &row.value());
    } else {
      CREW_LOG(Warn) << "skipping corrupt row in WAL of " << name_ << ": "
                     << row.status().ToString();
    }
  }
}

Status Database::Recover(const std::string& dir) {
  // Load the checkpoint snapshot first (if any); the WAL holds only the
  // mutations after it.
  CREW_RETURN_IF_ERROR(LoadSnapshot(dir));
  Wal reader;
  return reader.Replay(
      dir + "/" + name_ + ".wal",
      [this](const std::string& record) { ApplyWalRecord(record); });
}

Result<int64_t> Database::RestartRecover(const std::string& dir) {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition(
        "restart recovery requires a durable database");
  }
  // Simulate the process boundary: drop the handle and every in-memory
  // row, exactly as a killed process would, then come back up from disk.
  wal_.Close();
  for (auto& [table_name, t] : tables_) t->ClearRaw();
  CREW_RETURN_IF_ERROR(LoadSnapshot(dir));
  Result<int64_t> replayed = Wal::Recover(
      dir + "/" + name_ + ".wal",
      [this](const std::string& record) { ApplyWalRecord(record); });
  CREW_RETURN_IF_ERROR(replayed.status());
  CREW_RETURN_IF_ERROR(OpenDurable(dir));
  return replayed;
}

Status Database::Checkpoint(const std::string& dir) {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition(
        "checkpoint requires a durable database");
  }
  const std::string snap_path = dir + "/" + name_ + ".snap";
  const std::string tmp_path = snap_path + ".tmp";
  {
    Wal snapshot;
    CREW_RETURN_IF_ERROR(snapshot.Open(tmp_path));
    for (const auto& [table_name, table] : tables_) {
      for (const auto& [key, row] : table->rows()) {
        std::string record = table_name;
        record += kUnitSep;
        record += key;
        record += kUnitSep;
        record += 'P';
        record += row.Serialize();
        CREW_RETURN_IF_ERROR(snapshot.Append(record));
      }
    }
  }
  if (std::rename(tmp_path.c_str(), snap_path.c_str()) != 0) {
    return Status::Unavailable("cannot publish snapshot " + snap_path);
  }
  return wal_.Truncate();
}

Table& Database::table(const std::string& table_name) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    auto t = std::make_unique<Table>(table_name);
    t->set_mutation_hook([this](const std::string& table,
                                const std::string& key, const Row* row) {
      JournalMutation(table, key, row);
    });
    it = tables_.emplace(table_name, std::move(t)).first;
  }
  return *it->second;
}

const Table* Database::FindTable(const std::string& table_name) const {
  auto it = tables_.find(table_name);
  return it == tables_.end() ? nullptr : it->second.get();
}

void Database::JournalMutation(const std::string& table,
                               const std::string& key, const Row* row) {
  ++journaled_;
  if (!wal_.is_open()) return;
  std::string record = table;
  record += kUnitSep;
  record += key;
  record += kUnitSep;
  if (row == nullptr) {
    record += 'D';
  } else {
    record += 'P';
    record += row->Serialize();
  }
  Status status = wal_.Append(record);
  if (!status.ok()) {
    CREW_LOG(Error) << "WAL append failed for " << name_ << ": "
                    << status.ToString();
  }
}

}  // namespace crew::storage
