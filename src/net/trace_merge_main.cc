// crew_trace_merge: joins per-process trace shards (written by
// crew_node --trace-shard) into one clock-aligned Chrome trace.
//
//   crew_trace_merge --out merged.json [--jsonl merged.jsonl]
//       node-a.inc1.shard node-b.inc1.shard ...
//
// Loads every shard, estimates per-process clock offsets from the
// HELLO exchange samples embedded in the shards, and writes a single
// Perfetto-loadable file (plus an optional aligned JSONL). Prints a
// one-line summary of the merge to stderr.

#include <cstdio>
#include <string>
#include <vector>

#include "net/trace_merge.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out <merged.json> [--jsonl <merged.jsonl>] "
               "<shard>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string jsonl_path;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--jsonl" && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      shard_paths.push_back(std::move(arg));
    }
  }
  if (out_path.empty() || shard_paths.empty()) return Usage(argv[0]);

  std::vector<crew::net::TraceShard> shards;
  for (const std::string& path : shard_paths) {
    crew::Result<crew::net::TraceShard> shard =
        crew::net::LoadTraceShard(path);
    if (!shard.ok()) {
      std::fprintf(stderr, "crew_trace_merge: %s: %s\n", path.c_str(),
                   shard.status().ToString().c_str());
      return 1;
    }
    shards.push_back(std::move(shard).value());
  }

  crew::net::MergeStats stats;
  crew::Status status =
      crew::net::WriteMergedTrace(shards, out_path, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "crew_trace_merge: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  if (!jsonl_path.empty()) {
    std::string jsonl = crew::net::MergedJsonl(shards);
    FILE* f = std::fopen(jsonl_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "crew_trace_merge: cannot open %s\n",
                   jsonl_path.c_str());
      return 1;
    }
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
  }
  std::fprintf(stderr,
               "crew_trace_merge: %zu shards, %zu events, "
               "%zu/%zu flow halves matched into %zu spans, reference %s\n",
               stats.shards, stats.events, stats.flow_begins,
               stats.flow_ends, stats.matched_flows,
               stats.reference.c_str());
  return 0;
}
