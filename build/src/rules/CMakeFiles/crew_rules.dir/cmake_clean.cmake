file(REMOVE_RECURSE
  "CMakeFiles/crew_rules.dir/engine.cc.o"
  "CMakeFiles/crew_rules.dir/engine.cc.o.d"
  "CMakeFiles/crew_rules.dir/event.cc.o"
  "CMakeFiles/crew_rules.dir/event.cc.o.d"
  "libcrew_rules.a"
  "libcrew_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
