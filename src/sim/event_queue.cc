#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace crew::sim {

void EventQueue::ScheduleAt(Time at, Callback fn) {
  if (at < now_) at = now_;  // clamp: never schedule into the past
  if (heap_.capacity() == heap_.size()) {
    // Simulations steady-state around a few thousand in-flight events;
    // start with a generous block to skip the early doubling churn.
    heap_.reserve(heap_.empty() ? 256 : heap_.size() * 2);
  }
  heap_.push_back(Entry{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  now_ = top.at;
  top.fn();
  return true;
}

int64_t EventQueue::RunAll(int64_t max_events) {
  int64_t n = 0;
  while (n < max_events && RunOne()) ++n;
  return n;
}

int64_t EventQueue::RunUntil(Time until) {
  int64_t n = 0;
  while (!heap_.empty() && heap_.front().at <= until && RunOne()) ++n;
  return n;
}

}  // namespace crew::sim
