// Cross-architecture property suite: the same schemas, workloads and
// disruptions run under centralized, parallel, and distributed control,
// and the paper's correctness invariants are asserted on execution
// traces recorded inside the step programs:
//  - every instance terminates (commits or aborts);
//  - results are deterministic for a seed;
//  - relative ordering holds between consecutive instances;
//  - mutual exclusion admits no overlapping critical sections;
//  - compensation dependent sets compensate in reverse execution order;
//  - committed workflows are "net executed": every step either completed
//    more often than it was compensated, or lies on an untaken branch.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "central/system.h"
#include "dist/system.h"
#include "model/builder.h"
#include "parallel/system.h"
#include "workload/driver.h"
#include "workload/generator.h"

namespace crew {
namespace {

using model::SchemaBuilder;
using runtime::WorkflowState;
using workload::Architecture;

/// One recorded program invocation.
struct TraceEvent {
  sim::Time at = 0;
  InstanceId instance;
  StepId step = kInvalidStep;
  bool compensation = false;
  int attempt = 0;
};

/// Uniform facade over the three architectures for the property tests.
class AnySystem {
 public:
  AnySystem(Architecture architecture, int nodes, uint64_t seed,
            const runtime::CoordinationSpec* coordination)
      : architecture_(architecture), simulator_(seed) {
    programs_.RegisterBuiltins();
    RegisterTracer("traced");
    RegisterTracer("traced2");
    switch (architecture) {
      case Architecture::kCentral:
        central_ = std::make_unique<central::CentralSystem>(
            &simulator_, &programs_, &deployment_, coordination, nodes);
        agent_ids_ = central_->agent_ids();
        break;
      case Architecture::kParallel:
        parallel_ = std::make_unique<parallel::ParallelSystem>(
            &simulator_, &programs_, &deployment_, coordination,
            /*num_engines=*/3, nodes);
        agent_ids_ = parallel_->agent_ids();
        break;
      case Architecture::kDistributed:
        dist_ = std::make_unique<dist::DistributedSystem>(
            &simulator_, &programs_, &deployment_, coordination, nodes);
        agent_ids_ = dist_->agent_ids();
        break;
    }
  }

  void Register(model::Schema schema, int eligible = 2) {
    auto compiled = model::CompiledSchema::Compile(std::move(schema));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    deployment_.AssignRandom(*compiled.value(), agent_ids_, eligible,
                             &simulator_.rng());
    if (central_ != nullptr) {
      central_->engine().RegisterSchema(compiled.value());
    } else if (parallel_ != nullptr) {
      parallel_->RegisterSchema(compiled.value());
    } else {
      dist_->RegisterSchema(compiled.value());
    }
  }

  InstanceId Start(const std::string& workflow, int64_t number,
                   std::map<std::string, Value> inputs = {}) {
    if (dist_ != nullptr) {
      Result<InstanceId> id =
          dist_->front_end().StartWorkflow(workflow, std::move(inputs));
      EXPECT_TRUE(id.ok());
      return id.value_or(InstanceId{});
    }
    InstanceId id{workflow, number};
    Status started =
        central_ != nullptr
            ? central_->engine().StartWorkflow(workflow, number,
                                               std::move(inputs))
            : parallel_->StartWorkflow(workflow, number, std::move(inputs));
    EXPECT_TRUE(started.ok()) << started.ToString();
    return id;
  }

  WorkflowState StatusOf(const InstanceId& instance) {
    if (central_ != nullptr) return central_->engine().QueryStatus(instance);
    if (parallel_ != nullptr) return parallel_->QueryStatus(instance);
    return dist_->CoordinationStatus(instance);
  }

  std::map<std::string, Value> FinalData(const InstanceId& instance) {
    if (central_ != nullptr) return central_->engine().FinalData(instance);
    if (parallel_ != nullptr) return parallel_->FinalData(instance);
    return dist_->ArchivedData(instance);
  }

  void Run() { simulator_.Run(); }
  void RunFor(sim::Time ticks) {
    simulator_.queue().RunUntil(simulator_.now() + ticks);
  }

  const std::vector<TraceEvent>& trace() const { return trace_; }
  sim::Simulator& simulator() { return simulator_; }
  runtime::ProgramRegistry& programs() { return programs_; }
  Architecture architecture() const { return architecture_; }

 private:
  void RegisterTracer(const std::string& name) {
    programs_.Register(name, [this](const runtime::ProgramContext& ctx) {
      trace_.push_back({simulator_.now(), ctx.instance, ctx.step,
                        ctx.compensation, ctx.attempt});
      runtime::ProgramOutcome out;
      out.outputs["O1"] = Value(int64_t{1});
      return out;
    });
  }

  Architecture architecture_;
  sim::Simulator simulator_;
  runtime::ProgramRegistry programs_;
  model::Deployment deployment_;
  std::vector<NodeId> agent_ids_;
  std::vector<TraceEvent> trace_;
  std::unique_ptr<central::CentralSystem> central_;
  std::unique_ptr<parallel::ParallelSystem> parallel_;
  std::unique_ptr<dist::DistributedSystem> dist_;
};

model::Schema TracedSeq(const std::string& name, int steps) {
  SchemaBuilder b(name);
  std::vector<StepId> ids;
  for (int i = 0; i < steps; ++i) {
    ids.push_back(b.AddTask("T" + std::to_string(i + 1), "traced"));
  }
  b.Sequence(ids);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

class ArchitectureProperty
    : public ::testing::TestWithParam<Architecture> {};

TEST_P(ArchitectureProperty, RelativeOrderingInvariant) {
  runtime::CoordinationSpec coordination;
  runtime::RelativeOrderReq ro;
  ro.id = "fifo";
  ro.workflow_a = "Wf";
  ro.workflow_b = "Wf";
  ro.step_pairs = {{2, 2}, {4, 4}};
  coordination.relative_orders.push_back(ro);

  AnySystem system(GetParam(), /*nodes=*/8, /*seed=*/42, &coordination);
  system.Register(TracedSeq("Wf", 5));
  std::vector<InstanceId> ids;
  for (int64_t n = 1; n <= 5; ++n) {
    ids.push_back(system.Start("Wf", n));
    system.RunFor(2);
  }
  system.Run();
  for (const InstanceId& id : ids) {
    ASSERT_EQ(system.StatusOf(id), WorkflowState::kCommitted)
        << id.ToString();
  }

  // For each ordered step, completion times must follow instance order.
  for (StepId ordered : {2, 4}) {
    std::map<int64_t, sim::Time> at;
    for (const TraceEvent& event : system.trace()) {
      if (event.step == ordered && !event.compensation) {
        at[event.instance.number] = event.at;
      }
    }
    ASSERT_EQ(at.size(), ids.size());
    sim::Time previous = -1;
    for (const auto& [number, when] : at) {
      EXPECT_GE(when, previous)
          << "step S" << ordered << " of instance " << number
          << " overtook its predecessor";
      previous = when;
    }
  }
}

TEST_P(ArchitectureProperty, MutualExclusionNoOverlap) {
  runtime::CoordinationSpec coordination;
  runtime::MutexReq me;
  me.id = "m";
  me.resource = "machine";
  me.critical_steps = {{"Wf", 2}, {"Wf", 3}};
  coordination.mutexes.push_back(me);

  AnySystem system(GetParam(), 8, 42, &coordination);
  system.Register(TracedSeq("Wf", 4));
  std::vector<InstanceId> ids;
  for (int64_t n = 1; n <= 6; ++n) ids.push_back(system.Start("Wf", n));
  system.Run();
  for (const InstanceId& id : ids) {
    ASSERT_EQ(system.StatusOf(id), WorkflowState::kCommitted);
  }
  // Critical executions (steps 2 and 3, sharing one resource) must be
  // strictly serialized: with exec_latency 2 (distributed) or agent
  // round-trips (central), no two critical starts may coincide.
  std::vector<sim::Time> critical;
  for (const TraceEvent& event : system.trace()) {
    if ((event.step == 2 || event.step == 3) && !event.compensation) {
      critical.push_back(event.at);
    }
  }
  std::sort(critical.begin(), critical.end());
  for (size_t i = 1; i < critical.size(); ++i) {
    EXPECT_GT(critical[i], critical[i - 1])
        << "two critical sections started at t=" << critical[i];
  }
}

TEST_P(ArchitectureProperty, CompDepSetCompensatesInReverseOrder) {
  runtime::CoordinationSpec coordination;
  AnySystem system(GetParam(), 8, 42, &coordination);
  system.programs().RegisterFailFirstN("flaky", 1);

  SchemaBuilder b("Sets");
  StepId s1 = b.AddTask("A", "traced");
  StepId s2 = b.AddTask("B", "traced");
  StepId s3 = b.AddTask("C", "traced");
  StepId s4 = b.AddTask("D", "flaky");
  b.Sequence({s1, s2, s3, s4});
  b.OnFail(s4, s2, 3);
  b.AddCompDepSet({s2, s3});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  system.Register(std::move(schema).value());

  InstanceId id = system.Start("Sets", 1);
  system.Run();
  ASSERT_EQ(system.StatusOf(id), WorkflowState::kCommitted);

  // Collect compensation events; S3 (executed after S2) must compensate
  // strictly before S2.
  sim::Time comp2 = -1, comp3 = -1;
  for (const TraceEvent& event : system.trace()) {
    if (!event.compensation) continue;
    if (event.step == s2) comp2 = event.at;
    if (event.step == s3) comp3 = event.at;
  }
  ASSERT_GE(comp2, 0) << "S2 was never compensated";
  ASSERT_GE(comp3, 0) << "S3 was never compensated";
  EXPECT_LT(comp3, comp2)
      << "compensation dependent set not compensated in reverse order";
}

TEST_P(ArchitectureProperty, CommittedInstanceIsNetExecuted) {
  runtime::CoordinationSpec coordination;
  AnySystem system(GetParam(), 8, 42, &coordination);
  system.programs().RegisterFailFirstN("flaky", 2);

  // Choice with a failing join successor: exercises re-execution and
  // branch handling, then asserts net execution counts.
  SchemaBuilder b("Net");
  StepId s1 = b.AddTask("A", "traced");
  StepId s2 = b.AddTask("L", "traced");
  StepId s3 = b.AddTask("R", "traced");
  StepId s4 = b.AddTask("J", "flaky");
  b.CondArc(s1, s2, "S1.O1 == 1");
  b.ElseArc(s1, s3);
  b.Arc(s2, s4);
  b.Arc(s3, s4);
  b.SetJoin(s4, model::JoinKind::kOr);
  b.OnFail(s4, s1, 5);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  system.Register(std::move(schema).value());

  InstanceId id = system.Start("Net", 1);
  system.Run();
  ASSERT_EQ(system.StatusOf(id), WorkflowState::kCommitted);

  std::map<StepId, int> net;  // executions minus compensations
  for (const TraceEvent& event : system.trace()) {
    if (event.instance != id) continue;
    net[event.step] += event.compensation ? -1 : 1;
  }
  // Start step executed net-once; traced branch steps net >= 0 and the
  // overall outcome consistent: at least one branch net-executed.
  EXPECT_GE(net[s1], 1);
  EXPECT_GE(net[s2] + net[s3], 1);
  for (const auto& [step, count] : net) {
    EXPECT_GE(count, 0) << "step S" << step
                        << " compensated more often than executed";
  }
}

TEST_P(ArchitectureProperty, WorkloadTerminatesAndIsDeterministic) {
  workload::Params params;
  params.steps_per_workflow = 8;
  params.num_schemas = 4;
  params.instances_per_schema = 6;
  params.num_engines = 3;
  params.num_agents = 12;
  params.p_step_failure = 0.25;
  params.p_input_change = 0.1;
  params.p_abort = 0.1;
  params.rollback_depth = 3;

  workload::RunResult first = workload::RunWorkload(params, GetParam());
  EXPECT_EQ(first.committed + first.aborted, first.started)
      << first.Describe();
  workload::RunResult second = workload::RunWorkload(params, GetParam());
  EXPECT_EQ(first.metrics.TotalMessages(), second.metrics.TotalMessages());
  EXPECT_EQ(first.metrics.TotalLoad(), second.metrics.TotalLoad());
  EXPECT_EQ(first.sim_ticks, second.sim_ticks);
}

TEST_P(ArchitectureProperty, LoadConservationAcrossNodes) {
  // Total navigation load must equal the per-architecture expectation:
  // one charge per step scheduling, regardless of where it runs.
  workload::Params params;
  params.steps_per_workflow = 6;
  params.num_schemas = 3;
  params.instances_per_schema = 4;
  params.num_agents = 10;
  params.p_step_failure = 0;
  params.p_input_change = 0;
  params.p_abort = 0;
  params.mutex_steps = 0;
  params.relative_order_steps = 0;
  params.rollback_dep_steps = 0;

  workload::RunResult result = workload::RunWorkload(params, GetParam());
  ASSERT_EQ(result.committed, result.started);
  double navigation = result.NormalizedTotalLoad(
      sim::LoadCategory::kNavigation, params.navigation_load);
  // Central/parallel: exactly s per instance. Distributed: s per
  // elected execution plus one merge charge per received packet —
  // bounded by s * (a + 1).
  EXPECT_GE(navigation, params.steps_per_workflow * 0.95);
  EXPECT_LE(navigation,
            params.steps_per_workflow *
                (params.eligible_per_step + 1.5));
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ArchitectureProperty,
                         ::testing::Values(Architecture::kCentral,
                                           Architecture::kParallel,
                                           Architecture::kDistributed),
                         [](const auto& info) {
                           return std::string(
                               workload::ArchitectureName(info.param));
                         });

TEST_P(ArchitectureProperty, StructuredSchemaSurvivesFailures) {
  // The generator's structured shape (choice + parallel + loop +
  // rollback into the parallel block) must commit under every
  // architecture, with and without the injected failure.
  workload::Params params;
  Rng rng(42);
  workload::WorkloadGenerator generator(params, &rng);
  Result<workload::GeneratedSchema> generated =
      generator.GenerateStructured(0);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();

  runtime::CoordinationSpec coordination;
  AnySystem system(GetParam(), 8, 42, &coordination);
  std::vector<workload::GeneratedSchema> one = {std::move(generated).value()};
  generator.RegisterPrograms(one, &system.programs());

  // Register through the fixture path (deployment + system).
  auto compiled = one[0].schema;
  model::Schema copy = compiled->schema();  // re-register via AnySystem
  // AnySystem::Register compiles its own copy, so hand it the raw schema.
  system.Register(std::move(copy));

  // Instance 1 runs clean; instance 2 fails at the epilogue and recovers.
  InstanceId clean =
      system.Start("SWF0", 1, {{"WF.I1", Value(int64_t{80})}});
  InstanceId failing = system.Start(
      "SWF0", 2,
      {{"WF.I1", Value(int64_t{10})}, {"WF.FAIL1", Value(true)}});
  system.Run();
  EXPECT_EQ(system.StatusOf(clean), WorkflowState::kCommitted);
  EXPECT_EQ(system.StatusOf(failing), WorkflowState::kCommitted);

  // The clean instance took the expedite branch (WF.I1 >= 50); the
  // failing one took standard; both looped Polish to its second
  // iteration (the loop program outputs its attempt count).
  const model::Schema& schema = compiled->schema();
  auto key = [&](const char* name) {
    return "S" + std::to_string(schema.FindStepByName(name)) + ".O1";
  };
  std::map<std::string, Value> clean_data = system.FinalData(clean);
  std::map<std::string, Value> failing_data = system.FinalData(failing);
  EXPECT_TRUE(clean_data.count(key("Expedite")));
  EXPECT_FALSE(clean_data.count(key("Standard")));
  EXPECT_TRUE(failing_data.count(key("Standard")));
  EXPECT_FALSE(failing_data.count(key("Expedite")));
  EXPECT_EQ(clean_data.at(key("Polish")), Value(int64_t{2}));
  // The failing instance re-runs Polish during recovery (it is inside
  // the rollback region), so its attempt count can exceed the loop's
  // two iterations.
  ASSERT_TRUE(failing_data.at(key("Polish")).is_int());
  EXPECT_GE(failing_data.at(key("Polish")).AsInt(), 2);
  // The failing instance actually exercised recovery.
  EXPECT_GT(system.simulator().metrics().MessagesIn(
                sim::MsgCategory::kFailureHandling),
            0);
}

/// Parameterized structural sweep: sequential chains of varying length
/// committed under every architecture.
class ChainLengthProperty
    : public ::testing::TestWithParam<std::tuple<Architecture, int>> {};

TEST_P(ChainLengthProperty, ChainsOfAnyLengthCommit) {
  auto [architecture, length] = GetParam();
  runtime::CoordinationSpec coordination;
  AnySystem system(architecture, 6, 42, &coordination);
  system.Register(TracedSeq("Chain", length));
  InstanceId id = system.Start("Chain", 1);
  system.Run();
  EXPECT_EQ(system.StatusOf(id), WorkflowState::kCommitted);
  int executions = 0;
  for (const TraceEvent& event : system.trace()) {
    if (!event.compensation) ++executions;
  }
  EXPECT_EQ(executions, length);
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, ChainLengthProperty,
    ::testing::Combine(::testing::Values(Architecture::kCentral,
                                         Architecture::kParallel,
                                         Architecture::kDistributed),
                       ::testing::Values(1, 2, 5, 12, 25)),
    [](const auto& info) {
      return std::string(
                 workload::ArchitectureName(std::get<0>(info.param))) +
             "_len" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace crew
