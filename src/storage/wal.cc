#include "storage/wal.h"

#include <array>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <vector>

namespace crew::storage {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Wal::Crc32(const std::string& payload) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : payload) {
    crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Wal::~Wal() { Close(); }

Status Wal::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot open WAL at " + path);
  }
  path_ = path;
  return Status::OK();
}

Status Wal::Append(const std::string& payload) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  uint32_t crc = Crc32(payload);
  if (std::fprintf(file_, "%zu %" PRIu32 "\n", payload.size(), crc) < 0 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size() ||
      std::fputc('\n', file_) == EOF) {
    return Status::Unavailable("WAL write failed: " + path_);
  }
  std::fflush(file_);
  return Status::OK();
}

namespace {

/// Applies every intact record of the open stream in order, stopping at
/// the first torn/corrupt frame. Returns the record count; *intact_end
/// receives the byte offset just past the last intact record.
int64_t ScanIntact(std::FILE* f,
                   const std::function<void(const std::string&)>& apply,
                   long* intact_end) {
  char header[128];
  int64_t records = 0;
  *intact_end = 0;
  while (std::fgets(header, sizeof(header), f) != nullptr) {
    size_t length = 0;
    uint32_t crc = 0;
    if (std::sscanf(header, "%zu %" PRIu32, &length, &crc) != 2) break;
    if (length > (64u << 20)) break;  // implausible: corrupt header
    std::string payload(length, '\0');
    if (length > 0 && std::fread(payload.data(), 1, length, f) != length) {
      break;  // torn record at the tail
    }
    int trailer = std::fgetc(f);
    if (trailer != '\n') break;
    if (Wal::Crc32(payload) != crc) break;  // corrupt record: stop replay
    apply(payload);
    ++records;
    *intact_end = std::ftell(f);
  }
  return records;
}

}  // namespace

Status Wal::Replay(
    const std::string& path,
    const std::function<void(const std::string&)>& apply) const {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // no log yet: nothing to replay
  long intact_end = 0;
  ScanIntact(f, apply, &intact_end);
  std::fclose(f);
  return Status::OK();
}

Result<int64_t> Wal::Recover(
    const std::string& path,
    const std::function<void(const std::string&)>& apply) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return int64_t{0};  // no log yet: nothing to recover
  long intact_end = 0;
  int64_t records = ScanIntact(f, apply, &intact_end);
  std::fclose(f);
  std::error_code ec;
  uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::Unavailable("cannot stat WAL at " + path);
  }
  if (static_cast<uintmax_t>(intact_end) < size) {
    std::filesystem::resize_file(path, static_cast<uintmax_t>(intact_end),
                                 ec);
    if (ec) {
      return Status::Unavailable("cannot truncate torn WAL tail at " +
                                 path);
    }
  }
  return records;
}

Status Wal::Truncate() {
  if (path_.empty()) return Status::FailedPrecondition("WAL never opened");
  Close();
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot truncate WAL at " + path_);
  }
  std::fclose(f);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot reopen WAL at " + path_);
  }
  return Status::OK();
}

void Wal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace crew::storage
