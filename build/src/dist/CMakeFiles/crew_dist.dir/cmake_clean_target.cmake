file(REMOVE_RECURSE
  "libcrew_dist.a"
)
