#include "common/logging.h"

#include <cstdio>

namespace crew {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::Write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace crew
