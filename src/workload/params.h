#ifndef CREW_WORKLOAD_PARAMS_H_
#define CREW_WORKLOAD_PARAMS_H_

#include <cstdint>
#include <string>

namespace crew::workload {

/// The analysis parameters of Table 3, with the paper's value ranges in
/// comments and the midpoints the normalized values assume as defaults.
struct Params {
  int steps_per_workflow = 15;        ///< s: 5 - 25
  int num_schemas = 20;               ///< c: 20
  int instances_per_schema = 10;      ///< i: 10 - 1000
  int num_engines = 4;                ///< e: 1 - 8 (parallel control)
  int num_agents = 50;                ///< z: 10 - 100
  int eligible_per_step = 2;          ///< a: 1 - 4
  int conflicting_defs_per_step = 1;  ///< d: 0 - 2
  int rollback_depth = 5;             ///< r: 1 - 10
  int invalidated_steps = 4;          ///< v: 0 - 8
  int final_steps = 2;                ///< f: 1 - 4
  int abort_compensated_steps = 2;    ///< w: 0 - 4
  int mutex_steps = 2;                ///< me: 0 - 4
  int relative_order_steps = 2;       ///< ro: 0 - 4
  int rollback_dep_steps = 1;         ///< rd: 0 - 2
  int64_t navigation_load = 100;      ///< l: instructions per step
  double p_step_failure = 0.1;        ///< pf: 0.0 - 0.2
  double p_input_change = 0.025;      ///< pi: 0.0 - 0.05
  double p_abort = 0.025;             ///< pa: 0.0 - 0.05
  double p_reexecution = 0.25;        ///< pr: 0.0 - 0.5

  uint64_t seed = 42;

  /// Total coordination intensity me + ro + rd.
  int coordination_intensity() const {
    return mutex_steps + relative_order_steps + rollback_dep_steps;
  }

  /// Multi-line "name = value" dump (printed by every bench header).
  std::string Describe() const;
};

}  // namespace crew::workload

#endif  // CREW_WORKLOAD_PARAMS_H_
