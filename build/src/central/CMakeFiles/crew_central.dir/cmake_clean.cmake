file(REMOVE_RECURSE
  "CMakeFiles/crew_central.dir/agent.cc.o"
  "CMakeFiles/crew_central.dir/agent.cc.o.d"
  "CMakeFiles/crew_central.dir/engine.cc.o"
  "CMakeFiles/crew_central.dir/engine.cc.o.d"
  "CMakeFiles/crew_central.dir/system.cc.o"
  "CMakeFiles/crew_central.dir/system.cc.o.d"
  "libcrew_central.a"
  "libcrew_central.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
