#ifndef CREW_BENCH_BENCH_COMMON_H_
#define CREW_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/model.h"
#include "analysis/recommend.h"
#include "obs/trace.h"
#include "workload/driver.h"

namespace crew::bench {

/// Maps a Table 4-6 mechanism to the metric categories it is measured
/// from.
sim::LoadCategory LoadCategoryOf(analysis::Mechanism mechanism);
sim::MsgCategory MsgCategoryOf(analysis::Mechanism mechanism);

/// Measured per-instance load (units of l) at the busiest node among
/// `nodes` for one mechanism.
double MeasuredLoad(const workload::RunResult& result,
                    analysis::Mechanism mechanism,
                    const std::vector<NodeId>& nodes, int64_t l);

/// Measured per-instance message count for one mechanism.
double MeasuredMessages(const workload::RunResult& result,
                        analysis::Mechanism mechanism);

/// Prints one paper table (load block + messages block) with columns:
/// mechanism | paper expression | paper value | measured. `nodes` are
/// the nodes whose load the "Load at Engine" block reports (the engine
/// for central, engines for parallel, agents for distributed).
void PrintTable(const std::string& title, const workload::Params& params,
                const workload::RunResult& result,
                const std::vector<analysis::ModelRow>& load_rows,
                const std::vector<analysis::ModelRow>& msg_rows,
                const std::vector<NodeId>& nodes);

/// Prints the Table 3 parameter header.
void PrintHeader(const std::string& title,
                 const workload::Params& params);

/// Node-id lists for the three architectures (matching the system
/// constructors' numbering).
std::vector<NodeId> CentralEngineNodes();
std::vector<NodeId> ParallelEngineNodes(int num_engines);
std::vector<NodeId> DistributedAgentNodes(int num_agents);

/// One run's summary as a JSON object (counts + full metrics).
std::string RunResultJson(const workload::RunResult& result);

/// Shared flight-recorder harness for the bench mains. Parses the
/// telemetry flags every bench accepts:
///
///   --trace=<path>   write a Chrome trace_event JSON of the first run
///                    (load in chrome://tracing or https://ui.perfetto.dev)
///   --jsonl=<path>   write the same records as compact JSONL
///   --json[=<path>]  write BENCH_<name>.json with per-run results
///   --no-json        suppress the default JSON dump (table benches)
///
/// Usage:
///   BenchSession session("table4_central", argc, argv, /*default_json=*/true);
///   RunResult r = RunWorkload(params, arch, session.tracer());
///   session.Record("central", r);
///   ... more runs ...
///   session.Finish();  // writes files, prints latency percentiles
class BenchSession {
 public:
  BenchSession(std::string name, int argc, char** argv,
               bool default_json = false);
  ~BenchSession();

  /// Tracer to pass to RunWorkload. Non-null only on the *first* call
  /// and only when --trace/--jsonl was given: multi-run benches trace
  /// their first run only, so one trace never mixes virtual-time axes.
  obs::Tracer* tracer();

  /// Whether any tracing output was requested.
  bool tracing() const { return ring_ != nullptr; }

  /// Adds one run's result to the JSON dump.
  void Record(const std::string& label, const workload::RunResult& result);

  /// Writes the requested files and prints the latency summary. Called
  /// by the destructor if the bench main forgets.
  void Finish();

 private:
  std::string name_;
  std::string trace_path_;
  std::string jsonl_path_;
  std::string json_path_;
  bool want_json_ = false;
  bool handed_out_ = false;
  bool finished_ = false;
  std::unique_ptr<obs::RingBufferTracer> ring_;
  std::vector<std::pair<std::string, std::string>> runs_;  // label, json
};

}  // namespace crew::bench

#endif  // CREW_BENCH_BENCH_COMMON_H_
