file(REMOVE_RECURSE
  "libcrew_laws.a"
)
