#include "rt/runtime.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace crew::rt {

namespace {
/// Derives the per-node RNG seed from the root seed and the node id.
/// Depends only on (seed, id) — never on cell-construction or thread
/// order — so a node's stream is stable across backends and runs.
uint64_t NodeSeed(uint64_t root, NodeId id) {
  return SplitMix64(root ^ SplitMix64(static_cast<uint64_t>(id) + 1));
}
}  // namespace

// ---------------------------------------------------------------------------
// SerialTracer: wraps the user's sink with a mutex (nodes trace
// concurrently) and stamps records with wall ticks. The mutex is a leaf
// lock: nothing is acquired while holding it.

class Runtime::SerialTracer : public obs::Tracer {
 public:
  SerialTracer(Runtime* rt, obs::Tracer* target)
      : rt_(rt), target_(target) {}

  bool enabled() const override { return target_->enabled(); }
  int64_t now() const override { return rt_->now(); }

  void Record(obs::TraceRecord record) override {
    std::lock_guard<std::mutex> lock(mu_);
    target_->Record(std::move(record));
  }

  void SetNodeName(NodeId node, const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    target_->SetNodeName(node, name);
  }

 private:
  Runtime* rt_;
  obs::Tracer* target_;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// Per-node seam implementations. Each is owned by its Cell and holds the
// cell + runtime back-pointers; all are constructed before Start().

class Runtime::NodeTransport : public sim::Transport {
 public:
  NodeTransport(Runtime* rt, Cell* cell) : rt_(rt), cell_(cell) {}

  void Register(NodeId id, sim::MessageHandler* handler) override;
  void SetNodeDown(NodeId id, bool down) override {
    rt_->SetNodeDown(id, down);
  }
  bool IsNodeDown(NodeId id) const override { return rt_->IsNodeDown(id); }
  Status Send(sim::Message message) override;

 private:
  Runtime* rt_;
  Cell* cell_;  // the sending node: its metrics shard counts the send
};

class Runtime::NodeScheduler : public sim::Scheduler {
 public:
  NodeScheduler(Runtime* rt, Cell* cell) : rt_(rt), cell_(cell) {}

  void ScheduleAt(sim::Time at, Callback fn) override {
    rt_->ScheduleTimer(cell_, at, std::move(fn));
  }
  sim::Time now() const override { return rt_->now(); }

 private:
  Runtime* rt_;
  Cell* cell_;
};

class Runtime::NodeContext : public sim::Context {
 public:
  NodeContext(Runtime* rt, Cell* cell) : rt_(rt), cell_(cell) {}

  sim::Transport& network() override;
  sim::Scheduler& queue() override;
  sim::Metrics& metrics() override;
  obs::Tracer& tracer() override { return *rt_->tracer_; }
  Rng& rng() override;
  sim::Time now() const override { return rt_->now(); }

 private:
  Runtime* rt_;
  Cell* cell_;
};

// ---------------------------------------------------------------------------
// Cell: one node = one worker thread + one mailbox + single-writer
// metrics shard + per-node RNG stream. Deliveries to an *up* node go
// straight to the lock-free mailbox, gated only by an acquire load of
// `down_flag`. route_mu guards the authoritative `down` bool and the
// parked queue: a sender that observes the node down serializes under it
// so a recovery flush can never be overtaken by a later send (in-order
// per pair, as the Transport contract requires). The flag is published
// down-before-park and flush-before-up (see SetNodeDown), which is what
// makes the unlocked fast path order-safe.

struct Runtime::Cell {
  Cell(Runtime* rt, NodeId node_id, const RuntimeOptions& options)
      : id(node_id),
        mailbox(options.mailbox_capacity, options.spin_iterations),
        rng(NodeSeed(options.seed, node_id)),
        transport(new NodeTransport(rt, this)),
        scheduler(new NodeScheduler(rt, this)),
        context(new NodeContext(rt, this)) {}

  const NodeId id;
  Mailbox mailbox;
  sim::Metrics metrics;  // written only by this cell's worker
  Rng rng;               // drawn only by this cell's worker
  std::unique_ptr<NodeTransport> transport;
  std::unique_ptr<NodeScheduler> scheduler;
  std::unique_ptr<NodeContext> context;
  sim::MessageHandler* handler = nullptr;  // set before Start()

  std::mutex route_mu;
  bool down = false;  // authoritative, under route_mu
  /// Run on this cell's worker at recovery, before the parked flush.
  std::function<void()> recovery_hook;  // under route_mu
  /// Lock-free mirror of `down` read by the delivery fast path. Set
  /// *before* any message parks; cleared only *after* the parked backlog
  /// has been flushed into the mailbox, so a sender that loads `false`
  /// enqueues happens-after the flush.
  std::atomic<bool> down_flag{false};
  std::vector<std::pair<sim::Time, sim::Message>> parked;

  /// Point-in-time copy of `metrics`, written by this cell's own worker
  /// (a SampleMetrics copy task), read by telemetry threads. Keeps the
  /// live shard single-writer while still allowing mid-run scrapes.
  mutable std::mutex snapshot_mu;
  sim::Metrics snapshot;  // under snapshot_mu

  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> parked_total{0};

  std::thread worker;
};

sim::Transport& Runtime::NodeContext::network() { return *cell_->transport; }
sim::Scheduler& Runtime::NodeContext::queue() { return *cell_->scheduler; }
sim::Metrics& Runtime::NodeContext::metrics() { return cell_->metrics; }
Rng& Runtime::NodeContext::rng() { return cell_->rng; }

void Runtime::NodeTransport::Register(NodeId id,
                                      sim::MessageHandler* handler) {
  Cell* cell = rt_->FindCell(id);
  if (cell == nullptr) {
    CREW_LOG(Error) << "rt: Register(" << id
                    << ") for a node with no context; ignored";
    return;
  }
  cell->handler = handler;
}

Status Runtime::NodeTransport::Send(sim::Message message) {
  Cell* dest = rt_->FindCell(message.to);
  if (dest == nullptr) {
    if (rt_->remote_router_ != nullptr) {
      // Count in the sender's shard first, exactly as for a local
      // destination: the remote process counts nothing on delivery, so
      // merged metrics across processes match a single-runtime run.
      cell_->metrics.CountMessage(message.from, message.to, message.category,
                                  message.payload.size(), message.type);
      return rt_->remote_router_->RouteRemote(std::move(message));
    }
    return Status::NotFound("no node registered with id " +
                            std::to_string(message.to));
  }
  if (dest->handler == nullptr) {
    return Status::NotFound("no node registered with id " +
                            std::to_string(message.to));
  }
  // Count in the sender's shard (single writer: this cell's worker),
  // mirroring sim::Network::Send's count-before-delivery semantics.
  cell_->metrics.CountMessage(message.from, message.to, message.category,
                              message.payload.size(), message.type);
  rt_->EnqueueDelivery(dest, std::move(message), rt_->now());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Runtime

Runtime::Runtime(RuntimeOptions options)
    : options_(options),
      start_(std::chrono::steady_clock::now()),
      tracer_(new SerialTracer(
          this, options.tracer != nullptr ? options.tracer
                                          : obs::Tracer::Null())) {}

Runtime::~Runtime() { Shutdown(); }

sim::Context* Runtime::ContextFor(NodeId id) {
  auto it = cells_.find(id);
  if (it != cells_.end()) return it->second->context.get();
  if (started_) {
    CREW_LOG(Error) << "rt: ContextFor(" << id
                    << ") after Start(); nodes must be wired during "
                       "system assembly";
    return nullptr;
  }
  auto cell = std::make_unique<Cell>(this, id, options_);
  sim::Context* context = cell->context.get();
  cells_.emplace(id, std::move(cell));
  return context;
}

Runtime::Cell* Runtime::FindCell(NodeId id) const {
  auto it = cells_.find(id);
  return it == cells_.end() ? nullptr : it->second.get();
}

sim::Time Runtime::now() const {
  auto elapsed = std::chrono::steady_clock::now() - start_;
  int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return us / options_.tick_us;
}

void Runtime::Start() {
  if (started_) return;
  started_ = true;
  timer_thread_ = std::thread(&Runtime::TimerLoop, this);
  for (auto& [id, cell] : cells_) {
    cell->worker = std::thread(&Runtime::WorkerLoop, this, cell.get());
  }
}

void Runtime::Post(NodeId node, std::function<void()> fn) {
  Cell* cell = FindCell(node);
  if (cell == nullptr) {
    CREW_LOG(Error) << "rt: Post to unknown node " << node;
    return;
  }
  // Bounded push: the external driver absorbs backpressure when the
  // node falls behind. (Internal routing uses ForcePush — a bounded
  // push there could deadlock two mutually-blocked workers.)
  cell->mailbox.Push(std::move(fn));
}

void Runtime::PushDelivery(Cell* cell, sim::Message message,
                           sim::Time sent) {
  cell->mailbox.ForcePush([this, cell, sent, m = std::move(message)]() {
    cell->delivered.fetch_add(1, std::memory_order_relaxed);
    if (tracer_->enabled()) {
      if (m.trace_id != 0) {
        // Remote traced message: close the sender's flow span rather
        // than emitting a local one. The merge step pairs this FlowEnd
        // with the sending process's FlowBegin of the same id into one
        // cross-process kMessage span on the aligned timeline.
        tracer_->FlowEnd(obs::SpanKind::kMessage, m.to, m.trace_id,
                         "msg:" + m.type, static_cast<int>(m.category),
                         std::to_string(m.from) + "->" +
                             std::to_string(m.to),
                         m.trace_sent_ticks);
      } else {
        // Same span the sim Network emits: send -> dispatch, covering
        // any time parked for a down node.
        tracer_->Complete(obs::SpanKind::kMessage, m.to, InstanceId{},
                          kInvalidStep, "msg:" + m.type, sent, now() - sent,
                          static_cast<int>(m.category),
                          std::to_string(m.from) + "->" +
                              std::to_string(m.to));
      }
    }
    cell->handler->HandleMessage(m);
  });
}

void Runtime::EnqueueDelivery(Cell* cell, sim::Message message,
                              sim::Time sent) {
  // Fast path: node up — push straight into the lock-free mailbox. A
  // send racing SetNodeDown(true) may still deliver, which is the same
  // outcome as winning route_mu first under the old locked scheme. The
  // flush-before-clear publication of down_flag (see SetNodeDown) rules
  // out the dangerous reordering: a send that loads `false` during
  // recovery is ordered after the flushed backlog.
  if (!cell->down_flag.load(std::memory_order_acquire)) {
    PushDelivery(cell, std::move(message), sent);
    return;
  }
  std::lock_guard<std::mutex> lock(cell->route_mu);
  if (cell->down) {
    cell->parked.emplace_back(sent, std::move(message));
    cell->parked_total.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  PushDelivery(cell, std::move(message), sent);
}

void Runtime::SetNodeDown(NodeId id, bool down) {
  Cell* cell = FindCell(id);
  if (cell == nullptr) {
    if (remote_router_ != nullptr) {
      remote_router_->SetRemoteDown(id, down);
      return;
    }
    CREW_LOG(Error) << "rt: SetNodeDown on unknown node " << id;
    return;
  }
  std::lock_guard<std::mutex> lock(cell->route_mu);
  if (cell->down == down) return;
  cell->down = down;
  if (down) cell->down_flag.store(true, std::memory_order_release);
  if (tracer_->enabled()) {
    tracer_->Instant(obs::SpanKind::kNode, id, InstanceId{}, kInvalidStep,
                     down ? "node.down" : "node.up");
  }
  if (down) return;
  // Recovery: the hook (log replay) runs first on the node's own worker,
  // then the parked messages flush in arrival order — all queued under
  // route_mu so no concurrent slow-path send can slot in ahead of them.
  if (cell->recovery_hook) cell->mailbox.ForcePush(cell->recovery_hook);
  for (auto& [sent, m] : cell->parked) {
    PushDelivery(cell, std::move(m), sent);
  }
  cell->parked.clear();
  // Only now open the fast path: the release store orders the flushed
  // pushes before any push by a sender that observes the node up.
  cell->down_flag.store(false, std::memory_order_release);
}

bool Runtime::IsNodeDown(NodeId id) const {
  Cell* cell = FindCell(id);
  if (cell == nullptr) {
    if (remote_router_ != nullptr) return remote_router_->IsRemoteDown(id);
    return false;
  }
  return cell->down_flag.load(std::memory_order_acquire);
}

Status Runtime::DeliverRemote(sim::Message message) {
  Cell* dest = FindCell(message.to);
  if (dest == nullptr || dest->handler == nullptr) {
    return Status::NotFound("no local node with id " +
                            std::to_string(message.to));
  }
  // Not counted here: the sending process already counted the message
  // in its sender shard when it handed it to the remote router.
  EnqueueDelivery(dest, std::move(message), now());
  return Status::OK();
}

void Runtime::SetRecoveryHook(NodeId id, std::function<void()> hook) {
  Cell* cell = FindCell(id);
  if (cell == nullptr) {
    CREW_LOG(Error) << "rt: SetRecoveryHook on unknown node " << id;
    return;
  }
  std::lock_guard<std::mutex> lock(cell->route_mu);
  cell->recovery_hook = std::move(hook);
}

void Runtime::ScheduleTimer(Cell* cell, sim::Time at, Mailbox::Task fn) {
  if (at <= now()) {
    // Already due: still defer through the mailbox (a ScheduleAfter(0)
    // must run *after* the current task, exactly as under sim).
    cell->mailbox.ForcePush(std::move(fn));
    timers_fired_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (timer_stop_) return;
    timer_heap_.push_back(
        TimerEntry{at * options_.tick_us, timer_seq_++, cell, std::move(fn)});
    std::push_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
  }
  timer_cv_.notify_one();
}

void Runtime::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!timer_stop_) {
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    auto due = start_ + std::chrono::microseconds(timer_heap_.front().due_us);
    if (std::chrono::steady_clock::now() < due) {
      // Re-evaluate after waking: an earlier timer may have arrived, or
      // stop may have been requested.
      timer_cv_.wait_until(lock, due);
      continue;
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
    TimerEntry entry = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    ++timer_in_flight_;  // visible to Quiesce between unlock and re-lock
    lock.unlock();
    entry.cell->mailbox.ForcePush(std::move(entry.fn));
    timers_fired_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    --timer_in_flight_;
  }
}

void Runtime::WorkerLoop(Cell* cell) {
  while (Mailbox::Popped task = cell->mailbox.Pop()) {
    task.Run();
  }
}

bool Runtime::LooksQuiet() const {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (!timer_heap_.empty() || timer_in_flight_ != 0) return false;
  }
  for (const auto& [id, cell] : cells_) {
    if (!cell->mailbox.QuietNow()) return false;
  }
  return true;
}

int64_t Runtime::AdmittedWork() const {
  int64_t sum = timers_fired_.load(std::memory_order_acquire);
  for (const auto& [id, cell] : cells_) sum += cell->mailbox.pushed();
  return sum;
}

void Runtime::Quiesce() {
  // Termination detection: two consecutive all-quiet sweeps bracketing
  // an unchanged admission counter. Any task in flight during a sweep
  // keeps some mailbox busy or the timer heap non-empty; any task
  // admitted between the sweeps bumps the counter. Both stable => no
  // work exists anywhere.
  for (;;) {
    if (!LooksQuiet()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    int64_t before = AdmittedWork();
    if (!LooksQuiet()) continue;
    if (AdmittedWork() == before) return;
  }
}

void Runtime::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  for (auto& [id, cell] : cells_) cell->mailbox.Close();
  for (auto& [id, cell] : cells_) {
    if (cell->worker.joinable()) cell->worker.join();
  }
}

sim::Metrics Runtime::MergedMetrics() const {
  sim::Metrics merged;
  for (const auto& [id, cell] : cells_) {
    // A true QuietNow is an acquire-barrier against the worker's last
    // writes (callers hold the quiescence precondition).
    (void)cell->mailbox.QuietNow();
    merged.MergeFrom(cell->metrics);
  }
  return merged;
}

RuntimeStats Runtime::Stats() const {
  RuntimeStats stats;
  stats.num_workers = static_cast<int>(cells_.size());
  stats.timers_fired = timers_fired_.load(std::memory_order_relaxed);
  for (const auto& [id, cell] : cells_) {
    stats.messages_delivered +=
        cell->delivered.load(std::memory_order_relaxed);
    stats.messages_parked +=
        cell->parked_total.load(std::memory_order_relaxed);
    stats.mailbox_parks += cell->mailbox.parks();
    stats.max_mailbox_depth =
        std::max(stats.max_mailbox_depth, cell->mailbox.max_depth());
    stats.mailbox_depth += cell->mailbox.size();
  }
  return stats;
}

obs::Tracer* Runtime::tracer() const { return tracer_.get(); }

sim::Metrics Runtime::SampleMetrics(std::chrono::milliseconds wait) {
  if (!started_ || shut_down_) {
    // No workers running: this thread is the only writer, copy directly.
    for (auto& [id, cell] : cells_) {
      std::lock_guard<std::mutex> lock(cell->snapshot_mu);
      cell->snapshot = cell->metrics;
    }
    return LatestMetricsSnapshot();
  }
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending = 0;
  };
  auto latch = std::make_shared<Latch>();
  latch->pending = cells_.size();
  for (auto& [id, cell] : cells_) {
    Cell* c = cell.get();
    // ForcePush: a full mailbox must not block telemetry, and the copy
    // task runs on the cell's own worker — the one legal reader of the
    // live shard. A closed mailbox drops the task; the bounded wait
    // below then simply times out.
    c->mailbox.ForcePush([c, latch]() {
      {
        std::lock_guard<std::mutex> lock(c->snapshot_mu);
        c->snapshot = c->metrics;
      }
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->pending == 0) latch->cv.notify_all();
    });
  }
  if (wait.count() > 0) {
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait_for(lock, wait, [&] { return latch->pending == 0; });
  }
  return LatestMetricsSnapshot();
}

sim::Metrics Runtime::LatestMetricsSnapshot() const {
  sim::Metrics merged;
  for (const auto& [id, cell] : cells_) {
    std::lock_guard<std::mutex> lock(cell->snapshot_mu);
    merged.MergeFrom(cell->snapshot);
  }
  return merged;
}

}  // namespace crew::rt
