// Tests for the multi-process socket backend (src/net), run in-process
// over loopback Unix-domain sockets: transport-level delivery, parking
// and crash-replay semantics, then full equivalence runs — the standard
// mixed workload over a multi-endpoint Cluster must reach the same
// per-instance terminal states and the same message counts per category
// and wire type as the single-runtime rt assembly of the same Testbed.
// Real process boundaries (fork/kill/restart) are covered separately by
// net_proc_test.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/control.h"
#include "net/frame.h"
#include "net/socket_transport.h"
#include "net/telemetry.h"
#include "net/testbed.h"
#include "net/topology.h"
#include "net/trace_merge.h"
#include "obs/trace.h"
#include "rt/runtime.h"
#include "runtime/wire.h"
#include "sim/metrics.h"

namespace crew::net {
namespace {

using runtime::WorkflowState;

constexpr uint64_t kSeed = 42;

/// Unique scratch directory for socket paths; removed on destruction.
/// Lives under /tmp regardless of TMPDIR: UDS paths are capped at ~107
/// bytes and build trees can exceed that.
struct TempDir {
  std::string path;
  TempDir() {
    char buffer[] = "/tmp/crew_net_test_XXXXXX";
    char* made = mkdtemp(buffer);
    EXPECT_NE(made, nullptr);
    path = made ? made : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Thread-safe recorder used as a transport's DeliverFn sink.
struct Recorder {
  std::mutex mu;
  std::vector<sim::Message> messages;

  SocketTransport::DeliverFn Sink() {
    return [this](sim::Message message) {
      std::lock_guard<std::mutex> lock(mu);
      messages.push_back(std::move(message));
    };
  }
  size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return messages.size();
  }
  bool WaitForCount(size_t want, std::chrono::milliseconds timeout) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (Count() < want) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }
};

/// Blocking client socket connected to a Unix-domain path, or -1.
int RawUnixConnect(const std::string& path) {
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

sim::Message Make(NodeId from, NodeId to, int i) {
  sim::Message message;
  message.from = from;
  message.to = to;
  message.type = "msg" + std::to_string(i);
  message.payload = "payload-" + std::to_string(i) + "\nwith=newline";
  message.category = sim::MsgCategory::kNormal;
  return message;
}

Topology TwoEndpointTopology(const TempDir& dir) {
  Topology topology;
  EXPECT_TRUE(
      topology
          .Add(1, Endpoint::Parse("unix:" + dir.path + "/a.sock").value())
          .ok());
  EXPECT_TRUE(
      topology
          .Add(2, Endpoint::Parse("unix:" + dir.path + "/b.sock").value())
          .ok());
  return topology;
}

TEST(SocketTransportTest, LoopbackDeliversInOrderAndDrainsToIdle) {
  TempDir dir;
  Topology topology = TwoEndpointTopology(dir);
  Endpoint a = *topology.Find(1);
  Endpoint b = *topology.Find(2);

  Recorder received;
  SocketTransport ta(topology, a, nullptr);
  SocketTransport tb(topology, b, received.Sink());
  ASSERT_TRUE(ta.Bind().ok());
  ASSERT_TRUE(tb.Bind().ok());
  ta.Start();
  tb.Start();
  ASSERT_TRUE(ta.WaitConnected(std::chrono::seconds(10)));

  constexpr int kCount = 100;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(ta.Send(Make(1, 2, i)).ok());
  }
  ASSERT_TRUE(received.WaitForCount(kCount, std::chrono::seconds(10)));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(received.messages[i].type, "msg" + std::to_string(i));
    EXPECT_EQ(received.messages[i].payload,
              "payload-" + std::to_string(i) + "\nwith=newline");
    EXPECT_EQ(received.messages[i].from, 1);
    EXPECT_EQ(received.messages[i].to, 2);
  }

  // ACKs flow back on the reverse link; the sender drains to idle.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!ta.Idle() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ta.Idle());
  EXPECT_EQ(ta.Stats().frames_sent, kCount);
  EXPECT_EQ(tb.Stats().frames_delivered, kCount);
  EXPECT_EQ(tb.Stats().frames_deduped, 0);

  ta.Shutdown();
  tb.Shutdown();
}

TEST(SocketTransportTest, ExplicitDownParksOutboundUntilUp) {
  TempDir dir;
  Topology topology = TwoEndpointTopology(dir);

  Recorder received;
  SocketTransport ta(topology, *topology.Find(1), nullptr);
  SocketTransport tb(topology, *topology.Find(2), received.Sink());
  ASSERT_TRUE(ta.Bind().ok());
  ASSERT_TRUE(tb.Bind().ok());
  ta.Start();
  tb.Start();
  ASSERT_TRUE(ta.WaitConnected(std::chrono::seconds(10)));

  ta.SetNodeDown(2, true);
  EXPECT_TRUE(ta.IsNodeDown(2));
  constexpr int kCount = 10;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(ta.Send(Make(1, 2, i)).ok());
  }
  // Parked: nothing may arrive while the destination is marked down. The
  // connection itself is healthy, so a short real-time wait is a fair
  // negative check.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(received.Count(), 0u);
  EXPECT_FALSE(ta.Idle());

  ta.SetNodeDown(2, false);
  EXPECT_FALSE(ta.IsNodeDown(2));
  ASSERT_TRUE(received.WaitForCount(kCount, std::chrono::seconds(10)));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(received.messages[i].type, "msg" + std::to_string(i));
  }
  ta.Shutdown();
  tb.Shutdown();
}

TEST(SocketTransportTest, RestartedPeerReceivesUnackedBacklog) {
  TempDir dir;
  Topology topology = TwoEndpointTopology(dir);
  Endpoint a = *topology.Find(1);
  Endpoint b = *topology.Find(2);

  SocketTransport ta(topology, a, nullptr);
  ASSERT_TRUE(ta.Bind().ok());
  ta.Start();

  Recorder first_life;
  {
    SocketTransport tb(topology, b, first_life.Sink());
    ASSERT_TRUE(tb.Bind().ok());
    tb.Start();
    ASSERT_TRUE(ta.WaitConnected(std::chrono::seconds(10)));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ta.Send(Make(1, 2, i)).ok());
    }
    ASSERT_TRUE(first_life.WaitForCount(3, std::chrono::seconds(10)));
    // Wait for the ACKs so the first three frames leave the retained
    // queue — otherwise they would legitimately replay to the restarted
    // peer (at-least-once) and muddy the assertion below.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!ta.Idle() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(ta.Idle());
    tb.Shutdown();  // peer "crashes"
  }

  // Sends while the peer is gone are retained and replayed on reconnect.
  for (int i = 3; i < 7; ++i) {
    ASSERT_TRUE(ta.Send(Make(1, 2, i)).ok());
  }
  Recorder second_life;
  SocketTransportOptions restarted_options;
  restarted_options.incarnation = 2;
  SocketTransport tb2(topology, b, second_life.Sink(), restarted_options);
  ASSERT_TRUE(tb2.Bind().ok());
  tb2.Start();
  ASSERT_TRUE(second_life.WaitForCount(4, std::chrono::seconds(10)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(second_life.messages[i].type, "msg" + std::to_string(i + 3));
  }
  EXPECT_EQ(second_life.Count(), 4u);
  EXPECT_GE(ta.Stats().reconnects, 2);
  ta.Shutdown();
  tb2.Shutdown();
}

// A reconnecting peer's ACK can carry a watermark learned from this
// endpoint's PREVIOUS incarnation (its reconnect races our HELLO). Such
// an ACK describes a dead sequence space and must be ignored — applying
// it would silently discard fresh unacked frames and break the
// at-least-once crash-restart guarantee. Reproduced deterministically
// with a raw client socket impersonating the stale peer.
TEST(SocketTransportTest, StaleIncarnationAckDoesNotPruneRetained) {
  TempDir dir;
  Topology topology = TwoEndpointTopology(dir);
  Endpoint a = *topology.Find(1);
  Endpoint b = *topology.Find(2);

  // "Restarted" endpoint b: incarnation 2, sequence space back at 1.
  // Endpoint a is never started, so the shipped frames stay retained.
  SocketTransportOptions options;
  options.incarnation = 2;
  SocketTransport tb(topology, b, nullptr, options);
  ASSERT_TRUE(tb.Bind().ok());
  tb.Start();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tb.Send(Make(2, 1, i)).ok());
  }
  EXPECT_FALSE(tb.Idle());

  // Impersonate endpoint a: HELLO, then an ACK whose watermark covers
  // seq 1..100 of b's incarnation-1 stream.
  int raw = RawUnixConnect(b.path);
  ASSERT_GE(raw, 0);
  Frame hello;
  hello.kind = Frame::Kind::kHello;
  hello.endpoint = a.Address();
  hello.incarnation = 1;
  Frame stale;
  stale.kind = Frame::Kind::kAck;
  stale.watermark = 100;
  stale.incarnation = 1;  // b's previous life
  ASSERT_TRUE(WriteAll(raw, EncodeFrame(hello) + EncodeFrame(stale)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(tb.Idle())
      << "stale-incarnation ACK discarded retained frames";

  // An ACK scoped to the current incarnation prunes as usual.
  Frame genuine;
  genuine.kind = Frame::Kind::kAck;
  genuine.watermark = 5;
  genuine.incarnation = 2;
  ASSERT_TRUE(WriteAll(raw, EncodeFrame(genuine)));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!tb.Idle() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(tb.Idle());
  close(raw);
  tb.Shutdown();
}

// An oversize message must be rejected when shipped, not admitted to
// the stream: the receiver's decoder treats its length prefix as
// corruption, and a retained oversize frame would replay on every
// reconnect forever, wedging everything queued behind it.
TEST(SocketTransportTest, OversizeMessageRejectedAtAdmission) {
  TempDir dir;
  Topology topology = TwoEndpointTopology(dir);

  Recorder received;
  SocketTransport ta(topology, *topology.Find(1), nullptr);
  SocketTransport tb(topology, *topology.Find(2), received.Sink());
  ASSERT_TRUE(ta.Bind().ok());
  ASSERT_TRUE(tb.Bind().ok());
  ta.Start();
  tb.Start();
  ASSERT_TRUE(ta.WaitConnected(std::chrono::seconds(10)));

  sim::Message big = Make(1, 2, 0);
  big.payload.assign(kMaxFrameBytes, 'x');
  Status status = ta.Send(std::move(big));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();

  // The stream is unharmed: later messages still deliver.
  ASSERT_TRUE(ta.Send(Make(1, 2, 1)).ok());
  ASSERT_TRUE(received.WaitForCount(1, std::chrono::seconds(10)));
  EXPECT_EQ(received.messages[0].type, "msg1");
  ta.Shutdown();
  tb.Shutdown();
}

// The control plane serves one connection at a time; a client that
// connects and never writes its request line must time out instead of
// blocking quiescence polling and 'exit' forever.
TEST(ControlServerTest, SilentClientDoesNotWedgeControlPlane) {
  TempDir dir;
  std::string path = dir.path + "/node.ctl";
  ControlServer server(
      path, [](const std::string& request) { return "echo " + request; },
      /*io_timeout_ms=*/100);
  ASSERT_TRUE(server.Start().ok());

  int silent = RawUnixConnect(path);
  ASSERT_GE(silent, 0);
  Result<std::string> reply = ControlRequest(path, "ping", 5000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value(), "echo ping");
  close(silent);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Cluster equivalence: same Testbed fragmenting, three ways to host it.

void ExpectSameCounts(const sim::Metrics& baseline,
                      const sim::Metrics& sockets) {
  EXPECT_EQ(baseline.TotalMessages(), sockets.TotalMessages());
  for (int i = 0; i < sim::kNumMsgCategories; ++i) {
    auto category = static_cast<sim::MsgCategory>(i);
    EXPECT_EQ(baseline.MessagesIn(category), sockets.MessagesIn(category))
        << "category " << sim::MsgCategoryName(category);
  }
  EXPECT_EQ(baseline.by_type(), sockets.by_type());
}

struct RunResult {
  std::map<int, WorkflowState> states;
  sim::Metrics metrics;
};

/// Baseline: every node of the deployment in ONE rt::Runtime — the
/// Testbed degenerates to the single-process assembly, no sockets.
RunResult RunInProcess(const TestbedOptions& options, int instances) {
  Topology topology;
  Endpoint self = Endpoint::Parse("unix:/tmp/unused.sock").value();
  for (NodeId id : Testbed::AllNodes(options)) {
    EXPECT_TRUE(topology.Add(id, self).ok());
  }
  rt::Runtime runtime({.seed = kSeed, .tick_us = 20});
  Testbed testbed(&runtime, topology, self, options);
  runtime.Start();
  std::atomic<int> start_failures{0};
  for (int i = 1; i <= instances; ++i) {
    std::string schema = testbed.ScheduleSchema(i);
    runtime.Post(testbed.StartNode(schema, i),
                 [&testbed, &start_failures, schema, i]() {
                   if (!testbed.StartInstance(schema, i).ok()) {
                     start_failures.fetch_add(1);
                   }
                 });
  }
  runtime.Quiesce();
  runtime.Shutdown();
  EXPECT_EQ(start_failures.load(), 0);
  RunResult result;
  result.metrics = runtime.MergedMetrics();
  for (int i = 1; i <= instances; ++i) {
    result.states[i] = testbed.Terminal({testbed.ScheduleSchema(i), i});
  }
  return result;
}

/// The same deployment spread over `endpoints` in-process NetNodes
/// talking through real Unix-domain sockets.
RunResult RunOverSockets(const TestbedOptions& options, int instances,
                         int endpoints, const std::string& dir) {
  Result<Topology> topology = Testbed::UnixTopology(options, dir, endpoints);
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  Cluster cluster(topology.value(), {.seed = kSeed, .tick_us = 20});
  EXPECT_TRUE(cluster.Bind().ok());
  // Build each endpoint's fragment before any traffic can arrive.
  std::vector<std::unique_ptr<Testbed>> testbeds;
  for (NetNode* node : cluster.nodes()) {
    testbeds.push_back(std::make_unique<Testbed>(
        &node->runtime(), cluster.topology(), node->self(), options));
  }
  cluster.Start();
  EXPECT_TRUE(cluster.WaitConnected(std::chrono::seconds(30)));

  std::atomic<int> start_failures{0};
  std::vector<NetNode*> nodes = cluster.nodes();
  for (int i = 1; i <= instances; ++i) {
    std::string schema = testbeds[0]->ScheduleSchema(i);
    NodeId start_node = testbeds[0]->StartNode(schema, i);
    for (size_t k = 0; k < testbeds.size(); ++k) {
      if (!testbeds[k]->Hosts(start_node)) continue;
      Testbed* testbed = testbeds[k].get();
      nodes[k]->runtime().Post(start_node,
                               [testbed, &start_failures, schema, i]() {
                                 if (!testbed->StartInstance(schema, i).ok()) {
                                   start_failures.fetch_add(1);
                                 }
                               });
      break;
    }
  }
  cluster.Quiesce();
  RunResult result;
  result.metrics = cluster.MergedMetrics();
  cluster.Shutdown();
  EXPECT_EQ(start_failures.load(), 0);
  for (int i = 1; i <= instances; ++i) {
    std::string schema = testbeds[0]->ScheduleSchema(i);
    for (auto& testbed : testbeds) {
      if (!testbed->Authoritative({schema, i})) continue;
      result.states[i] = testbed->Terminal({schema, i});
      break;
    }
  }
  return result;
}

void ExpectEquivalent(const TestbedOptions& options, int instances,
                      int endpoints) {
  TempDir dir;
  RunResult baseline = RunInProcess(options, instances);
  RunResult sockets = RunOverSockets(options, instances, endpoints, dir.path);
  ASSERT_EQ(sockets.states.size(), static_cast<size_t>(instances));
  for (int i = 1; i <= instances; ++i) {
    EXPECT_EQ(sockets.states.at(i), baseline.states.at(i)) << "instance " << i;
  }
  ExpectSameCounts(baseline.metrics, sockets.metrics);
}

TEST(NetEquivalenceTest, DistSameStatesAndCountsOverSockets) {
  TestbedOptions options;
  options.mode = "dist";
  options.num_agents = 3;
  ExpectEquivalent(options, /*instances=*/9, /*endpoints=*/3);
}

TEST(NetEquivalenceTest, CentralSameStatesAndCountsOverSockets) {
  TestbedOptions options;
  options.mode = "central";
  options.num_agents = 4;
  ExpectEquivalent(options, /*instances=*/12, /*endpoints=*/3);
}

TEST(NetEquivalenceTest, ParallelSameStatesAndCountsOverSockets) {
  TestbedOptions options;
  options.mode = "parallel";
  options.num_engines = 2;
  options.num_agents = 4;
  ExpectEquivalent(options, /*instances=*/12, /*endpoints=*/3);
}

// Expected-state sanity: the socket run isn't just *equivalent* to the
// baseline, both match the workload's deterministic terminal mix.
TEST(NetEquivalenceTest, DistTerminalStatesMatchSchedule) {
  TestbedOptions options;
  options.mode = "dist";
  options.num_agents = 3;
  TempDir dir;
  RunResult sockets = RunOverSockets(options, 9, 3, dir.path);
  for (int i = 1; i <= 9; ++i) {
    WorkflowState expected = (i % 3 == 0) ? WorkflowState::kAborted
                                          : WorkflowState::kCommitted;
    EXPECT_EQ(sockets.states.at(i), expected) << "instance " << i;
  }
}

// Placement-routed cluster vs the same policy in one runtime: identical
// terminal states and message counts (the placement seam must not
// change behaviour, only where instances land).
TEST(NetEquivalenceTest, DistHashPlacementMatchesSingleRuntimeBaseline) {
  TestbedOptions options;
  options.mode = "dist";
  options.num_agents = 4;
  options.placement = "hash";
  ExpectEquivalent(options, /*instances=*/12, /*endpoints=*/3);
}

TEST(NetEquivalenceTest, DistRoundRobinWithSweepClassesAllCommit) {
  TestbedOptions options;
  options.mode = "dist";
  options.num_agents = 4;
  options.placement = "rr";
  options.num_classes = 3;
  TempDir dir;
  RunResult baseline = RunInProcess(options, 12);
  RunResult sockets = RunOverSockets(options, 12, 3, dir.path);
  ASSERT_EQ(sockets.states.size(), 12u);
  for (int i = 1; i <= 12; ++i) {
    EXPECT_EQ(sockets.states.at(i), WorkflowState::kCommitted)
        << "instance " << i;
    EXPECT_EQ(sockets.states.at(i), baseline.states.at(i))
        << "instance " << i;
  }
  ExpectSameCounts(baseline.metrics, sockets.metrics);
}

// Least-loaded is sticky and load-timing dependent, so message counts
// may differ run to run — but every instance must still reach the
// schedule's terminal state, answered by the front end (the only node
// that knows the placements).
TEST(NetEquivalenceTest, DistLeastLoadedReachesExpectedTerminalStates) {
  TestbedOptions options;
  options.mode = "dist";
  options.num_agents = 3;
  options.placement = "least";
  TempDir dir;
  RunResult sockets = RunOverSockets(options, 9, 3, dir.path);
  ASSERT_EQ(sockets.states.size(), 9u);
  for (int i = 1; i <= 9; ++i) {
    WorkflowState expected = (i % 3 == 0) ? WorkflowState::kAborted
                                          : WorkflowState::kCommitted;
    EXPECT_EQ(sockets.states.at(i), expected) << "instance " << i;
  }
}

// The pre-fix purge broadcast must remain behaviourally equivalent (it
// only sends more messages) — it is the before-curve of the sweep.
TEST(NetEquivalenceTest, DistBroadcastPurgeSameTerminalStates) {
  TestbedOptions options;
  options.mode = "dist";
  options.num_agents = 3;
  options.purge = "broadcast";
  TempDir dir;
  RunResult sockets = RunOverSockets(options, 9, 3, dir.path);
  for (int i = 1; i <= 9; ++i) {
    WorkflowState expected = (i % 3 == 0) ? WorkflowState::kAborted
                                          : WorkflowState::kCommitted;
    EXPECT_EQ(sockets.states.at(i), expected) << "instance " << i;
  }
}

// ---------------------------------------------------------------------------
// Trace shards and the cluster-wide merge.

TEST(TraceMergeTest, ShardRoundTripPreservesHostileStrings) {
  TempDir dir;
  TraceShard shard;
  shard.endpoint = "unix:" + dir.path + "/a.sock";
  shard.incarnation = 3;
  shard.tick_us = 7;
  ClockSample clock;
  clock.peer = "unix:" + dir.path + "/pipe|in|name.sock";
  clock.peer_incarnation = 2;
  clock.remote_sent_ticks = 1234;
  clock.local_recv_ticks = -56;
  clock.count = 9;
  shard.clocks.push_back(clock);
  shard.node_names[4] = "engine|with%weird\nname";
  obs::TraceRecord rec;
  rec.time = 100;
  rec.dur = 25;
  rec.phase = obs::TracePhase::kComplete;
  rec.kind = obs::SpanKind::kMessage;
  rec.node = 4;
  rec.instance = {"WF|1", 7};
  rec.step = 2;
  rec.category = 1;
  rec.value = -3;
  rec.name = "msg:100%|done";
  rec.detail = "a->b\nsecond%7Cline";
  shard.records.push_back(rec);
  obs::TraceRecord flow;
  flow.time = 200;
  flow.phase = obs::TracePhase::kFlowBegin;
  flow.kind = obs::SpanKind::kMessage;
  flow.node = 4;
  flow.flow = 0xabcdef0123456789ull;
  flow.name = "msg:wi1";
  shard.records.push_back(flow);

  std::string path = dir.path + "/x.shard";
  ASSERT_TRUE(WriteTraceShard(shard, path).ok());
  Result<TraceShard> loaded = LoadTraceShard(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TraceShard& got = loaded.value();
  EXPECT_EQ(got.endpoint, shard.endpoint);
  EXPECT_EQ(got.incarnation, 3u);
  EXPECT_EQ(got.tick_us, 7);
  ASSERT_EQ(got.clocks.size(), 1u);
  EXPECT_EQ(got.clocks[0].peer, clock.peer);
  EXPECT_EQ(got.clocks[0].peer_incarnation, 2u);
  EXPECT_EQ(got.clocks[0].remote_sent_ticks, 1234);
  EXPECT_EQ(got.clocks[0].local_recv_ticks, -56);
  EXPECT_EQ(got.clocks[0].count, 9);
  ASSERT_EQ(got.node_names.size(), 1u);
  EXPECT_EQ(got.node_names.at(4), "engine|with%weird\nname");
  ASSERT_EQ(got.records.size(), 2u);
  EXPECT_EQ(got.records[0].time, 100);
  EXPECT_EQ(got.records[0].dur, 25);
  EXPECT_EQ(got.records[0].phase, obs::TracePhase::kComplete);
  EXPECT_EQ(got.records[0].kind, obs::SpanKind::kMessage);
  EXPECT_EQ(got.records[0].node, 4);
  EXPECT_EQ(got.records[0].instance.workflow, "WF|1");
  EXPECT_EQ(got.records[0].instance.number, 7);
  EXPECT_EQ(got.records[0].step, 2);
  EXPECT_EQ(got.records[0].category, 1);
  EXPECT_EQ(got.records[0].value, -3);
  EXPECT_EQ(got.records[0].name, "msg:100%|done");
  EXPECT_EQ(got.records[0].detail, "a->b\nsecond%7Cline");
  EXPECT_EQ(got.records[1].phase, obs::TracePhase::kFlowBegin);
  EXPECT_EQ(got.records[1].flow, 0xabcdef0123456789ull);
}

TEST(TraceMergeTest, CorruptRecordLineIsRejectedNotMisparsed) {
  TempDir dir;
  TraceShard shard;
  shard.endpoint = "unix:" + dir.path + "/a.sock";
  std::string path = dir.path + "/x.shard";
  ASSERT_TRUE(WriteTraceShard(shard, path).ok());
  // Append a rec line with too few fields.
  std::ofstream out(path, std::ios::app);
  out << "rec=1|2|3\n";
  out.close();
  Result<TraceShard> loaded = LoadTraceShard(path);
  EXPECT_FALSE(loaded.ok());
}

// The tentpole scenario in miniature: two transports (two clocks, one
// skewed half a second), a traced sender whose Ship() opens the flow
// span, the receiver closing it, and the merge aligning both shards
// onto one timeline with the spans paired.
TEST(TraceMergeTest, CrossProcessFlowSpansStitchAcrossTransports) {
  TempDir dir;
  Topology topology = TwoEndpointTopology(dir);
  Endpoint a = *topology.Find(1);
  Endpoint b = *topology.Find(2);

  auto epoch = std::chrono::steady_clock::now();
  auto micros = [epoch]() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  };
  constexpr int64_t kSkewUs = 500000;  // b's clock runs 0.5s ahead

  obs::RingBufferTracer ring_a;
  obs::RingBufferTracer ring_b;
  ring_a.SetNodeName(1, "engine-1");
  ring_b.SetNodeName(2, "agent-2");

  Recorder received;
  SocketTransport ta(topology, a, nullptr);
  SocketTransport tb(topology, b, received.Sink());
  ta.InstallTelemetry(&ring_a, micros);
  tb.InstallTelemetry(&ring_b, [micros]() { return micros() + kSkewUs; });
  ASSERT_TRUE(ta.Bind().ok());
  ASSERT_TRUE(tb.Bind().ok());
  ta.Start();
  tb.Start();
  ASSERT_TRUE(ta.WaitConnected(std::chrono::seconds(10)));
  ASSERT_TRUE(tb.WaitConnected(std::chrono::seconds(10)));

  constexpr int kCount = 5;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(ta.Send(Make(1, 2, i)).ok());
  }
  ASSERT_TRUE(received.WaitForCount(kCount, std::chrono::seconds(10)));

  // Receiver half: what rt::Runtime::PushDelivery records on delivery.
  // Trace ids must have propagated over the wire, scoped to the
  // sender's incarnation (1) so ids can never collide across restarts.
  for (const sim::Message& m : received.messages) {
    ASSERT_NE(m.trace_id, 0u);
    EXPECT_EQ((m.trace_id >> 32) & 0xffff, 1u);
    EXPECT_GE(m.trace_sent_ticks, 0);
    obs::TraceRecord end;
    end.time = micros() + kSkewUs;
    end.phase = obs::TracePhase::kFlowEnd;
    end.kind = obs::SpanKind::kMessage;
    end.node = m.to;
    end.flow = m.trace_id;
    end.name = "msg:" + m.type;
    ring_b.Record(end);
  }

  ta.Shutdown();
  tb.Shutdown();

  std::vector<TraceShard> shards;
  shards.push_back(ShardFromRing(ring_a, a.Address(), /*incarnation=*/1,
                                 /*tick_us=*/1, ta.ClockSamples()));
  shards.push_back(ShardFromRing(ring_b, b.Address(), /*incarnation=*/1,
                                 /*tick_us=*/1, tb.ClockSamples()));
  ASSERT_FALSE(shards[0].clocks.empty());  // HELLO exchange was sampled
  ASSERT_FALSE(shards[1].clocks.empty());

  MergeStats stats;
  std::string merged = MergeTraceShards(shards, &stats);
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.flow_begins, static_cast<size_t>(kCount));
  EXPECT_EQ(stats.flow_ends, static_cast<size_t>(kCount));
  EXPECT_EQ(stats.matched_flows, static_cast<size_t>(kCount));
  EXPECT_EQ(stats.reference, a.Address() + "#inc1");

  // Both halves render as async events under two distinct pids.
  EXPECT_NE(merged.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(merged.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(merged.find("engine-1"), std::string::npos);
  EXPECT_NE(merged.find("agent-2"), std::string::npos);

  // The estimator recovers the injected skew from the HELLO samples
  // (tolerance: connect latency asymmetry, microseconds in practice).
  ASSERT_EQ(stats.offsets_us.size(), 2u);
  EXPECT_EQ(stats.offsets_us.at(a.Address() + "#inc1"), 0);
  int64_t offset_b = stats.offsets_us.at(b.Address() + "#inc1");
  EXPECT_NEAR(static_cast<double>(offset_b), static_cast<double>(kSkewUs),
              50000.0);
}

// ---------------------------------------------------------------------------
// Telemetry documents and cluster aggregation.

TEST(TelemetryTest, ExtractJsonIntFindsAnchorsAndFallsBack) {
  std::string json = "{\"a\": 5,\"b\":-12,\"c\":\"text\",\"d\":{\"x\":7}}";
  EXPECT_EQ(ExtractJsonInt(json, "\"a\":"), 5);
  EXPECT_EQ(ExtractJsonInt(json, "\"b\":"), -12);
  EXPECT_EQ(ExtractJsonInt(json, "\"d\":{\"x\":"), 7);
  EXPECT_EQ(ExtractJsonInt(json, "\"missing\":", 42), 42);
  EXPECT_EQ(ExtractJsonInt(json, "\"c\":", 42), 42);  // not a number
}

TEST(TelemetryTest, NodeDocumentsAggregateAcrossCluster) {
  sim::Metrics m1;
  m1.CountMessage(1, 2, sim::MsgCategory::kNormal, 100, "wi1");
  m1.CountMessage(1, 2, sim::MsgCategory::kNormal, 60, "wi2");
  m1.AddLoad(1, sim::LoadCategory::kNavigation, 50);
  sim::Metrics m2;
  m2.CountMessage(2, 1, sim::MsgCategory::kAbort, 40, "wi3");
  m2.AddLoad(2, sim::LoadCategory::kProgram, 9);

  rt::RuntimeStats rs1;
  rs1.messages_delivered = 11;
  rs1.mailbox_parks = 3;
  rs1.mailbox_depth = 2;
  rt::RuntimeStats rs2;
  rs2.messages_delivered = 7;
  rs2.messages_parked = 1;

  SocketTransportStats ts1;
  ts1.frames_sent = 20;
  ts1.frames_delivered = 15;
  ts1.frames_replayed = 4;
  ts1.frames_batched = 12;
  ts1.batches_sent = 3;
  ts1.bytes_sent = 5000;
  ts1.write_syscalls = 8;
  ts1.retained_bytes = 1000;
  SocketTransportStats ts2;
  ts2.frames_sent = 5;
  ts2.frames_deduped = 2;
  ts2.reconnects = 1;
  ts2.held_bytes = 64;

  SocketTransportPeerStats peer;
  peer.peer = "unix:/tmp/b.sock";
  peer.connected = true;
  peer.next_seq = 21;
  peer.ack_lag_frames = 6;
  peer.retained_bytes = 1000;

  NodeTelemetry n1{"unix:/tmp/a.sock",
                   NodeTelemetryJson("unix:/tmp/a.sock", 1, m1, rs1, ts1,
                                     {peer})};
  NodeTelemetry n2{"unix:/tmp/b.sock",
                   NodeTelemetryJson("unix:/tmp/b.sock", 2, m2, rs2, ts2,
                                     {})};

  // Per-document scrape hits the right anchors.
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"messages\":{\"total\":"), 2);
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"bytes\":"), 160);
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"load\":{\"total\":"), 50);
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"frames_replayed\":"), 4);
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"frames_batched\":"), 12);
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"batches_sent\":"), 3);
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"write_syscalls\":"), 8);
  // Derived gauges: 12/3 frames per batch, 5000/8 bytes per syscall.
  EXPECT_NE(n1.json.find("\"mean_frames_per_batch\":4.00"),
            std::string::npos);
  EXPECT_NE(n1.json.find("\"bytes_per_syscall\":625.00"),
            std::string::npos);
  // Zero-divisor documents stay well-formed (0.00, not NaN).
  EXPECT_NE(n2.json.find("\"mean_frames_per_batch\":0.00"),
            std::string::npos);
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"ack_lag_frames\":"), 6);
  EXPECT_EQ(ExtractJsonInt(n1.json, "\"incarnation\":"), 1);

  ClusterAggregate agg = AggregateTelemetry({n1, n2});
  EXPECT_EQ(agg.nodes, 2);
  EXPECT_EQ(agg.messages_total, 3);
  EXPECT_EQ(agg.message_bytes, 200);
  EXPECT_EQ(agg.load_total, 59);
  EXPECT_EQ(agg.frames_sent, 25);
  EXPECT_EQ(agg.frames_delivered, 15);
  EXPECT_EQ(agg.frames_deduped, 2);
  EXPECT_EQ(agg.frames_replayed, 4);
  EXPECT_EQ(agg.frames_batched, 12);
  EXPECT_EQ(agg.batches_sent, 3);
  EXPECT_EQ(agg.write_syscalls, 8);
  EXPECT_EQ(agg.reconnects, 1);
  EXPECT_EQ(agg.retained_bytes, 1000);
  EXPECT_EQ(agg.held_bytes, 64);
  EXPECT_EQ(agg.messages_delivered, 18);
  EXPECT_EQ(agg.messages_parked, 1);
  EXPECT_EQ(agg.mailbox_parks, 3);
  EXPECT_EQ(agg.mailbox_depth, 2);

  std::string line = AggregateSummaryLine(agg);
  EXPECT_NE(line.find("cluster n=2"), std::string::npos);
  EXPECT_NE(line.find("replay=4"), std::string::npos);
  EXPECT_NE(line.find("batch=12/3"), std::string::npos);
  std::string node_line = NodeSummaryLine(n1);
  EXPECT_NE(node_line.find("unix:/tmp/a.sock"), std::string::npos);
  EXPECT_NE(node_line.find("sent=20"), std::string::npos);

  std::string cluster = ClusterTelemetryJson({n1, n2});
  EXPECT_EQ(cluster.compare(0, 13, "{\"aggregate\":"), 0);
  EXPECT_NE(cluster.find(n1.json), std::string::npos);
  EXPECT_NE(cluster.find(n2.json), std::string::npos);
}

// Placement counters scraped per node, imbalance over the full
// candidate set (idle nodes count against balance), and exact
// cross-process latency pooling via sparse bucket pairs.
TEST(TelemetryTest, PlacementCountsImbalanceAndPooledLatency) {
  sim::Metrics m1;
  m1.AddCounter("placement.wf.n1", 6);
  m1.AddCounter("placement.wf.n2", 2);
  m1.AddCounter("wf.committed", 7);
  for (int i = 0; i < 100; ++i) m1.Latency("wf.sojourn_ticks").Add(10 + i);
  sim::Metrics m2;
  m2.AddCounter("placement.wf.n3", 4);
  m2.AddCounter("wf.aborted", 1);
  for (int i = 0; i < 50; ++i) m2.Latency("wf.sojourn_ticks").Add(1000 + i);

  rt::RuntimeStats rs;
  SocketTransportStats ts;
  NodeTelemetry n1{"unix:/tmp/a.sock",
                   NodeTelemetryJson("unix:/tmp/a.sock", 1, m1, rs, ts, {})};
  NodeTelemetry n2{"unix:/tmp/b.sock",
                   NodeTelemetryJson("unix:/tmp/b.sock", 1, m2, rs, ts, {})};

  std::map<NodeId, int64_t> counts = PlacementCounts({n1, n2});
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[1], 6);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 4);

  // Three populated nodes but four candidates: the idle fourth node
  // pulls the mean down and the imbalance up.
  PlacementImbalance im = ComputeImbalance(counts, 4);
  EXPECT_EQ(im.nodes, 4);
  EXPECT_EQ(im.total, 12);
  EXPECT_EQ(im.max_count, 6);
  EXPECT_DOUBLE_EQ(im.mean, 3.0);
  EXPECT_DOUBLE_EQ(im.max_over_mean, 2.0);

  ClusterAggregate agg = AggregateTelemetry({n1, n2});
  EXPECT_EQ(agg.wf_committed, 7);
  EXPECT_EQ(agg.wf_aborted, 1);
  EXPECT_NE(AggregateSummaryLine(agg).find("wf=7/1"), std::string::npos);

  // Pooling the shipped buckets is exact at bucket resolution: the
  // percentiles match a histogram rebuilt from the same buckets locally
  // (the wire loses nothing beyond what the buckets already lost).
  obs::LatencyHistogram pooled = PooledLatency({n1, n2}, "wf.sojourn_ticks");
  obs::LatencyHistogram direct("direct");
  for (int i = 0; i < 100; ++i) direct.Add(10 + i);
  for (int i = 0; i < 50; ++i) direct.Add(1000 + i);
  obs::LatencyHistogram reference("reference");
  for (size_t i = 0; i < direct.buckets().size(); ++i) {
    reference.AddBucket(static_cast<int>(i), direct.buckets()[i]);
  }
  EXPECT_EQ(pooled.count(), direct.count());
  EXPECT_DOUBLE_EQ(pooled.Percentile(50), reference.Percentile(50));
  EXPECT_DOUBLE_EQ(pooled.Percentile(95), reference.Percentile(95));
  EXPECT_DOUBLE_EQ(pooled.Percentile(99), reference.Percentile(99));
  // Bucket interpolation stays within one bucket of the true samples.
  EXPECT_NEAR(pooled.Percentile(50), direct.Percentile(50), 16.0);
  EXPECT_NEAR(pooled.Percentile(99), direct.Percentile(99), 64.0);
  // A name that never recorded pools to an empty histogram.
  EXPECT_EQ(PooledLatency({n1, n2}, "no.such.latency").count(), 0);

  std::string cluster = ClusterTelemetryJson({n1, n2});
  EXPECT_NE(cluster.find("\"placement\":{\"nodes\":3,\"total\":12,\"max\":6"),
            std::string::npos);
}

// Satellite guarantee: ReportJson is byte-stable — the same counts
// serialize identically no matter the arrival (or shard-merge) order.
TEST(TelemetryTest, ReportJsonByteStableAcrossMergeOrder) {
  sim::Metrics shard_a;
  shard_a.CountMessage(1, 2, sim::MsgCategory::kNormal, 10, "wi1");
  shard_a.AddLoad(1, sim::LoadCategory::kNavigation, 5);
  shard_a.AddCounter("zeta.last", 1);
  shard_a.AddCounter("alpha.first", 2);
  sim::Metrics shard_b;
  shard_b.CountMessage(2, 1, sim::MsgCategory::kAbort, 20, "wi2");
  shard_b.AddLoad(2, sim::LoadCategory::kProgram, 7);
  shard_b.AddCounter("alpha.first", 3);

  sim::Metrics ab;
  ab.MergeFrom(shard_a);
  ab.MergeFrom(shard_b);
  sim::Metrics ba;
  ba.MergeFrom(shard_b);
  ba.MergeFrom(shard_a);
  EXPECT_EQ(ab.ReportJson(), ba.ReportJson());
}

}  // namespace
}  // namespace crew::net
