// Robustness of the distributed message-handling surface: corrupt
// payloads, unknown schemas, stale epochs, duplicate deliveries, and
// misaddressed workflow interfaces must never crash an agent or corrupt
// an instance; they are ignored or answered with "unknown".
#include <gtest/gtest.h>

#include "dist/system.h"
#include "model/builder.h"
#include "runtime/wire.h"

namespace crew::dist {
namespace {

using model::SchemaBuilder;
using runtime::WorkflowState;

class ProtocolFixture {
 public:
  ProtocolFixture() : simulator_(42) {
    programs_.RegisterBuiltins();
    system_ = std::make_unique<DistributedSystem>(
        &simulator_, &programs_, &deployment_, &coordination_, 4);
    SchemaBuilder b("Wf");
    StepId s1 = b.AddTask("A", "noop");
    StepId s2 = b.AddTask("B", "noop");
    StepId s3 = b.AddTask("C", "noop");
    b.Sequence({s1, s2, s3});
    auto compiled =
        model::CompiledSchema::Compile(std::move(b.Build()).value());
    schema_ = compiled.value();
    for (StepId s = 1; s <= 3; ++s) {
      deployment_.SetEligible("Wf", s, {1, 2});
    }
    system_->RegisterSchema(schema_);
  }

  /// Sends a raw message from the front-end node to agent 1.
  void Inject(const std::string& type, const std::string& payload) {
    sim::Message msg{kFrontEndNode, 1, type, payload,
                     sim::MsgCategory::kNormal};
    ASSERT_TRUE(simulator_.network().Send(std::move(msg)).ok());
    simulator_.Run();
  }

  sim::Simulator simulator_;
  runtime::ProgramRegistry programs_;
  model::Deployment deployment_;
  runtime::CoordinationSpec coordination_;
  model::CompiledSchemaPtr schema_;
  std::unique_ptr<DistributedSystem> system_;
};

TEST(ProtocolTest, CorruptPayloadsAreIgnored) {
  ProtocolFixture fix;
  const char* types[] = {
      runtime::wi::kStepExecute,    runtime::wi::kWorkflowStart,
      runtime::wi::kStepCompleted,  runtime::wi::kWorkflowRollback,
      runtime::wi::kHaltThread,     runtime::wi::kCompensateSet,
      runtime::wi::kStepCompensate, runtime::wi::kWorkflowAbort,
      runtime::wi::kStepStatus,     runtime::wi::kAddRule,
      runtime::wi::kAddEvent,       runtime::wi::kAddPrecondition,
      runtime::wi::kPurgeInstances,
  };
  for (const char* type : types) {
    fix.Inject(type, "complete garbage without equals");
    fix.Inject(type, "wf=Wf\n");  // structurally incomplete
  }
  // The agent is still alive and functional: a real workflow commits.
  Result<InstanceId> id = fix.system_->front_end().StartWorkflow("Wf", {});
  ASSERT_TRUE(id.ok());
  fix.simulator_.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id.value()),
            WorkflowState::kCommitted);
}

TEST(ProtocolTest, UnknownMessageTypeIsIgnored) {
  ProtocolFixture fix;
  fix.Inject("NotARealInterface", "wf=Wf\ninst=1\n");
  Result<InstanceId> id = fix.system_->front_end().StartWorkflow("Wf", {});
  ASSERT_TRUE(id.ok());
  fix.simulator_.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id.value()),
            WorkflowState::kCommitted);
}

TEST(ProtocolTest, PacketForUnknownSchemaIsDropped) {
  ProtocolFixture fix;
  runtime::WorkflowPacket packet;
  packet.instance = {"Ghost", 9};
  packet.target_step = 1;
  fix.Inject(runtime::wi::kStepExecute, packet.Serialize());
  EXPECT_EQ(fix.system_->agent(0).live_instances(), 0u);
}

TEST(ProtocolTest, StaleEpochPacketIgnored) {
  ProtocolFixture fix;
  // Run a real instance to completion first.
  Result<InstanceId> id = fix.system_->front_end().StartWorkflow("Wf", {});
  ASSERT_TRUE(id.ok());
  fix.simulator_.Run();
  ASSERT_EQ(fix.system_->front_end().KnownStatus(id.value()),
            WorkflowState::kCommitted);
  int64_t committed_before = fix.system_->committed_count();

  // Replay a stale epoch-(-1) packet for the (purged) instance plus a
  // brand-new instance id with an old epoch: neither may disturb counts.
  runtime::WorkflowPacket stale;
  stale.instance = id.value();
  stale.target_step = 2;
  stale.epoch = -1;
  stale.events.push_back({"S1.done", 1, 0});
  fix.Inject(runtime::wi::kStepExecute, stale.Serialize());
  EXPECT_EQ(fix.system_->committed_count(), committed_before);
}

TEST(ProtocolTest, DuplicatePacketDeliveryIsIdempotent) {
  ProtocolFixture fix;
  Result<InstanceId> id = fix.system_->front_end().StartWorkflow("Wf", {});
  ASSERT_TRUE(id.ok());
  fix.simulator_.queue().RunUntil(4);
  // Capture-and-replay: synthesize the S2 packet as the S1 executor
  // would have sent it, and deliver it twice more.
  runtime::WorkflowPacket replay;
  replay.instance = id.value();
  replay.target_step = 2;
  replay.events.push_back({"WF.start", 1, 0});
  replay.events.push_back({"S1.done", 1, 0});
  replay.data["S1.O1"] = Value(int64_t{1});
  replay.executed_by[1] = 1;
  fix.Inject(runtime::wi::kStepExecute, replay.Serialize());
  fix.Inject(runtime::wi::kStepExecute, replay.Serialize());
  fix.simulator_.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id.value()),
            WorkflowState::kCommitted);
  // Exactly one commit, despite the duplicate deliveries.
  EXPECT_EQ(fix.system_->committed_count(), 1);
}

TEST(ProtocolTest, StepStatusForUnknownInstanceAnswersUnknown) {
  ProtocolFixture fix;
  runtime::StepStatusMsg query;
  query.instance = {"Wf", 404};
  query.step = 2;
  query.reply_to = kFrontEndNode;  // replies land at the front end (noop)
  fix.Inject(runtime::wi::kStepStatus, query.Serialize());
  // No crash; nothing started.
  EXPECT_EQ(fix.system_->committed_count(), 0);
}

TEST(ProtocolTest, AbortForUnknownInstanceIsHarmless) {
  ProtocolFixture fix;
  runtime::WorkflowAbortMsg abort;
  abort.instance = {"Wf", 404};
  fix.Inject(runtime::wi::kWorkflowAbort, abort.Serialize());
  EXPECT_EQ(fix.system_->aborted_count(), 0);
}

TEST(ProtocolTest, RollbackForUnknownInstanceCreatesNoGhost) {
  ProtocolFixture fix;
  runtime::WorkflowRollbackMsg rollback;
  rollback.instance = {"Wf", 404};
  rollback.origin_step = 1;
  rollback.new_epoch = 1;
  rollback.state.instance = rollback.instance;
  fix.Inject(runtime::wi::kWorkflowRollback, rollback.Serialize());
  // The agent materializes state for the rollback (it may legitimately
  // be the first contact), but nothing executes and nothing commits:
  // no rules have valid triggers.
  EXPECT_EQ(fix.system_->committed_count(), 0);
}

}  // namespace
}  // namespace crew::dist
