#include <gtest/gtest.h>

#include "dist/system.h"
#include "laws/export.h"
#include "laws/parser.h"

namespace crew::laws {
namespace {

const char kOrderSpec[] = R"LAWS(
# Order processing, LAWS style.
workflow OrderProcessing {
  input WF.I1
  step Receive  program "recv" cost 500
  step Check    program "check" query inputs WF.I1
  step Reserve  program "reserve" inputs S2.O1
  step Ship     program "ship"
  step Refuse   program "refuse" no_abort_comp
  arc Receive -> Check
  arc Check -> Reserve when "S2.O1 >= 1"
  arc Check -> Refuse else
  arc Reserve -> Ship
  on_fail Ship rollback_to Reserve max_attempts 3
  reexec Reserve when "changed(S2.O1)"
  compensation Reserve program "unreserve" partial 0.25 incremental 0.5
  comp_dep_set Reserve, Ship
  terminal_group Ship, Refuse
}

workflow Billing {
  step Invoice program "invoice"
  step Collect program "collect"
  arc Invoice -> Collect
}

coordination {
  relative_order ro1 between OrderProcessing and OrderProcessing pairs ( Reserve , Reserve ), ( Ship , Ship )
  mutex m1 resource "warehouse" steps OrderProcessing.Reserve
  rollback_dep rd1 from OrderProcessing.Reserve to Billing.Invoice
}
)LAWS";

TEST(LawsParserTest, ParsesFullSpecification) {
  Result<LawsFile> parsed = ParseLaws(kOrderSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const LawsFile& file = parsed.value();
  ASSERT_EQ(file.schemas.size(), 2u);

  const model::Schema& order = file.schemas[0]->schema();
  EXPECT_EQ(order.name(), "OrderProcessing");
  EXPECT_EQ(order.num_steps(), 5);
  StepId receive = order.FindStepByName("Receive");
  StepId check = order.FindStepByName("Check");
  StepId reserve = order.FindStepByName("Reserve");
  EXPECT_EQ(order.start_step(), receive);
  EXPECT_EQ(order.step(receive).cost, 500);
  EXPECT_EQ(order.step(check).access, model::AccessKind::kQuery);
  EXPECT_EQ(order.step(check).inputs, (std::vector<std::string>{"WF.I1"}));
  EXPECT_FALSE(order.step(order.FindStepByName("Refuse"))
                   .compensate_on_abort);
  EXPECT_EQ(order.step(order.FindStepByName("Ship")).failure.rollback_to,
            reserve);
  ASSERT_NE(order.step(reserve).ocr.reexec_condition, nullptr);
  EXPECT_EQ(order.step(reserve).compensation_program, "unreserve");
  EXPECT_DOUBLE_EQ(order.step(reserve).ocr.partial_compensation_fraction,
                   0.25);
  ASSERT_EQ(order.comp_dep_sets().size(), 1u);
  ASSERT_EQ(order.terminal_groups().size(), 1u);
  EXPECT_EQ(order.terminal_groups()[0].size(), 2u);

  // Coordination resolved to step ids.
  ASSERT_EQ(file.coordination.relative_orders.size(), 1u);
  EXPECT_EQ(file.coordination.relative_orders[0].step_pairs[0].first,
            reserve);
  ASSERT_EQ(file.coordination.mutexes.size(), 1u);
  EXPECT_EQ(file.coordination.mutexes[0].resource, "warehouse");
  ASSERT_EQ(file.coordination.rollback_deps.size(), 1u);
  EXPECT_EQ(file.coordination.rollback_deps[0].workflow_b, "Billing");
}

TEST(LawsParserTest, LoopsAndJoins) {
  const char spec[] = R"(
workflow Loopy {
  step Body  program "noop"
  step After program "noop"
  arc Body -> After when "S1.O1 >= 3"
  back Body -> Body when "S1.O1 < 3"
  join Body or
}
)";
  Result<LawsFile> parsed = ParseLaws(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const model::Schema& schema = parsed.value().schemas[0]->schema();
  EXPECT_EQ(schema.step(1).join, model::JoinKind::kOr);
  EXPECT_FALSE(schema.step(1).ocr.compensate_before_reexec);  // loop body
}

TEST(LawsParserTest, SubWorkflowStep) {
  const char spec[] = R"(
workflow Child {
  step Only program "noop"
}
workflow Parent {
  step Pre   program "noop"
  subworkflow Run schema Child inputs S1.O1
  step Post  program "noop"
  arc Pre -> Run
  arc Run -> Post
}
)";
  Result<LawsFile> parsed = ParseLaws(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const model::Schema& parent = parsed.value().schemas[1]->schema();
  StepId run = parent.FindStepByName("Run");
  EXPECT_EQ(parent.step(run).kind, model::StepKind::kSubWorkflow);
  EXPECT_EQ(parent.step(run).sub_workflow, "Child");
  EXPECT_EQ(parent.step(run).inputs,
            (std::vector<std::string>{"S1.O1"}));
}

TEST(LawsParserTest, RejectsBadInput) {
  EXPECT_FALSE(ParseLaws("nonsense {").ok());
  EXPECT_FALSE(ParseLaws("workflow A {").ok());  // unterminated
  EXPECT_FALSE(ParseLaws(R"(
workflow A {
  step S1 program "p"
  arc S1 -> S2
}
)").ok());  // unknown step
  EXPECT_FALSE(ParseLaws(R"(
workflow A {
  step S1 program "p"
  step S1 program "q"
}
)").ok());  // duplicate step
  EXPECT_FALSE(ParseLaws(R"(
workflow A {
  step S1 program "p"
  reexec S1 when "1 +"
}
)").ok());  // bad expression
  EXPECT_FALSE(ParseLaws(R"(
coordination {
  mutex m resource "r" steps Nope.S1
}
)").ok());  // unknown workflow
}

TEST(LawsParserTest, CommentsAndBlankLinesIgnored) {
  const char spec[] = R"(
# leading comment

workflow A {   # trailing comment
  step S1 program "noop"  # another
}
)";
  Result<LawsFile> parsed = ParseLaws(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().schemas.size(), 1u);
}

TEST(LawsIntegrationTest, ParsedWorkflowRunsDistributed) {
  Result<LawsFile> parsed = ParseLaws(kOrderSpec);
  ASSERT_TRUE(parsed.ok());

  sim::Simulator simulator(42);
  runtime::ProgramRegistry programs;
  programs.RegisterBuiltins();
  // Alias the LAWS program names onto builtins.
  for (const char* name : {"recv", "check", "reserve", "ship", "refuse",
                           "unreserve", "invoice", "collect"}) {
    programs.Register(name, [](const runtime::ProgramContext& ctx) {
      runtime::ProgramOutcome out;
      out.outputs["O1"] = Value(static_cast<int64_t>(ctx.attempt));
      return out;
    });
  }
  model::Deployment deployment;
  dist::DistributedSystem system(&simulator, &programs, &deployment,
                                 &parsed.value().coordination, 6);
  for (const model::CompiledSchemaPtr& schema : parsed.value().schemas) {
    deployment.AssignRandom(*schema, system.agent_ids(), 2,
                            &simulator.rng());
    system.RegisterSchema(schema);
  }
  Result<InstanceId> id = system.front_end().StartWorkflow(
      "OrderProcessing", {{"WF.I1", Value(int64_t{4})}});
  ASSERT_TRUE(id.ok());
  simulator.Run();
  EXPECT_EQ(system.front_end().KnownStatus(id.value()),
            runtime::WorkflowState::kCommitted);
}

TEST(LawsExportTest, WorkflowRoundTripsThroughLawsText) {
  Result<LawsFile> parsed = ParseLaws(kOrderSpec);
  ASSERT_TRUE(parsed.ok());
  std::vector<const model::Schema*> schemas;
  for (const model::CompiledSchemaPtr& compiled : parsed.value().schemas) {
    schemas.push_back(&compiled->schema());
  }
  std::string exported =
      ExportLaws(schemas, parsed.value().coordination);

  Result<LawsFile> reparsed = ParseLaws(exported);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << exported;
  ASSERT_EQ(reparsed.value().schemas.size(),
            parsed.value().schemas.size());
  for (size_t i = 0; i < schemas.size(); ++i) {
    const model::Schema& a = *schemas[i];
    const model::Schema& b = reparsed.value().schemas[i]->schema();
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.num_steps(), b.num_steps());
    for (StepId s = 1; s <= a.num_steps(); ++s) {
      EXPECT_EQ(a.step(s).name, b.step(s).name);
      EXPECT_EQ(a.step(s).program, b.step(s).program);
      EXPECT_EQ(a.step(s).cost, b.step(s).cost);
      EXPECT_EQ(a.step(s).access, b.step(s).access);
      EXPECT_EQ(a.step(s).join, b.step(s).join);
      EXPECT_EQ(a.step(s).inputs, b.step(s).inputs);
      EXPECT_EQ(a.step(s).failure.rollback_to,
                b.step(s).failure.rollback_to);
      EXPECT_EQ(a.step(s).compensation_program,
                b.step(s).compensation_program);
      EXPECT_EQ(a.step(s).compensate_on_abort,
                b.step(s).compensate_on_abort);
    }
    EXPECT_EQ(a.control_arcs().size(), b.control_arcs().size());
    EXPECT_EQ(a.comp_dep_sets().size(), b.comp_dep_sets().size());
    EXPECT_EQ(a.terminal_groups().size(), b.terminal_groups().size());
    EXPECT_EQ(a.start_step(), b.start_step());
  }
  const runtime::CoordinationSpec& ca = parsed.value().coordination;
  const runtime::CoordinationSpec& cb = reparsed.value().coordination;
  ASSERT_EQ(cb.relative_orders.size(), ca.relative_orders.size());
  EXPECT_EQ(cb.relative_orders[0].step_pairs,
            ca.relative_orders[0].step_pairs);
  ASSERT_EQ(cb.mutexes.size(), ca.mutexes.size());
  EXPECT_EQ(cb.mutexes[0].resource, ca.mutexes[0].resource);
  ASSERT_EQ(cb.rollback_deps.size(), ca.rollback_deps.size());
  EXPECT_EQ(cb.rollback_deps[0].step_a, ca.rollback_deps[0].step_a);
}

TEST(LawsExportTest, LoopAndConditionRoundTrip) {
  const char spec[] = R"(
workflow Loopy {
  step Body  program "noop" cost 100
  step After program "noop" cost 100
  arc Body -> After when "S1.O1 >= 3"
  back Body -> Body when "S1.O1 < 3"
  join Body or
}
)";
  Result<LawsFile> parsed = ParseLaws(spec);
  ASSERT_TRUE(parsed.ok());
  std::string exported =
      ExportWorkflow(parsed.value().schemas[0]->schema());
  Result<LawsFile> reparsed = ParseLaws(exported);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << exported;
  const model::Schema& b = reparsed.value().schemas[0]->schema();
  // Back edge and conditions preserved.
  int back_edges = 0;
  for (const model::ControlArc& arc : b.control_arcs()) {
    if (arc.is_back_edge) {
      ++back_edges;
      ASSERT_NE(arc.condition, nullptr);
    }
  }
  EXPECT_EQ(back_edges, 1);
  EXPECT_FALSE(b.step(1).ocr.compensate_before_reexec);  // loop body
}

TEST(LawsFileTest, ParsesTheShippedExampleFile) {
  // The repository ships a LAWS file used by the examples; it must stay
  // parseable and structurally sound.
  Result<LawsFile> parsed =
      ParseLawsFile(std::string(CREW_SOURCE_DIR) + "/examples/order.laws");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().schemas.size(), 2u);
  EXPECT_EQ(parsed.value().schemas[0]->schema().name(), "Order");
  EXPECT_EQ(parsed.value().schemas[0]->schema().num_steps(), 6);
  EXPECT_EQ(parsed.value().coordination.relative_orders.size(), 1u);
  EXPECT_EQ(parsed.value().coordination.mutexes.size(), 1u);
  EXPECT_EQ(parsed.value().coordination.rollback_deps.size(), 1u);
}

TEST(LawsFileTest, MissingFileIsNotFound) {
  EXPECT_TRUE(
      ParseLawsFile("/nonexistent/path.laws").status().IsNotFound());
}

}  // namespace
}  // namespace crew::laws
