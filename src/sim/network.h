#ifndef CREW_SIM_NETWORK_H_
#define CREW_SIM_NETWORK_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace crew::sim {

/// A message in flight between nodes. `payload` is the serialized wire
/// form; `type` is the workflow-interface name ("StepExecute", ...),
/// carried out-of-band so the receiver can dispatch without parsing.
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::string type;
  std::string payload;
  MsgCategory category = MsgCategory::kNormal;

  /// Cross-process trace context, carried in wire frames (net::frame).
  /// 0 / -1 = untraced: the in-process backends (sim, rt) never set
  /// these; the socket transport assigns an id at send when tracing is
  /// on, and the receiving runtime closes the sender's kMessage flow
  /// span instead of emitting a local one.
  uint64_t trace_id = 0;
  int64_t trace_sent_ticks = -1;  ///< sender-local send time (its ticks)
};

/// Destination for messages. Agents and engines implement this.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(const Message& message) = 0;
};

/// Message-transport seam between execution backends. The virtual-time
/// Network below and the live runtime's router (rt::Runtime) both
/// implement it, so engines and agents are written once against this
/// interface and run unmodified on either backend. Every implementation
/// must provide reliable, in-order (per sender-receiver pair) delivery
/// with down-node parking — the paper's messaging assumption [AAE+95].
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a node. Replaces any prior registration for the id.
  virtual void Register(NodeId id, MessageHandler* handler) = 0;

  /// Marks a node down: deliveries are deferred, not lost.
  virtual void SetNodeDown(NodeId id, bool down) = 0;
  virtual bool IsNodeDown(NodeId id) const = 0;

  /// Sends a message; counts it in Metrics; delivers after the backend's
  /// latency (or on recovery if the target is down). Unregistered
  /// destinations are a programming error -> kNotFound.
  virtual Status Send(Message message) = 0;
};

/// Reliable, in-order (per sender-receiver pair by construction of the
/// event queue) message transport with fixed latency. Implements the
/// paper's assumption that "messages are reliably delivered between
/// agents" [AAE+95]: messages to a *down* node are queued and delivered
/// once the node recovers (persistent-queue semantics).
class Network : public Transport {
 public:
  Network(EventQueue* queue, Metrics* metrics)
      : queue_(queue), metrics_(metrics) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void Register(NodeId id, MessageHandler* handler) override;

  void SetNodeDown(NodeId id, bool down) override;
  bool IsNodeDown(NodeId id) const override;

  /// Sends a message; counts it in Metrics; schedules delivery after
  /// `latency()` ticks (or on recovery if the target is down).
  Status Send(Message message) override;

  /// Delivery latency in ticks; default 1.
  Time latency() const { return latency_; }
  void set_latency(Time latency) { latency_ = latency; }

  EventQueue* queue() { return queue_; }
  Metrics* metrics() { return metrics_; }

  /// Sink for message-latency spans and node up/down instants. Never
  /// null; defaults to the no-op tracer.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer != nullptr ? tracer : obs::Tracer::Null();
  }

 private:
  /// `sent` is the virtual time Send() was called, carried through
  /// parking so the exported message span covers the true in-flight
  /// window (including time spent queued for a down node).
  void Deliver(const Message& message, Time sent);

  EventQueue* queue_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = obs::Tracer::Null();
  Time latency_ = 1;
  std::map<NodeId, MessageHandler*> handlers_;
  std::map<NodeId, bool> down_;
  // Messages queued for down nodes, with their original send time.
  std::map<NodeId, std::vector<std::pair<Time, Message>>> parked_;
};

}  // namespace crew::sim

#endif  // CREW_SIM_NETWORK_H_
