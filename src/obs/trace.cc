#include "obs/trace.h"

#include <bit>
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

namespace crew::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kStep:
      return "step";
    case SpanKind::kInstance:
      return "instance";
    case SpanKind::kOcr:
      return "ocr";
    case SpanKind::kCoord:
      return "coord";
    case SpanKind::kMessage:
      return "message";
    case SpanKind::kProgram:
      return "program";
    case SpanKind::kNode:
      return "node";
  }
  return "unknown";
}

const char* TraceCategoryLabel(int category) {
  switch (category) {
    case 0:
      return "normal";
    case 1:
      return "failure-handling";
    case 2:
      return "input-change";
    case 3:
      return "abort";
    case 4:
      return "coordination";
    case 5:
      return "election";
    case 6:
      return "admin";
  }
  return "other";
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------- Tracer

Tracer* Tracer::Null() {
  static Tracer* const kNull = new Tracer();
  return kNull;
}

void Tracer::Begin(SpanKind kind, NodeId node, const InstanceId& instance,
                   StepId step, std::string name, int category,
                   std::string detail) {
  if (!enabled()) return;
  TraceRecord r;
  r.time = now();
  r.phase = TracePhase::kBegin;
  r.kind = kind;
  r.node = node;
  r.instance = instance;
  r.step = step;
  r.category = category;
  r.name = std::move(name);
  r.detail = std::move(detail);
  Record(std::move(r));
}

void Tracer::End(SpanKind kind, NodeId node, const InstanceId& instance,
                 StepId step, std::string name, int category,
                 std::string detail) {
  if (!enabled()) return;
  TraceRecord r;
  r.time = now();
  r.phase = TracePhase::kEnd;
  r.kind = kind;
  r.node = node;
  r.instance = instance;
  r.step = step;
  r.category = category;
  r.name = std::move(name);
  r.detail = std::move(detail);
  Record(std::move(r));
}

void Tracer::Instant(SpanKind kind, NodeId node, const InstanceId& instance,
                     StepId step, std::string name, int64_t value,
                     std::string detail, int category) {
  if (!enabled()) return;
  TraceRecord r;
  r.time = now();
  r.phase = TracePhase::kInstant;
  r.kind = kind;
  r.node = node;
  r.instance = instance;
  r.step = step;
  r.category = category;
  r.value = value;
  r.name = std::move(name);
  r.detail = std::move(detail);
  Record(std::move(r));
}

void Tracer::Complete(SpanKind kind, NodeId node, const InstanceId& instance,
                      StepId step, std::string name, int64_t begin_time,
                      int64_t dur, int category, std::string detail) {
  if (!enabled()) return;
  TraceRecord r;
  r.time = begin_time;
  r.dur = dur;
  r.phase = TracePhase::kComplete;
  r.kind = kind;
  r.node = node;
  r.instance = instance;
  r.step = step;
  r.category = category;
  r.name = std::move(name);
  r.detail = std::move(detail);
  Record(std::move(r));
}

void Tracer::FlowBegin(SpanKind kind, NodeId node, uint64_t flow,
                       std::string name, int64_t begin_time, int category,
                       std::string detail, int64_t value) {
  if (!enabled()) return;
  TraceRecord r;
  r.time = begin_time;
  r.phase = TracePhase::kFlowBegin;
  r.kind = kind;
  r.node = node;
  r.category = category;
  r.value = value;
  r.flow = flow;
  r.name = std::move(name);
  r.detail = std::move(detail);
  Record(std::move(r));
}

void Tracer::FlowEnd(SpanKind kind, NodeId node, uint64_t flow,
                     std::string name, int category, std::string detail,
                     int64_t value) {
  if (!enabled()) return;
  TraceRecord r;
  r.time = now();
  r.phase = TracePhase::kFlowEnd;
  r.kind = kind;
  r.node = node;
  r.category = category;
  r.value = value;
  r.flow = flow;
  r.name = std::move(name);
  r.detail = std::move(detail);
  Record(std::move(r));
}

// ----------------------------------------------------- LatencyHistogram

LatencyHistogram::LatencyHistogram(std::string name, std::string unit)
    : name_(std::move(name)),
      unit_(std::move(unit)),
      buckets_(kNumBuckets, 0) {}

int LatencyHistogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  if (value < kLinearBuckets) return static_cast<int>(value);
  int msb = std::bit_width(static_cast<uint64_t>(value)) - 1;  // >= 6
  int sub = static_cast<int>((value >> (msb - 5)) & (kSubBuckets - 1));
  int index = kLinearBuckets + (msb - 6) * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

int64_t LatencyHistogram::BucketLower(int index) {
  if (index < kLinearBuckets) return index;
  int k = index - kLinearBuckets;
  int msb = 6 + k / kSubBuckets;
  int sub = k % kSubBuckets;
  return (int64_t{1} << msb) +
         (static_cast<int64_t>(sub) << (msb - 5));
}

int64_t LatencyHistogram::BucketUpper(int index) {
  // Inclusive: the largest value that lands in this bucket.
  if (index < kLinearBuckets) return index;
  int k = index - kLinearBuckets;
  int msb = 6 + k / kSubBuckets;
  return BucketLower(index) + (int64_t{1} << (msb - 5)) - 1;
}

void LatencyHistogram::Add(int64_t value) {
  if (value < 0) value = 0;
  ++buckets_[static_cast<size_t>(BucketIndex(value))];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += static_cast<double>(value);
}

void LatencyHistogram::AddBucket(int index, int64_t count) {
  if (index < 0 || index >= kNumBuckets || count <= 0) return;
  buckets_[static_cast<size_t>(index)] += count;
  int64_t lower = BucketLower(index);
  int64_t upper = BucketUpper(index);
  if (count_ == 0 || lower < min_) min_ = lower;
  if (upper > max_) max_ = upper;
  count_ += count;
  sum_ += static_cast<double>(count) *
          (static_cast<double>(lower) + static_cast<double>(upper)) / 2.0;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(count_);
  if (rank < 1.0) rank = 1.0;
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t in_bucket = buckets_[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      double frac =
          (rank - static_cast<double>(cumulative) - 0.5) /
          static_cast<double>(in_bucket);
      frac = std::clamp(frac, 0.0, 1.0);
      double lo = static_cast<double>(BucketLower(i));
      double hi = static_cast<double>(BucketUpper(i));
      return std::clamp(lo + frac * (hi - lo), static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max_);
}

std::string LatencyHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-14s n=%-7" PRId64
                " p50=%-8.1f p95=%-8.1f p99=%-8.1f mean=%-8.1f max=%" PRId64
                "%s%s",
                name_.c_str(), count_, Percentile(50), Percentile(95),
                Percentile(99), mean(), max_, unit_.empty() ? "" : " ",
                unit_.c_str());
  return buf;
}

std::string LatencyHistogram::ToJson() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"unit\":\"%s\",\"count\":%" PRId64
                ",\"min\":%" PRId64 ",\"max\":%" PRId64
                ",\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}",
                JsonEscape(name_).c_str(), JsonEscape(unit_).c_str(), count_,
                min(), max_, mean(), Percentile(50), Percentile(95),
                Percentile(99));
  return buf;
}

// ----------------------------------------------------- RingBufferTracer

RingBufferTracer::RingBufferTracer(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)),
      step_latency_("step", "ticks"),
      instance_latency_("instance", "ticks"),
      lock_wait_("lock-wait", "ticks"),
      rollback_depth_("rollback-depth", "steps") {}

void RingBufferTracer::SetNodeName(NodeId node, const std::string& name) {
  node_names_[node] = name;
}

void RingBufferTracer::Push(TraceRecord record) {
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
  ++recorded_;
}

void RingBufferTracer::FeedHistograms(const TraceRecord& record) {
  if (record.phase == TracePhase::kComplete) {
    if (record.kind == SpanKind::kStep && record.name == "step") {
      step_latency_.Add(record.dur);
    } else if (record.kind == SpanKind::kInstance &&
               record.name == "instance") {
      instance_latency_.Add(record.dur);
    } else if (record.kind == SpanKind::kCoord &&
               record.name == "mutex.wait") {
      lock_wait_.Add(record.dur);
    }
  } else if (record.phase == TracePhase::kInstant &&
             record.kind == SpanKind::kOcr &&
             (record.name == "rollback" || record.name == "halt")) {
    rollback_depth_.Add(record.value);
  }
}

void RingBufferTracer::Record(TraceRecord record) {
  if (record.phase == TracePhase::kFlowBegin ||
      record.phase == TracePhase::kFlowEnd) {
    // Half of a cross-process span: the matching half lives in another
    // process's ring, so there is nothing to pair locally — store as-is
    // for the shard export and let the trace merge pair by flow id.
    Push(std::move(record));
    return;
  }
  SpanKey key{static_cast<int>(record.kind), record.instance, record.step,
              record.name};
  if (record.phase == TracePhase::kBegin) {
    // First Begin wins: a step re-dispatched while blocked keeps the
    // original start, so the span covers the full wait.
    open_.emplace(std::move(key), std::move(record));
    return;
  }
  if (record.phase == TracePhase::kEnd) {
    auto it = open_.find(key);
    if (it == open_.end()) {
      ++unmatched_ends_;
      return;
    }
    TraceRecord span = std::move(it->second);
    open_.erase(it);
    span.phase = TracePhase::kComplete;
    span.dur = record.time - span.time;
    if (!record.detail.empty()) span.detail = std::move(record.detail);
    if (record.category != 0) span.category = record.category;
    if (record.value != 0) span.value = record.value;
    FeedHistograms(span);
    Push(std::move(span));
    return;
  }
  FeedHistograms(record);
  Push(std::move(record));
}

namespace {

std::string DisplayName(const TraceRecord& r) {
  std::string name = r.name;
  if (!r.instance.workflow.empty() || r.instance.number != 0) {
    name += " ";
    name += r.instance.ToString();
  }
  if (r.step != kInvalidStep) {
    name += " S" + std::to_string(r.step);
  }
  return name;
}

void AppendArgs(std::string* out, const TraceRecord& r) {
  *out += "\"args\":{\"instance\":\"" + JsonEscape(r.instance.ToString()) +
          "\",\"step\":" + std::to_string(r.step) +
          ",\"category\":\"" + TraceCategoryLabel(r.category) + "\"";
  if (r.value != 0) *out += ",\"value\":" + std::to_string(r.value);
  if (!r.detail.empty()) {
    *out += ",\"detail\":\"" + JsonEscape(r.detail) + "\"";
  }
  *out += "}";
}

}  // namespace

std::string RingBufferTracer::ChromeTraceJson() const {
  std::string out;
  out.reserve(records_.size() * 160 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" +
         std::to_string(dropped_) +
         ",\"openSpans\":" + std::to_string(open_.size()) +
         "},\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  comma();
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"crew-sim\"}}";

  // One thread track per node; pick up nodes seen in records even if
  // they were never given an explicit name.
  std::map<NodeId, std::string> tracks = node_names_;
  for (const TraceRecord& r : records_) {
    if (r.node != kInvalidNode && tracks.find(r.node) == tracks.end()) {
      tracks[r.node] = "node-" + std::to_string(r.node);
    }
  }
  for (const auto& [node, name] : tracks) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(node) + ",\"args\":{\"name\":\"" +
           JsonEscape(name) + "\"}}";
  }

  for (const TraceRecord& r : records_) {
    comma();
    std::string cat = std::string(SpanKindName(r.kind)) + "," +
                      TraceCategoryLabel(r.category);
    NodeId tid = r.node == kInvalidNode ? 0 : r.node;
    if (r.phase == TracePhase::kComplete) {
      out += "{\"name\":\"" + JsonEscape(DisplayName(r)) + "\",\"cat\":\"" +
             cat + "\",\"ph\":\"X\",\"ts\":" + std::to_string(r.time) +
             ",\"dur\":" + std::to_string(std::max<int64_t>(r.dur, 0)) +
             ",\"pid\":0,\"tid\":" + std::to_string(tid) + ",";
      AppendArgs(&out, r);
      out += "}";
    } else if (r.phase == TracePhase::kFlowBegin ||
               r.phase == TracePhase::kFlowEnd) {
      // Async begin/end: Chrome/Perfetto pair them by (cat, id, name).
      char id[24];
      std::snprintf(id, sizeof(id), "0x%" PRIx64, r.flow);
      out += "{\"name\":\"" + JsonEscape(r.name) + "\",\"cat\":\"" + cat +
             "\",\"ph\":\"" +
             (r.phase == TracePhase::kFlowBegin ? "b" : "e") +
             "\",\"id\":\"" + id + "\",\"ts\":" + std::to_string(r.time) +
             ",\"pid\":0,\"tid\":" + std::to_string(tid) + ",";
      AppendArgs(&out, r);
      out += "}";
    } else {
      out += "{\"name\":\"" + JsonEscape(DisplayName(r)) + "\",\"cat\":\"" +
             cat + "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
             std::to_string(r.time) + ",\"pid\":0,\"tid\":" +
             std::to_string(tid) + ",";
      AppendArgs(&out, r);
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string RingBufferTracer::JsonlLog() const {
  std::string out;
  out.reserve(records_.size() * 120);
  for (const TraceRecord& r : records_) {
    out += "{\"t\":" + std::to_string(r.time);
    if (r.phase == TracePhase::kComplete) {
      out += ",\"dur\":" + std::to_string(r.dur);
    }
    if (r.phase == TracePhase::kFlowBegin ||
        r.phase == TracePhase::kFlowEnd) {
      char flow[48];
      std::snprintf(flow, sizeof(flow), ",\"ph\":\"%s\",\"flow\":\"0x%" PRIx64
                    "\"",
                    r.phase == TracePhase::kFlowBegin ? "fb" : "fe", r.flow);
      out += flow;
    }
    out += ",\"kind\":\"" + std::string(SpanKindName(r.kind)) +
           "\",\"name\":\"" + JsonEscape(r.name) + "\",\"node\":" +
           std::to_string(r.node) + ",\"instance\":\"" +
           JsonEscape(r.instance.ToString()) + "\",\"step\":" +
           std::to_string(r.step) + ",\"category\":\"" +
           TraceCategoryLabel(r.category) + "\"";
    if (r.value != 0) out += ",\"value\":" + std::to_string(r.value);
    if (!r.detail.empty()) {
      out += ",\"detail\":\"" + JsonEscape(r.detail) + "\"";
    }
    out += "}\n";
  }
  return out;
}

namespace {

Status WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open " + path);
  out << body;
  out.flush();
  if (!out) return Status::Unavailable("short write to " + path);
  return Status::OK();
}

}  // namespace

Status RingBufferTracer::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, ChromeTraceJson());
}

Status RingBufferTracer::WriteJsonl(const std::string& path) const {
  return WriteFile(path, JsonlLog());
}

std::string RingBufferTracer::SummaryReport() const {
  std::ostringstream out;
  out << "trace summary (virtual ticks):\n";
  out << "  " << step_latency_.Summary() << "\n";
  out << "  " << instance_latency_.Summary() << "\n";
  out << "  " << lock_wait_.Summary() << "\n";
  out << "  " << rollback_depth_.Summary() << "\n";
  out << "  events recorded=" << recorded_ << " dropped=" << dropped_
      << " open-spans=" << open_.size()
      << " unmatched-ends=" << unmatched_ends_ << "\n";
  return out.str();
}

std::string RingBufferTracer::HistogramsJson() const {
  return "{\"step\":" + step_latency_.ToJson() +
         ",\"instance\":" + instance_latency_.ToJson() +
         ",\"lock_wait\":" + lock_wait_.ToJson() +
         ",\"rollback_depth\":" + rollback_depth_.ToJson() + "}";
}

}  // namespace crew::obs
