#ifndef CREW_DIST_SYSTEM_H_
#define CREW_DIST_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "dist/agent.h"
#include "dist/frontend.h"

namespace crew::dist {

/// Assembles a distributed-control deployment (Figure 6(c)): the front
/// end at node 0 and `num_agents` full agents at nodes 1..z. Navigation,
/// state, failure handling and coordination all live at the agents; there
/// is no central engine.
class DistributedSystem {
 public:
  DistributedSystem(sim::Backend* backend,
                    const runtime::ProgramRegistry* programs,
                    const model::Deployment* deployment,
                    const runtime::CoordinationSpec* coordination,
                    int num_agents, AgentOptions options = {});

  /// Registers a schema with the front end and every agent.
  void RegisterSchema(model::CompiledSchemaPtr schema);

  FrontEnd& front_end() { return *front_end_; }
  Agent& agent(size_t index) { return *agents_[index]; }
  Agent* agent_by_id(NodeId id);
  size_t num_agents() const { return agents_.size(); }
  const std::vector<NodeId>& agent_ids() const { return agent_ids_; }

  /// Status as recorded by the instance's coordination agent.
  runtime::WorkflowState CoordinationStatus(const InstanceId& instance);
  /// Data archived at commit by the coordination agent.
  std::map<std::string, Value> ArchivedData(const InstanceId& instance);

  int64_t committed_count() const;
  int64_t aborted_count() const;

 private:
  const model::Deployment* deployment_;
  std::unique_ptr<FrontEnd> front_end_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<NodeId> agent_ids_;
  std::map<std::string, model::CompiledSchemaPtr> schemas_;
};

}  // namespace crew::dist

#endif  // CREW_DIST_SYSTEM_H_
