#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the full test suite.
#
#   scripts/check.sh                 # RelWithDebInfo into build/
#   scripts/check.sh --sanitize      # ASan+UBSan into build-asan/
#   BUILD_DIR=out scripts/check.sh   # custom build directory
set -euo pipefail

cd "$(dirname "$0")/.."

CMAKE_ARGS=()
if [[ "${1:-}" == "--sanitize" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  CMAKE_ARGS+=(-DCREW_SANITIZE=ON)
  shift
else
  BUILD_DIR="${BUILD_DIR:-build}"
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
