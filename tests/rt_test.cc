#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "central/system.h"
#include "dist/system.h"
#include "model/builder.h"
#include "parallel/system.h"
#include "rt/mailbox.h"
#include "rt/runtime.h"

namespace crew {
namespace {

using model::SchemaBuilder;
using runtime::WorkflowState;

constexpr uint64_t kSeed = 42;

// ---------------------------------------------------------------------------
// Mailbox

TEST(MailboxTest, FifoPerProducerAndDrainOnClose) {
  rt::Mailbox box(/*capacity=*/4096);
  std::vector<std::pair<int, int>> seen;  // (producer, seq), consumer-only
  std::thread consumer([&]() {
    while (auto task = box.Pop()) task.Run();
  });
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &seen, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        box.Push([&seen, p, i]() { seen.emplace_back(p, i); });
      }
    });
  }
  for (auto& t : producers) t.join();
  box.Close();
  consumer.join();

  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  EXPECT_EQ(box.pushed(), kProducers * kPerProducer);
  std::vector<int> next(kProducers, 0);
  for (const auto& [p, i] : seen) {
    EXPECT_EQ(i, next[p]) << "producer " << p << " reordered";
    next[p] = i + 1;
  }
  EXPECT_TRUE(box.QuietNow());
}

TEST(MailboxTest, BoundedPushBlocksUntilConsumerMakesRoom) {
  rt::Mailbox box(/*capacity=*/2);
  int ran = 0;
  ASSERT_TRUE(box.Push([&ran]() { ++ran; }));
  ASSERT_TRUE(box.Push([&ran]() { ++ran; }));
  std::atomic<bool> third_in{false};
  std::thread producer([&]() {
    box.Push([&ran]() { ++ran; });
    third_in.store(true);
  });
  // The third push can only complete after a pop frees a slot: no pop
  // has happened, so this is state-determined, not a timing guess.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(third_in.load());
  {
    rt::Mailbox::Popped task = box.Pop();
    ASSERT_TRUE(static_cast<bool>(task));
    task.Run();
  }
  producer.join();
  EXPECT_TRUE(third_in.load());
  box.Close();
  while (auto task = box.Pop()) task.Run();
  EXPECT_EQ(ran, 3);
}

TEST(MailboxTest, ForcePushIgnoresCapacityAndCloseDrains) {
  rt::Mailbox box(/*capacity=*/1);
  int ran = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(box.ForcePush([&ran]() { ++ran; }));
  }
  EXPECT_EQ(box.size(), 10u);
  EXPECT_FALSE(box.QuietNow());
  box.Close();
  EXPECT_FALSE(box.Push([]() {}));       // refused once closed
  EXPECT_FALSE(box.ForcePush([]() {}));  // likewise
  while (auto task = box.Pop()) task.Run();
  EXPECT_EQ(ran, 10);
  EXPECT_EQ(box.max_depth(), 10u);
  EXPECT_TRUE(box.QuietNow());
}

TEST(MailboxTest, OversizedCallableTakesHeapPathAndStillRuns) {
  rt::Mailbox box(/*capacity=*/16);
  // Capture comfortably more than the inline payload budget so the
  // callable is forced through the heap-pointer storage path.
  struct Big {
    unsigned char bytes[2 * rt::Mailbox::kInlineBytes] = {};
  };
  Big big;
  big.bytes[7] = 42;
  int got = -1;
  ASSERT_TRUE(box.Push([big, &got]() { got = big.bytes[7]; }));
  // And one oversized task that is *dropped* (destroyed unrun) by Close,
  // exercising the heap payload's drop path under ASan.
  box.ForcePush([big, &got]() { got = -2; });
  {
    rt::Mailbox::Popped task = box.Pop();
    ASSERT_TRUE(static_cast<bool>(task));
    task.Run();
  }
  EXPECT_EQ(got, 42);
  box.Close();
  rt::Mailbox::Popped dropped = box.Pop();
  ASSERT_TRUE(static_cast<bool>(dropped));
  dropped = rt::Mailbox::Popped();  // discard without running
  EXPECT_EQ(got, 42);
  EXPECT_TRUE(box.QuietNow());  // discarded counts as consumed
}

// Satellite: multi-producer stress. Exercises the lock-free push path
// under real contention (including pool exhaustion -> heap fallback) and
// asserts the three invariants the runtime depends on: FIFO per
// producer, no lost or duplicated task, and an *exact* pushed() counter
// even while the queue is busy (it used to be exact only when quiet).
TEST(MailboxStressTest, MultiProducerFifoTotalCountAndExactPushed) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 4000;
  rt::Mailbox box(/*capacity=*/1 << 16);
  std::vector<std::vector<int>> seen(kProducers);  // consumer-only writes
  std::thread consumer([&]() {
    while (auto task = box.Pop()) task.Run();
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &seen, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.Push([&seen, p, i]() { seen[p].push_back(i); }));
      }
    });
  }
  for (auto& t : producers) t.join();
  // All producers returned, consumer still draining: the counter must
  // already be exact — admission happens in Push, not at dequeue.
  EXPECT_EQ(box.pushed(), int64_t{kProducers} * kPerProducer);
  box.Close();
  consumer.join();
  EXPECT_EQ(box.pushed(), int64_t{kProducers} * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(seen[p].size(), static_cast<size_t>(kPerProducer))
        << "producer " << p << " lost or duplicated tasks";
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(seen[p][i], i) << "producer " << p << " reordered";
    }
  }
  EXPECT_TRUE(box.QuietNow());
}

// Satellite: close-while-pushing race. Producers hammer Push/ForcePush
// while the main thread closes the box mid-stream. Every push that
// reported success must run exactly once; every refused push must not;
// and pushed() must equal the accepted count exactly.
TEST(MailboxStressTest, CloseWhilePushingNeverLosesAcceptedTasks) {
  constexpr int kProducers = 6;
  constexpr int kAttemptsPerProducer = 20000;
  rt::Mailbox box(/*capacity=*/1 << 14);
  std::atomic<int64_t> ran{0};
  std::atomic<int64_t> accepted{0};
  std::thread consumer([&]() {
    while (auto task = box.Pop()) task.Run();
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &ran, &accepted, p]() {
      for (int i = 0; i < kAttemptsPerProducer; ++i) {
        bool ok = (p % 2 == 0)
                      ? box.Push([&ran]() {
                          ran.fetch_add(1, std::memory_order_relaxed);
                        })
                      : box.ForcePush([&ran]() {
                          ran.fetch_add(1, std::memory_order_relaxed);
                        });
        if (!ok) break;  // closed: every later push would be refused too
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Close somewhere in the middle of the stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  box.Close();
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(ran.load(), accepted.load());
  EXPECT_EQ(box.pushed(), accepted.load());
  EXPECT_TRUE(box.QuietNow());
}

// ---------------------------------------------------------------------------
// Runtime basics

TEST(RuntimeTest, PostsAndTimersRunOnOwningWorkerInOrder) {
  rt::Runtime runtime({.seed = 1, .tick_us = 10});
  sim::Context* ctx = runtime.ContextFor(1);
  ASSERT_NE(ctx, nullptr);
  std::vector<int> order;  // written only by node 1's worker
  runtime.Start();
  runtime.Post(1, [&]() {
    // Absolute deadlines from one base tick: ScheduleAfter reads now()
    // per call, so a preemption between calls can legitimately reorder
    // the due times under real time (it cannot under sim). Deltas are
    // bigger than a scheduler quantum so a stall between adjacent
    // statements cannot push a later-due timer into the past.
    const sim::Time base = ctx->queue().now();
    ctx->queue().ScheduleAt(base + 3000, [&order]() { order.push_back(3); });
    ctx->queue().ScheduleAt(base + 1000, [&order]() { order.push_back(2); });
    // Already-due callbacks still run *after* the current task, exactly
    // as a same-tick event does under sim.
    ctx->queue().ScheduleAt(base, [&order]() { order.push_back(1); });
    order.push_back(0);
  });
  runtime.Quiesce();
  runtime.Shutdown();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_GE(runtime.now(), 3000);
  EXPECT_GE(runtime.Stats().timers_fired, 3);
}

struct Recorder : sim::MessageHandler {
  std::vector<std::string> types;  // written only by the owning worker
  void HandleMessage(const sim::Message& message) override {
    types.push_back(message.type);
  }
};

TEST(RuntimeTest, DownNodeParksAndFlushesInOrder) {
  rt::Runtime runtime({.seed = 1, .tick_us = 10});
  sim::Context* sender = runtime.ContextFor(1);
  sim::Context* receiver = runtime.ContextFor(2);
  Recorder recorder;
  receiver->network().Register(2, &recorder);
  runtime.SetNodeDown(2, true);
  EXPECT_TRUE(runtime.IsNodeDown(2));
  runtime.Start();
  runtime.Post(1, [&]() {
    for (int i = 0; i < 10; ++i) {
      sim::Message m;
      m.from = 1;
      m.to = 2;
      m.type = "m" + std::to_string(i);
      (void)sender->network().Send(std::move(m));
    }
  });
  runtime.Quiesce();  // quiescent with all ten parked at the down node
  EXPECT_EQ(runtime.Stats().messages_parked, 10);
  EXPECT_EQ(runtime.Stats().messages_delivered, 0);
  runtime.SetNodeDown(2, false);
  runtime.Quiesce();
  runtime.Shutdown();
  ASSERT_EQ(recorder.types.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(recorder.types[static_cast<size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_EQ(runtime.Stats().messages_delivered, 10);
}

TEST(RuntimeTest, SendToUnregisteredNodeIsNotFound) {
  rt::Runtime runtime({.seed = 1});
  sim::Context* ctx = runtime.ContextFor(1);
  sim::Message m;
  m.from = 1;
  m.to = 99;
  EXPECT_TRUE(ctx->network().Send(std::move(m)).IsNotFound());
}

TEST(RuntimeTest, MergedMetricsSumsPerNodeShards) {
  rt::Runtime runtime({.seed = 1, .tick_us = 10});
  sim::Context* a = runtime.ContextFor(1);
  sim::Context* b = runtime.ContextFor(2);
  Recorder rec_a;
  Recorder rec_b;
  a->network().Register(1, &rec_a);
  b->network().Register(2, &rec_b);
  runtime.Start();
  runtime.Post(1, [&]() {
    for (int i = 0; i < 3; ++i) {
      sim::Message m;
      m.from = 1;
      m.to = 2;
      m.type = "ping";
      m.category = sim::MsgCategory::kNormal;
      (void)a->network().Send(std::move(m));
    }
  });
  runtime.Post(2, [&]() {
    for (int i = 0; i < 2; ++i) {
      sim::Message m;
      m.from = 2;
      m.to = 1;
      m.type = "probe";
      m.category = sim::MsgCategory::kAdmin;
      (void)b->network().Send(std::move(m));
    }
  });
  runtime.Quiesce();
  runtime.Shutdown();
  sim::Metrics merged = runtime.MergedMetrics();
  EXPECT_EQ(merged.TotalMessages(), 5);
  EXPECT_EQ(merged.MessagesIn(sim::MsgCategory::kNormal), 3);
  EXPECT_EQ(merged.MessagesIn(sim::MsgCategory::kAdmin), 2);
}

TEST(RuntimeTest, PerNodeRngStreamsDependOnlyOnSeedAndNode) {
  rt::Runtime first({.seed = 7});
  rt::Runtime second({.seed = 7});
  rt::Runtime other({.seed = 8});
  // Create in different orders: streams must match by node id anyway.
  sim::Context* f5 = first.ContextFor(5);
  sim::Context* f3 = first.ContextFor(3);
  sim::Context* s3 = second.ContextFor(3);
  sim::Context* s5 = second.ContextFor(5);
  sim::Context* o5 = other.ContextFor(5);
  int64_t v5 = f5->rng().Uniform(0, 1 << 30);
  int64_t v3 = f3->rng().Uniform(0, 1 << 30);
  EXPECT_EQ(s5->rng().Uniform(0, 1 << 30), v5);
  EXPECT_EQ(s3->rng().Uniform(0, 1 << 30), v3);
  EXPECT_NE(v5, v3);
  EXPECT_NE(o5->rng().Uniform(0, 1 << 30), v5);
}

// ---------------------------------------------------------------------------
// sim/rt equivalence: the same workload, driven through the unmodified
// systems over both backends, must reach the same per-instance terminal
// states and the same message counts per category and wire type. Uses
// deterministic programs only (attempt-count failures, no rng draws) and
// an empty CoordinationSpec, since RO/RD bind against the timing-
// dependent live-instance set.

model::CompiledSchemaPtr Compile(model::Schema schema) {
  auto compiled = model::CompiledSchema::Compile(std::move(schema));
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return compiled.value();
}

model::Schema SeqSchema(const std::string& name, int steps,
                        const std::string& program = "noop") {
  SchemaBuilder b(name);
  std::vector<StepId> ids;
  for (int i = 0; i < steps; ++i) {
    ids.push_back(b.AddTask("T" + std::to_string(i + 1), program));
  }
  b.Sequence(ids);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

/// A -> B(flaky: fails on attempt 1) with rollback to A: commits after
/// one deterministic rollback-and-retry round.
model::Schema FlakySchema(const std::string& name) {
  SchemaBuilder b(name);
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "flaky");
  b.Sequence({s1, s2});
  b.OnFail(s2, s1, /*max_attempts=*/3);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

/// A -> B(fail_always) with two attempts: deterministically aborts.
model::Schema DoomedSchema(const std::string& name) {
  SchemaBuilder b(name);
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "fail_always");
  b.Sequence({s1, s2});
  b.OnFail(s2, s1, /*max_attempts=*/2);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

/// split -> (left | right) -> join: exercises concurrent branch
/// execution under rt (the join must accept either arrival order).
model::Schema ParSchema(const std::string& name) {
  SchemaBuilder b(name);
  StepId s1 = b.AddTask("split", "noop");
  StepId s2 = b.AddTask("left", "noop");
  StepId s3 = b.AddTask("right", "noop");
  StepId s4 = b.AddTask("join", "noop");
  b.Parallel(s1, {{s2, s2}, {s3, s3}}, s4);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

void SetEligibleRoundRobin(model::Deployment* deployment,
                           const std::vector<NodeId>& ids,
                           const model::CompiledSchema& schema,
                           int eligible = 2) {
  for (StepId s = 1; s <= schema.schema().num_steps(); ++s) {
    std::vector<NodeId> agents;
    for (int k = 0; k < eligible; ++k) {
      agents.push_back(ids[(s - 1 + k) % ids.size()]);
    }
    std::sort(agents.begin(), agents.end());
    deployment->SetEligible(schema.schema().name(), s, agents);
  }
}

void ExpectSameCounts(const sim::Metrics& sim_metrics,
                      const sim::Metrics& rt_metrics) {
  EXPECT_EQ(sim_metrics.TotalMessages(), rt_metrics.TotalMessages());
  for (int i = 0; i < sim::kNumMsgCategories; ++i) {
    auto category = static_cast<sim::MsgCategory>(i);
    EXPECT_EQ(sim_metrics.MessagesIn(category),
              rt_metrics.MessagesIn(category))
        << "category " << sim::MsgCategoryName(category);
  }
  EXPECT_EQ(sim_metrics.by_type(), rt_metrics.by_type());
}

/// The mixed workload: schema name for the i-th instance (1-based).
std::string WorkloadSchema(int i) {
  switch (i % 4) {
    case 0: return "Doomed";
    case 1: return "Good";
    case 2: return "Flaky";
    default: return "Par";
  }
}

WorkflowState ExpectedState(const std::string& schema) {
  return schema == "Doomed" ? WorkflowState::kAborted
                            : WorkflowState::kCommitted;
}

struct EquivalenceResult {
  std::map<int, WorkflowState> states;
  sim::Metrics metrics;
};

// ---- central ----

struct CentralParts {
  runtime::ProgramRegistry programs;
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  std::unique_ptr<central::CentralSystem> system;

  explicit CentralParts(sim::Backend* backend, int num_agents) {
    programs.RegisterBuiltins();
    programs.RegisterFailFirstN("flaky", 1);
    system = std::make_unique<central::CentralSystem>(
        backend, &programs, &deployment, &coordination, num_agents);
    for (auto schema : {Compile(SeqSchema("Good", 4)),
                        Compile(FlakySchema("Flaky")),
                        Compile(DoomedSchema("Doomed")),
                        Compile(ParSchema("Par"))}) {
      SetEligibleRoundRobin(&deployment, system->agent_ids(), *schema);
      system->engine().RegisterSchema(schema);
    }
  }
};

EquivalenceResult RunCentralSim(int num_agents, int num_instances) {
  sim::Simulator simulator(kSeed);
  CentralParts parts(&simulator, num_agents);
  for (int i = 1; i <= num_instances; ++i) {
    EXPECT_TRUE(
        parts.system->engine().StartWorkflow(WorkloadSchema(i), i, {}).ok());
  }
  simulator.Run();
  EquivalenceResult result;
  for (int i = 1; i <= num_instances; ++i) {
    result.states[i] =
        parts.system->engine().QueryStatus({WorkloadSchema(i), i});
  }
  result.metrics = simulator.metrics();
  return result;
}

EquivalenceResult RunCentralRt(int num_agents, int num_instances) {
  rt::Runtime runtime({.seed = kSeed, .tick_us = 20});
  CentralParts parts(&runtime, num_agents);
  runtime.Start();
  std::atomic<int> start_failures{0};
  for (int i = 1; i <= num_instances; ++i) {
    runtime.Post(1, [&parts, &start_failures, i]() {
      if (!parts.system->engine()
               .StartWorkflow(WorkloadSchema(i), i, {})
               .ok()) {
        start_failures.fetch_add(1);
      }
    });
  }
  runtime.Quiesce();
  runtime.Shutdown();
  EXPECT_EQ(start_failures.load(), 0);
  EquivalenceResult result;
  for (int i = 1; i <= num_instances; ++i) {
    result.states[i] =
        parts.system->engine().QueryStatus({WorkloadSchema(i), i});
  }
  result.metrics = runtime.MergedMetrics();
  return result;
}

TEST(RtEquivalenceTest, CentralSameStatesAndMessageCounts) {
  constexpr int kAgents = 4;
  constexpr int kInstances = 12;
  EquivalenceResult sim_run = RunCentralSim(kAgents, kInstances);
  EquivalenceResult rt_run = RunCentralRt(kAgents, kInstances);
  for (int i = 1; i <= kInstances; ++i) {
    EXPECT_EQ(sim_run.states[i], ExpectedState(WorkloadSchema(i)))
        << "instance " << i;
    EXPECT_EQ(sim_run.states[i], rt_run.states[i]) << "instance " << i;
  }
  ExpectSameCounts(sim_run.metrics, rt_run.metrics);
}

// ---- parallel ----

struct ParallelParts {
  runtime::ProgramRegistry programs;
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  std::unique_ptr<parallel::ParallelSystem> system;

  ParallelParts(sim::Backend* backend, int num_engines, int num_agents) {
    programs.RegisterBuiltins();
    programs.RegisterFailFirstN("flaky", 1);
    system = std::make_unique<parallel::ParallelSystem>(
        backend, &programs, &deployment, &coordination, num_engines,
        num_agents);
    for (auto schema : {Compile(SeqSchema("Good", 4)),
                        Compile(FlakySchema("Flaky")),
                        Compile(DoomedSchema("Doomed")),
                        Compile(ParSchema("Par"))}) {
      SetEligibleRoundRobin(&deployment, system->agent_ids(), *schema);
      system->RegisterSchema(schema);
    }
  }
};

TEST(RtEquivalenceTest, ParallelSameStatesAndMessageCounts) {
  constexpr int kEngines = 2;
  constexpr int kAgents = 4;
  constexpr int kInstances = 12;

  sim::Simulator simulator(kSeed);
  ParallelParts sim_parts(&simulator, kEngines, kAgents);
  for (int i = 1; i <= kInstances; ++i) {
    EXPECT_TRUE(
        sim_parts.system->StartWorkflow(WorkloadSchema(i), i, {}).ok());
  }
  simulator.Run();

  rt::Runtime runtime({.seed = kSeed, .tick_us = 20});
  ParallelParts rt_parts(&runtime, kEngines, kAgents);
  runtime.Start();
  std::atomic<int> start_failures{0};
  for (int i = 1; i <= kInstances; ++i) {
    // An instance must be started on its owner engine's worker.
    NodeId owner = rt_parts.system->OwnerEngine({WorkloadSchema(i), i});
    runtime.Post(owner, [&rt_parts, &start_failures, i]() {
      if (!rt_parts.system->StartWorkflow(WorkloadSchema(i), i, {}).ok()) {
        start_failures.fetch_add(1);
      }
    });
  }
  runtime.Quiesce();
  runtime.Shutdown();
  EXPECT_EQ(start_failures.load(), 0);

  for (int i = 1; i <= kInstances; ++i) {
    InstanceId id{WorkloadSchema(i), i};
    EXPECT_EQ(sim_parts.system->QueryStatus(id),
              ExpectedState(WorkloadSchema(i)))
        << "instance " << i;
    EXPECT_EQ(sim_parts.system->QueryStatus(id),
              rt_parts.system->QueryStatus(id))
        << "instance " << i;
  }
  EXPECT_EQ(sim_parts.system->committed_count(),
            rt_parts.system->committed_count());
  EXPECT_EQ(sim_parts.system->aborted_count(),
            rt_parts.system->aborted_count());
  ExpectSameCounts(simulator.metrics(), runtime.MergedMetrics());
}

// ---- distributed ----

struct DistParts {
  runtime::ProgramRegistry programs;
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  std::unique_ptr<dist::DistributedSystem> system;

  DistParts(sim::Backend* backend, int num_agents,
            const std::string& agdb_dir = "") {
    programs.RegisterBuiltins();
    programs.RegisterFailFirstN("flaky", 1);
    // Generous pending-rule timeout: the overdue-step probe must fire in
    // neither backend (under sim the run finishes at a tiny virtual
    // time; under rt a wall-slow step could otherwise cross the default
    // window and inject probe messages sim never sends).
    dist::AgentOptions options;
    options.pending_timeout = 5000;
    options.agdb_dir = agdb_dir;
    system = std::make_unique<dist::DistributedSystem>(
        backend, &programs, &deployment, &coordination, num_agents,
        options);
    for (auto schema : {Compile(SeqSchema("Good", 4)),
                        Compile(FlakySchema("Flaky")),
                        Compile(DoomedSchema("Doomed"))}) {
      SetEligibleRoundRobin(&deployment, system->agent_ids(), *schema);
      system->RegisterSchema(schema);
    }
  }
};

TEST(RtEquivalenceTest, DistributedSameStatesAndMessageCounts) {
  constexpr int kAgents = 5;
  constexpr int kInstances = 9;
  auto schema_for = [](int i) {
    switch (i % 3) {
      case 0: return std::string("Doomed");
      case 1: return std::string("Good");
      default: return std::string("Flaky");
    }
  };

  sim::Simulator simulator(kSeed);
  DistParts sim_parts(&simulator, kAgents);
  for (int i = 1; i <= kInstances; ++i) {
    // The front end numbers instances from its global counter: the i-th
    // start is instance i in both backends (FIFO admin posts under rt).
    Result<InstanceId> id =
        sim_parts.system->front_end().StartWorkflow(schema_for(i), {});
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(id.value().number, i);
  }
  simulator.Run();

  rt::Runtime runtime({.seed = kSeed, .tick_us = 20});
  DistParts rt_parts(&runtime, kAgents);
  runtime.Start();
  std::atomic<int> start_failures{0};
  for (int i = 1; i <= kInstances; ++i) {
    runtime.Post(kFrontEndNode, [&rt_parts, &start_failures, &schema_for,
                                 i]() {
      Result<InstanceId> id =
          rt_parts.system->front_end().StartWorkflow(schema_for(i), {});
      if (!id.ok() || id.value().number != i) start_failures.fetch_add(1);
    });
  }
  runtime.Quiesce();
  runtime.Shutdown();
  EXPECT_EQ(start_failures.load(), 0);

  for (int i = 1; i <= kInstances; ++i) {
    InstanceId id{schema_for(i), i};
    EXPECT_EQ(sim_parts.system->CoordinationStatus(id),
              ExpectedState(schema_for(i)))
        << "instance " << i;
    EXPECT_EQ(sim_parts.system->CoordinationStatus(id),
              rt_parts.system->CoordinationStatus(id))
        << "instance " << i;
  }
  EXPECT_EQ(sim_parts.system->committed_count(),
            rt_parts.system->committed_count());
  EXPECT_EQ(sim_parts.system->aborted_count(),
            rt_parts.system->aborted_count());
  ExpectSameCounts(simulator.metrics(), runtime.MergedMetrics());
}

// ---------------------------------------------------------------------------
// Crash/recovery under live threads: an agent goes down mid-run, inbound
// work parks, and the workflows still commit after recovery (the
// transport contract's reliable-delivery half).

TEST(RtCrashTest, CentralCommitsAcrossAgentCrashAndRecovery) {
  rt::Runtime runtime({.seed = kSeed, .tick_us = 20});
  CentralParts parts(&runtime, /*num_agents=*/4);
  NodeId victim = parts.system->agent_ids()[0];
  runtime.SetNodeDown(victim, true);
  runtime.Start();
  constexpr int kInstances = 8;
  std::atomic<int> start_failures{0};
  for (int i = 1; i <= kInstances; ++i) {
    runtime.Post(1, [&parts, &start_failures, i]() {
      if (!parts.system->engine().StartWorkflow("Good", i, {}).ok()) {
        start_failures.fetch_add(1);
      }
    });
  }
  // Let traffic pile up against the down agent, then recover it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  runtime.SetNodeDown(victim, false);
  runtime.Quiesce();
  runtime.Shutdown();
  EXPECT_EQ(start_failures.load(), 0);
  for (int i = 1; i <= kInstances; ++i) {
    EXPECT_EQ(parts.system->engine().QueryStatus({"Good", i}),
              WorkflowState::kCommitted)
        << "instance " << i;
  }
}

// The shared recovery path (rt and the socket backend both ride it): a
// down agent with a durable AGDB gets its registered recovery hook run —
// storage::Wal::Recover replay via Agent::RecoverFromLog — *before* the
// parked backlog flushes, so recovered state is in place when the queued
// traffic lands. This is the in-process twin of SIGKILLing a crew_node
// and restarting it (net_proc_test).
TEST(RtCrashTest, DistRecoveryHookReplaysWalBeforeParkedBacklog) {
  char agdb_template[] = "/tmp/crew_rt_agdb_XXXXXX";
  char* agdb_dir = mkdtemp(agdb_template);
  ASSERT_NE(agdb_dir, nullptr);

  rt::Runtime runtime({.seed = kSeed, .tick_us = 20});
  DistParts parts(&runtime, /*num_agents=*/3, agdb_dir);
  std::atomic<int> hook_runs{0};
  for (NodeId id : parts.system->agent_ids()) {
    dist::Agent* agent = parts.system->agent_by_id(id);
    ASSERT_NE(agent, nullptr);
    runtime.SetRecoveryHook(id, [agent, &hook_runs]() {
      agent->RecoverFromLog();
      hook_runs.fetch_add(1);
    });
  }
  NodeId victim = parts.system->agent_ids()[0];
  runtime.SetNodeDown(victim, true);
  runtime.Start();
  constexpr int kInstances = 6;
  std::atomic<int> start_failures{0};
  for (int i = 1; i <= kInstances; ++i) {
    runtime.Post(kFrontEndNode, [&parts, &start_failures]() {
      if (!parts.system->front_end().StartWorkflow("Good", {}).ok()) {
        start_failures.fetch_add(1);
      }
    });
  }
  // Let traffic park against the down agent, then recover: the hook
  // must replay the WAL ahead of the backlog.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  runtime.SetNodeDown(victim, false);
  runtime.Quiesce();
  runtime.Shutdown();
  EXPECT_EQ(start_failures.load(), 0);
  EXPECT_EQ(hook_runs.load(), 1);
  for (int i = 1; i <= kInstances; ++i) {
    EXPECT_EQ(parts.system->CoordinationStatus({"Good", i}),
              WorkflowState::kCommitted)
        << "instance " << i;
  }

  std::error_code ec;
  std::filesystem::remove_all(agdb_dir, ec);
}

}  // namespace
}  // namespace crew
