# Empty compiler generated dependencies file for bench_sweep_failures.
# This may be replaced when dependencies are built.
