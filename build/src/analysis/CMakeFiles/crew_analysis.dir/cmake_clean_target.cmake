file(REMOVE_RECURSE
  "libcrew_analysis.a"
)
