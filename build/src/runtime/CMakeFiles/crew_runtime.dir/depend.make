# Empty dependencies file for crew_runtime.
# This may be replaced when dependencies are built.
