// Order processing with *relative ordering* across concurrent instances —
// the paper's motivating coordinated-execution scenario (§3): orders must
// be fulfilled in the sequence they were received, so the steps of
// concurrent order workflows that touch the same resources execute in
// the same relative order. The workflow is defined in LAWS and run on
// distributed control; the output shows that reservation/shipping order
// follows submission order even though instance 2 is much cheaper.
//
//   ./build/examples/order_processing
#include <cstdio>
#include <string>
#include <vector>

#include "dist/system.h"
#include "laws/parser.h"

using namespace crew;

namespace {

/// The specification lives in examples/order.laws; fall back to a path
/// given on the command line.
std::string SpecPath(int argc, char** argv) {
  if (argc > 1) return argv[1];
  return std::string(CREW_EXAMPLE_DIR) + "/order.laws";
}

}  // namespace

int main(int argc, char** argv) {
  Result<laws::LawsFile> parsed = laws::ParseLawsFile(SpecPath(argc, argv));
  if (!parsed.ok()) {
    fprintf(stderr, "LAWS error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  sim::Simulator simulator(/*seed=*/11);
  runtime::ProgramRegistry programs;
  // Every program logs its execution so the relative order is visible.
  std::vector<std::string> trace;
  for (const char* name : {"receive", "check", "reserve", "pick",
                          "ship", "decline", "unreserve",
                          "invoice", "collect"}) {
    std::string step_name = name;
    programs.Register(name, [&trace, step_name, &simulator](
                                const runtime::ProgramContext& ctx) {
      trace.push_back("t=" + std::to_string(simulator.now()) + "  " +
                      ctx.instance.ToString() + " " + step_name);
      runtime::ProgramOutcome out;
      out.outputs["O1"] = Value(int64_t{1});
      return out;
    });
  }

  model::Deployment deployment;
  dist::DistributedSystem system(&simulator, &programs, &deployment,
                                 &parsed.value().coordination,
                                 /*num_agents=*/8);
  for (const model::CompiledSchemaPtr& schema : parsed.value().schemas) {
    deployment.AssignRandom(*schema, system.agent_ids(), 2,
                            &simulator.rng());
    system.RegisterSchema(schema);
  }

  // Three orders arrive in quick succession; order 2 is tiny and would
  // overtake order 1 without the relative-ordering requirement.
  std::vector<InstanceId> orders;
  for (int64_t size : {500, 5, 50}) {
    Result<InstanceId> id = system.front_end().StartWorkflow(
        "Order", {{"WF.I1", Value(size)}});
    if (!id.ok()) return 1;
    orders.push_back(id.value());
    simulator.queue().RunUntil(simulator.now() + 2);  // stagger arrivals
  }
  simulator.Run();

  printf("execution trace (note Reserve/Ship follow submission order):\n");
  for (const std::string& line : trace) {
    printf("  %s\n", line.c_str());
  }
  for (const InstanceId& id : orders) {
    printf("%s -> %s\n", id.ToString().c_str(),
           runtime::WorkflowStateName(system.front_end().KnownStatus(id)));
  }
  printf("coordination messages: %lld\n",
         static_cast<long long>(simulator.metrics().MessagesIn(
             sim::MsgCategory::kCoordination)));
  return 0;
}
