# Empty dependencies file for bench_table4_central.
# This may be replaced when dependencies are built.
