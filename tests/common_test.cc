#include <gtest/gtest.h>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace crew {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() { return Status::Aborted("nope"); };
  auto outer = [&]() -> Status {
    CREW_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsAborted());
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err(Status::TimedOut("slow"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kTimedOut);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> bogus((Status()));
  EXPECT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInternal);
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_EQ(Value(int64_t{5}).NumericValue(), 5.0);
}

TEST(ValueTest, TruthyRules) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_FALSE(Value(int64_t{0}).Truthy());
  EXPECT_FALSE(Value(0.0).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value(int64_t{1}).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
}

TEST(ValueTest, NumericEqualityCrossesKinds) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value("3"));
}

TEST(ValueTest, RoundTripsThroughText) {
  const Value cases[] = {
      Value(),        Value(true),          Value(false),
      Value(int64_t{-17}), Value(3.25),     Value(0.1),
      Value("plain"), Value("with \"quote\" and \\slash\\"),
      Value("line\nbreak"), Value(int64_t{0}),
  };
  for (const Value& v : cases) {
    Result<Value> parsed = Value::Parse(v.ToString());
    ASSERT_TRUE(parsed.ok()) << v.ToString();
    EXPECT_EQ(parsed.value(), v) << v.ToString();
    EXPECT_EQ(parsed.value().kind(), v.kind()) << v.ToString();
  }
}

TEST(ValueTest, DoubleMarkerDistinguishesFromInt) {
  Value d(4.0);
  Result<Value> parsed = Value::Parse(d.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().is_double());
}

TEST(ValueTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Value::Parse("").ok());
  EXPECT_FALSE(Value::Parse("12abc").ok());
  EXPECT_FALSE(Value::Parse("\"unterminated").ok());
}

TEST(InstanceIdTest, OrderingAndFormatting) {
  InstanceId a{"WF1", 3};
  InstanceId b{"WF1", 4};
  InstanceId c{"WF2", 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.ToString(), "WF1#3");
  EXPECT_EQ(a, (InstanceId{"WF1", 3}));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b", "c"}, ';'), "a;b;c");
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitQuotedHonoursQuotes) {
  std::vector<std::string> parts = SplitQuoted("x=\"a;b\";y=2", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "x=\"a;b\"");
  EXPECT_EQ(parts[1], "y=2");
}

TEST(StringsTest, TrimAndStartsWith) {
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("prefix.rest", "prefix."));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

}  // namespace
}  // namespace crew
