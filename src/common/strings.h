#ifndef CREW_COMMON_STRINGS_H_
#define CREW_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace crew {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on a character but honours double-quoted segments (quotes and
/// backslash escapes inside them are preserved verbatim). Used by the
/// packet wire format where string Values may contain the separator.
std::vector<std::string> SplitQuoted(std::string_view text, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, char sep);

/// Removes leading and trailing spaces/tabs/CR/LF.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace crew

#endif  // CREW_COMMON_STRINGS_H_
