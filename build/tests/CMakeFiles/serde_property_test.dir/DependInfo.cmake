
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/serde_property_test.cc" "tests/CMakeFiles/serde_property_test.dir/serde_property_test.cc.o" "gcc" "tests/CMakeFiles/serde_property_test.dir/serde_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/laws/CMakeFiles/crew_laws.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/crew_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/crew_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/central/CMakeFiles/crew_central.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/crew_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/crew_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/crew_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/crew_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/crew_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/crew_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crew_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/crew_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
