
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/coord.cc" "src/runtime/CMakeFiles/crew_runtime.dir/coord.cc.o" "gcc" "src/runtime/CMakeFiles/crew_runtime.dir/coord.cc.o.d"
  "/root/repo/src/runtime/instance.cc" "src/runtime/CMakeFiles/crew_runtime.dir/instance.cc.o" "gcc" "src/runtime/CMakeFiles/crew_runtime.dir/instance.cc.o.d"
  "/root/repo/src/runtime/kv.cc" "src/runtime/CMakeFiles/crew_runtime.dir/kv.cc.o" "gcc" "src/runtime/CMakeFiles/crew_runtime.dir/kv.cc.o.d"
  "/root/repo/src/runtime/ocr.cc" "src/runtime/CMakeFiles/crew_runtime.dir/ocr.cc.o" "gcc" "src/runtime/CMakeFiles/crew_runtime.dir/ocr.cc.o.d"
  "/root/repo/src/runtime/packet.cc" "src/runtime/CMakeFiles/crew_runtime.dir/packet.cc.o" "gcc" "src/runtime/CMakeFiles/crew_runtime.dir/packet.cc.o.d"
  "/root/repo/src/runtime/programs.cc" "src/runtime/CMakeFiles/crew_runtime.dir/programs.cc.o" "gcc" "src/runtime/CMakeFiles/crew_runtime.dir/programs.cc.o.d"
  "/root/repo/src/runtime/rulegen.cc" "src/runtime/CMakeFiles/crew_runtime.dir/rulegen.cc.o" "gcc" "src/runtime/CMakeFiles/crew_runtime.dir/rulegen.cc.o.d"
  "/root/repo/src/runtime/wire.cc" "src/runtime/CMakeFiles/crew_runtime.dir/wire.cc.o" "gcc" "src/runtime/CMakeFiles/crew_runtime.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crew_common.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/crew_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/crew_model.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/crew_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crew_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/crew_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
