// Reproduces the §6 discussion of the opportunistic compensation and
// re-execution (OCR) strategy: its overhead is a small condition check,
// while its savings grow with the cost of the steps whose previous
// results can be reused. Sweeps pr (the probability a rolled-back step
// must re-execute) and reports recovery work with and without OCR.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

crew::workload::Params BaseParams() {
  crew::workload::Params params;
  params.num_schemas = 10;
  params.instances_per_schema = 10;
  params.num_agents = 30;
  params.p_step_failure = 0.5;  // make recovery dominant
  params.p_input_change = 0.0;
  params.p_abort = 0.0;
  params.mutex_steps = 0;
  params.relative_order_steps = 0;
  params.rollback_dep_steps = 0;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  crew::bench::BenchSession session("ocr_savings", argc, argv);
  crew::workload::Params base = BaseParams();
  crew::bench::PrintHeader(
      "OCR savings (§6): recovery program-work vs P[re-execution]", base);

  printf("\n%6s | %14s | %14s | %12s\n", "pr",
         "program load", "failure msgs", "committed");
  printf("%s\n", std::string(56, '-').c_str());
  // pr = 1.0 is the Saga-like baseline: every revisited step fully
  // compensates and re-executes. Lower pr lets OCR reuse results.
  for (double pr : {0.0, 0.125, 0.25, 0.5, 0.75, 1.0}) {
    crew::workload::Params params = base;
    params.p_reexecution = pr;
    crew::workload::RunResult result = crew::workload::RunWorkload(
        params, crew::workload::Architecture::kDistributed,
        session.tracer());
    session.Record("pr=" + std::to_string(pr), result);
    double program_load =
        static_cast<double>(
            result.metrics.TotalLoad(crew::sim::LoadCategory::kProgram)) /
        result.instances();
    double failure_msgs = result.MessagesPerInstance(
        crew::sim::MsgCategory::kFailureHandling);
    printf("%6.3f | %14.1f | %14.3f | %12lld\n", pr, program_load,
           failure_msgs, static_cast<long long>(result.committed));
  }
  printf(
      "\nExpected shape: program load and failure traffic grow with pr;\n"
      "pr=1 is the conservative compensate-everything baseline the paper\n"
      "argues against, pr->0 is maximal reuse.\n");
  session.Finish();
  return 0;
}
