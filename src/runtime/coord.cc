#include "runtime/coord.h"

#include <algorithm>

namespace crew::runtime {

std::vector<const RelativeOrderReq*> CoordinationSpec::RelativeOrdersOf(
    const std::string& workflow) const {
  std::vector<const RelativeOrderReq*> out;
  for (const RelativeOrderReq& req : relative_orders) {
    if (req.workflow_a == workflow || req.workflow_b == workflow) {
      out.push_back(&req);
    }
  }
  return out;
}

std::vector<const MutexReq*> CoordinationSpec::MutexesOf(
    const std::string& workflow, StepId step) const {
  std::vector<const MutexReq*> out;
  for (const MutexReq& req : mutexes) {
    for (const auto& [wf, s] : req.critical_steps) {
      if (wf == workflow && s == step) {
        out.push_back(&req);
        break;
      }
    }
  }
  return out;
}

std::vector<const RollbackDepReq*> CoordinationSpec::RollbackDepsLeading(
    const std::string& workflow) const {
  std::vector<const RollbackDepReq*> out;
  for (const RollbackDepReq& req : rollback_deps) {
    if (req.workflow_a == workflow) out.push_back(&req);
  }
  return out;
}

int CoordinationSpec::RequirementCount(const std::string& workflow) const {
  int count = 0;
  for (const RelativeOrderReq& req : relative_orders) {
    if (req.workflow_a == workflow || req.workflow_b == workflow) {
      count += static_cast<int>(req.step_pairs.size());
    }
  }
  for (const MutexReq& req : mutexes) {
    for (const auto& [wf, step] : req.critical_steps) {
      if (wf == workflow) ++count;
    }
  }
  for (const RollbackDepReq& req : rollback_deps) {
    if (req.workflow_a == workflow || req.workflow_b == workflow) ++count;
  }
  return count;
}

std::vector<RoBinding> ConflictTracker::OnInstanceStart(
    const InstanceId& instance) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RoBinding> bindings;
  for (const RelativeOrderReq& req : spec_->relative_orders) {
    // The new instance may play role B (lagging behind a live A instance)
    // or role A (lagging behind a live earlier B instance, when the
    // requirement relates a class to itself or classes started
    // interleaved). Ordering follows start order: earlier leads.
    auto bind_against = [&](const std::string& lead_class, bool new_is_a) {
      auto it = live_.find(lead_class);
      if (it == live_.end() || it->second.empty()) return;
      const InstanceId& lead = it->second.back();
      if (lead == instance) return;
      RoBinding binding;
      binding.leading = lead;
      binding.lagging = instance;
      for (const auto& [step_a, step_b] : req.step_pairs) {
        // Pair is (A-step, B-step); map onto (lead step, lag step).
        binding.step_pairs.emplace_back(new_is_a ? step_b : step_a,
                                        new_is_a ? step_a : step_b);
      }
      bindings.push_back(std::move(binding));
    };
    if (req.workflow_b == instance.workflow) {
      bind_against(req.workflow_a, /*new_is_a=*/false);
    } else if (req.workflow_a == instance.workflow) {
      bind_against(req.workflow_b, /*new_is_a=*/true);
    }
  }
  live_[instance.workflow].push_back(instance);
  return bindings;
}

std::vector<std::pair<InstanceId, StepId>>
ConflictTracker::RollbackDependents(const InstanceId& instance,
                                    StepId to_step) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<InstanceId, StepId>> out;
  for (const RollbackDepReq& req : spec_->rollback_deps) {
    if (req.workflow_a != instance.workflow) continue;
    // Dependency triggers when rolling back to or above step_a.
    if (req.step_a != kInvalidStep && to_step > req.step_a) continue;
    auto it = live_.find(req.workflow_b);
    if (it == live_.end()) continue;
    for (const InstanceId& dependent : it->second) {
      if (dependent == instance) continue;
      out.emplace_back(dependent, req.step_b);
    }
  }
  return out;
}

void ConflictTracker::OnInstanceEnd(const InstanceId& instance) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(instance.workflow);
  if (it == live_.end()) return;
  auto& list = it->second;
  list.erase(std::remove(list.begin(), list.end(), instance), list.end());
}

}  // namespace crew::runtime
