# Empty dependencies file for crew_laws.
# This may be replaced when dependencies are built.
