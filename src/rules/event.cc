#include "rules/event.h"

#include <cstdlib>

#include "common/strings.h"

namespace crew::rules::event {

std::string WorkflowStart() { return "WF.start"; }
std::string WorkflowDone() { return "WF.done"; }
std::string WorkflowAbort() { return "WF.abort"; }

std::string StepDone(StepId step) {
  return "S" + std::to_string(step) + ".done";
}

std::string StepFail(StepId step) {
  return "S" + std::to_string(step) + ".fail";
}

std::string StepCompensated(StepId step) {
  return "S" + std::to_string(step) + ".comp";
}

std::string RelativeOrder(const InstanceId& leading, StepId step) {
  return "RO:" + leading.ToString() + ":S" + std::to_string(step) + ".done";
}

std::string MutexFree(const std::string& resource) {
  return "ME:" + resource + ".free";
}

StepId ParseStepEvent(const std::string& token, const std::string& suffix) {
  if (token.size() < 2 || token[0] != 'S') return kInvalidStep;
  size_t dot = token.find('.');
  if (dot == std::string::npos || token.substr(dot + 1) != suffix) {
    return kInvalidStep;
  }
  char* end = nullptr;
  long id = strtol(token.c_str() + 1, &end, 10);
  if (end != token.c_str() + dot || id <= 0) return kInvalidStep;
  return static_cast<StepId>(id);
}

}  // namespace crew::rules::event
