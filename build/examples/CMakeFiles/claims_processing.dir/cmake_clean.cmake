file(REMOVE_RECURSE
  "CMakeFiles/claims_processing.dir/claims_processing.cpp.o"
  "CMakeFiles/claims_processing.dir/claims_processing.cpp.o.d"
  "claims_processing"
  "claims_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
