#ifndef CREW_NET_FRAME_H_
#define CREW_NET_FRAME_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "runtime/codec.h"
#include "sim/network.h"

namespace crew::net {

/// One unit of the socket protocol. Every frame shares the envelope
///
///   [u32 length][u8 kind][body]
///
/// `length` (little-endian) covers everything after itself. Two wire
/// forms exist per logical kind — the sender's codec picks one, the
/// decoder handles both unconditionally, so kv and binary peers
/// interoperate frame-by-frame:
///
///  - kv kinds (kHello/kData/kAck): body is [u32 header_len][kv header]
///    [payload]. The header is line-oriented kv text (runtime/kv.h); the
///    payload rides behind it as raw bytes so it needs no escaping.
///  - binary kinds (kHelloBin/kAckBin/kDataBin): body is varint/zigzag
///    fields (runtime/binio.h), self-delimiting, payload at the tail.
///    See DESIGN.md §5i for the exact layouts.
///  - kBatch: [varint count][count × complete inner envelopes]. One
///    superframe per poll wakeup coalesces all pending DATA frames of a
///    directed pair under a single length prefix (and a single write
///    syscall). Inner frames must exactly tile the body and must not
///    nest batches; a corrupt inner frame poisons only this stream.
///
/// The decoder normalizes: popped frames always carry a *logical* kind
/// (kHello/kData/kAck), whatever the wire form was.
///
/// Logical kinds:
///  - kHello: first frame on every connection; identifies the sending
///    endpoint and its incarnation (bumped on process restart, which
///    tells the receiver to reset its dedup watermark). The binary form
///    also carries the sender's message-type dictionary: the wi:: names
///    in dictionary-id order, so subsequent kDataBin frames can encode
///    their type as one varint id (runtime/codec.h WireTypeId).
///  - kData: one sim::Message, tagged with a per-directed-endpoint-pair
///    sequence number. The sender retains the frame until acked and
///    replays retained frames after a reconnect; the receiver drops
///    sequence numbers at or below its watermark, so steady-state
///    delivery is exactly-once and crash-restart is at-least-once.
///  - kAck: cumulative receive watermark for the reverse direction,
///    scoped to the incarnation of the stream it acknowledges: the
///    receiver of the ACK drops it unless the incarnation matches its
///    own, so a watermark learned from a peer's *previous* life can
///    never discard frames of the restarted sequence space.
struct Frame {
  enum class Kind : uint8_t {
    kHello = 1,
    kData = 2,
    kAck = 3,
    kHelloBin = 4,
    kAckBin = 5,
    kDataBin = 6,
    kBatch = 7,
  };

  Kind kind = Kind::kData;

  // kHello: sender process generation. kAck: generation of the acked
  // stream, as learned from that sender's HELLO.
  uint64_t incarnation = 0;

  // kHello
  std::string endpoint;  ///< sender's listening address
  /// kHello: the sender's local clock (runtime ticks) when the HELLO was
  /// built, or -1 when the sender has no clock installed. Receivers pair
  /// it with their own receive tick — one (send, recv) sample per
  /// connection establishment — and the trace merge step estimates
  /// per-process clock offsets from the bidirectional minima
  /// (NTP-style), which is what puts every shard on a common timeline.
  int64_t sent_ticks = -1;

  // kAck
  uint64_t watermark = 0;  ///< highest delivered seq, cumulative

  // kData
  uint64_t seq = 0;
  sim::Message message;  ///< carries trace_id / trace_sent_ticks when set
};

/// Frames larger than this poison the decoder (corrupt length prefix).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Encodes in the kv wire form (back-compat callers and tests).
std::string EncodeFrame(const Frame& frame);

/// Encodes in the wire form of `codec` (the transport's sender-side
/// choice; receivers decode either form).
std::string EncodeFrame(const Frame& frame, runtime::PayloadCodec codec);

/// Wraps already-encoded frames into one kBatch superframe.
std::string EncodeSuperframe(const std::vector<std::string>& frames);

/// Appends just the superframe envelope — [u32 length][kBatch][varint
/// count] — sized for `inner_bytes` of already-encoded inner frames that
/// the caller will append next. Lets the transport stage a batch without
/// collecting the frames into a temporary vector.
void AppendBatchHeader(std::string* out, size_t count, size_t inner_bytes);

/// InvalidArgument when a DATA frame carrying `message` could exceed
/// kMaxFrameBytes (computed against the worst-case sequence-number
/// header). Senders must reject such messages before admitting them to
/// an outbound stream: the receiving decoder treats an oversize length
/// prefix as corruption and drops the connection, and a retained
/// oversize frame would then replay on every reconnect forever. The
/// bound is computed against the kv header, which is strictly larger
/// than the binary one — so it is valid for either codec.
Status CheckShippable(const sim::Message& message);

/// Incremental decoder: feed arbitrary byte slices exactly as read from
/// a socket — single bytes, half a length prefix, several concatenated
/// frames, whole superframes — and pop complete frames out in order. A
/// malformed frame poisons the stream permanently (the transport drops
/// the connection).
class FrameDecoder {
 public:
  void Feed(std::string_view bytes);

  /// Moves the next complete frame into *out. Returns false when no
  /// complete frame is buffered or the stream is poisoned (check ok()).
  bool Next(Frame* out);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t buffered_bytes() const { return buffer_.size() - offset_; }

 private:
  /// Decodes one envelope out of the buffer into ready_. Returns false
  /// when more bytes are needed or the stream poisoned.
  bool DecodeOne();
  /// Parses one frame body (bytes after the kind byte). kBatch is not a
  /// body kind — DecodeOne unrolls it.
  bool ParseBody(Frame::Kind kind, const char* body, size_t body_len,
                 Frame* out);

  std::string buffer_;
  size_t offset_ = 0;
  Status status_;
  std::deque<Frame> ready_;
  /// Message-type dictionary declared by the peer's binary HELLO
  /// (dictionary id -> type name), used to resolve kDataBin type ids.
  std::vector<std::string> type_dict_;
};

}  // namespace crew::net

#endif  // CREW_NET_FRAME_H_
