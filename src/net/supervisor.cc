#include "net/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "net/control.h"

namespace crew::net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reaps `pid`, escalating to SIGKILL after `grace_ms`.
void Reap(pid_t pid, int grace_ms) {
  if (pid <= 0) return;
  int64_t deadline = NowMs() + grace_ms;
  for (;;) {
    int status = 0;
    pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid || (done < 0 && errno == ECHILD)) return;
    if (NowMs() >= deadline) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

Supervisor::Supervisor(Topology topology, LaunchOptions options)
    : topology_(std::move(topology)), options_(std::move(options)) {
  for (const Endpoint& endpoint : topology_.Endpoints()) {
    NodeProcess process;
    process.endpoint = endpoint;
    process.control_path = endpoint.path + ".ctl";
    processes_.push_back(std::move(process));
  }
}

Supervisor::~Supervisor() { ShutdownAll(); }

Supervisor::NodeProcess* Supervisor::FindProcess(const Endpoint& endpoint) {
  for (NodeProcess& process : processes_) {
    if (process.endpoint == endpoint) return &process;
  }
  return nullptr;
}

Status Supervisor::Spawn(NodeProcess* process, bool drive) {
  if (process->endpoint.kind != Endpoint::Kind::kUnix) {
    return Status::InvalidArgument(
        "supervisor requires unix-domain endpoints");
  }
  std::vector<std::string> args = {
      options_.node_binary,
      "--topology", options_.topology_file,
      "--endpoint", process->endpoint.Address(),
      "--control", process->control_path,
      "--mode", options_.mode,
      "--engines", std::to_string(options_.num_engines),
      "--agents", std::to_string(options_.num_agents),
      "--instances", std::to_string(options_.num_instances),
      "--seed", std::to_string(options_.seed),
      "--tick-us", std::to_string(options_.tick_us),
      "--pending-timeout", std::to_string(options_.pending_timeout),
      "--incarnation", std::to_string(process->incarnation),
      "--drive", drive ? "1" : "0",
      "--telemetry-interval-ms",
      std::to_string(options_.telemetry_interval_ms),
  };
  if (!options_.agdb_dir.empty()) {
    args.push_back("--agdb");
    args.push_back(options_.agdb_dir);
  }
  if (!options_.codec.empty()) {
    args.push_back("--codec");
    args.push_back(options_.codec);
  }
  if (!options_.placement.empty() && options_.placement != "static") {
    args.push_back("--placement");
    args.push_back(options_.placement);
  }
  if (options_.num_classes > 0) {
    args.push_back("--classes");
    args.push_back(std::to_string(options_.num_classes));
  }
  if (!options_.purge.empty() && options_.purge != "targeted") {
    args.push_back("--purge");
    args.push_back(options_.purge);
  }
  if (!options_.trace_dir.empty()) {
    // One shard file per incarnation: a restarted process must not
    // overwrite its previous life's shard (each is a separate clock).
    const std::string& path = process->endpoint.path;
    size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::string shard = options_.trace_dir + "/" + base + ".inc" +
                        std::to_string(process->incarnation) + ".shard";
    args.push_back("--trace-shard");
    args.push_back(shard);
    process->trace_shards.push_back(std::move(shard));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_t pid = fork();
  if (pid < 0) {
    return Status::Unavailable("fork failed: " +
                               std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: exec immediately (nothing but async-signal-safe calls
    // between fork and exec — the parent may be multithreaded).
    execv(options_.node_binary.c_str(), argv.data());
    _exit(127);
  }
  process->pid = pid;
  return Status::OK();
}

Status Supervisor::StartAll() {
  for (NodeProcess& process : processes_) {
    CREW_RETURN_IF_ERROR(Spawn(&process, options_.drive_on_start));
  }
  return Status::OK();
}

Status Supervisor::Kill(const Endpoint& endpoint) {
  NodeProcess* process = FindProcess(endpoint);
  if (process == nullptr || process->pid <= 0) {
    return Status::NotFound("no live process at " + endpoint.Address());
  }
  kill(process->pid, SIGKILL);
  int status = 0;
  waitpid(process->pid, &status, 0);
  process->pid = -1;
  return Status::OK();
}

Status Supervisor::Restart(const Endpoint& endpoint) {
  NodeProcess* process = FindProcess(endpoint);
  if (process == nullptr) {
    return Status::NotFound("unknown endpoint " + endpoint.Address());
  }
  if (process->pid > 0) {
    return Status::FailedPrecondition("process still running; Kill first");
  }
  ++process->incarnation;
  return Spawn(process, /*drive=*/false);
}

Result<std::string> Supervisor::Request(const Endpoint& endpoint,
                                        const std::string& request) {
  NodeProcess* process = FindProcess(endpoint);
  if (process == nullptr) {
    return Status::NotFound("unknown endpoint " + endpoint.Address());
  }
  return ControlRequest(process->control_path, request);
}

Status Supervisor::WaitQuiescent(int timeout_ms) {
  int64_t deadline = NowMs() + timeout_ms;
  int64_t last_admitted = -1;
  while (NowMs() < deadline) {
    bool quiet = true;
    int64_t admitted = 0;
    for (NodeProcess& process : processes_) {
      Result<std::string> reply =
          ControlRequest(process.control_path, "quiet", 2000);
      if (!reply.ok()) {
        quiet = false;
        break;
      }
      // Reply: "<0|1> <admitted>"
      const std::string& text = reply.value();
      size_t space = text.find(' ');
      if (space == std::string::npos || text[0] != '1') {
        quiet = false;
        break;
      }
      admitted += std::atoll(text.c_str() + space + 1);
    }
    if (quiet && admitted == last_admitted) return Status::OK();
    last_admitted = quiet ? admitted : -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(quiet ? 5 : 20));
  }
  return Status::Unavailable("cluster did not quiesce in " +
                             std::to_string(timeout_ms) + "ms");
}

Result<std::string> Supervisor::QueryState(const std::string& workflow,
                                           int64_t number) {
  for (NodeProcess& process : processes_) {
    Result<std::string> reply = ControlRequest(
        process.control_path,
        "status " + workflow + " " + std::to_string(number), 2000);
    if (!reply.ok()) continue;
    // Reply: "<state> <telemetry json>"; "n/a" from non-authorities.
    const std::string& text = reply.value();
    size_t space = text.find(' ');
    std::string state =
        space == std::string::npos ? text : text.substr(0, space);
    if (state != "n/a" && state.compare(0, 3, "err") != 0) return state;
  }
  return Status::NotFound("no process is authoritative for " + workflow +
                          "#" + std::to_string(number));
}

std::vector<NodeTelemetry> Supervisor::CollectTelemetry(int timeout_ms) {
  std::vector<NodeTelemetry> out;
  for (NodeProcess& process : processes_) {
    if (process.pid <= 0) continue;
    Result<std::string> reply =
        ControlRequest(process.control_path, "telemetry", timeout_ms);
    if (!reply.ok() || reply.value().empty() || reply.value()[0] != '{') {
      continue;
    }
    out.push_back(NodeTelemetry{process.endpoint.Address(),
                                std::move(reply).value()});
  }
  return out;
}

std::vector<std::string> Supervisor::TraceShardPaths() const {
  std::vector<std::string> paths;
  for (const NodeProcess& process : processes_) {
    for (const std::string& shard : process.trace_shards) {
      paths.push_back(shard);
    }
  }
  return paths;
}

void Supervisor::ShutdownAll() {
  for (NodeProcess& process : processes_) {
    if (process.pid <= 0) continue;
    Result<std::string> reply =
        ControlRequest(process.control_path, "exit", 2000);
    if (!reply.ok()) {
      CREW_LOG(Warn) << "supervisor: exit request to "
                     << process.endpoint.Address()
                     << " failed: " << reply.status().ToString();
    }
    Reap(process.pid, /*grace_ms=*/5000);
    process.pid = -1;
  }
}

}  // namespace crew::net
