#ifndef CREW_CENTRAL_SYSTEM_H_
#define CREW_CENTRAL_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "central/agent.h"
#include "central/engine.h"
#include "model/deployment.h"
#include "runtime/coord.h"
#include "runtime/programs.h"
#include "sim/simulator.h"

namespace crew::central {

/// Assembles a complete centralized-control deployment (Figure 6(a)):
/// one engine (node 1) plus `num_agents` thin agents (nodes 2..). The
/// caller owns the ProgramRegistry, Deployment, and CoordinationSpec.
/// Construct over a sim::Simulator for virtual-time runs or an
/// rt::Runtime for live multi-threaded execution.
class CentralSystem {
 public:
  CentralSystem(sim::Backend* backend,
                const runtime::ProgramRegistry* programs,
                const model::Deployment* deployment,
                const runtime::CoordinationSpec* coordination,
                int num_agents, EngineOptions options = {});

  WorkflowEngine& engine() { return *engine_; }
  /// The engine node's execution context (shared global context under
  /// sim; the engine worker's cell under rt).
  sim::Context& context() { return *engine_context_; }

  /// Node ids of the agents, usable when building the Deployment.
  const std::vector<NodeId>& agent_ids() const { return agent_ids_; }

  /// First agent node id in a CentralSystem with engine at node 1.
  static constexpr NodeId kFirstAgentId = 2;

 private:
  sim::Context* engine_context_;
  std::unique_ptr<WorkflowEngine> engine_;
  std::vector<std::unique_ptr<ThinAgent>> agents_;
  std::vector<NodeId> agent_ids_;
};

}  // namespace crew::central

#endif  // CREW_CENTRAL_SYSTEM_H_
