#include "net/frame.h"

#include <cstring>
#include <limits>

#include "runtime/kv.h"
#include "sim/metrics.h"

namespace crew::net {
namespace {

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  runtime::KvWriter header;
  const std::string* payload = nullptr;
  switch (frame.kind) {
    case Frame::Kind::kHello:
      header.Add("endpoint", frame.endpoint);
      header.AddInt("incarnation", static_cast<int64_t>(frame.incarnation));
      if (frame.sent_ticks >= 0) {
        header.AddInt("sent", frame.sent_ticks);
      }
      break;
    case Frame::Kind::kAck:
      header.AddInt("watermark", static_cast<int64_t>(frame.watermark));
      header.AddInt("incarnation", static_cast<int64_t>(frame.incarnation));
      break;
    case Frame::Kind::kData:
      header.AddInt("seq", static_cast<int64_t>(frame.seq));
      header.AddInt("from", frame.message.from);
      header.AddInt("to", frame.message.to);
      header.Add("type", frame.message.type);
      header.AddInt("category", static_cast<int>(frame.message.category));
      // Trace context, omitted for untraced messages so the steady-state
      // frame stays exactly as before. The id is a raw 64-bit pattern
      // (endpoint hash | incarnation | counter); it rides as int64.
      if (frame.message.trace_id != 0) {
        header.AddInt("trace",
                      static_cast<int64_t>(frame.message.trace_id));
        if (frame.message.trace_sent_ticks >= 0) {
          header.AddInt("sent", frame.message.trace_sent_ticks);
        }
      }
      payload = &frame.message.payload;
      break;
  }
  std::string head = header.Finish();
  size_t payload_size = payload != nullptr ? payload->size() : 0;
  std::string out;
  out.reserve(4 + 1 + 4 + head.size() + payload_size);
  PutU32(&out, static_cast<uint32_t>(1 + 4 + head.size() + payload_size));
  out.push_back(static_cast<char>(frame.kind));
  PutU32(&out, static_cast<uint32_t>(head.size()));
  out += head;
  if (payload != nullptr) out += *payload;
  return out;
}

Status CheckShippable(const sim::Message& message) {
  // Mirror the kData header of EncodeFrame with the widest possible
  // sequence number, so the check holds for any seq assigned later
  // (held messages are sequenced only on recovery).
  runtime::KvWriter header;
  header.AddInt("seq", std::numeric_limits<int64_t>::max());
  header.AddInt("from", message.from);
  header.AddInt("to", message.to);
  header.Add("type", message.type);
  header.AddInt("category", static_cast<int>(message.category));
  // Worst-case trace context: a transport-assigned id and send tick may
  // be added after admission, so the bound must cover them even when the
  // message is untraced at check time.
  header.AddInt("trace", std::numeric_limits<int64_t>::min());
  header.AddInt("sent", std::numeric_limits<int64_t>::max());
  size_t length = 1 + 4 + header.Finish().size() + message.payload.size();
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "message frame of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte frame limit");
  }
  return Status::OK();
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (!status_.ok()) return;
  // Compact once the consumed prefix dominates the buffer, so a
  // long-lived connection doesn't grow its buffer without bound.
  if (offset_ > 4096 && offset_ > buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

bool FrameDecoder::Next(Frame* out) {
  if (!status_.ok()) return false;
  if (buffer_.size() - offset_ < 4) return false;
  const char* base = buffer_.data() + offset_;
  uint32_t length = GetU32(base);
  if (length < 1 + 4 || length > kMaxFrameBytes) {
    status_ = Status::Corruption("bad frame length " +
                                 std::to_string(length));
    return false;
  }
  if (buffer_.size() - offset_ < 4 + static_cast<size_t>(length)) {
    return false;  // frame split across reads: wait for the rest
  }
  const char* body = base + 4;
  auto kind = static_cast<Frame::Kind>(static_cast<unsigned char>(body[0]));
  uint32_t header_len = GetU32(body + 1);
  if (header_len > length - 1 - 4) {
    status_ = Status::Corruption("frame header overruns frame");
    return false;
  }
  std::string head(body + 5, header_len);
  const char* payload = body + 5 + header_len;
  size_t payload_len = length - 1 - 4 - header_len;
  offset_ += 4 + static_cast<size_t>(length);

  Result<runtime::KvReader> reader = runtime::KvReader::Parse(head);
  if (!reader.ok()) {
    status_ = reader.status();
    return false;
  }
  const runtime::KvReader& kv = reader.value();
  Frame frame;
  frame.kind = kind;
  switch (kind) {
    case Frame::Kind::kHello: {
      Result<std::string> endpoint = kv.GetRequired("endpoint");
      Result<int64_t> incarnation = kv.GetInt("incarnation");
      if (!endpoint.ok() || !incarnation.ok()) {
        status_ = Status::Corruption("malformed hello frame");
        return false;
      }
      frame.endpoint = std::move(endpoint).value();
      frame.incarnation = static_cast<uint64_t>(incarnation.value());
      frame.sent_ticks = kv.GetIntOr("sent", -1);
      break;
    }
    case Frame::Kind::kAck: {
      Result<int64_t> watermark = kv.GetInt("watermark");
      Result<int64_t> incarnation = kv.GetInt("incarnation");
      if (!watermark.ok() || !incarnation.ok()) {
        status_ = Status::Corruption("malformed ack frame");
        return false;
      }
      frame.watermark = static_cast<uint64_t>(watermark.value());
      frame.incarnation = static_cast<uint64_t>(incarnation.value());
      break;
    }
    case Frame::Kind::kData: {
      Result<int64_t> seq = kv.GetInt("seq");
      Result<int64_t> from = kv.GetInt("from");
      Result<int64_t> to = kv.GetInt("to");
      Result<std::string> type = kv.GetRequired("type");
      int64_t category = kv.GetIntOr("category", 0);
      if (!seq.ok() || !from.ok() || !to.ok() || !type.ok() ||
          category < 0 || category >= sim::kNumMsgCategories) {
        status_ = Status::Corruption("malformed data frame");
        return false;
      }
      frame.seq = static_cast<uint64_t>(seq.value());
      frame.message.from = static_cast<NodeId>(from.value());
      frame.message.to = static_cast<NodeId>(to.value());
      frame.message.type = std::move(type).value();
      frame.message.category = static_cast<sim::MsgCategory>(category);
      frame.message.trace_id =
          static_cast<uint64_t>(kv.GetIntOr("trace", 0));
      frame.message.trace_sent_ticks = kv.GetIntOr("sent", -1);
      frame.message.payload.assign(payload, payload_len);
      break;
    }
    default:
      status_ = Status::Corruption("unknown frame kind " +
                                   std::to_string(static_cast<int>(kind)));
      return false;
  }
  *out = std::move(frame);
  return true;
}

}  // namespace crew::net
