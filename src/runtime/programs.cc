#include "runtime/programs.h"

namespace crew::runtime {

void ProgramRegistry::Register(const std::string& name, ProgramFn fn) {
  programs_[name] = std::move(fn);
}

bool ProgramRegistry::Contains(const std::string& name) const {
  return programs_.count(name) > 0;
}

Result<ProgramOutcome> ProgramRegistry::Run(
    const std::string& name, const ProgramContext& context) const {
  auto it = programs_.find(name);
  if (it == programs_.end()) {
    return Status::NotFound("no program registered as '" + name + "'");
  }
  return it->second(context);
}

void ProgramRegistry::RegisterBuiltins() {
  Register("noop", [](const ProgramContext& ctx) {
    ProgramOutcome out;
    out.outputs["O1"] = Value(static_cast<int64_t>(ctx.attempt));
    return out;
  });
  Register("copy", [](const ProgramContext& ctx) {
    ProgramOutcome out;
    int i = 1;
    for (const auto& [name, value] : ctx.inputs) {
      out.outputs["O" + std::to_string(i++)] = value;
    }
    return out;
  });
  Register("sum", [](const ProgramContext& ctx) {
    ProgramOutcome out;
    double sum = 0;
    bool all_int = true;
    for (const auto& [name, value] : ctx.inputs) {
      if (value.is_numeric()) {
        sum += value.NumericValue();
        all_int = all_int && value.is_int();
      }
    }
    out.outputs["O1"] =
        all_int ? Value(static_cast<int64_t>(sum)) : Value(sum);
    return out;
  });
  Register("fail_always", [](const ProgramContext&) {
    ProgramOutcome out;
    out.success = false;
    return out;
  });
  Register("negate", [](const ProgramContext& ctx) {
    ProgramOutcome out;
    for (const auto& [name, value] : ctx.inputs) {
      if (value.is_int()) {
        out.outputs["O1"] = Value(-value.AsInt());
        return out;
      }
      if (value.is_double()) {
        out.outputs["O1"] = Value(-value.AsDouble());
        return out;
      }
    }
    out.outputs["O1"] = Value();
    return out;
  });
}

void ProgramRegistry::RegisterFlaky(const std::string& name, double pf) {
  Register(name, [pf](const ProgramContext& ctx) {
    ProgramOutcome out;
    if (ctx.rng != nullptr && ctx.rng->Bernoulli(pf)) {
      out.success = false;
      return out;
    }
    out.outputs["O1"] = Value(static_cast<int64_t>(ctx.attempt));
    return out;
  });
}

void ProgramRegistry::RegisterFailFirstN(const std::string& name, int n) {
  Register(name, [n](const ProgramContext& ctx) {
    ProgramOutcome out;
    if (ctx.attempt <= n) {
      out.success = false;
      return out;
    }
    out.outputs["O1"] = Value(static_cast<int64_t>(ctx.attempt));
    return out;
  });
}

}  // namespace crew::runtime
