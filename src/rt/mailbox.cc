#include "rt/mailbox.h"

#include <thread>
#include <utility>

namespace crew::rt {

bool Mailbox::PushLocked(Task task, bool bounded) {
  std::unique_lock<std::mutex> lock(mu_);
  if (bounded) {
    not_full_.wait(lock, [this]() {
      return closed_ || queue_.size() < capacity_;
    });
  }
  if (closed_) return false;
  queue_.push_back(std::move(task));
  size_t depth = queue_.size();
  if (depth > max_depth_) max_depth_ = depth;
  approx_size_.store(depth, std::memory_order_release);
  pushed_total_.fetch_add(1, std::memory_order_release);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool Mailbox::Push(Task task) {
  return PushLocked(std::move(task), /*bounded=*/true);
}

bool Mailbox::ForcePush(Task task) {
  return PushLocked(std::move(task), /*bounded=*/false);
}

bool Mailbox::Pop(Task* out) {
  // Fast path: spin on the approximate size before touching the lock.
  // The counter may be stale in either direction; it only gates how soon
  // we take the mutex, never correctness.
  for (int i = 0; i < spin_iterations_; ++i) {
    if (approx_size_.load(std::memory_order_acquire) > 0) break;
    std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lock(mu_);
  executing_ = false;  // the previous task (if any) is finished
  while (queue_.empty() && !closed_) {
    ++parks_;
    not_empty_.wait(lock);
  }
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  approx_size_.store(queue_.size(), std::memory_order_release);
  executing_ = true;
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void Mailbox::PopDone() {
  std::lock_guard<std::mutex> lock(mu_);
  executing_ = false;
}

void Mailbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool Mailbox::QuietNow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty() && !executing_;
}

size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int64_t Mailbox::parks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parks_;
}

size_t Mailbox::max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

}  // namespace crew::rt
