# Empty compiler generated dependencies file for bench_ocr_savings.
# This may be replaced when dependencies are built.
