// Live-runtime load bench: WorkflowStart traffic against the real-thread
// backend (src/rt), one calibration run plus an open-loop arrival-rate
// sweep per architecture.
//
// Phase 1 (calibration, closed-loop): blast all workflows at once and
// measure saturation throughput — the number comparable across PRs
// ("wf_per_sec") and the input to phase 2.
//
// Phase 2 (open-loop): a pacing thread schedules arrival i at
// t0 + i/rate and posts it regardless of how far the system has fallen
// behind, for a sweep of rates expressed as fractions of the calibrated
// saturation throughput. Per-instance *sojourn* latency is measured from
// the scheduled arrival tick to the instance-commit tick (flight
// recorder kInstance span end), so queueing delay is charged to the
// system rather than silently absorbed by a blocked driver (no
// coordinated omission). This yields latency-under-load curves.
//
// Everything is written machine-readable to BENCH_rt.json.
//
// Flags:
//   --smoke            tiny workload (<2s total) for CI
//   --workflows=N      calibration instances per arch (default 4000)
//   --open-workflows=N instances per open-loop point (default: workflows/2)
//   --rates=a,b,c      open-loop rates as fractions of the calibrated
//                      saturation rate (default 0.5,0.75,0.9)
//   --agents=N         agent count (default 4)
//   --engines=N        parallel-control engine count (default 2)
//   --json=PATH        output path (default BENCH_rt.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "central/system.h"
#include "dist/system.h"
#include "model/builder.h"
#include "obs/trace.h"
#include "parallel/system.h"
#include "rt/runtime.h"

namespace crew {
namespace {

constexpr uint64_t kSeed = 42;
constexpr int64_t kTickUs = 10;

model::CompiledSchemaPtr JobSchema() {
  model::SchemaBuilder b("Job");
  StepId s1 = b.AddTask("T1", "noop");
  StepId s2 = b.AddTask("T2", "noop");
  StepId s3 = b.AddTask("T3", "noop");
  StepId s4 = b.AddTask("T4", "noop");
  b.Sequence({s1, s2, s3, s4});
  auto compiled = model::CompiledSchema::Compile(std::move(b.Build()).value());
  return compiled.value();
}

void SetEligibleRoundRobin(model::Deployment* deployment,
                           const std::vector<NodeId>& ids,
                           const model::CompiledSchema& schema) {
  for (StepId s = 1; s <= schema.schema().num_steps(); ++s) {
    std::vector<NodeId> agents = {ids[(s - 1) % ids.size()],
                                  ids[s % ids.size()]};
    std::sort(agents.begin(), agents.end());
    deployment->SetEligible(schema.schema().name(), s, agents);
  }
}

double Ticks2Us(double ticks) { return ticks * static_cast<double>(kTickUs); }

// ---------------------------------------------------------------------------
// Architecture adapters: one system behind a uniform start-the-Nth-
// workflow interface so the load driver is arch-agnostic. Instance
// numbers are sequential from 1 in post order for every arch (central/
// parallel number explicitly; the dist front end assigns 1,2,... and the
// single pacing thread posts FIFO), which is what lets the sojourn pass
// map a trace record back to its scheduled arrival.

class BenchSystem {
 public:
  virtual ~BenchSystem() = default;
  virtual void Post(rt::Runtime* rt, int seq) = 0;  // seq is 1-based
  virtual int64_t committed() = 0;
  /// Folds subsystem counters (conflict-tracker shards) into `metrics`.
  virtual void ExportStats(sim::Metrics* metrics) const { (void)metrics; }
};

struct BenchConfig {
  int agents = 4;
  int engines = 2;
};

class CentralBench : public BenchSystem {
 public:
  CentralBench(rt::Runtime* rt, runtime::ProgramRegistry* programs,
               model::Deployment* deployment,
               runtime::CoordinationSpec* coordination,
               const BenchConfig& config)
      : system_(rt, programs, deployment, coordination, config.agents) {
    auto schema = JobSchema();
    SetEligibleRoundRobin(deployment, system_.agent_ids(), *schema);
    system_.engine().RegisterSchema(schema);
  }
  void Post(rt::Runtime* rt, int seq) override {
    rt->Post(1, [this, seq]() {
      (void)system_.engine().StartWorkflow("Job", seq, {});
    });
  }
  int64_t committed() override { return system_.engine().committed_count(); }

 private:
  central::CentralSystem system_;
};

class ParallelBench : public BenchSystem {
 public:
  ParallelBench(rt::Runtime* rt, runtime::ProgramRegistry* programs,
                model::Deployment* deployment,
                runtime::CoordinationSpec* coordination,
                const BenchConfig& config)
      : system_(rt, programs, deployment, coordination, config.engines,
                config.agents) {
    auto schema = JobSchema();
    SetEligibleRoundRobin(deployment, system_.agent_ids(), *schema);
    system_.RegisterSchema(schema);
  }
  void Post(rt::Runtime* rt, int seq) override {
    NodeId owner = system_.OwnerEngine({"Job", seq});
    rt->Post(owner,
             [this, seq]() { (void)system_.StartWorkflow("Job", seq, {}); });
  }
  int64_t committed() override { return system_.committed_count(); }
  void ExportStats(sim::Metrics* metrics) const override {
    system_.tracker().ExportStats(metrics);
  }

 private:
  parallel::ParallelSystem system_;
};

class DistBench : public BenchSystem {
 public:
  DistBench(rt::Runtime* rt, runtime::ProgramRegistry* programs,
            model::Deployment* deployment,
            runtime::CoordinationSpec* coordination,
            const BenchConfig& config)
      : system_(rt, programs, deployment, coordination, config.agents,
                MakeAgentOptions()) {
    auto schema = JobSchema();
    SetEligibleRoundRobin(deployment, system_.agent_ids(), *schema);
    system_.RegisterSchema(schema);
  }
  void Post(rt::Runtime* rt, int /*seq*/) override {
    rt->Post(kFrontEndNode, [this]() {
      (void)system_.front_end().StartWorkflow("Job", {});
    });
  }
  int64_t committed() override { return system_.committed_count(); }

 private:
  static dist::AgentOptions MakeAgentOptions() {
    dist::AgentOptions options;
    options.exec_latency = 1;
    // Keep overdue-step probes out of a healthy run even when the
    // machine stalls: 5000 ticks = 50ms at the bench tick rate.
    options.pending_timeout = 5000;
    return options;
  }
  dist::DistributedSystem system_;
};

template <typename System>
std::unique_ptr<BenchSystem> Make(rt::Runtime* rt,
                                  runtime::ProgramRegistry* programs,
                                  model::Deployment* deployment,
                                  runtime::CoordinationSpec* coordination,
                                  const BenchConfig& config) {
  return std::make_unique<System>(rt, programs, deployment, coordination,
                                  config);
}

using Factory = std::unique_ptr<BenchSystem> (*)(rt::Runtime*,
                                                 runtime::ProgramRegistry*,
                                                 model::Deployment*,
                                                 runtime::CoordinationSpec*,
                                                 const BenchConfig&);

// ---------------------------------------------------------------------------
// One run: fresh runtime + system, driven closed-loop (rate <= 0) or
// open-loop at `rate` workflows/sec.

struct RunResult {
  int workflows = 0;
  int64_t committed = 0;
  double wall_ms = 0;
  double achieved_per_sec = 0;  // workflows / wall (incl. drain)
  // Service latency: StartWorkflow dispatch -> commit (kInstance span).
  double p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  // Open-loop only: sojourn latency, scheduled arrival -> commit.
  bool open_loop = false;
  double target_rate = 0;    // workflows/sec offered
  double rate_fraction = 0;  // of the calibrated saturation rate
  int64_t sojourn_samples = 0;
  double sojourn_p50_us = 0, sojourn_p95_us = 0, sojourn_p99_us = 0,
         sojourn_max_us = 0;
  rt::RuntimeStats stats;
  std::string metrics_json;
};

RunResult RunOnce(Factory factory, const BenchConfig& config, int workflows,
                  double rate) {
  obs::RingBufferTracer ring;
  rt::Runtime rt({.seed = kSeed, .tick_us = kTickUs, .tracer = &ring});
  runtime::ProgramRegistry programs;
  programs.RegisterBuiltins();
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;
  std::unique_ptr<BenchSystem> system =
      factory(&rt, &programs, &deployment, &coordination, config);
  rt.Start();

  auto t0 = std::chrono::steady_clock::now();
  int64_t tick0 = rt.now();
  double period_us = rate > 0 ? 1e6 / rate : 0;
  if (rate <= 0) {
    for (int i = 1; i <= workflows; ++i) system->Post(&rt, i);
  } else {
    // The pacing thread is the open-loop arrival process: arrival i is
    // *scheduled* at t0 + i*period and posted then, no matter how far
    // behind the system is. (Post can still block on mailbox
    // backpressure; the sojourn clock keeps charging the system either
    // way, because it starts at the scheduled tick.)
    std::thread pacer([&]() {
      for (int i = 0; i < workflows; ++i) {
        std::this_thread::sleep_until(
            t0 + std::chrono::microseconds(
                     static_cast<int64_t>(i * period_us)));
        system->Post(&rt, i + 1);
      }
    });
    pacer.join();
  }
  rt.Quiesce();
  auto wall = std::chrono::steady_clock::now() - t0;
  rt.Shutdown();

  RunResult r;
  r.workflows = workflows;
  r.committed = system->committed();
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(wall).count() /
      1000.0;
  r.achieved_per_sec = r.wall_ms > 0 ? workflows / (r.wall_ms / 1000.0) : 0;
  const obs::LatencyHistogram& h = ring.instance_latency();
  r.p50_us = Ticks2Us(h.Percentile(50));
  r.p95_us = Ticks2Us(h.Percentile(95));
  r.p99_us = Ticks2Us(h.Percentile(99));
  r.max_us = Ticks2Us(static_cast<double>(h.max()));
  r.stats = rt.Stats();

  if (rate > 0) {
    r.open_loop = true;
    r.target_rate = rate;
    obs::LatencyHistogram sojourn("sojourn", "ticks");
    for (const obs::TraceRecord& rec : ring.records()) {
      if (rec.kind != obs::SpanKind::kInstance ||
          rec.phase != obs::TracePhase::kComplete ||
          rec.name != "instance") {
        continue;
      }
      int64_t arrival = rec.instance.number - 1;  // 0-based arrival index
      if (arrival < 0 || arrival >= workflows) continue;
      int64_t scheduled_tick =
          tick0 + static_cast<int64_t>(arrival * period_us) / kTickUs;
      int64_t complete_tick = rec.time + rec.dur;
      int64_t lat = complete_tick - scheduled_tick;
      sojourn.Add(lat < 0 ? 0 : lat);
    }
    r.sojourn_samples = sojourn.count();
    r.sojourn_p50_us = Ticks2Us(sojourn.Percentile(50));
    r.sojourn_p95_us = Ticks2Us(sojourn.Percentile(95));
    r.sojourn_p99_us = Ticks2Us(sojourn.Percentile(99));
    r.sojourn_max_us = Ticks2Us(static_cast<double>(sojourn.max()));
  }

  sim::Metrics merged = rt.MergedMetrics();
  system->ExportStats(&merged);
  r.metrics_json = merged.ReportJson();
  return r;
}

// ---------------------------------------------------------------------------
// Reporting

void PrintClosed(const std::string& label, const RunResult& r) {
  std::printf(
      "%-12s closed-loop %6d wf in %8.1f ms  => %9.0f wf/s   "
      "latency p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus\n",
      label.c_str(), r.workflows, r.wall_ms, r.achieved_per_sec, r.p50_us,
      r.p95_us, r.p99_us, r.max_us);
  std::printf(
      "             workers=%d delivered=%lld timers=%lld "
      "mailbox_parks=%lld max_depth=%zu\n",
      r.stats.num_workers,
      static_cast<long long>(r.stats.messages_delivered),
      static_cast<long long>(r.stats.timers_fired),
      static_cast<long long>(r.stats.mailbox_parks),
      r.stats.max_mailbox_depth);
}

void PrintOpen(const std::string& label, const RunResult& r) {
  std::printf(
      "%-12s open-loop @%7.0f wf/s (%.2fx sat) %5d wf  "
      "sojourn p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus  parks=%lld\n",
      label.c_str(), r.target_rate, r.rate_fraction, r.workflows,
      r.sojourn_p50_us, r.sojourn_p95_us, r.sojourn_p99_us, r.sojourn_max_us,
      static_cast<long long>(r.stats.mailbox_parks));
}

std::string Json(const RunResult& r) {
  char buf[1024];
  std::string head;
  if (r.open_loop) {
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"open\",\"target_rate_per_sec\":%.1f,"
                  "\"rate_fraction\":%.3f,\"workflows\":%d,"
                  "\"committed\":%lld,\"wall_ms\":%.3f,"
                  "\"achieved_per_sec\":%.1f,"
                  "\"sojourn_us\":{\"samples\":%lld,\"p50\":%.1f,"
                  "\"p95\":%.1f,\"p99\":%.1f,\"max\":%.1f},"
                  "\"service_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,"
                  "\"max\":%.1f},",
                  r.target_rate, r.rate_fraction, r.workflows,
                  static_cast<long long>(r.committed), r.wall_ms,
                  r.achieved_per_sec,
                  static_cast<long long>(r.sojourn_samples), r.sojourn_p50_us,
                  r.sojourn_p95_us, r.sojourn_p99_us, r.sojourn_max_us,
                  r.p50_us, r.p95_us, r.p99_us, r.max_us);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"closed\",\"workflows\":%d,\"committed\":%lld,"
                  "\"wall_ms\":%.3f,\"wf_per_sec\":%.1f,"
                  "\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,"
                  "\"max\":%.1f},",
                  r.workflows, static_cast<long long>(r.committed), r.wall_ms,
                  r.achieved_per_sec, r.p50_us, r.p95_us, r.p99_us, r.max_us);
  }
  head = buf;
  std::snprintf(buf, sizeof(buf),
                "\"rt\":{\"workers\":%d,\"delivered\":%lld,\"parked\":%lld,"
                "\"timers\":%lld,\"mailbox_parks\":%lld,\"max_depth\":%zu},"
                "\"metrics\":",
                r.stats.num_workers,
                static_cast<long long>(r.stats.messages_delivered),
                static_cast<long long>(r.stats.messages_parked),
                static_cast<long long>(r.stats.timers_fired),
                static_cast<long long>(r.stats.mailbox_parks),
                r.stats.max_mailbox_depth);
  return head + buf + r.metrics_json + "}";
}

int Main(int argc, char** argv) {
  int workflows = 4000;
  int open_workflows = 0;  // 0 => workflows / 2
  BenchConfig config;
  std::vector<double> rate_fractions = {0.5, 0.75, 0.9};
  std::string json_path = "BENCH_rt.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--workflows=", 0) == 0) {
      workflows = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--open-workflows=", 0) == 0) {
      open_workflows = std::atoi(arg.c_str() + 17);
    } else if (arg.rfind("--agents=", 0) == 0) {
      config.agents = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--engines=", 0) == 0) {
      config.engines = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--rates=", 0) == 0) {
      rate_fractions.clear();
      std::string list = arg.substr(8);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        rate_fractions.push_back(std::atof(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (smoke) {
    workflows = 250;
    if (open_workflows == 0) open_workflows = 150;
  }
  if (open_workflows == 0) open_workflows = workflows / 2;

  std::printf(
      "rt load: %d wf calibration + %zu open-loop points x %d wf, "
      "%d agents, %d engines, tick=%lldus\n",
      workflows, rate_fractions.size(), open_workflows, config.agents,
      config.engines, static_cast<long long>(kTickUs));

  struct ArchSpec {
    const char* label;
    Factory factory;
  };
  const ArchSpec archs[] = {
      {"central", &Make<CentralBench>},
      {"parallel", &Make<ParallelBench>},
      {"dist", &Make<DistBench>},
  };

  int failures = 0;
  std::ofstream out(json_path);
  out << "{\"bench\":\"rt_throughput\",\"smoke\":" << (smoke ? "true" : "false")
      << ",\"tick_us\":" << kTickUs << ",\"archs\":[";
  bool first_arch = true;
  for (const ArchSpec& arch : archs) {
    RunResult calibration = RunOnce(arch.factory, config, workflows, 0);
    PrintClosed(arch.label, calibration);
    // Floor the sweep base so a pathological calibration still produces
    // a meaningful (if trivially underloaded) sweep.
    double saturation = std::max(calibration.achieved_per_sec, 100.0);

    std::vector<RunResult> sweep;
    for (double fraction : rate_fractions) {
      RunResult point = RunOnce(arch.factory, config, open_workflows,
                                saturation * fraction);
      point.rate_fraction = fraction;
      PrintOpen(arch.label, point);
      sweep.push_back(std::move(point));
    }

    auto check = [&](const RunResult& r, const char* mode) {
      if (r.committed != r.workflows) {
        std::fprintf(stderr, "FAIL: %s %s committed %lld of %d workflows\n",
                     arch.label, mode, static_cast<long long>(r.committed),
                     r.workflows);
        ++failures;
      }
    };
    check(calibration, "closed");
    for (const RunResult& r : sweep) check(r, "open");
    if (calibration.stats.num_workers < 4) {
      std::fprintf(stderr, "FAIL: %s ran on %d workers (< 4)\n", arch.label,
                   calibration.stats.num_workers);
      ++failures;
    }

    if (!first_arch) out << ",";
    first_arch = false;
    out << "{\"arch\":\"" << arch.label
        << "\",\"closed_loop\":" << Json(calibration) << ",\"open_loop\":[";
    for (size_t i = 0; i < sweep.size(); ++i) {
      if (i > 0) out << ",";
      out << Json(sweep[i]);
    }
    out << "]}";
  }
  out << "]}\n";
  out.close();
  std::printf("wrote %s\n", json_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace crew

int main(int argc, char** argv) { return crew::Main(argc, argv); }
