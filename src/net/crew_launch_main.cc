// crew_launch: spawns a multi-process deployment — one crew_node per
// endpoint — runs the standard mixed workload to completion and checks
// every instance reached its expected terminal state. With --kill it
// SIGKILLs one node mid-run and restarts it (bumped incarnation, durable
// AGDB replay), demonstrating the crash-recovery path end to end; this
// is what the CI multi-process smoke runs.

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "net/supervisor.h"
#include "net/telemetry.h"
#include "net/testbed.h"
#include "net/trace_merge.h"
#include "runtime/wire.h"

namespace crew::net {

struct LaunchFlags {
  std::string node_bin;
  std::string workdir;
  std::string mode = "dist";
  int endpoints = 3;
  int engines = 2;
  int agents = 3;
  int instances = 9;
  uint64_t seed = 42;
  int64_t tick_us = 20;
  int64_t pending_timeout = 5000;
  std::string kill;  // endpoint address, or "auto" for the last one
  int kill_after_ms = 40;
  int timeout_ms = 120000;
  int status_interval_ms = 0;  // live cluster snapshots (0 = off)
  std::string trace_dir;       // per-process shards + merged trace
  std::string codec;           // kv | binary (empty = node default)
  std::string placement = "static";  // static | rr | hash | least
  int classes = 0;                   // sweep workload classes (0 = mixed)
  std::string purge = "targeted";    // targeted | broadcast
};

void LaunchUsage() {
  std::fprintf(
      stderr,
      "crew_launch --node-bin <crew_node> --workdir <dir> [options]\n"
      "  --mode central|parallel|dist   (default dist)\n"
      "  --endpoints N                  processes to spread nodes over\n"
      "  --engines N --agents N --instances N\n"
      "  --seed N --tick-us N --pending-timeout N\n"
      "  --kill auto|<address>          SIGKILL+restart a node mid-run\n"
      "  --kill-after-ms N --timeout-ms N\n"
      "  --status-interval-ms N         print live aggregated cluster\n"
      "                                 metrics every N ms\n"
      "  --trace-dir <dir>              per-process trace shards; merged\n"
      "                                 into <dir>/trace_merged.json\n"
      "  --codec kv|binary              wire codec the nodes send with\n"
      "                                 (default binary)\n"
      "  --placement static|rr|hash|least  instance placement policy\n"
      "  --classes N                    N all-committing workload classes\n"
      "                                 Wf0..Wf<N-1> (0 = standard mix)\n"
      "  --purge targeted|broadcast     end-of-instance purge scope\n");
}

bool ParseLaunchFlags(int argc, char** argv, LaunchFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--node-bin" && (value = next())) {
      flags->node_bin = value;
    } else if (arg == "--workdir" && (value = next())) {
      flags->workdir = value;
    } else if (arg == "--mode" && (value = next())) {
      flags->mode = value;
    } else if (arg == "--endpoints" && (value = next())) {
      flags->endpoints = std::atoi(value);
    } else if (arg == "--engines" && (value = next())) {
      flags->engines = std::atoi(value);
    } else if (arg == "--agents" && (value = next())) {
      flags->agents = std::atoi(value);
    } else if (arg == "--instances" && (value = next())) {
      flags->instances = std::atoi(value);
    } else if (arg == "--seed" && (value = next())) {
      flags->seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--tick-us" && (value = next())) {
      flags->tick_us = std::atoll(value);
    } else if (arg == "--pending-timeout" && (value = next())) {
      flags->pending_timeout = std::atoll(value);
    } else if (arg == "--kill" && (value = next())) {
      flags->kill = value;
    } else if (arg == "--kill-after-ms" && (value = next())) {
      flags->kill_after_ms = std::atoi(value);
    } else if (arg == "--timeout-ms" && (value = next())) {
      flags->timeout_ms = std::atoi(value);
    } else if (arg == "--status-interval-ms" && (value = next())) {
      flags->status_interval_ms = std::atoi(value);
    } else if (arg == "--trace-dir" && (value = next())) {
      flags->trace_dir = value;
    } else if (arg == "--codec" && (value = next())) {
      flags->codec = value;
    } else if (arg == "--placement" && (value = next())) {
      flags->placement = value;
    } else if (arg == "--classes" && (value = next())) {
      flags->classes = std::atoi(value);
    } else if (arg == "--purge" && (value = next())) {
      flags->purge = value;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !flags->node_bin.empty() && !flags->workdir.empty();
}

int RunLaunch(const LaunchFlags& flags) {
  mkdir(flags.workdir.c_str(), 0755);

  TestbedOptions testbed_options;
  testbed_options.mode = flags.mode;
  testbed_options.num_engines = flags.engines;
  testbed_options.num_agents = flags.agents;
  Result<Topology> topology =
      Testbed::UnixTopology(testbed_options, flags.workdir, flags.endpoints);
  if (!topology.ok()) {
    std::fprintf(stderr, "crew_launch: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }
  std::string topology_file = flags.workdir + "/topology.txt";
  Status saved = topology.value().Save(topology_file);
  if (!saved.ok()) {
    std::fprintf(stderr, "crew_launch: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("topology (%s):\n%s", flags.mode.c_str(),
              topology.value().Serialize().c_str());

  LaunchOptions options;
  options.node_binary = flags.node_bin;
  options.topology_file = topology_file;
  options.mode = flags.mode;
  options.num_engines = flags.engines;
  options.num_agents = flags.agents;
  options.num_instances = flags.instances;
  options.seed = flags.seed;
  options.tick_us = flags.tick_us;
  options.pending_timeout = flags.pending_timeout;
  options.codec = flags.codec;
  options.placement = flags.placement;
  options.num_classes = flags.classes;
  options.purge = flags.purge;
  if (flags.mode == "dist") {
    options.agdb_dir = flags.workdir + "/agdb";
    mkdir(options.agdb_dir.c_str(), 0755);
  }
  if (!flags.trace_dir.empty()) {
    options.trace_dir = flags.trace_dir;
    mkdir(options.trace_dir.c_str(), 0755);
  }

  Supervisor supervisor(topology.value(), options);
  Status started = supervisor.StartAll();
  if (!started.ok()) {
    std::fprintf(stderr, "crew_launch: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("spawned %zu node processes\n",
              supervisor.processes().size());

  // Live view: scrape every node's telemetry document on a cadence and
  // print the aggregate plus per-node transport health. Runs on its own
  // thread so a wedged node (bounded control timeout) cannot stall the
  // kill/quiesce sequencing below.
  // Nodes that can host instances, for the imbalance mean (idle nodes
  // count against balance).
  int placement_nodes = flags.mode == "dist"      ? flags.agents
                        : flags.mode == "parallel" ? flags.engines
                                                   : 1;
  // Least-loaded feed: push per-node routed counts (scraped from the
  // merged metrics) to the placer so its next decisions see live load.
  auto push_load_feed = [&](const std::vector<NodeTelemetry>& nodes) {
    if (flags.placement != "least" || nodes.empty()) return;
    std::map<NodeId, int64_t> counts = PlacementCounts(nodes);
    if (counts.empty()) return;
    std::string feed = "feed";
    char sep = ' ';
    for (const auto& [id, n] : counts) {
      feed += sep;
      feed += "n" + std::to_string(id) + ":" + std::to_string(n);
      sep = ',';
    }
    // The placer lives with the control side at endpoint 0.
    (void)supervisor.Request(supervisor.processes().front().endpoint, feed);
  };

  std::atomic<bool> status_stop{false};
  std::thread status_thread;
  if (flags.status_interval_ms > 0) {
    status_thread = std::thread([&]() {
      while (!status_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(flags.status_interval_ms));
        if (status_stop.load(std::memory_order_acquire)) break;
        std::vector<NodeTelemetry> nodes = supervisor.CollectTelemetry();
        if (nodes.empty()) continue;
        push_load_feed(nodes);
        std::string block =
            AggregateSummaryLine(AggregateTelemetry(nodes)) + "\n";
        PlacementImbalance im =
            ComputeImbalance(PlacementCounts(nodes), placement_nodes);
        if (im.total > 0) {
          char line[128];
          std::snprintf(line, sizeof(line),
                        "  placement: total=%lld max=%lld mean=%.2f "
                        "max/mean=%.2f\n",
                        static_cast<long long>(im.total),
                        static_cast<long long>(im.max_count), im.mean,
                        im.max_over_mean);
          block += line;
        }
        for (const NodeTelemetry& node : nodes) {
          block += NodeSummaryLine(node) + "\n";
        }
        // One write: keeps a snapshot contiguous in the output stream.
        std::fputs(block.c_str(), stdout);
        std::fflush(stdout);
      }
    });
  }

  if (!flags.kill.empty()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.kill_after_ms));
    Endpoint victim;
    if (flags.kill == "auto") {
      victim = supervisor.processes().back().endpoint;
    } else {
      Result<Endpoint> parsed = Endpoint::Parse(flags.kill);
      if (!parsed.ok()) {
        std::fprintf(stderr, "crew_launch: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      victim = parsed.value();
    }
    std::printf("killing %s mid-run\n", victim.Address().c_str());
    Status killed = supervisor.Kill(victim);
    if (!killed.ok()) {
      std::fprintf(stderr, "crew_launch: %s\n", killed.ToString().c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Status restarted = supervisor.Restart(victim);
    if (!restarted.ok()) {
      std::fprintf(stderr, "crew_launch: %s\n",
                   restarted.ToString().c_str());
      return 1;
    }
    std::printf("restarted %s (recovering from log)\n",
                victim.Address().c_str());
  }

  auto stop_status_thread = [&]() {
    if (!status_thread.joinable()) return;
    status_stop.store(true, std::memory_order_release);
    status_thread.join();
  };

  Status quiesced = supervisor.WaitQuiescent(flags.timeout_ms);
  if (!quiesced.ok()) {
    std::fprintf(stderr, "crew_launch: %s\n", quiesced.ToString().c_str());
    stop_status_thread();
    supervisor.ShutdownAll();
    return 1;
  }

  // The expected mix is deterministic: Doomed aborts, the rest commit
  // (sweep classes Wf<k> all commit).
  auto schedule = [&](int i) {
    if (flags.classes > 0) {
      return "Wf" + std::to_string(i % flags.classes);
    }
    if (flags.mode == "dist") {
      switch (i % 3) {
        case 0: return std::string("Doomed");
        case 1: return std::string("Good");
        default: return std::string("Flaky");
      }
    }
    switch (i % 4) {
      case 0: return std::string("Doomed");
      case 1: return std::string("Good");
      case 2: return std::string("Flaky");
      default: return std::string("Par");
    }
  };
  int failures = 0;
  for (int i = 1; i <= flags.instances; ++i) {
    std::string schema = schedule(i);
    const char* expected = schema == "Doomed" ? "aborted" : "committed";
    Result<std::string> state = supervisor.QueryState(schema, i);
    std::string got = state.ok() ? state.value() : state.status().ToString();
    bool ok = state.ok() && state.value() == expected;
    if (!ok) ++failures;
    std::printf("  %-8s #%-3d %-10s %s\n", schema.c_str(), i, got.c_str(),
                ok ? "ok" : "MISMATCH");
  }
  stop_status_thread();

  // Final merged cluster snapshot, written while every process is still
  // alive (the scrape needs live control sockets).
  {
    std::vector<NodeTelemetry> nodes = supervisor.CollectTelemetry();
    if (!nodes.empty()) {
      std::string path = flags.workdir + "/cluster_telemetry.json";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (out) {
        out << ClusterTelemetryJson(nodes) << "\n";
        std::printf("cluster telemetry (%zu nodes) -> %s\n", nodes.size(),
                    path.c_str());
      }
      PlacementImbalance im =
          ComputeImbalance(PlacementCounts(nodes), placement_nodes);
      if (im.total > 0) {
        std::printf(
            "placement (%s): %lld instances over %d nodes, "
            "max=%lld mean=%.2f max/mean=%.2f\n",
            flags.placement.c_str(), static_cast<long long>(im.total),
            im.nodes, static_cast<long long>(im.max_count), im.mean,
            im.max_over_mean);
      }
    }
  }

  supervisor.ShutdownAll();

  // Shards are written at each node's clean exit, so the merge must run
  // after ShutdownAll. Killed incarnations never wrote theirs — skip.
  if (!flags.trace_dir.empty()) {
    std::vector<TraceShard> shards;
    for (const std::string& path : supervisor.TraceShardPaths()) {
      Result<TraceShard> shard = LoadTraceShard(path);
      if (!shard.ok()) continue;
      shards.push_back(std::move(shard).value());
    }
    MergeStats stats;
    std::string merged_path = flags.trace_dir + "/trace_merged.json";
    Status merged = WriteMergedTrace(shards, merged_path, &stats);
    if (!merged.ok()) {
      std::fprintf(stderr, "crew_launch: trace merge: %s\n",
                   merged.ToString().c_str());
    } else {
      std::printf(
          "merged trace: %zu shards, %zu events, %zu cross-process "
          "spans matched -> %s\n",
          stats.shards, stats.events, stats.matched_flows,
          merged_path.c_str());
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "crew_launch: %d instances off terminal state\n",
                 failures);
    return 1;
  }
  std::printf("all %d instances reached expected terminal states\n",
              flags.instances);
  return 0;
}

}  // namespace crew::net

int main(int argc, char** argv) {
  crew::net::LaunchFlags flags;
  if (!crew::net::ParseLaunchFlags(argc, argv, &flags)) {
    crew::net::LaunchUsage();
    return 2;
  }
  return crew::net::RunLaunch(flags);
}
