#ifndef CREW_COMMON_STATUS_H_
#define CREW_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace crew {

/// Error taxonomy for all CREW operations. Mirrors the RocksDB/Arrow
/// Status idiom: no exceptions cross public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,      // node down / not reachable
  kAborted,          // workflow or step aborted
  kTimedOut,
  kCorruption,       // storage / serialization damage
  kParseError,       // LAWS or expression syntax error
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation: a code plus an optional context message.
/// Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-Status holder, used where a computation can fail.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;` in a Result<int> function.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. A kOk status is a programming error and
  /// is converted to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

}  // namespace crew

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define CREW_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::crew::Status _crew_status = (expr);           \
    if (!_crew_status.ok()) return _crew_status;    \
  } while (0)

#endif  // CREW_COMMON_STATUS_H_
