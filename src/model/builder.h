#ifndef CREW_MODEL_BUILDER_H_
#define CREW_MODEL_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/schema.h"

namespace crew::model {

/// Constructs and validates workflow schemas.
///
/// Two usage styles:
///  - Raw graph: AddStep() + Arc()/CondArc()/ElseArc()/BackArc() +
///    SetJoin() + TerminalGroup(); Build() validates.
///  - Structured helpers: Sequence(), Parallel(), Choice(), LoopBack() —
///    thin wrappers over the raw API that also set join kinds.
///
/// Build() validation rules:
///  - exactly one start step (no incoming forward arcs) unless SetStart();
///  - every step reachable from the start (following forward arcs);
///  - outgoing arcs of a step are either all unconditional (sequential /
///    parallel split) or all-but-one conditional with at most one else arc
///    (if-then-else split);
///  - steps with >1 incoming forward arcs must declare a JoinKind;
///  - back-edges must target an ancestor... (validated as: removing back
///    edges leaves an acyclic graph);
///  - rollback targets exist and are upstream of the failing step;
///  - comp-dep-set members exist;
///  - terminal groups exactly partition the terminal steps (steps with no
///    outgoing forward arcs). Ungrouped terminals each form their own
///    singleton group.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string workflow_name);

  /// Adds a step; assigns and returns its id (1-based, in call order).
  /// `step.id` is overwritten.
  StepId AddStep(Step step);

  /// Convenience: task step with a program and cost.
  StepId AddTask(const std::string& name, const std::string& program,
                 int64_t cost = 1000);

  /// Convenience: nested workflow step.
  StepId AddSubWorkflow(const std::string& name,
                        const std::string& child_schema);

  Step& step(StepId id);

  /// Unconditional control arc.
  SchemaBuilder& Arc(StepId from, StepId to);
  /// Conditional (if-then-else) arc; `condition` is an expression source.
  /// Parse errors surface at Build().
  SchemaBuilder& CondArc(StepId from, StepId to,
                         const std::string& condition);
  /// The default branch of an if-then-else split.
  SchemaBuilder& ElseArc(StepId from, StepId to);
  /// Loop back-edge, taken while `condition` holds (exit otherwise is a
  /// separate forward arc, typically an ElseArc from the same step).
  SchemaBuilder& BackArc(StepId from, StepId to,
                         const std::string& condition);
  /// Explicit data arc (documentation of cross-branch flow).
  SchemaBuilder& DataFlow(StepId from, StepId to, const std::string& item);

  SchemaBuilder& SetJoin(StepId id, JoinKind join);
  SchemaBuilder& SetStart(StepId id);
  SchemaBuilder& DeclareInput(const std::string& item);
  SchemaBuilder& AddCompDepSet(std::vector<StepId> steps);
  SchemaBuilder& TerminalGroup(std::vector<StepId> steps);
  SchemaBuilder& OnFail(StepId step, StepId rollback_to,
                        int max_attempts = 3);

  // ---- structured helpers ----

  /// Chains arcs: ids[0] -> ids[1] -> ... Returns *this.
  SchemaBuilder& Sequence(const std::vector<StepId>& ids);
  /// AND-split from `from` to each branch entry; AND-join at `join_step`
  /// from each branch exit.
  SchemaBuilder& Parallel(StepId from,
                          const std::vector<std::pair<StepId, StepId>>&
                              branch_entry_exits,
                          StepId join_step);
  /// OR-split from `from`: conditional arcs to each (condition, entry);
  /// `else_entry` optional (kInvalidStep for none); OR-join at
  /// `join_step` from the exits.
  SchemaBuilder& Choice(
      StepId from,
      const std::vector<std::pair<std::string, StepId>>& cond_entries,
      StepId else_entry, const std::vector<StepId>& branch_exits,
      StepId join_step);

  /// Validates and produces the schema. The builder is left unusable.
  Result<Schema> Build();

 private:
  struct PendingArc {
    StepId from;
    StepId to;
    std::string condition;  // unparsed; empty => none
    bool is_else = false;
    bool is_back_edge = false;
  };

  Status Validate(const Schema& schema) const;

  Schema schema_;
  std::vector<PendingArc> pending_arcs_;
  std::vector<std::string> errors_;
  bool built_ = false;
};

}  // namespace crew::model

#endif  // CREW_MODEL_BUILDER_H_
