file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_central.dir/bench_table4_central.cc.o"
  "CMakeFiles/bench_table4_central.dir/bench_table4_central.cc.o.d"
  "bench_table4_central"
  "bench_table4_central.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
