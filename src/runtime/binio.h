#ifndef CREW_RUNTIME_BINIO_H_
#define CREW_RUNTIME_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace crew::runtime {

/// Low-level primitives of the binary payload codec (see DESIGN.md §5i):
/// LEB128 varints, zigzag-mapped signed ints, length-prefixed byte
/// slices and little-endian fixed64 doubles.
///
/// BinWriter writes through a raw cursor into a caller-owned string that
/// was presized to an upper bound — the serialize hot path does exactly
/// one allocation and no per-field bounds checks. Callers compute the
/// bound with the *Bound helpers below; writing past it is UB, so every
/// Serialize keeps its bound arithmetic next to its writes.
///
/// BinReader is a bounds-checked cursor over a string_view; every Read*
/// returns false on overrun instead of throwing, and byte-slice reads
/// return views into the input (zero-copy — the caller interns or copies
/// only where an owned string is genuinely needed).

inline constexpr size_t kMaxVarintBytes = 10;

/// Upper bound for a length-prefixed byte slice.
inline size_t BytesBound(std::string_view s) { return 5 + s.size(); }

class BinWriter {
 public:
  /// Presizes *out to `bound` bytes (contents uninitialized past the
  /// cursor until written). Finish() trims to what was actually written.
  BinWriter(std::string* out, size_t bound) : out_(out) {
    out_->resize(bound);
    p_ = out_->data();
  }

  void U8(uint8_t v) { *p_++ = static_cast<char>(v); }

  void Varint(uint64_t v) {
    while (v >= 0x80) {
      *p_++ = static_cast<char>(v | 0x80);
      v >>= 7;
    }
    *p_++ = static_cast<char>(v);
  }

  void Zig(int64_t v) {
    Varint((static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63));
  }

  void Raw(const void* data, size_t n) {
    std::memcpy(p_, data, n);
    p_ += n;
  }

  void Bytes(std::string_view s) {
    Varint(s.size());
    Raw(s.data(), s.size());
  }

  void F64(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    for (int i = 0; i < 8; ++i) {
      *p_++ = static_cast<char>(bits & 0xff);
      bits >>= 8;
    }
  }

  size_t Finish() {
    size_t n = static_cast<size_t>(p_ - out_->data());
    out_->resize(n);
    return n;
  }

 private:
  std::string* out_;
  char* p_ = nullptr;
};

class BinReader {
 public:
  explicit BinReader(std::string_view data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  bool done() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  bool U8(uint8_t* v) {
    if (p_ == end_) return false;
    *v = static_cast<uint8_t>(*p_++);
    return true;
  }

  bool Varint(uint64_t* v) {
    // Fast path: single byte (the overwhelmingly common case for field
    // tags, counts, small ids).
    if (p_ != end_ && !(*p_ & 0x80)) {
      *v = static_cast<uint8_t>(*p_++);
      return true;
    }
    uint64_t result = 0;
    int shift = 0;
    while (p_ != end_ && shift < 64) {
      uint8_t byte = static_cast<uint8_t>(*p_++);
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) {
        *v = result;
        return true;
      }
      shift += 7;
    }
    return false;
  }

  bool Zig(int64_t* v) {
    uint64_t raw;
    if (!Varint(&raw)) return false;
    *v = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }

  /// Zero-copy: *out views into the underlying buffer.
  bool Bytes(std::string_view* out) {
    uint64_t n;
    if (!Varint(&n)) return false;
    if (n > remaining()) return false;
    *out = std::string_view(p_, static_cast<size_t>(n));
    p_ += n;
    return true;
  }

  bool F64(double* d) {
    if (remaining() < 8) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(p_[i])) << (8 * i);
    }
    p_ += 8;
    std::memcpy(d, &bits, 8);
    return true;
  }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_BINIO_H_
