#include "model/deployment.h"

#include <algorithm>

namespace crew::model {

const std::vector<NodeId> Deployment::kEmpty;

void Deployment::SetEligible(const std::string& workflow, StepId step,
                             std::vector<NodeId> agents) {
  eligible_[{workflow, step}] = std::move(agents);
}

const std::vector<NodeId>& Deployment::Eligible(const std::string& workflow,
                                                StepId step) const {
  auto it = eligible_.find({workflow, step});
  return it == eligible_.end() ? kEmpty : it->second;
}

Result<NodeId> Deployment::CoordinationAgent(
    const CompiledSchema& schema) const {
  const std::vector<NodeId>& agents =
      Eligible(schema.schema().name(), schema.schema().start_step());
  if (agents.empty()) {
    return Status::FailedPrecondition(
        "no eligible agents for start step of " + schema.schema().name());
  }
  return agents.front();
}

void Deployment::AssignRandom(const CompiledSchema& schema,
                              const std::vector<NodeId>& agents,
                              int eligible_per_step, Rng* rng) {
  const int n = schema.schema().num_steps();
  int k = std::min<int>(eligible_per_step, static_cast<int>(agents.size()));
  for (StepId id = 1; id <= n; ++id) {
    std::vector<NodeId> pool = agents;
    std::shuffle(pool.begin(), pool.end(), rng->engine());
    pool.resize(static_cast<size_t>(std::max(1, k)));
    // Deterministic preference order within the eligible set: lowest id
    // first, so selection behaviour is reproducible across runs.
    std::sort(pool.begin(), pool.end());
    SetEligible(schema.schema().name(), id, std::move(pool));
  }
}

Status Deployment::Check(const CompiledSchema& schema) const {
  for (StepId id = 1; id <= schema.schema().num_steps(); ++id) {
    if (Eligible(schema.schema().name(), id).empty()) {
      return Status::FailedPrecondition(
          "step S" + std::to_string(id) + " of " + schema.schema().name() +
          " has no eligible agents");
    }
  }
  return Status::OK();
}

}  // namespace crew::model
