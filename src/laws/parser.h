#ifndef CREW_LAWS_PARSER_H_
#define CREW_LAWS_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/compiled.h"
#include "runtime/coord.h"

namespace crew::laws {

/// The result of parsing a LAWS source: validated, compiled workflow
/// schemas plus the coordinated-execution requirements declared across
/// them.
struct LawsFile {
  std::vector<model::CompiledSchemaPtr> schemas;
  runtime::CoordinationSpec coordination;
};

/// Parses a LAWS-style workflow specification (the paper's Language for
/// Workflow Specification, §3, reconstructed from the constructs the
/// paper names). The format is line-oriented; `#` starts a comment.
///
/// ```
/// workflow OrderProcessing {
///   input WF.I1
///   step Receive  program "recv" cost 500
///   step Check    program "check" query inputs WF.I1
///   step Reserve  program "reserve" inputs S2.O1
///   step Ship     program "ship"
///   step Refuse   program "refuse" no_abort_comp
///   arc Receive -> Check
///   arc Check -> Reserve when "S2.O1 >= 1"
///   arc Check -> Refuse else
///   arc Reserve -> Ship
///   join Ship or                     # declare a join kind
///   on_fail Ship rollback_to Reserve max_attempts 3
///   reexec Reserve when "changed(S2.O1)"
///   compensation Reserve program "unreserve" partial 0.25 incremental 0.5
///   comp_dep_set Reserve, Ship
///   terminal_group Ship, Refuse
/// }
///
/// coordination {
///   relative_order ro1 between OrderProcessing and OrderProcessing
///       pairs (Reserve, Reserve), (Ship, Ship)
///   mutex m1 resource "warehouse" steps OrderProcessing.Reserve
///   rollback_dep rd1 from OrderProcessing.Reserve to Billing.Start
/// }
/// ```
///
/// Statements inside `workflow`:
///  - input <item>
///  - step <Name> program "<p>" [cost N] [query] [inputs i1, i2]
///    [outputs N] [no_abort_comp]
///  - subworkflow <Name> schema <Child> [inputs i1, i2]
///  - arc A -> B [when "<expr>"] | [else]
///  - back A -> B when "<expr>"           (loop back-edge)
///  - data A -> B <item>                  (explicit data arc)
///  - join <Name> and|or
///  - start <Name>
///  - on_fail <Name> rollback_to <Target> [max_attempts N]
///  - reexec <Name> when "<expr>"         (OCR re-execution condition)
///  - compensation <Name> [program "<p>"] [partial F] [incremental F]
///    [applicable "<expr>"]
///  - comp_dep_set A, B, ...
///  - terminal_group A, B, ...
Result<LawsFile> ParseLaws(const std::string& source);

/// Convenience: parses a file from disk.
Result<LawsFile> ParseLawsFile(const std::string& path);

}  // namespace crew::laws

#endif  // CREW_LAWS_PARSER_H_
