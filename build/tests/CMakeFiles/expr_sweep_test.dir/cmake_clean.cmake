file(REMOVE_RECURSE
  "CMakeFiles/expr_sweep_test.dir/expr_sweep_test.cc.o"
  "CMakeFiles/expr_sweep_test.dir/expr_sweep_test.cc.o.d"
  "expr_sweep_test"
  "expr_sweep_test.pdb"
  "expr_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
