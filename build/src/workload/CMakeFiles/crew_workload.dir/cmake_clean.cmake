file(REMOVE_RECURSE
  "CMakeFiles/crew_workload.dir/driver.cc.o"
  "CMakeFiles/crew_workload.dir/driver.cc.o.d"
  "CMakeFiles/crew_workload.dir/generator.cc.o"
  "CMakeFiles/crew_workload.dir/generator.cc.o.d"
  "CMakeFiles/crew_workload.dir/params.cc.o"
  "CMakeFiles/crew_workload.dir/params.cc.o.d"
  "libcrew_workload.a"
  "libcrew_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
