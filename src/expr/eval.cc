#include "expr/eval.h"

#include <cmath>

namespace crew::expr {
namespace {

Result<Value> EvalNode(const Node& node, const Environment& env);

Result<Value> EvalUnary(const Node& node, const Environment& env) {
  Result<Value> inner = EvalNode(*node.children[0], env);
  if (!inner.ok()) return inner;
  const Value& v = inner.value();
  switch (node.unary_op) {
    case UnaryOp::kNot:
      return Value(!v.Truthy());
    case UnaryOp::kNegate:
      if (v.is_int()) return Value(-v.AsInt());
      if (v.is_double()) return Value(-v.AsDouble());
      return Status::InvalidArgument("negation of non-numeric value " +
                                     v.ToString());
  }
  return Status::Internal("bad unary op");
}

Result<Value> EvalBinary(const Node& node, const Environment& env) {
  // Short-circuit logicals first.
  if (node.binary_op == BinaryOp::kAnd || node.binary_op == BinaryOp::kOr) {
    Result<Value> lhs = EvalNode(*node.children[0], env);
    if (!lhs.ok()) return lhs;
    bool l = lhs.value().Truthy();
    if (node.binary_op == BinaryOp::kAnd && !l) return Value(false);
    if (node.binary_op == BinaryOp::kOr && l) return Value(true);
    Result<Value> rhs = EvalNode(*node.children[1], env);
    if (!rhs.ok()) return rhs;
    return Value(rhs.value().Truthy());
  }

  Result<Value> lhs = EvalNode(*node.children[0], env);
  if (!lhs.ok()) return lhs;
  Result<Value> rhs = EvalNode(*node.children[1], env);
  if (!rhs.ok()) return rhs;
  const Value& a = lhs.value();
  const Value& b = rhs.value();

  auto type_error = [&]() {
    return Status::InvalidArgument(
        std::string("operator '") + BinaryOpName(node.binary_op) +
        "' applied to " + a.ToString() + " and " + b.ToString());
  };

  switch (node.binary_op) {
    case BinaryOp::kAdd:
      if (a.is_string() && b.is_string()) {
        return Value(a.AsString() + b.AsString());
      }
      [[fallthrough]];
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (!a.is_numeric() || !b.is_numeric()) return type_error();
      if (a.is_int() && b.is_int()) {
        int64_t x = a.AsInt(), y = b.AsInt();
        switch (node.binary_op) {
          case BinaryOp::kAdd: return Value(x + y);
          case BinaryOp::kSub: return Value(x - y);
          case BinaryOp::kMul: return Value(x * y);
          case BinaryOp::kDiv:
            if (y == 0) return Status::InvalidArgument("division by zero");
            return Value(x / y);
          case BinaryOp::kMod:
            if (y == 0) return Status::InvalidArgument("modulo by zero");
            return Value(x % y);
          default: break;
        }
      }
      double x = a.NumericValue(), y = b.NumericValue();
      switch (node.binary_op) {
        case BinaryOp::kAdd: return Value(x + y);
        case BinaryOp::kSub: return Value(x - y);
        case BinaryOp::kMul: return Value(x * y);
        case BinaryOp::kDiv:
          if (y == 0.0) return Status::InvalidArgument("division by zero");
          return Value(x / y);
        case BinaryOp::kMod:
          if (y == 0.0) return Status::InvalidArgument("modulo by zero");
          return Value(std::fmod(x, y));
        default: break;
      }
      return Status::Internal("bad arithmetic op");
    }
    case BinaryOp::kEq:
      return Value(a == b);
    case BinaryOp::kNe:
      return Value(!(a == b));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      int cmp;
      if (a.is_numeric() && b.is_numeric()) {
        double x = a.NumericValue(), y = b.NumericValue();
        cmp = (x < y) ? -1 : (x > y) ? 1 : 0;
      } else if (a.is_string() && b.is_string()) {
        cmp = a.AsString().compare(b.AsString());
        cmp = (cmp < 0) ? -1 : (cmp > 0) ? 1 : 0;
      } else {
        return type_error();
      }
      switch (node.binary_op) {
        case BinaryOp::kLt: return Value(cmp < 0);
        case BinaryOp::kLe: return Value(cmp <= 0);
        case BinaryOp::kGt: return Value(cmp > 0);
        case BinaryOp::kGe: return Value(cmp >= 0);
        default: break;
      }
      return Status::Internal("bad comparison op");
    }
    default:
      return Status::Internal("bad binary op");
  }
}

Result<Value> EvalCall(const Node& node, const Environment& env) {
  auto arity_error = [&](size_t want) {
    return Status::InvalidArgument("builtin " + node.name + " expects " +
                                   std::to_string(want) + " argument(s)");
  };
  if (node.name == "exists") {
    if (node.children.size() != 1 ||
        node.children[0]->kind != NodeKind::kVariable) {
      return Status::InvalidArgument(
          "exists() takes exactly one data-item name");
    }
    return Value(env.Lookup(node.children[0]->name).has_value());
  }
  if (node.name == "changed") {
    // changed(x): x's current value differs from its value at the step's
    // previous execution (or the previous value is unknown). This is the
    // primary OCR trigger: "re-execute only if the inputs changed".
    if (node.children.size() != 1 ||
        node.children[0]->kind != NodeKind::kVariable) {
      return Status::InvalidArgument(
          "changed() takes exactly one data-item name");
    }
    const std::string& var = node.children[0]->name;
    std::optional<Value> now = env.Lookup(var);
    std::optional<Value> before = env.LookupPrevious(var);
    if (!now.has_value() && !before.has_value()) return Value(false);
    if (!now.has_value() || !before.has_value()) return Value(true);
    return Value(!(*now == *before));
  }
  if (node.name == "abs") {
    if (node.children.size() != 1) return arity_error(1);
    Result<Value> v = EvalNode(*node.children[0], env);
    if (!v.ok()) return v;
    if (v.value().is_int()) return Value(std::abs(v.value().AsInt()));
    if (v.value().is_double()) return Value(std::fabs(v.value().AsDouble()));
    return Status::InvalidArgument("abs() of non-numeric value");
  }
  if (node.name == "min" || node.name == "max") {
    if (node.children.size() != 2) return arity_error(2);
    Result<Value> a = EvalNode(*node.children[0], env);
    if (!a.ok()) return a;
    Result<Value> b = EvalNode(*node.children[1], env);
    if (!b.ok()) return b;
    if (!a.value().is_numeric() || !b.value().is_numeric()) {
      return Status::InvalidArgument(node.name + "() of non-numeric values");
    }
    double x = a.value().NumericValue(), y = b.value().NumericValue();
    bool take_a = node.name == "min" ? (x <= y) : (x >= y);
    return take_a ? a : b;
  }
  return Status::InvalidArgument("unknown builtin: " + node.name);
}

Result<Value> EvalNode(const Node& node, const Environment& env) {
  switch (node.kind) {
    case NodeKind::kLiteral:
      return node.literal;
    case NodeKind::kVariable: {
      std::optional<Value> v = env.Lookup(node.name);
      if (!v.has_value()) {
        return Status::NotFound("unbound data item: " + node.name);
      }
      return *v;
    }
    case NodeKind::kUnary:
      return EvalUnary(node, env);
    case NodeKind::kBinary:
      return EvalBinary(node, env);
    case NodeKind::kCall:
      return EvalCall(node, env);
  }
  return Status::Internal("bad node kind");
}

}  // namespace

Result<Value> Evaluate(const NodePtr& root, const Environment& env) {
  if (!root) return Status::InvalidArgument("null expression");
  return EvalNode(*root, env);
}

bool EvaluateCondition(const NodePtr& root, const Environment& env) {
  if (!root) return true;  // absent condition == unconditional
  Result<Value> v = Evaluate(root, env);
  if (!v.ok()) return false;
  return v.value().Truthy();
}

}  // namespace crew::expr
