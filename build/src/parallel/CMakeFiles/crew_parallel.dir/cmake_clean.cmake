file(REMOVE_RECURSE
  "CMakeFiles/crew_parallel.dir/system.cc.o"
  "CMakeFiles/crew_parallel.dir/system.cc.o.d"
  "libcrew_parallel.a"
  "libcrew_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
