#ifndef CREW_NET_CONTROL_H_
#define CREW_NET_CONTROL_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace crew::net {

/// Minimal out-of-band control plane for crew_node processes: a Unix
/// socket next to the data socket, speaking one text request line per
/// connection and answering with one reply line. The supervisor uses it
/// to poll cluster quiescence, read authoritative terminal states and
/// ask for clean exits — all without touching the data protocol.
class ControlServer {
 public:
  /// Handler runs on the server thread; gets the request line (no
  /// newline), returns the reply line (no newline).
  using Handler = std::function<std::string(const std::string&)>;

  /// `io_timeout_ms` bounds each accepted connection's reads and
  /// writes (SO_RCVTIMEO/SO_SNDTIMEO): the server thread handles one
  /// connection at a time, so a client that connects and goes silent
  /// must not wedge the control plane forever.
  ControlServer(std::string path, Handler handler,
                int io_timeout_ms = 5000);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  Status Start();
  void Stop();

  const std::string& path() const { return path_; }

 private:
  void Serve();

  std::string path_;
  Handler handler_;
  int io_timeout_ms_;
  int listen_fd_ = -1;
  int stop_read_fd_ = -1;
  int stop_write_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

/// One round-trip against a ControlServer. Connects, sends `request` plus
/// a newline, reads the reply line. Unavailable on connect/IO failure
/// (e.g. the process is dead), so pollers can just retry.
Result<std::string> ControlRequest(const std::string& path,
                                   const std::string& request,
                                   int timeout_ms = 5000);

}  // namespace crew::net

#endif  // CREW_NET_CONTROL_H_
