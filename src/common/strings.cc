#include "common/strings.h"

namespace crew {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitQuoted(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quote = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quote) {
      cur += c;
      if (c == '\\' && i + 1 < text.size()) {
        cur += text[++i];
      } else if (c == '"') {
        in_quote = false;
      }
    } else if (c == '"') {
      in_quote = true;
      cur += c;
    } else if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace crew
