#include "dist/system.h"

namespace crew::dist {

DistributedSystem::DistributedSystem(
    sim::Backend* backend, const runtime::ProgramRegistry* programs,
    const model::Deployment* deployment,
    const runtime::CoordinationSpec* coordination, int num_agents,
    AgentOptions options)
    : deployment_(deployment) {
  sim::Context* front_context = backend->ContextFor(kFrontEndNode);
  front_end_ = std::make_unique<FrontEnd>(kFrontEndNode, front_context,
                                          deployment, coordination);
  front_context->tracer().SetNodeName(kFrontEndNode, "front-end-0");
  for (int i = 0; i < num_agents; ++i) {
    agent_ids_.push_back(1 + i);
  }
  for (int i = 0; i < num_agents; ++i) {
    NodeId id = 1 + i;
    sim::Context* context = backend->ContextFor(id);
    agents_.push_back(std::make_unique<Agent>(
        id, context, programs, deployment, coordination, agent_ids_,
        options));
    context->tracer().SetNodeName(id, "agent-" + std::to_string(id));
  }
}

void DistributedSystem::RegisterSchema(model::CompiledSchemaPtr schema) {
  schemas_[schema->schema().name()] = schema;
  front_end_->RegisterSchema(schema);
  for (auto& agent : agents_) {
    agent->RegisterSchema(schema);
  }
}

Agent* DistributedSystem::agent_by_id(NodeId id) {
  for (auto& agent : agents_) {
    if (agent->id() == id) return agent.get();
  }
  return nullptr;
}

runtime::WorkflowState DistributedSystem::CoordinationStatus(
    const InstanceId& instance) {
  auto it = schemas_.find(instance.workflow);
  if (it == schemas_.end()) return runtime::WorkflowState::kUnknown;
  Result<NodeId> coordination_agent =
      deployment_->CoordinationAgent(*it->second);
  if (!coordination_agent.ok()) return runtime::WorkflowState::kUnknown;
  Agent* agent = agent_by_id(coordination_agent.value());
  if (agent == nullptr) return runtime::WorkflowState::kUnknown;
  return agent->CoordinationStatus(instance);
}

std::map<std::string, Value> DistributedSystem::ArchivedData(
    const InstanceId& instance) {
  auto it = schemas_.find(instance.workflow);
  if (it == schemas_.end()) return {};
  Result<NodeId> coordination_agent =
      deployment_->CoordinationAgent(*it->second);
  if (!coordination_agent.ok()) return {};
  Agent* agent = agent_by_id(coordination_agent.value());
  if (agent == nullptr) return {};
  return agent->ArchivedData(instance);
}

int64_t DistributedSystem::committed_count() const {
  int64_t sum = 0;
  for (const auto& agent : agents_) sum += agent->committed_count();
  return sum;
}

int64_t DistributedSystem::aborted_count() const {
  int64_t sum = 0;
  for (const auto& agent : agents_) sum += agent->aborted_count();
  return sum;
}

}  // namespace crew::dist
