
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/engine.cc" "src/rules/CMakeFiles/crew_rules.dir/engine.cc.o" "gcc" "src/rules/CMakeFiles/crew_rules.dir/engine.cc.o.d"
  "/root/repo/src/rules/event.cc" "src/rules/CMakeFiles/crew_rules.dir/event.cc.o" "gcc" "src/rules/CMakeFiles/crew_rules.dir/event.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crew_common.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/crew_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
