#include "net/topology.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace crew::net {

std::string Endpoint::Address() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<Endpoint> Endpoint::Parse(const std::string& address) {
  Endpoint endpoint;
  if (address.rfind("unix:", 0) == 0) {
    endpoint.kind = Kind::kUnix;
    endpoint.path = address.substr(5);
    if (endpoint.path.empty()) {
      return Status::InvalidArgument("empty unix socket path: " + address);
    }
    return endpoint;
  }
  if (address.rfind("tcp:", 0) == 0) {
    std::string rest = address.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("expected tcp:<host>:<port>: " +
                                     address);
    }
    endpoint.kind = Kind::kTcp;
    endpoint.host = rest.substr(0, colon);
    endpoint.port = std::atoi(rest.c_str() + colon + 1);
    if (endpoint.port <= 0 || endpoint.port > 65535) {
      return Status::InvalidArgument("bad tcp port: " + address);
    }
    return endpoint;
  }
  return Status::InvalidArgument(
      "endpoint must start with unix: or tcp:, got " + address);
}

Status Topology::Add(NodeId id, Endpoint endpoint) {
  auto [it, inserted] = nodes_.emplace(id, std::move(endpoint));
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already mapped");
  }
  return Status::OK();
}

Result<Topology> Topology::Parse(const std::string& text) {
  Topology topology;
  int line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string line = raw;
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> fields;
    for (const std::string& f : Split(line, ' ')) {
      if (!f.empty() && f != "\t" && f != "\r") fields.push_back(f);
    }
    if (fields.empty()) continue;
    if (fields.size() != 3 || fields[0] != "node") {
      return Status::InvalidArgument(
          "topology line " + std::to_string(line_number) +
          ": expected 'node <id> <address>'");
    }
    NodeId id = static_cast<NodeId>(std::atoi(fields[1].c_str()));
    if (fields[1] != std::to_string(id)) {
      return Status::InvalidArgument("topology line " +
                                     std::to_string(line_number) +
                                     ": bad node id " + fields[1]);
    }
    Result<Endpoint> endpoint = Endpoint::Parse(fields[2]);
    if (!endpoint.ok()) return endpoint.status();
    CREW_RETURN_IF_ERROR(topology.Add(id, std::move(endpoint).value()));
  }
  if (topology.empty()) {
    return Status::InvalidArgument("topology has no nodes");
  }
  return topology;
}

Result<Topology> Topology::Load(const std::string& file) {
  std::FILE* f = std::fopen(file.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open topology " + file);
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return Parse(text);
}

std::string Topology::Serialize() const {
  std::string out;
  for (const auto& [id, endpoint] : nodes_) {
    out += "node " + std::to_string(id) + " " + endpoint.Address() + "\n";
  }
  return out;
}

Status Topology::Save(const std::string& file) const {
  std::FILE* f = std::fopen(file.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot write topology " + file);
  }
  std::string text = Serialize();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Unavailable("short write to " + file);
  }
  return Status::OK();
}

const Endpoint* Topology::Find(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<Endpoint> Topology::Endpoints() const {
  std::map<std::string, Endpoint> unique;
  for (const auto& [id, endpoint] : nodes_) {
    unique.emplace(endpoint.Address(), endpoint);
  }
  std::vector<Endpoint> out;
  out.reserve(unique.size());
  for (auto& [address, endpoint] : unique) out.push_back(endpoint);
  return out;
}

std::vector<NodeId> Topology::NodesAt(const Endpoint& endpoint) const {
  std::vector<NodeId> out;
  for (const auto& [id, ep] : nodes_) {
    if (ep == endpoint) out.push_back(id);
  }
  return out;
}

}  // namespace crew::net
