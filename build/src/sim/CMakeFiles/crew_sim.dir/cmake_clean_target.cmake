file(REMOVE_RECURSE
  "libcrew_sim.a"
)
