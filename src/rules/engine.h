#ifndef CREW_RULES_ENGINE_H_
#define CREW_RULES_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "expr/ast.h"
#include "expr/eval.h"

namespace crew::rules {

/// What a fired rule asks the runtime to do. The rule engine itself is
/// action-agnostic; runtimes interpret these descriptors.
enum class ActionKind {
  kExecuteStep,
  kCompensateStep,
  kCommitWorkflow,
  kAbortWorkflow,
};

struct RuleAction {
  ActionKind kind = ActionKind::kExecuteStep;
  StepId step = kInvalidStep;
};

/// An Event-Condition-Action rule instance (§3): fires when every trigger
/// event has occurred (and is currently valid) and the condition holds.
struct Rule {
  std::string id;                    ///< unique within one engine
  std::vector<std::string> events;   ///< ALL must be valid to fire
  expr::NodePtr condition;           ///< null => unconditional
  RuleAction action;
};

/// Per-instance event table + rule store implementing the paper's
/// general-rule and pending-rule tables, with the three implementation
/// primitives AddRule() / AddEvent() (via Post) / AddPrecondition().
///
/// Firing semantics:
///  - Every Post() stamps the event with a fresh sequence number and
///    marks it valid.
///  - Invalidate() marks an event no-longer-occurred; pending progress of
///    rules that depend on it is discarded (the paper's rollback step).
///  - A rule is *fireable* when every trigger event is valid, the newest
///    trigger stamp exceeds the rule's last-fired stamp (so loop rules
///    re-fire on re-posted events, but a rule does not re-fire
///    spuriously), and its condition evaluates true.
class RuleEngine {
 public:
  /// AddRule() primitive. Rejects duplicate ids.
  Status AddRule(Rule rule);

  /// Removes a rule; returns false if absent.
  bool RemoveRule(const std::string& rule_id);

  /// AddPrecondition() primitive: appends an extra trigger event to an
  /// existing rule, so the step it guards cannot fire until that event
  /// arrives (used for relative ordering / mutual exclusion).
  Status AddPrecondition(const std::string& rule_id,
                         const std::string& extra_event);

  /// AddEvent() primitive: posts an event occurrence.
  void Post(const std::string& event_token);

  /// Invalidates an occurred event (rollback). No-op if never posted.
  void Invalidate(const std::string& event_token);

  bool Occurred(const std::string& event_token) const;

  /// Returns the actions of every rule that can fire now, in rule-id
  /// order, marking them fired. Conditions are evaluated against `env`.
  /// Call after each Post()/AddRule()/AddPrecondition() batch.
  std::vector<RuleAction> CollectFireable(const expr::Environment& env);

  /// Rules that are waiting on at least one missing/invalid event —
  /// the paper's pending-rule table view. Pairs of (rule id, missing
  /// events).
  std::vector<std::pair<std::string, std::vector<std::string>>>
  PendingRules() const;

  /// Events a given rule still needs (empty if all triggers are valid).
  std::vector<std::string> MissingEvents(const std::string& rule_id) const;

  const Rule* FindRule(const std::string& rule_id) const;
  size_t num_rules() const { return rules_.size(); }

  /// Resets the fired marker of every rule matching `pred`, so it can
  /// fire again on its *existing* (still valid) trigger events. Used when
  /// a rollback re-enables the rules of downstream steps (§5.2).
  void ResetFiringIf(const std::function<bool(const Rule&)>& pred);

  /// Total number of rule firings (metrics).
  int64_t fire_count() const { return fire_count_; }

 private:
  struct EventState {
    bool valid = false;
    uint64_t stamp = 0;  // sequence of the latest Post
  };
  struct RuleState {
    Rule rule;
    uint64_t last_fired_stamp = 0;
  };

  bool Fireable(const RuleState& state, const expr::Environment& env,
                uint64_t* newest_stamp) const;

  std::map<std::string, EventState> events_;
  std::map<std::string, RuleState> rules_;  // keyed by rule id
  uint64_t next_stamp_ = 1;
  int64_t fire_count_ = 0;
};

}  // namespace crew::rules

#endif  // CREW_RULES_ENGINE_H_
