#include "runtime/rulegen.h"

#include <algorithm>

#include "expr/parser.h"
#include "rules/event.h"

namespace crew::runtime {
namespace {

/// Negated-conjunction condition for an else arc: not(c1) and not(c2)...
expr::NodePtr ElseCondition(const model::CompiledSchema& schema,
                            const model::ControlArc& else_arc) {
  expr::NodePtr acc;
  for (const model::ControlArc* sibling :
       schema.forward_out(else_arc.from)) {
    if (sibling->condition == nullptr) continue;
    expr::NodePtr negated =
        expr::MakeUnary(expr::UnaryOp::kNot, sibling->condition);
    acc = acc ? expr::MakeBinary(expr::BinaryOp::kAnd, acc, negated)
              : negated;
  }
  return acc;  // null if the split had no conditional siblings
}

/// done-events of steps that feed `step` through declared data arcs and
/// are not already among `triggers`. Rules must wait for cross-branch
/// data producers (§4.2: "the rule may require other step.done events
/// depending on which of the steps it gets its input data from").
void AppendDataTriggers(const model::CompiledSchema& schema, StepId step,
                        std::vector<rules::EventToken>* triggers) {
  for (const model::DataArc& arc : schema.schema().data_arcs()) {
    if (arc.to != step) continue;
    rules::EventToken token = rules::event::StepDoneToken(arc.from);
    if (std::find(triggers->begin(), triggers->end(), token) ==
        triggers->end()) {
      triggers->push_back(token);
    }
  }
}

}  // namespace

std::string StepRulePrefix(StepId step) {
  return "exec.S" + std::to_string(step) + ".";
}

std::vector<rules::Rule> MakeStepRules(const model::CompiledSchema& schema,
                                       StepId step) {
  std::vector<rules::Rule> out;
  const model::Step& s = schema.schema().step(step);
  const std::string prefix = StepRulePrefix(step);

  if (step == schema.schema().start_step() &&
      schema.forward_in(step).empty()) {
    rules::Rule rule;
    rule.id = prefix + "start";
    rule.events = {rules::event::WorkflowStartToken()};
    rule.action = {rules::ActionKind::kExecuteStep, step};
    out.push_back(std::move(rule));
  } else if (s.join == model::JoinKind::kAnd) {
    rules::Rule rule;
    rule.id = prefix + "join";
    for (const model::ControlArc* arc : schema.forward_in(step)) {
      rule.events.push_back(rules::event::StepDoneToken(arc->from));
    }
    AppendDataTriggers(schema, step, &rule.events);
    rule.action = {rules::ActionKind::kExecuteStep, step};
    out.push_back(std::move(rule));
  } else {
    for (const model::ControlArc* arc : schema.forward_in(step)) {
      rules::Rule rule;
      rule.id = prefix + "via.S" + std::to_string(arc->from);
      rule.events = {rules::event::StepDoneToken(arc->from)};
      AppendDataTriggers(schema, step, &rule.events);
      if (arc->condition) {
        rule.condition = arc->condition;
      } else if (arc->is_else) {
        rule.condition = ElseCondition(schema, *arc);
      }
      rule.action = {rules::ActionKind::kExecuteStep, step};
      out.push_back(std::move(rule));
    }
  }

  // Loop back-edges re-fire the loop head.
  for (const model::ControlArc* arc : schema.back_in(step)) {
    rules::Rule rule;
    rule.id = prefix + "loop.S" + std::to_string(arc->from);
    rule.events = {rules::event::StepDoneToken(arc->from)};
    rule.condition = arc->condition;
    rule.action = {rules::ActionKind::kExecuteStep, step};
    out.push_back(std::move(rule));
  }

  return out;
}

std::vector<rules::Rule> MakeAllRules(
    const model::CompiledSchema& schema) {
  std::vector<rules::Rule> out;
  for (StepId id = 1; id <= schema.schema().num_steps(); ++id) {
    std::vector<rules::Rule> step_rules = MakeStepRules(schema, id);
    for (rules::Rule& rule : step_rules) out.push_back(std::move(rule));
  }
  return out;
}

}  // namespace crew::runtime
