// Equivalence test for the indexed rule engine: replays mutation scripts
// against both the production RuleEngine (inverted index + dirty set) and
// a reference engine that reimplements the original full-scan semantics
// (id-ordered std::map, every rule re-evaluated on every collect), and
// asserts the fired-action sequences and fire counts are identical.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "expr/eval.h"
#include "expr/parser.h"
#include "rules/engine.h"

namespace crew::rules {
namespace {

// The pre-index engine, verbatim semantics: string-keyed event table,
// rules in an id-ordered map, CollectFireable scans every rule.
class ReferenceEngine {
 public:
  bool AddRule(const std::string& id,
               const std::vector<std::string>& events,
               expr::NodePtr condition, RuleAction action) {
    if (id.empty() || events.empty()) return false;
    auto [it, inserted] = rules_.try_emplace(id);
    if (!inserted) return false;
    it->second.events = events;
    it->second.condition = std::move(condition);
    it->second.action = action;
    return true;
  }

  bool RemoveRule(const std::string& id) { return rules_.erase(id) > 0; }

  void AddPrecondition(const std::string& id, const std::string& event) {
    auto it = rules_.find(id);
    if (it == rules_.end()) return;
    std::vector<std::string>& events = it->second.events;
    if (std::find(events.begin(), events.end(), event) == events.end()) {
      events.push_back(event);
    }
  }

  void Post(const std::string& event) {
    EventState& state = events_[event];
    state.valid = true;
    state.stamp = next_stamp_++;
  }

  void Invalidate(const std::string& event) {
    auto it = events_.find(event);
    if (it != events_.end()) it->second.valid = false;
  }

  void ResetFiringIf(const std::string& id) {
    auto it = rules_.find(id);
    if (it != rules_.end()) it->second.last_fired_stamp = 0;
  }

  std::vector<RuleAction> CollectFireable(const expr::Environment& env) {
    std::vector<RuleAction> fired;
    for (auto& [id, state] : rules_) {
      uint64_t newest = 0;
      bool ready = true;
      for (const std::string& token : state.events) {
        auto it = events_.find(token);
        if (it == events_.end() || !it->second.valid) {
          ready = false;
          break;
        }
        newest = std::max(newest, it->second.stamp);
      }
      if (!ready || newest <= state.last_fired_stamp) continue;
      if (!expr::EvaluateCondition(state.condition, env)) continue;
      state.last_fired_stamp = newest;
      fired.push_back(state.action);
      ++fire_count_;
    }
    return fired;
  }

  int64_t fire_count() const { return fire_count_; }

 private:
  struct EventState {
    bool valid = false;
    uint64_t stamp = 0;
  };
  struct RuleState {
    std::vector<std::string> events;
    expr::NodePtr condition;
    RuleAction action;
    uint64_t last_fired_stamp = 0;
  };

  std::map<std::string, EventState> events_;
  std::map<std::string, RuleState> rules_;
  uint64_t next_stamp_ = 1;
  int64_t fire_count_ = 0;
};

// Applies every mutation to both engines and checks each collect.
class Harness {
 public:
  Harness()
      : env_([this](const std::string& name) -> std::optional<Value> {
          if (name == "x") return Value(int64_t{x_});
          return std::nullopt;
        }) {}

  void AddRule(const std::string& id,
               const std::vector<std::string>& events, StepId step,
               const std::string& condition_src = "",
               ActionKind kind = ActionKind::kExecuteStep) {
    expr::NodePtr condition;
    if (!condition_src.empty()) {
      condition = expr::ParseExpression(condition_src).value();
    }
    RuleAction action{kind, step};
    Rule rule;
    rule.id = id;
    for (const std::string& event : events) {
      rule.events.push_back(InternToken(event));
    }
    rule.condition = condition;
    rule.action = action;
    bool indexed_ok = indexed_.AddRule(std::move(rule)).ok();
    bool ref_ok = ref_.AddRule(id, events, condition, action);
    ASSERT_EQ(indexed_ok, ref_ok) << "AddRule(" << id << ") diverged";
  }

  void RemoveRule(const std::string& id) {
    EXPECT_EQ(indexed_.RemoveRule(id), ref_.RemoveRule(id))
        << "RemoveRule(" << id << ") diverged";
  }

  void AddPrecondition(const std::string& id, const std::string& event) {
    (void)indexed_.AddPrecondition(id, std::string_view(event));
    ref_.AddPrecondition(id, event);
  }

  void Post(const std::string& event) {
    indexed_.Post(std::string_view(event));
    ref_.Post(event);
  }

  void Invalidate(const std::string& event) {
    indexed_.Invalidate(std::string_view(event));
    ref_.Invalidate(event);
  }

  void ResetFiring(const std::string& id) {
    indexed_.ResetFiringIf(
        [&id](const Rule& rule) { return rule.id == id; });
    ref_.ResetFiringIf(id);
  }

  void set_x(int64_t x) { x_ = x; }

  // Collects from both engines and asserts identical firing sequences
  // and running fire counts. Returns the fired actions.
  std::vector<RuleAction> Collect() {
    std::vector<RuleAction> got = indexed_.CollectFireable(env_);
    std::vector<RuleAction> want = ref_.CollectFireable(env_);
    EXPECT_EQ(Flatten(got), Flatten(want)) << "collect #" << ++collects_;
    EXPECT_EQ(indexed_.fire_count(), ref_.fire_count())
        << "fire_count after collect #" << collects_;
    return got;
  }

  RuleEngine& indexed() { return indexed_; }

 private:
  static std::vector<std::pair<int, StepId>> Flatten(
      const std::vector<RuleAction>& actions) {
    std::vector<std::pair<int, StepId>> out;
    out.reserve(actions.size());
    for (const RuleAction& a : actions) {
      out.emplace_back(static_cast<int>(a.kind), a.step);
    }
    return out;
  }

  RuleEngine indexed_;
  ReferenceEngine ref_;
  int64_t x_ = 0;
  expr::FunctionEnvironment env_;
  int collects_ = 0;
};

TEST(RuleEquivalenceTest, RePostAfterInvalidate) {
  Harness h;
  h.AddRule("r1", {"A", "B"}, 1);
  h.Post("A");
  h.Post("B");
  EXPECT_EQ(h.Collect().size(), 1u);

  // Invalidate one trigger: re-posting the *other* must not fire.
  h.Invalidate("A");
  h.Post("B");
  EXPECT_TRUE(h.Collect().empty());

  // Re-posting the invalidated trigger re-arms the rule.
  h.Post("A");
  std::vector<RuleAction> fired = h.Collect();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].step, 1);
  EXPECT_TRUE(h.Collect().empty());
}

TEST(RuleEquivalenceTest, PreconditionAddedAfterPartialTriggering) {
  Harness h;
  h.AddRule("r1", {"A"}, 1);
  h.Post("A");
  // The trigger is satisfied but a precondition lands before collect.
  h.AddPrecondition("r1", "P");
  EXPECT_TRUE(h.Collect().empty());
  h.Post("P");
  EXPECT_EQ(h.Collect().size(), 1u);

  // A precondition whose event is already valid and fresher than the
  // rule's last firing re-fires it without any new Post.
  h.Post("Q");
  h.AddPrecondition("r1", "Q");
  EXPECT_EQ(h.Collect().size(), 1u);
  EXPECT_TRUE(h.Collect().empty());
}

TEST(RuleEquivalenceTest, ResetFiringReArmsOnOldEvents) {
  Harness h;
  h.AddRule("r1", {"A"}, 1);
  h.AddRule("r2", {"A", "B"}, 2);
  h.Post("A");
  h.Post("B");
  EXPECT_EQ(h.Collect().size(), 2u);
  EXPECT_TRUE(h.Collect().empty());

  // Reset re-fires r1 on its still-valid trigger.
  h.ResetFiring("r1");
  std::vector<RuleAction> fired = h.Collect();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].step, 1);

  // Reset of a rule whose trigger was invalidated must stay quiet.
  h.Invalidate("B");
  h.ResetFiring("r2");
  EXPECT_TRUE(h.Collect().empty());
  h.Post("B");
  EXPECT_EQ(h.Collect().size(), 1u);
}

TEST(RuleEquivalenceTest, ConditionFalseRuleStaysHotAcrossCollects) {
  Harness h;
  h.AddRule("r1", {"A"}, 1, "x > 5");
  h.Post("A");
  // Condition false: neither engine fires, on every collect.
  EXPECT_TRUE(h.Collect().empty());
  EXPECT_TRUE(h.Collect().empty());
  // Environment flips with no new event: both engines must now fire,
  // because a satisfied-but-condition-false rule is re-evaluated on
  // every collect (the dirty set keeps it hot).
  h.set_x(6);
  EXPECT_EQ(h.Collect().size(), 1u);
  EXPECT_TRUE(h.Collect().empty());
}

TEST(RuleEquivalenceTest, FiringOrderIsIdLexicographic) {
  Harness h;
  // Insert out of id order, with ids whose lexicographic order differs
  // from numeric order (r10 < r2).
  h.AddRule("r2", {"A"}, 2);
  h.AddRule("r10", {"A"}, 10);
  h.AddRule("r1", {"A"}, 1);
  h.Post("A");
  std::vector<RuleAction> fired = h.Collect();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].step, 1);   // r1
  EXPECT_EQ(fired[1].step, 10);  // r10
  EXPECT_EQ(fired[2].step, 2);   // r2
}

TEST(RuleEquivalenceTest, RandomizedScriptsMatchReference) {
  // Replays pseudo-random scripts of every mutating primitive against
  // both engines; the harness asserts equality at each collect.
  for (uint32_t seed : {1u, 7u, 1998u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed);
    Harness h;

    const int kNumEvents = 12;
    auto event_name = [](int i) { return "E" + std::to_string(i); };
    auto rule_name = [](int i) { return "r" + std::to_string(i); };

    // Seed rules: one or two triggers each, a third with a condition.
    int next_rule = 0;
    for (; next_rule < 16; ++next_rule) {
      std::vector<std::string> events{
          event_name(static_cast<int>(rng() % kNumEvents))};
      if (rng() % 2 == 0) {
        events.push_back(event_name(static_cast<int>(rng() % kNumEvents)));
        if (events[1] == events[0]) events.pop_back();
      }
      std::string condition;
      if (next_rule % 3 == 0) condition = "x > 5";
      h.AddRule(rule_name(next_rule), events,
                static_cast<StepId>(next_rule + 1), condition);
    }

    for (int op = 0; op < 2000; ++op) {
      switch (rng() % 10) {
        case 0:
        case 1:
        case 2:
        case 3:  // Post dominates, as in real runs.
          h.Post(event_name(static_cast<int>(rng() % kNumEvents)));
          break;
        case 4:
          h.Invalidate(event_name(static_cast<int>(rng() % kNumEvents)));
          break;
        case 5:
          h.AddPrecondition(
              rule_name(static_cast<int>(rng() % (next_rule + 1))),
              event_name(static_cast<int>(rng() % kNumEvents)));
          break;
        case 6:
          h.ResetFiring(
              rule_name(static_cast<int>(rng() % (next_rule + 1))));
          break;
        case 7:
          if (rng() % 4 == 0) {
            h.RemoveRule(
                rule_name(static_cast<int>(rng() % (next_rule + 1))));
          } else {
            std::vector<std::string> events{
                event_name(static_cast<int>(rng() % kNumEvents))};
            std::string condition;
            if (rng() % 3 == 0) condition = "x > 5";
            ++next_rule;
            h.AddRule(rule_name(next_rule), events,
                      static_cast<StepId>(next_rule + 1), condition);
          }
          break;
        case 8:
          h.set_x(static_cast<int64_t>(rng() % 10));
          break;
        case 9:
          h.Collect();
          break;
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
    // Drain: every pending firing must match at the end of the script.
    h.Collect();
    h.Collect();
  }
}

}  // namespace
}  // namespace crew::rules
