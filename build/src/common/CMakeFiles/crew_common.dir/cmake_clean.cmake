file(REMOVE_RECURSE
  "CMakeFiles/crew_common.dir/logging.cc.o"
  "CMakeFiles/crew_common.dir/logging.cc.o.d"
  "CMakeFiles/crew_common.dir/status.cc.o"
  "CMakeFiles/crew_common.dir/status.cc.o.d"
  "CMakeFiles/crew_common.dir/strings.cc.o"
  "CMakeFiles/crew_common.dir/strings.cc.o.d"
  "CMakeFiles/crew_common.dir/value.cc.o"
  "CMakeFiles/crew_common.dir/value.cc.o.d"
  "libcrew_common.a"
  "libcrew_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
