#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace crew::bench {

sim::LoadCategory LoadCategoryOf(analysis::Mechanism mechanism) {
  switch (mechanism) {
    case analysis::Mechanism::kNormal:
      return sim::LoadCategory::kNavigation;
    case analysis::Mechanism::kInputChange:
      return sim::LoadCategory::kInputChange;
    case analysis::Mechanism::kAbort:
      return sim::LoadCategory::kAbort;
    case analysis::Mechanism::kFailureHandling:
      return sim::LoadCategory::kFailureHandling;
    case analysis::Mechanism::kCoordination:
      return sim::LoadCategory::kCoordination;
  }
  return sim::LoadCategory::kNavigation;
}

sim::MsgCategory MsgCategoryOf(analysis::Mechanism mechanism) {
  switch (mechanism) {
    case analysis::Mechanism::kNormal:
      return sim::MsgCategory::kNormal;
    case analysis::Mechanism::kInputChange:
      return sim::MsgCategory::kInputChange;
    case analysis::Mechanism::kAbort:
      return sim::MsgCategory::kAbort;
    case analysis::Mechanism::kFailureHandling:
      return sim::MsgCategory::kFailureHandling;
    case analysis::Mechanism::kCoordination:
      return sim::MsgCategory::kCoordination;
  }
  return sim::MsgCategory::kNormal;
}

double MeasuredLoad(const workload::RunResult& result,
                    analysis::Mechanism mechanism,
                    const std::vector<NodeId>& nodes, int64_t l) {
  sim::LoadCategory category = LoadCategoryOf(mechanism);
  int64_t best = 0;
  for (NodeId node : nodes) {
    best = std::max(best, result.metrics.LoadAt(node, category));
  }
  return static_cast<double>(best) /
         (static_cast<double>(l) * result.instances());
}

double MeasuredMessages(const workload::RunResult& result,
                        analysis::Mechanism mechanism) {
  return result.MessagesPerInstance(MsgCategoryOf(mechanism));
}

void PrintHeader(const std::string& title,
                 const workload::Params& params) {
  printf("\n================================================================\n");
  printf("%s\n", title.c_str());
  printf("================================================================\n");
  printf("Table 3 parameters:\n%s", params.Describe().c_str());
}

void PrintTable(const std::string& title, const workload::Params& params,
                const workload::RunResult& result,
                const std::vector<analysis::ModelRow>& load_rows,
                const std::vector<analysis::ModelRow>& msg_rows,
                const std::vector<NodeId>& nodes) {
  PrintHeader(title, params);
  printf("\nrun: started=%lld committed=%lld aborted=%lld ticks=%lld\n",
         static_cast<long long>(result.started),
         static_cast<long long>(result.committed),
         static_cast<long long>(result.aborted),
         static_cast<long long>(result.sim_ticks));

  printf("\n%-24s | %-22s | %10s | %10s\n", "Load at node (units of l)",
         "paper expression", "paper", "measured");
  printf("%s\n", std::string(78, '-').c_str());
  for (const analysis::ModelRow& row : load_rows) {
    double measured = MeasuredLoad(result, row.mechanism, nodes,
                                   params.navigation_load);
    printf("%-24s | %-22s | %10.4f | %10.4f\n",
           analysis::MechanismName(row.mechanism), row.expression.c_str(),
           row.value, measured);
  }

  printf("\n%-24s | %-22s | %10s | %10s\n", "Messages per instance",
         "paper expression", "paper", "measured");
  printf("%s\n", std::string(78, '-').c_str());
  for (const analysis::ModelRow& row : msg_rows) {
    double measured = MeasuredMessages(result, row.mechanism);
    printf("%-24s | %-22s | %10.4f | %10.4f\n",
           analysis::MechanismName(row.mechanism), row.expression.c_str(),
           row.value, measured);
  }
  printf("\nnormal traffic by wire type:\n%s",
         result.metrics.TypeBreakdown(sim::MsgCategory::kNormal).c_str());
  printf("\nfailure-handling traffic by wire type:\n%s",
         result.metrics.TypeBreakdown(sim::MsgCategory::kFailureHandling)
             .c_str());
  printf("\nunmodelled traffic: election=%lld admin=%lld (see DESIGN.md)\n",
         static_cast<long long>(
             result.metrics.MessagesIn(sim::MsgCategory::kElection)),
         static_cast<long long>(
             result.metrics.MessagesIn(sim::MsgCategory::kAdmin)));
}

std::vector<NodeId> CentralEngineNodes() { return {1}; }

std::vector<NodeId> ParallelEngineNodes(int num_engines) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < num_engines; ++i) nodes.push_back(1 + i);
  return nodes;
}

std::vector<NodeId> DistributedAgentNodes(int num_agents) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < num_agents; ++i) nodes.push_back(1 + i);
  return nodes;
}

std::string RunResultJson(const workload::RunResult& result) {
  std::ostringstream os;
  os << "{\"architecture\":\""
     << workload::ArchitectureName(result.architecture)
     << "\",\"started\":" << result.started
     << ",\"committed\":" << result.committed
     << ",\"aborted\":" << result.aborted
     << ",\"sim_ticks\":" << result.sim_ticks
     << ",\"metrics\":" << result.metrics.ReportJson() << "}";
  return os.str();
}

namespace {

/// Returns the value of a `--flag=value` argument, or nullptr.
const char* FlagValue(const char* arg, const char* flag) {
  size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

}  // namespace

BenchSession::BenchSession(std::string name, int argc, char** argv,
                           bool default_json)
    : name_(std::move(name)), want_json_(default_json) {
  json_path_ = "BENCH_" + name_ + ".json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = FlagValue(arg, "--trace")) {
      trace_path_ = v;
    } else if (const char* v = FlagValue(arg, "--jsonl")) {
      jsonl_path_ = v;
    } else if (const char* v = FlagValue(arg, "--json")) {
      json_path_ = v;
      want_json_ = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      want_json_ = true;
    } else if (std::strcmp(arg, "--no-json") == 0) {
      want_json_ = false;
    } else {
      fprintf(stderr,
              "%s: unknown argument '%s' (accepted: --trace=<path> "
              "--jsonl=<path> --json[=<path>] --no-json)\n",
              name_.c_str(), arg);
    }
  }
  if (!trace_path_.empty() || !jsonl_path_.empty()) {
    ring_ = std::make_unique<obs::RingBufferTracer>();
  }
}

BenchSession::~BenchSession() { Finish(); }

obs::Tracer* BenchSession::tracer() {
  if (ring_ == nullptr || handed_out_) return nullptr;
  handed_out_ = true;
  return ring_.get();
}

void BenchSession::Record(const std::string& label,
                          const workload::RunResult& result) {
  runs_.emplace_back(label, RunResultJson(result));
}

void BenchSession::Finish() {
  if (finished_) return;
  finished_ = true;
  if (ring_ != nullptr) {
    printf("\n%s", ring_->SummaryReport().c_str());
    if (!trace_path_.empty()) {
      Status status = ring_->WriteChromeTrace(trace_path_);
      if (status.ok()) {
        printf("trace: wrote %s (load in chrome://tracing or "
               "https://ui.perfetto.dev)\n",
               trace_path_.c_str());
      } else {
        fprintf(stderr, "trace: %s\n", status.ToString().c_str());
      }
    }
    if (!jsonl_path_.empty()) {
      Status status = ring_->WriteJsonl(jsonl_path_);
      if (status.ok()) {
        printf("trace: wrote %s\n", jsonl_path_.c_str());
      } else {
        fprintf(stderr, "trace: %s\n", status.ToString().c_str());
      }
    }
  }
  if (want_json_ && !runs_.empty()) {
    std::ostringstream os;
    os << "{\"bench\":\"" << obs::JsonEscape(name_) << "\",\"runs\":[";
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"label\":\"" << obs::JsonEscape(runs_[i].first)
         << "\",\"result\":" << runs_[i].second << "}";
    }
    os << "]";
    if (ring_ != nullptr) {
      os << ",\"latency\":" << ring_->HistogramsJson();
    }
    os << "}\n";
    FILE* f = fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "json: cannot open %s\n", json_path_.c_str());
    } else {
      std::string text = os.str();
      fwrite(text.data(), 1, text.size(), f);
      fclose(f);
      printf("json: wrote %s\n", json_path_.c_str());
    }
  }
}

}  // namespace crew::bench
