#include "laws/parser.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "expr/parser.h"
#include "model/builder.h"

namespace crew::laws {
namespace {

/// One word of a LAWS line: bare word, quoted string, or punctuation
/// ("->", ",", "(", ")", "{", "}").
struct Word {
  std::string text;
  bool quoted = false;
};

Result<std::vector<Word>> SplitWords(const std::string& line, int lineno) {
  std::vector<Word> out;
  size_t i = 0;
  auto error = [&](const std::string& what) {
    return Status::ParseError("line " + std::to_string(lineno) + ": " +
                              what);
  };
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '#') break;  // comment
    if (c == '"') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < line.size()) {
        char d = line[i++];
        if (d == '\\' && i < line.size()) {
          text += line[i++];
        } else if (d == '"') {
          closed = true;
          break;
        } else {
          text += d;
        }
      }
      if (!closed) return error("unterminated string");
      out.push_back({text, true});
      continue;
    }
    if (c == ',' || c == '(' || c == ')' || c == '{' || c == '}') {
      out.push_back({std::string(1, c), false});
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
      out.push_back({"->", false});
      i += 2;
      continue;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != ',' && line[i] != '(' && line[i] != ')' &&
           line[i] != '{' && line[i] != '}' && line[i] != '#' &&
           !(line[i] == '-' && i + 1 < line.size() && line[i + 1] == '>')) {
      ++i;
    }
    out.push_back({line.substr(start, i - start), false});
  }
  return out;
}

/// Parses a comma-separated list of bare words starting at `*pos`.
Result<std::vector<std::string>> ParseNameList(const std::vector<Word>& w,
                                               size_t* pos, int lineno) {
  std::vector<std::string> names;
  while (*pos < w.size()) {
    if (w[*pos].text == ",") {
      ++*pos;
      continue;
    }
    // Stop at a keyword-looking boundary? Lists run to end of line.
    names.push_back(w[*pos].text);
    ++*pos;
  }
  if (names.empty()) {
    return Status::ParseError("line " + std::to_string(lineno) +
                              ": expected a name list");
  }
  return names;
}

/// State for one `workflow` block under construction.
struct WorkflowBlock {
  std::string name;
  model::SchemaBuilder builder;
  std::map<std::string, StepId> steps;

  explicit WorkflowBlock(std::string workflow_name)
      : name(workflow_name), builder(workflow_name) {}

  Result<StepId> Lookup(const std::string& step, int lineno) const {
    auto it = steps.find(step);
    if (it == steps.end()) {
      return Status::ParseError("line " + std::to_string(lineno) +
                                ": unknown step '" + step + "' in workflow " +
                                name);
    }
    return it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& source) : source_(source) {}

  Result<LawsFile> Parse() {
    std::istringstream stream(source_);
    std::string raw;
    int lineno = 0;
    while (std::getline(stream, raw)) {
      ++lineno;
      Result<std::vector<Word>> words = SplitWords(raw, lineno);
      if (!words.ok()) return words.status();
      if (words.value().empty()) continue;
      Status status = HandleLine(words.value(), lineno);
      if (!status.ok()) return status;
    }
    if (workflow_ != nullptr || in_coordination_) {
      return Status::ParseError("unterminated block at end of input");
    }
    // Resolve coordination step names now that every schema is known.
    CREW_RETURN_IF_ERROR(ResolveCoordination());
    return std::move(file_);
  }

 private:
  Status Error(int lineno, const std::string& what) {
    return Status::ParseError("line " + std::to_string(lineno) + ": " +
                              what);
  }

  Status HandleLine(const std::vector<Word>& w, int lineno) {
    const std::string& head = w[0].text;
    if (workflow_ == nullptr && !in_coordination_) {
      if (head == "workflow") {
        if (w.size() < 3 || w.back().text != "{") {
          return Error(lineno, "expected: workflow <Name> {");
        }
        workflow_ = std::make_unique<WorkflowBlock>(w[1].text);
        return Status::OK();
      }
      if (head == "coordination") {
        if (w.size() < 2 || w.back().text != "{") {
          return Error(lineno, "expected: coordination {");
        }
        in_coordination_ = true;
        return Status::OK();
      }
      return Error(lineno, "expected 'workflow' or 'coordination' block");
    }
    if (head == "}") {
      if (workflow_ != nullptr) return FinishWorkflow(lineno);
      in_coordination_ = false;
      return Status::OK();
    }
    if (workflow_ != nullptr) return HandleWorkflowLine(w, lineno);
    return HandleCoordinationLine(w, lineno);
  }

  Status FinishWorkflow(int lineno) {
    Result<model::Schema> schema = workflow_->builder.Build();
    if (!schema.ok()) {
      return Error(lineno, "workflow " + workflow_->name + ": " +
                               schema.status().message());
    }
    Result<model::CompiledSchemaPtr> compiled =
        model::CompiledSchema::Compile(std::move(schema).value());
    if (!compiled.ok()) return compiled.status();
    step_names_[workflow_->name] = workflow_->steps;
    file_.schemas.push_back(std::move(compiled).value());
    workflow_.reset();
    return Status::OK();
  }

  Status HandleWorkflowLine(const std::vector<Word>& w, int lineno) {
    WorkflowBlock& wf = *workflow_;
    const std::string& head = w[0].text;

    if (head == "input") {
      if (w.size() != 2) return Error(lineno, "expected: input <item>");
      wf.builder.DeclareInput(w[1].text);
      return Status::OK();
    }

    if (head == "step" || head == "subworkflow") {
      if (w.size() < 2) return Error(lineno, "expected a step name");
      const std::string& name = w[1].text;
      if (wf.steps.count(name)) {
        return Error(lineno, "duplicate step '" + name + "'");
      }
      model::Step step;
      step.name = name;
      size_t i = 2;
      if (head == "subworkflow") {
        step.kind = model::StepKind::kSubWorkflow;
      }
      while (i < w.size()) {
        const std::string& key = w[i].text;
        if (key == "program" && i + 1 < w.size()) {
          step.program = w[i + 1].text;
          i += 2;
        } else if (key == "schema" && i + 1 < w.size()) {
          step.sub_workflow = w[i + 1].text;
          i += 2;
        } else if (key == "cost" && i + 1 < w.size()) {
          step.cost = strtoll(w[i + 1].text.c_str(), nullptr, 10);
          i += 2;
        } else if (key == "outputs" && i + 1 < w.size()) {
          step.num_outputs =
              static_cast<int>(strtol(w[i + 1].text.c_str(), nullptr, 10));
          i += 2;
        } else if (key == "query") {
          step.access = model::AccessKind::kQuery;
          ++i;
        } else if (key == "update") {
          step.access = model::AccessKind::kUpdate;
          ++i;
        } else if (key == "no_abort_comp") {
          step.compensate_on_abort = false;
          ++i;
        } else if (key == "inputs") {
          ++i;
          while (i < w.size()) {
            if (w[i].text == ",") {
              ++i;
              continue;
            }
            // Inputs run until the next known keyword.
            const std::string& t = w[i].text;
            if (t == "program" || t == "cost" || t == "query" ||
                t == "update" || t == "outputs" || t == "no_abort_comp" ||
                t == "schema") {
              break;
            }
            step.inputs.push_back(t);
            ++i;
          }
        } else {
          return Error(lineno, "unknown step attribute '" + key + "'");
        }
      }
      StepId id = wf.builder.AddStep(std::move(step));
      wf.steps[name] = id;
      return Status::OK();
    }

    if (head == "arc" || head == "back" || head == "data") {
      if (w.size() < 4 || w[2].text != "->") {
        return Error(lineno, "expected: " + head + " A -> B ...");
      }
      Result<StepId> from = wf.Lookup(w[1].text, lineno);
      if (!from.ok()) return from.status();
      Result<StepId> to = wf.Lookup(w[3].text, lineno);
      if (!to.ok()) return to.status();
      if (head == "data") {
        if (w.size() != 5) {
          return Error(lineno, "expected: data A -> B <item>");
        }
        wf.builder.DataFlow(from.value(), to.value(), w[4].text);
        return Status::OK();
      }
      if (w.size() == 4) {
        if (head == "back") {
          return Error(lineno, "back arcs need: when \"<expr>\"");
        }
        wf.builder.Arc(from.value(), to.value());
        return Status::OK();
      }
      if (w.size() == 5 && w[4].text == "else" && head == "arc") {
        wf.builder.ElseArc(from.value(), to.value());
        return Status::OK();
      }
      if (w.size() == 6 && w[4].text == "when" && w[5].quoted) {
        if (head == "back") {
          wf.builder.BackArc(from.value(), to.value(), w[5].text);
        } else {
          wf.builder.CondArc(from.value(), to.value(), w[5].text);
        }
        return Status::OK();
      }
      return Error(lineno, "bad arc clause");
    }

    if (head == "join") {
      if (w.size() != 3 || (w[2].text != "and" && w[2].text != "or")) {
        return Error(lineno, "expected: join <Name> and|or");
      }
      Result<StepId> step = wf.Lookup(w[1].text, lineno);
      if (!step.ok()) return step.status();
      wf.builder.SetJoin(step.value(), w[2].text == "and"
                                           ? model::JoinKind::kAnd
                                           : model::JoinKind::kOr);
      return Status::OK();
    }

    if (head == "start") {
      if (w.size() != 2) return Error(lineno, "expected: start <Name>");
      Result<StepId> step = wf.Lookup(w[1].text, lineno);
      if (!step.ok()) return step.status();
      wf.builder.SetStart(step.value());
      return Status::OK();
    }

    if (head == "on_fail") {
      if (w.size() < 4 || w[2].text != "rollback_to") {
        return Error(lineno,
                     "expected: on_fail <Name> rollback_to <Target> "
                     "[max_attempts N]");
      }
      Result<StepId> step = wf.Lookup(w[1].text, lineno);
      if (!step.ok()) return step.status();
      Result<StepId> target = wf.Lookup(w[3].text, lineno);
      if (!target.ok()) return target.status();
      int attempts = 3;
      if (w.size() == 6 && w[4].text == "max_attempts") {
        attempts = static_cast<int>(strtol(w[5].text.c_str(), nullptr, 10));
      } else if (w.size() != 4) {
        return Error(lineno, "bad on_fail clause");
      }
      wf.builder.OnFail(step.value(), target.value(), attempts);
      return Status::OK();
    }

    if (head == "reexec") {
      if (w.size() != 4 || w[2].text != "when" || !w[3].quoted) {
        return Error(lineno, "expected: reexec <Name> when \"<expr>\"");
      }
      Result<StepId> step = wf.Lookup(w[1].text, lineno);
      if (!step.ok()) return step.status();
      Result<expr::NodePtr> condition = expr::ParseExpression(w[3].text);
      if (!condition.ok()) {
        return Error(lineno, condition.status().message());
      }
      wf.builder.step(step.value()).ocr.reexec_condition =
          std::move(condition).value();
      return Status::OK();
    }

    if (head == "compensation") {
      if (w.size() < 2) return Error(lineno, "expected a step name");
      Result<StepId> step = wf.Lookup(w[1].text, lineno);
      if (!step.ok()) return step.status();
      model::Step& spec = wf.builder.step(step.value());
      size_t i = 2;
      while (i < w.size()) {
        const std::string& key = w[i].text;
        if (key == "program" && i + 1 < w.size()) {
          spec.compensation_program = w[i + 1].text;
          i += 2;
        } else if (key == "partial" && i + 1 < w.size()) {
          spec.ocr.partial_compensation_fraction =
              strtod(w[i + 1].text.c_str(), nullptr);
          i += 2;
        } else if (key == "incremental" && i + 1 < w.size()) {
          spec.ocr.incremental_reexec_fraction =
              strtod(w[i + 1].text.c_str(), nullptr);
          i += 2;
        } else if (key == "applicable" && i + 1 < w.size() &&
                   w[i + 1].quoted) {
          Result<expr::NodePtr> condition =
              expr::ParseExpression(w[i + 1].text);
          if (!condition.ok()) {
            return Error(lineno, condition.status().message());
          }
          spec.ocr.partial_applicable_condition =
              std::move(condition).value();
          i += 2;
        } else {
          return Error(lineno, "unknown compensation attribute '" + key +
                                   "'");
        }
      }
      return Status::OK();
    }

    if (head == "comp_dep_set" || head == "terminal_group") {
      size_t pos = 1;
      Result<std::vector<std::string>> names =
          ParseNameList(w, &pos, lineno);
      if (!names.ok()) return names.status();
      std::vector<StepId> ids;
      for (const std::string& name : names.value()) {
        Result<StepId> step = wf.Lookup(name, lineno);
        if (!step.ok()) return step.status();
        ids.push_back(step.value());
      }
      if (head == "comp_dep_set") {
        wf.builder.AddCompDepSet(std::move(ids));
      } else {
        wf.builder.TerminalGroup(std::move(ids));
      }
      return Status::OK();
    }

    return Error(lineno, "unknown statement '" + head + "'");
  }

  // ---- coordination block: collected raw, resolved after parsing ----

  struct RawRo {
    std::string id, wf_a, wf_b;
    std::vector<std::pair<std::string, std::string>> pairs;
    int lineno;
  };
  struct RawMutex {
    std::string id, resource;
    std::vector<std::pair<std::string, std::string>> steps;  // (wf, step)
    int lineno;
  };
  struct RawRd {
    std::string id, wf_a, step_a, wf_b, step_b;
    int lineno;
  };

  Status HandleCoordinationLine(const std::vector<Word>& w, int lineno) {
    const std::string& head = w[0].text;
    if (head == "relative_order") {
      // relative_order <id> between <A> and <B> pairs (a1, b1), (a2, b2)
      if (w.size() < 10 || w[2].text != "between" || w[4].text != "and" ||
          w[6].text != "pairs") {
        return Error(lineno,
                     "expected: relative_order <id> between <A> and <B> "
                     "pairs (a, b), ...");
      }
      RawRo ro{w[1].text, w[3].text, w[5].text, {}, lineno};
      size_t i = 7;
      while (i < w.size()) {
        if (w[i].text == "," ) {
          ++i;
          continue;
        }
        if (w[i].text != "(" || i + 4 >= w.size() ||
            w[i + 2].text != "," || w[i + 4].text != ")") {
          return Error(lineno, "expected a (stepA, stepB) pair");
        }
        ro.pairs.emplace_back(w[i + 1].text, w[i + 3].text);
        i += 5;
      }
      if (ro.pairs.empty()) return Error(lineno, "no pairs given");
      raw_ro_.push_back(std::move(ro));
      return Status::OK();
    }
    if (head == "mutex") {
      // mutex <id> resource "<r>" steps A.S1, B.S2
      if (w.size() < 6 || w[2].text != "resource" || !w[3].quoted ||
          w[4].text != "steps") {
        return Error(lineno,
                     "expected: mutex <id> resource \"<r>\" steps "
                     "Wf.Step, ...");
      }
      RawMutex mutex{w[1].text, w[3].text, {}, lineno};
      size_t pos = 5;
      Result<std::vector<std::string>> names =
          ParseNameList(w, &pos, lineno);
      if (!names.ok()) return names.status();
      for (const std::string& qualified : names.value()) {
        size_t dot = qualified.find('.');
        if (dot == std::string::npos) {
          return Error(lineno, "mutex steps must be Wf.Step, got '" +
                                   qualified + "'");
        }
        mutex.steps.emplace_back(qualified.substr(0, dot),
                                 qualified.substr(dot + 1));
      }
      raw_mutex_.push_back(std::move(mutex));
      return Status::OK();
    }
    if (head == "rollback_dep") {
      // rollback_dep <id> from <A>.<S> to <B>.<S>
      if (w.size() != 6 || w[2].text != "from" || w[4].text != "to") {
        return Error(lineno,
                     "expected: rollback_dep <id> from A.Step to B.Step");
      }
      auto split = [&](const std::string& qualified,
                       std::pair<std::string, std::string>* out) {
        size_t dot = qualified.find('.');
        if (dot == std::string::npos) return false;
        out->first = qualified.substr(0, dot);
        out->second = qualified.substr(dot + 1);
        return true;
      };
      std::pair<std::string, std::string> a, b;
      if (!split(w[3].text, &a) || !split(w[5].text, &b)) {
        return Error(lineno, "rollback_dep endpoints must be Wf.Step");
      }
      raw_rd_.push_back({w[1].text, a.first, a.second, b.first, b.second,
                         lineno});
      return Status::OK();
    }
    return Error(lineno, "unknown coordination statement '" + head + "'");
  }

  Result<StepId> ResolveStep(const std::string& workflow,
                             const std::string& step, int lineno) {
    auto wf_it = step_names_.find(workflow);
    if (wf_it == step_names_.end()) {
      return Error(lineno, "unknown workflow '" + workflow + "'");
    }
    auto step_it = wf_it->second.find(step);
    if (step_it == wf_it->second.end()) {
      return Error(lineno, "unknown step '" + step + "' in workflow " +
                               workflow);
    }
    return step_it->second;
  }

  Status ResolveCoordination() {
    for (const RawRo& raw : raw_ro_) {
      runtime::RelativeOrderReq ro;
      ro.id = raw.id;
      ro.workflow_a = raw.wf_a;
      ro.workflow_b = raw.wf_b;
      for (const auto& [step_a, step_b] : raw.pairs) {
        Result<StepId> a = ResolveStep(raw.wf_a, step_a, raw.lineno);
        if (!a.ok()) return a.status();
        Result<StepId> b = ResolveStep(raw.wf_b, step_b, raw.lineno);
        if (!b.ok()) return b.status();
        ro.step_pairs.emplace_back(a.value(), b.value());
      }
      file_.coordination.relative_orders.push_back(std::move(ro));
    }
    for (const RawMutex& raw : raw_mutex_) {
      runtime::MutexReq mutex;
      mutex.id = raw.id;
      mutex.resource = raw.resource;
      for (const auto& [workflow, step] : raw.steps) {
        Result<StepId> id = ResolveStep(workflow, step, raw.lineno);
        if (!id.ok()) return id.status();
        mutex.critical_steps.emplace_back(workflow, id.value());
      }
      file_.coordination.mutexes.push_back(std::move(mutex));
    }
    for (const RawRd& raw : raw_rd_) {
      runtime::RollbackDepReq rd;
      rd.id = raw.id;
      rd.workflow_a = raw.wf_a;
      rd.workflow_b = raw.wf_b;
      Result<StepId> a = ResolveStep(raw.wf_a, raw.step_a, raw.lineno);
      if (!a.ok()) return a.status();
      Result<StepId> b = ResolveStep(raw.wf_b, raw.step_b, raw.lineno);
      if (!b.ok()) return b.status();
      rd.step_a = a.value();
      rd.step_b = b.value();
      file_.coordination.rollback_deps.push_back(std::move(rd));
    }
    return Status::OK();
  }

  const std::string& source_;
  LawsFile file_;
  std::unique_ptr<WorkflowBlock> workflow_;
  bool in_coordination_ = false;
  std::map<std::string, std::map<std::string, StepId>> step_names_;
  std::vector<RawRo> raw_ro_;
  std::vector<RawMutex> raw_mutex_;
  std::vector<RawRd> raw_rd_;
};

}  // namespace

Result<LawsFile> ParseLaws(const std::string& source) {
  Parser parser(source);
  return parser.Parse();
}

Result<LawsFile> ParseLawsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open LAWS file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseLaws(buffer.str());
}

}  // namespace crew::laws
