#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace crew::net {

namespace {
/// Target size of the per-connection staging buffer: retained frames are
/// appended to it in chunks this big, so a long parked backlog never
/// sits in the buffer twice.
constexpr size_t kWriteChunk = 256 * 1024;

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetCloexec(int fd) {
  int flags = fcntl(fd, F_GETFD, 0);
  if (flags >= 0) fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// FNV-1a over the endpoint address, folded to 16 bits — the endpoint
/// part of a trace id. Collisions across endpoints would only merge two
/// id spaces visually; the per-endpoint counter still keeps ids unique
/// within each process.
uint64_t EndpointHash16(const std::string& address) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : address) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) & 0xffffull;
}
}  // namespace

/// Outbound link to one remote endpoint. All mutable fields are guarded
/// by SocketTransport::state_mu_ (workers enqueue, the loop thread
/// writes); the loop thread alone touches the fd lifecycle.
struct SocketTransport::Peer {
  Endpoint endpoint;
  std::string address;

  int fd = -1;
  bool connecting = false;  ///< non-blocking connect in flight
  bool connected = false;   ///< HELLO primed; write path open
  int consecutive_failures = 0;
  int backoff_ms = 0;
  int64_t next_dial_ms = 0;  ///< earliest next dial, ms since start

  /// TCP hostname resolution. `needs_resolve` is set at construction
  /// (non-numeric host); the cache fields are loop-thread-only and
  /// written OUTSIDE state_mu_ — getaddrinfo can block for seconds and
  /// must never stall workers waiting on the lock.
  bool needs_resolve = false;
  bool addr_resolved = false;
  in_addr resolved_addr{};

  /// DATA frames retained until the peer's cumulative ACK covers them.
  /// [0, unsent_index) are committed to the current connection;
  /// [unsent_index, ...) still need writing. A reconnect rewinds
  /// unsent_index to 0 — the whole window replays.
  struct Retained {
    uint64_t seq = 0;
    NodeId to = kInvalidNode;
    std::string bytes;
  };
  std::deque<Retained> retained;
  size_t unsent_index = 0;
  size_t retained_bytes = 0;
  /// Bytes in [unsent_index, ...) — what a flush would stage. Drives the
  /// batch byte-cap check without rescanning the deque.
  size_t unsent_bytes = 0;
  /// When the oldest currently-unsent frame was admitted (ms since
  /// start), -1 when nothing is pending. Drives batch_max_delay_ms.
  int64_t pending_since_ms = -1;
  uint64_t next_seq = 1;
  /// Highest seq ever written to any connection: staging a frame at or
  /// below it means a reconnect is replaying the unacked window.
  uint64_t sent_high_seq = 0;

  /// Frames to explicitly-downed destination nodes, parked *before*
  /// sequencing so per-pair order survives the park (rt's parked queue,
  /// sender-side). Keyed by destination, flushed in arrival order.
  std::map<NodeId, std::deque<sim::Message>> held;
  size_t held_bytes = 0;

  /// Bytes staged for the current connection (HELLO + ACKs + frames).
  std::string write_buffer;
  size_t write_offset = 0;

  bool WantsWrite(bool flush_due) const {
    return connected &&
           (write_offset < write_buffer.size() ||
            (flush_due && unsent_index < retained.size()));
  }
  size_t BacklogBytes() const { return retained_bytes + held_bytes; }
};

/// One accepted (inbound) connection; identity learned from its HELLO.
struct SocketTransport::InConn {
  int fd = -1;
  FrameDecoder decoder;
  std::string peer_address;  ///< empty until the HELLO arrives
  bool broken = false;
};

SocketTransport::SocketTransport(Topology topology, Endpoint self,
                                 DeliverFn deliver,
                                 SocketTransportOptions options)
    : topology_(std::move(topology)),
      self_(std::move(self)),
      deliver_(std::move(deliver)),
      options_(options) {
  for (const auto& [id, endpoint] : topology_.nodes()) {
    if (endpoint == self_) {
      local_nodes_.insert(id);
      peer_of_node_[id] = nullptr;
      continue;
    }
    auto& peer = peers_[endpoint.Address()];
    if (peer == nullptr) {
      peer = std::make_unique<Peer>();
      peer->endpoint = endpoint;
      peer->address = endpoint.Address();
      peer->backoff_ms = options_.reconnect_initial_ms;
      if (endpoint.kind == Endpoint::Kind::kTcp) {
        in_addr parsed{};
        peer->needs_resolve =
            inet_pton(AF_INET, endpoint.host.c_str(), &parsed) != 1;
      }
    }
    peer_of_node_[id] = peer.get();
  }
}

SocketTransport::~SocketTransport() { Shutdown(); }

void SocketTransport::InstallTelemetry(obs::Tracer* tracer,
                                       std::function<int64_t()> clock) {
  tracer_ = tracer;
  clock_ = std::move(clock);
  trace_endpoint_bits_ = EndpointHash16(self_.Address()) << 48;
}

int64_t SocketTransport::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SocketTransport::Bind() {
  if (listen_fd_ >= 0) return Status::OK();
  if (self_.kind == Endpoint::Kind::kUnix) {
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (self_.path.size() >= sizeof(addr.sun_path)) {
      close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument("unix path too long: " + self_.path);
    }
    std::strncpy(addr.sun_path, self_.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unlink(self_.path.c_str());  // stale socket from a previous run
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      close(listen_fd_);
      listen_fd_ = -1;
      return Status::Unavailable("bind(" + self_.path +
                                 "): " + std::strerror(errno));
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(self_.port));
    if (inet_pton(AF_INET, self_.host.c_str(), &addr.sin_addr) != 1) {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
      close(listen_fd_);
      listen_fd_ = -1;
      return Status::Unavailable("bind(" + self_.Address() +
                                 "): " + std::strerror(errno));
    }
  }
  if (listen(listen_fd_, 64) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen failed: " +
                               std::string(std::strerror(errno)));
  }
  SetNonBlocking(listen_fd_);
  SetCloexec(listen_fd_);
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    return Status::Unavailable("pipe failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);
  SetCloexec(wake_read_fd_);
  SetCloexec(wake_write_fd_);
  return Status::OK();
}

void SocketTransport::Start() {
  if (running_.exchange(true)) return;
  loop_ = std::thread(&SocketTransport::LoopThread, this);
}

bool SocketTransport::WaitConnected(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(state_mu_);
  return state_cv_.wait_for(lock, timeout, [this]() {
    for (const auto& [address, peer] : peers_) {
      if (!peer->connected) return false;
    }
    return true;
  });
}

void SocketTransport::Shutdown() {
  if (shut_down_.exchange(true)) return;
  state_cv_.notify_all();
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  running_.store(false);
  for (auto& [address, peer] : peers_) {
    if (peer->fd >= 0) close(peer->fd);
    peer->fd = -1;
  }
  for (auto& conn : accepted_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  accepted_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  if (self_.kind == Endpoint::Kind::kUnix) unlink(self_.path.c_str());
}

void SocketTransport::Register(NodeId id, sim::MessageHandler* handler) {
  handlers_[id] = handler;
}

void SocketTransport::SetNodeDown(NodeId id, bool down) {
  Peer* peer = PeerOf(id);
  if (peer == nullptr) return;  // local/unknown: nothing to mark here
  std::lock_guard<std::mutex> lock(state_mu_);
  bool was_down = explicit_down_.count(id) != 0;
  if (down == was_down) return;
  if (down) {
    explicit_down_.insert(id);
    return;
  }
  explicit_down_.erase(id);
  // Recovery: promote the held backlog into the sequenced stream, in
  // arrival order, ahead of any later send (we hold the lock).
  auto it = peer->held.find(id);
  if (it != peer->held.end()) {
    for (sim::Message& message : it->second) {
      Frame frame;
      frame.kind = Frame::Kind::kData;
      frame.seq = peer->next_seq++;
      frame.message = std::move(message);
      Peer::Retained retained;
      retained.seq = frame.seq;
      retained.to = frame.message.to;
      retained.bytes = EncodeFrame(frame, options_.codec);
      peer->held_bytes -= frame.message.payload.size();
      peer->retained_bytes += retained.bytes.size();
      peer->unsent_bytes += retained.bytes.size();
      peer->retained.push_back(std::move(retained));
    }
    if (peer->pending_since_ms < 0 &&
        peer->unsent_index < peer->retained.size()) {
      peer->pending_since_ms = NowMs();
    }
    peer->held.erase(it);
  }
  WakeLoop();
}

bool SocketTransport::IsNodeDown(NodeId id) const {
  Peer* peer = PeerOf(id);
  if (peer == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_mu_);
  if (explicit_down_.count(id) != 0) return true;
  return peer->consecutive_failures >= options_.down_after_failures;
}

Status SocketTransport::Send(sim::Message message) {
  auto handler = handlers_.find(message.to);
  if (handler != handlers_.end() && local_nodes_.count(message.to) != 0) {
    // Transport-level loopback (tests without a runtime): dispatch
    // inline on the calling thread.
    handler->second->HandleMessage(message);
    return Status::OK();
  }
  return Ship(message);
}

SocketTransport::Peer* SocketTransport::PeerOf(NodeId id) const {
  auto it = peer_of_node_.find(id);
  return it == peer_of_node_.end() ? nullptr : it->second;
}

Status SocketTransport::Ship(sim::Message& message) {
  auto it = peer_of_node_.find(message.to);
  if (it == peer_of_node_.end()) {
    return Status::NotFound("no endpoint hosts node " +
                            std::to_string(message.to));
  }
  Peer* peer = it->second;
  if (peer == nullptr) {
    return Status::NotFound("node " + std::to_string(message.to) +
                            " is local; refusing socket loopback");
  }
  // Oversize messages are rejected at admission: once retained, a frame
  // the decoder would reject as corrupt replays on every reconnect and
  // wedges the stream (plus everything queued behind it) permanently.
  Status shippable = CheckShippable(message);
  if (!shippable.ok()) return shippable;
  if (tracer_ != nullptr && tracer_->enabled() && message.trace_id == 0) {
    // Assign the cross-process trace id here, at admission, so a held
    // (explicit-down) message keeps its id and the flow span covers the
    // parked window too. Layout: [endpoint hash:16][incarnation:16]
    // [counter:32] — a restarted process can never mint an id that
    // pairs with a begin record from its previous life.
    message.trace_id =
        trace_endpoint_bits_ |
        ((options_.incarnation & 0xffffull) << 32) |
        (trace_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
    message.trace_sent_ticks = clock_ ? clock_() : -1;
    tracer_->FlowBegin(
        obs::SpanKind::kMessage, message.from, message.trace_id,
        "msg:" + message.type,
        message.trace_sent_ticks >= 0 ? message.trace_sent_ticks
                                      : tracer_->now(),
        static_cast<int>(message.category),
        std::to_string(message.from) + "->" + std::to_string(message.to));
  }
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    // Bounded backpressure: block while the peer's backlog (retained +
    // held) is over the cap. Acks and recoveries drain it.
    state_cv_.wait(lock, [this, peer]() {
      return shut_down_.load() ||
             peer->BacklogBytes() < options_.max_outbound_bytes;
    });
    if (shut_down_.load()) {
      return Status::Unavailable("transport shut down");
    }
    if (explicit_down_.count(message.to) != 0) {
      peer->held_bytes += message.payload.size();
      peer->held[message.to].push_back(std::move(message));
      return Status::OK();
    }
    Frame frame;
    frame.kind = Frame::Kind::kData;
    frame.seq = peer->next_seq++;
    frame.message = std::move(message);
    Peer::Retained retained;
    retained.seq = frame.seq;
    retained.to = frame.message.to;
    retained.bytes = EncodeFrame(frame, options_.codec);
    peer->retained_bytes += retained.bytes.size();
    peer->unsent_bytes += retained.bytes.size();
    if (peer->pending_since_ms < 0) peer->pending_since_ms = NowMs();
    peer->retained.push_back(std::move(retained));
  }
  WakeLoop();
  return Status::OK();
}

void SocketTransport::WakeLoop() {
  if (wake_write_fd_ < 0) return;
  // Elide the pipe write when a wake is already pending: the loop clears
  // the flag right after draining the pipe, so a set flag means the loop
  // has a wakeup in flight that will observe this call's enqueued work.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  char byte = 1;
  ssize_t ignored = write(wake_write_fd_, &byte, 1);
  (void)ignored;  // pipe full => the loop is waking anyway
}

void SocketTransport::DialLocked(Peer* peer, int64_t now_ms) {
  int fd;
  if (peer->endpoint.kind == Endpoint::Kind::kUnix) {
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
  } else {
    fd = socket(AF_INET, SOCK_STREAM, 0);
  }
  if (fd < 0) {
    peer->next_dial_ms = now_ms + peer->backoff_ms;
    return;
  }
  SetNonBlocking(fd);
  SetCloexec(fd);
  int rc;
  if (peer->endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, peer->endpoint.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(peer->endpoint.port));
    if (peer->needs_resolve) {
      // Resolution happens in ResolveDueHostnames, outside state_mu_;
      // an unresolved hostname here means it failed this round.
      if (!peer->addr_resolved) {
        close(fd);
        ++peer->consecutive_failures;
        peer->next_dial_ms = now_ms + peer->backoff_ms;
        peer->backoff_ms =
            std::min(peer->backoff_ms * 2, options_.reconnect_max_ms);
        return;
      }
      addr.sin_addr = peer->resolved_addr;
    } else {
      inet_pton(AF_INET, peer->endpoint.host.c_str(), &addr.sin_addr);
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc == 0) {
    peer->fd = fd;
    peer->connecting = false;
    OnConnected(peer);
    return;
  }
  if (errno == EINPROGRESS) {
    peer->fd = fd;
    peer->connecting = true;
    return;
  }
  close(fd);
  ++peer->consecutive_failures;
  peer->next_dial_ms = now_ms + peer->backoff_ms;
  peer->backoff_ms =
      std::min(peer->backoff_ms * 2, options_.reconnect_max_ms);
}

void SocketTransport::ResolveDueHostnames(int64_t now_ms) {
  // Collect the peers whose dial is due but whose hostname is still
  // unresolved, then run the (potentially seconds-long) getaddrinfo
  // calls without state_mu_ so Ship/IsNodeDown/WaitConnected never
  // block behind DNS. The cache fields are loop-thread-only.
  std::vector<Peer*> unresolved;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (auto& [address, peer] : peers_) {
      if (peer->fd < 0 && peer->needs_resolve && !peer->addr_resolved &&
          now_ms >= peer->next_dial_ms) {
        unresolved.push_back(peer.get());
      }
    }
  }
  for (Peer* peer : unresolved) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    if (getaddrinfo(peer->endpoint.host.c_str(), nullptr, &hints,
                    &result) == 0 &&
        result != nullptr) {
      peer->resolved_addr =
          reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
      peer->addr_resolved = true;
    } else {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++peer->consecutive_failures;
      peer->next_dial_ms = NowMs() + peer->backoff_ms;
      peer->backoff_ms =
          std::min(peer->backoff_ms * 2, options_.reconnect_max_ms);
    }
    if (result != nullptr) freeaddrinfo(result);
  }
}

void SocketTransport::OnConnected(Peer* peer) {
  peer->connecting = false;
  peer->connected = true;
  peer->consecutive_failures = 0;
  peer->backoff_ms = options_.reconnect_initial_ms;
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  // Fresh connection protocol: HELLO, the reverse-direction ACK (so a
  // restarted peer learns what already landed here), then the retained
  // window from the beginning.
  peer->write_buffer.clear();
  peer->write_offset = 0;
  peer->unsent_index = 0;
  peer->unsent_bytes = peer->retained_bytes;
  peer->pending_since_ms = -1;  // replay flushes immediately anyway
  Frame hello;
  hello.kind = Frame::Kind::kHello;
  hello.endpoint = self_.Address();
  hello.incarnation = options_.incarnation;
  if (clock_) hello.sent_ticks = clock_();
  peer->write_buffer += EncodeFrame(hello, options_.codec);
  auto in = inbound_.find(peer->address);
  if (in != inbound_.end()) {
    Frame ack;
    ack.kind = Frame::Kind::kAck;
    ack.watermark = in->second.watermark;
    // Scope the ACK to the incarnation we last heard from: if the peer
    // restarted and its HELLO hasn't reached us yet, this watermark
    // still describes the OLD sequence space and the restarted peer
    // must ignore it rather than discard fresh frames.
    ack.incarnation = in->second.incarnation;
    peer->write_buffer += EncodeFrame(ack, options_.codec);
  }
  state_cv_.notify_all();
}

void SocketTransport::OnConnectionBroken(Peer* peer, int64_t now_ms) {
  if (peer->fd >= 0) close(peer->fd);
  peer->fd = -1;
  bool was_connected = peer->connected;
  peer->connected = false;
  peer->connecting = false;
  peer->write_buffer.clear();
  peer->write_offset = 0;
  // Rewind: everything unacked replays on the next connection.
  peer->unsent_index = 0;
  peer->unsent_bytes = peer->retained_bytes;
  peer->pending_since_ms = -1;
  if (!was_connected) ++peer->consecutive_failures;
  peer->next_dial_ms = now_ms + peer->backoff_ms;
  peer->backoff_ms =
      std::min(std::max(peer->backoff_ms, 1) * 2,
               options_.reconnect_max_ms);
}

bool SocketTransport::FlushDueLocked(const Peer* peer, int64_t now_ms) const {
  if (options_.batch_max_delay_ms <= 0) return true;  // batching per wakeup only
  if (peer->pending_since_ms < 0) return true;
  if (peer->unsent_bytes >= options_.batch_max_bytes) return true;
  return now_ms - peer->pending_since_ms >= options_.batch_max_delay_ms;
}

void SocketTransport::FlushWrites(Peer* peer, bool flush_due) {
  // Called with state_mu_ held, loop thread only.
  for (;;) {
    if (peer->write_offset == peer->write_buffer.size()) {
      peer->write_buffer.clear();
      peer->write_offset = 0;
      // Stage unsent retained frames, coalescing each run of >= 2 frames
      // under one kBatch superframe so a poll wakeup's worth of small
      // DATA frames costs one envelope (and, below, one write syscall).
      while (flush_due && peer->unsent_index < peer->retained.size() &&
             peer->write_buffer.size() < kWriteChunk) {
        // First pass: how many frames go into this batch?
        size_t count = 0;
        size_t inner_bytes = 0;
        for (size_t i = peer->unsent_index; i < peer->retained.size(); ++i) {
          if (explicit_down_.count(peer->retained[i].to) != 0) {
            // A sequenced frame to an explicitly-down node: hold the
            // whole stream here (later frames must not overtake it).
            break;
          }
          size_t size = peer->retained[i].bytes.size();
          if (count > 0 && inner_bytes + size > options_.batch_max_bytes) break;
          ++count;
          inner_bytes += size;
          if (inner_bytes >= options_.batch_max_bytes) break;
        }
        if (count == 0) break;  // stream held at its head
        if (count > 1) {
          AppendBatchHeader(&peer->write_buffer, count, inner_bytes);
          frames_batched_.fetch_add(count, std::memory_order_relaxed);
          batches_sent_.fetch_add(1, std::memory_order_relaxed);
        }
        for (size_t k = 0; k < count; ++k) {
          const Peer::Retained& next = peer->retained[peer->unsent_index];
          if (next.seq <= peer->sent_high_seq) {
            frames_replayed_.fetch_add(1, std::memory_order_relaxed);
          } else {
            peer->sent_high_seq = next.seq;
          }
          peer->write_buffer += next.bytes;
          peer->unsent_bytes -= next.bytes.size();
          ++peer->unsent_index;
          frames_sent_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (peer->unsent_index == peer->retained.size()) {
        peer->pending_since_ms = -1;
      }
      if (peer->write_buffer.empty()) return;
    }
    ssize_t n = write(peer->fd, peer->write_buffer.data() + peer->write_offset,
                      peer->write_buffer.size() - peer->write_offset);
    if (n > 0) {
      peer->write_offset += static_cast<size_t>(n);
      bytes_sent_.fetch_add(n, std::memory_order_relaxed);
      write_syscalls_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    OnConnectionBroken(peer, NowMs());
    return;
  }
}

void SocketTransport::QueueAckLocked(const std::string& endpoint_address,
                                     uint64_t watermark,
                                     uint64_t incarnation) {
  auto it = peers_.find(endpoint_address);
  if (it == peers_.end()) return;
  Peer* peer = it->second.get();
  if (!peer->connected) return;  // the reconnect ACK will carry it
  Frame ack;
  ack.kind = Frame::Kind::kAck;
  ack.watermark = watermark;
  ack.incarnation = incarnation;
  peer->write_buffer += EncodeFrame(ack, options_.codec);
}

void SocketTransport::HandleInboundFrame(InConn* conn, Frame frame) {
  switch (frame.kind) {
    case Frame::Kind::kHello: {
      conn->peer_address = frame.endpoint;
      InStream& stream = inbound_[frame.endpoint];
      if (stream.incarnation != frame.incarnation) {
        // New process generation: its sequence space restarted.
        stream.incarnation = frame.incarnation;
        stream.watermark = 0;
      }
      if (frame.sent_ticks >= 0 && clock_) {
        // One clock sample per connection establishment. Keep the
        // exchange with the smallest apparent gap — least in-flight
        // delay, tightest offset bound.
        int64_t local = clock_();
        std::lock_guard<std::mutex> lock(state_mu_);
        ClockSample& sample =
            clock_samples_[{frame.endpoint, frame.incarnation}];
        bool better =
            sample.count == 0 ||
            local - frame.sent_ticks <
                sample.local_recv_ticks - sample.remote_sent_ticks;
        if (better) {
          sample.remote_sent_ticks = frame.sent_ticks;
          sample.local_recv_ticks = local;
        }
        sample.peer = frame.endpoint;
        sample.peer_incarnation = frame.incarnation;
        ++sample.count;
      }
      return;
    }
    case Frame::Kind::kAck: {
      if (conn->peer_address.empty()) return;  // protocol error: pre-HELLO
      if (frame.incarnation != options_.incarnation) {
        // The peer acked a previous incarnation of this endpoint (its
        // reconnect ACK raced our HELLO). Its watermark lives in a
        // sequence space this process never used — applying it would
        // discard fresh frames. The peer re-acks after our HELLO lands.
        return;
      }
      std::lock_guard<std::mutex> lock(state_mu_);
      auto it = peers_.find(conn->peer_address);
      if (it == peers_.end()) return;
      Peer* peer = it->second.get();
      while (!peer->retained.empty() &&
             peer->retained.front().seq <= frame.watermark) {
        peer->retained_bytes -= peer->retained.front().bytes.size();
        if (peer->unsent_index > 0) {
          --peer->unsent_index;
        } else {
          // Popping a frame that was never staged (possible only when
          // acks outrun a held/backlogged stream).
          peer->unsent_bytes -= peer->retained.front().bytes.size();
        }
        peer->retained.pop_front();
      }
      state_cv_.notify_all();  // backpressure waiters and Idle pollers
      return;
    }
    case Frame::Kind::kData: {
      if (conn->peer_address.empty()) {
        conn->broken = true;  // DATA before HELLO: drop the connection
        return;
      }
      InStream& stream = inbound_[conn->peer_address];
      if (frame.seq <= stream.watermark) {
        frames_deduped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      stream.watermark = frame.seq;
      frames_delivered_.fetch_add(1, std::memory_order_relaxed);
      if (deliver_) {
        deliver_(std::move(frame.message));
      } else {
        auto handler = handlers_.find(frame.message.to);
        if (handler != handlers_.end()) {
          handler->second->HandleMessage(frame.message);
        } else {
          CREW_LOG(Warn) << "net: dropping frame for unhandled node "
                         << frame.message.to;
        }
      }
      return;
    }
    default:
      // Unreachable: FrameDecoder normalizes wire kinds (binary
      // hello/ack/data, batch) to the three logical kinds above.
      return;
  }
}

void SocketTransport::ReadInbound(InConn* conn) {
  char buffer[64 * 1024];
  uint64_t advanced_to = 0;
  uint64_t advanced_incarnation = 0;
  bool have_advance = false;
  std::string advance_address;
  for (;;) {
    ssize_t n = read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      Frame frame;
      while (conn->decoder.Next(&frame)) {
        bool was_data = frame.kind == Frame::Kind::kData;
        HandleInboundFrame(conn, std::move(frame));
        if (conn->broken) return;
        if (was_data) {
          have_advance = true;
          advance_address = conn->peer_address;
          const InStream& stream = inbound_[conn->peer_address];
          advanced_to = stream.watermark;
          advanced_incarnation = stream.incarnation;
        }
      }
      if (!conn->decoder.ok()) {
        CREW_LOG(Error) << "net: corrupt stream from "
                        << conn->peer_address << ": "
                        << conn->decoder.status().ToString();
        conn->broken = true;
        return;
      }
      if (static_cast<size_t>(n) < sizeof(buffer)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn->broken = true;  // EOF or error
    break;
  }
  if (have_advance) {
    // Cumulative ack for everything this drain delivered.
    std::lock_guard<std::mutex> lock(state_mu_);
    QueueAckLocked(advance_address, advanced_to, advanced_incarnation);
  }
}

void SocketTransport::LoopThread() {
  while (!shut_down_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<Peer*> poll_peers;
    std::vector<InConn*> poll_conns;
    int64_t now_ms = NowMs();
    int64_t next_dial = -1;
    int64_t next_flush = -1;
    ResolveDueHostnames(now_ms);
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (auto& [address, peer] : peers_) {
        if (peer->fd < 0) {
          if (now_ms >= peer->next_dial_ms) DialLocked(peer.get(), now_ms);
        }
        if (peer->fd < 0) {
          next_dial = next_dial < 0
                          ? peer->next_dial_ms
                          : std::min(next_dial, peer->next_dial_ms);
          continue;
        }
        bool flush_due = FlushDueLocked(peer.get(), now_ms);
        if (!flush_due && peer->pending_since_ms >= 0) {
          int64_t deadline =
              peer->pending_since_ms + options_.batch_max_delay_ms;
          next_flush =
              next_flush < 0 ? deadline : std::min(next_flush, deadline);
        }
        short events = POLLIN;  // EOF detection on the simplex link
        if (peer->connecting || peer->WantsWrite(flush_due)) {
          events |= POLLOUT;
        }
        fds.push_back(pollfd{peer->fd, events, 0});
        poll_peers.push_back(peer.get());
      }
    }
    size_t peer_count = fds.size();
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (auto& conn : accepted_) {
      fds.push_back(pollfd{conn->fd, POLLIN, 0});
      poll_conns.push_back(conn.get());
    }
    int64_t deadline = next_dial;
    if (next_flush >= 0 && (deadline < 0 || next_flush < deadline)) {
      deadline = next_flush;
    }
    int timeout_ms = -1;
    if (deadline >= 0) {
      timeout_ms = static_cast<int>(std::max<int64_t>(1, deadline - now_ms));
    }
    int rc = poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) break;
    if (shut_down_.load(std::memory_order_acquire)) break;
    now_ms = NowMs();

    // Wake pipe: drain, then clear the elision flag. Order matters — the
    // flag must only clear once the pipe byte (if any) is consumed, and
    // it must clear unconditionally BEFORE peers are processed: a
    // WakeLoop call elided during this window has its work observed by
    // the processing below, and a later call writes a fresh byte.
    if (fds[peer_count].revents & POLLIN) {
      char scratch[256];
      while (read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
      }
    }
    wake_pending_.store(false, std::memory_order_release);

    // Peers: connect completion, EOF, writes.
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (size_t i = 0; i < peer_count; ++i) {
        Peer* peer = poll_peers[i];
        if (peer->fd != fds[i].fd) continue;  // broken and re-dialed
        short revents = fds[i].revents;
        if (peer->connecting) {
          if (revents & (POLLOUT | POLLERR | POLLHUP)) {
            int err = 0;
            socklen_t len = sizeof(err);
            getsockopt(peer->fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err == 0) {
              OnConnected(peer);
            } else {
              OnConnectionBroken(peer, now_ms);
              continue;
            }
          } else {
            continue;
          }
        }
        if (revents & (POLLERR | POLLHUP)) {
          OnConnectionBroken(peer, now_ms);
          continue;
        }
        if (revents & POLLIN) {
          // The peer never writes on our outbound link: readable means
          // EOF (it died) or junk; either way the link is gone.
          char scratch[256];
          ssize_t n = read(peer->fd, scratch, sizeof(scratch));
          if (n <= 0 && !(n < 0 && (errno == EAGAIN ||
                                    errno == EWOULDBLOCK))) {
            OnConnectionBroken(peer, now_ms);
            continue;
          }
        }
        bool flush_due = FlushDueLocked(peer, now_ms);
        if (peer->WantsWrite(flush_due)) FlushWrites(peer, flush_due);
      }
      // Enqueued sends may have arrived while we polled.
      for (auto& [address, peer] : peers_) {
        if (peer->fd < 0 || peer->connecting) continue;
        bool flush_due = FlushDueLocked(peer.get(), now_ms);
        if (peer->WantsWrite(flush_due)) {
          FlushWrites(peer.get(), flush_due);
        }
      }
    }

    // Listener: accept everything pending.
    if (fds[peer_count + 1].revents & POLLIN) {
      for (;;) {
        int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        SetCloexec(fd);
        if (self_.kind == Endpoint::Kind::kTcp) {
          int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
        auto conn = std::make_unique<InConn>();
        conn->fd = fd;
        accepted_.push_back(std::move(conn));
      }
    }

    // Inbound connections: read and dispatch.
    for (size_t i = 0; i < poll_conns.size(); ++i) {
      short revents = fds[peer_count + 2 + i].revents;
      if (revents & (POLLIN | POLLERR | POLLHUP)) {
        ReadInbound(poll_conns[i]);
      }
    }
    accepted_.erase(
        std::remove_if(accepted_.begin(), accepted_.end(),
                       [](const std::unique_ptr<InConn>& conn) {
                         if (!conn->broken) return false;
                         close(conn->fd);
                         return true;
                       }),
        accepted_.end());
  }
}

bool SocketTransport::Idle() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& [address, peer] : peers_) {
    if (!peer->retained.empty() || peer->held_bytes != 0) return false;
    if (peer->write_offset < peer->write_buffer.size()) return false;
  }
  return true;
}

SocketTransportStats SocketTransport::Stats() const {
  SocketTransportStats stats;
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.frames_delivered =
      frames_delivered_.load(std::memory_order_relaxed);
  stats.frames_deduped = frames_deduped_.load(std::memory_order_relaxed);
  stats.frames_replayed =
      frames_replayed_.load(std::memory_order_relaxed);
  stats.frames_batched = frames_batched_.load(std::memory_order_relaxed);
  stats.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  stats.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  stats.write_syscalls = write_syscalls_.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& [address, peer] : peers_) {
    stats.retained_bytes += static_cast<int64_t>(peer->retained_bytes);
    stats.held_bytes += static_cast<int64_t>(peer->held_bytes);
  }
  return stats;
}

std::vector<ClockSample> SocketTransport::ClockSamples() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<ClockSample> out;
  out.reserve(clock_samples_.size());
  for (const auto& [key, sample] : clock_samples_) out.push_back(sample);
  return out;
}

std::vector<SocketTransportPeerStats> SocketTransport::PeerStats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<SocketTransportPeerStats> out;
  out.reserve(peers_.size());
  for (const auto& [address, peer] : peers_) {
    SocketTransportPeerStats s;
    s.peer = address;
    s.connected = peer->connected;
    s.next_seq = peer->next_seq;
    s.ack_lag_frames = static_cast<int64_t>(peer->retained.size());
    s.retained_bytes = static_cast<int64_t>(peer->retained_bytes);
    s.held_bytes = static_cast<int64_t>(peer->held_bytes);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace crew::net
