#ifndef CREW_NET_NODE_H_
#define CREW_NET_NODE_H_

#include <chrono>
#include <memory>
#include <vector>

#include "net/socket_transport.h"
#include "net/topology.h"
#include "rt/runtime.h"

namespace crew::net {

/// One endpoint of a multi-process deployment: an rt::Runtime hosting the
/// topology's local node subset, wired to a SocketTransport for every
/// other node id. The transport is installed as the runtime's
/// RemoteRouter, so unmodified engines/agents send through their normal
/// Context and the runtime routes off-process destinations onto sockets;
/// inbound frames re-enter through Runtime::DeliverRemote (the
/// non-blocking ForcePush path, so the poll loop can never deadlock
/// against a full mailbox).
///
/// Lifecycle mirrors rt::Runtime: construct -> Bind() -> assemble the
/// node fragment via runtime().ContextFor() -> Start() -> WaitConnected()
/// -> drive load -> cluster-level quiesce -> Shutdown().
class NetNode {
 public:
  NetNode(const Topology& topology, const Endpoint& self,
          rt::RuntimeOptions runtime_options = {},
          SocketTransportOptions transport_options = {});

  NetNode(const NetNode&) = delete;
  NetNode& operator=(const NetNode&) = delete;
  ~NetNode();

  /// Binds the listening socket. Call on every endpoint before any
  /// Start() so no first dial can race an unbound listener.
  Status Bind();

  /// Starts the runtime workers, then the transport's poll loop.
  void Start();

  bool WaitConnected(std::chrono::milliseconds timeout);

  /// True when this endpoint contributes nothing to cluster work: the
  /// runtime is quiet and no outbound frame is held, queued or unacked.
  bool LooksQuiet() const;
  /// This endpoint's share of the cluster admission counter.
  int64_t AdmittedWork() const;

  /// Transport first (stop inbound), then runtime. Idempotent.
  void Shutdown();

  rt::Runtime& runtime() { return runtime_; }
  const rt::Runtime& runtime() const { return runtime_; }
  SocketTransport& transport() { return *transport_; }
  const Endpoint& self() const { return transport_->self(); }
  const std::vector<NodeId>& local_nodes() const { return local_nodes_; }

 private:
  rt::Runtime runtime_;
  std::unique_ptr<SocketTransport> transport_;
  std::vector<NodeId> local_nodes_;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace crew::net

#endif  // CREW_NET_NODE_H_
