# Empty compiler generated dependencies file for crew_workload.
# This may be replaced when dependencies are built.
