#include "storage/table.h"

#include "common/strings.h"

namespace crew::storage {

void Row::Set(const std::string& field, Value value) {
  fields_[field] = std::move(value);
}

std::optional<Value> Row::Get(const std::string& field) const {
  auto it = fields_.find(field);
  if (it == fields_.end()) return std::nullopt;
  return it->second;
}

bool Row::Has(const std::string& field) const {
  return fields_.count(field) > 0;
}

void Row::Erase(const std::string& field) { fields_.erase(field); }

std::string Row::Serialize() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const auto& [name, value] : fields_) {
    parts.push_back(name + "=" + value.ToString());
  }
  return Join(parts, ';');
}

Result<Row> Row::Deserialize(const std::string& text) {
  Row row;
  if (text.empty()) return row;
  for (const std::string& part : SplitQuoted(text, ';')) {
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::Corruption("bad row field: " + part);
    }
    Result<Value> value = Value::Parse(part.substr(eq + 1));
    if (!value.ok()) return value.status();
    row.Set(part.substr(0, eq), std::move(value).value());
  }
  return row;
}

void Table::Put(const std::string& key, Row row) {
  rows_[key] = std::move(row);
  Journal(key, &rows_[key]);
}

void Table::Update(const std::string& key, const Row& fields) {
  Row& row = rows_[key];
  for (const auto& [name, value] : fields.fields()) {
    row.Set(name, value);
  }
  Journal(key, &row);
}

const Row* Table::Get(const std::string& key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

Row* Table::GetMutable(const std::string& key) {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

bool Table::Delete(const std::string& key) {
  auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  rows_.erase(it);
  Journal(key, nullptr);
  return true;
}

bool Table::Contains(const std::string& key) const {
  return rows_.count(key) > 0;
}

std::vector<std::string> Table::Keys() const {
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) out.push_back(key);
  return out;
}

std::vector<const Row*> Table::Select(const std::string& field,
                                      const Value& value) const {
  std::vector<const Row*> out;
  for (const auto& [key, row] : rows_) {
    std::optional<Value> v = row.Get(field);
    if (v.has_value() && *v == value) out.push_back(&row);
  }
  return out;
}

void Table::ApplyRaw(const std::string& key, const Row* row) {
  if (row == nullptr) {
    rows_.erase(key);
  } else {
    rows_[key] = *row;
  }
}

void Table::Journal(const std::string& key, const Row* row) {
  if (hook_) hook_(name_, key, row);
}

}  // namespace crew::storage
