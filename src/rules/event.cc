#include "rules/event.h"

#include <charconv>
#include <cstdio>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/strings.h"

namespace crew::rules::event {
namespace {

/// Dense StepId -> EventToken cache for one step-event suffix, so hot
/// call sites (every step completion/failure) neither allocate nor hash.
class StepTokenCache {
 public:
  explicit StepTokenCache(const char* suffix) : suffix_(suffix) {}

  EventToken Get(StepId step) {
    if (step < 0) return kInvalidEventToken;
    size_t index = static_cast<size_t>(step);
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      if (index < tokens_.size() && tokens_[index] != kInvalidEventToken) {
        return tokens_[index];
      }
    }
    char buf[32];
    int n = std::snprintf(buf, sizeof(buf), "S%d.%s", step, suffix_);
    EventToken token = InternToken(std::string_view(buf, n));
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (index >= tokens_.size()) {
      tokens_.resize(index + 1, kInvalidEventToken);
    }
    tokens_[index] = token;
    return token;
  }

 private:
  const char* suffix_;
  std::shared_mutex mu_;
  std::vector<EventToken> tokens_;
};

StepTokenCache& DoneCache() {
  static StepTokenCache* cache = new StepTokenCache("done");
  return *cache;
}
StepTokenCache& FailCache() {
  static StepTokenCache* cache = new StepTokenCache("fail");
  return *cache;
}
StepTokenCache& CompCache() {
  static StepTokenCache* cache = new StepTokenCache("comp");
  return *cache;
}

}  // namespace

std::string WorkflowStart() { return "WF.start"; }
std::string WorkflowDone() { return "WF.done"; }
std::string WorkflowAbort() { return "WF.abort"; }

EventToken WorkflowStartToken() {
  static const EventToken token = InternToken("WF.start");
  return token;
}
EventToken WorkflowDoneToken() {
  static const EventToken token = InternToken("WF.done");
  return token;
}
EventToken WorkflowAbortToken() {
  static const EventToken token = InternToken("WF.abort");
  return token;
}

std::string StepDone(StepId step) {
  return "S" + std::to_string(step) + ".done";
}

std::string StepFail(StepId step) {
  return "S" + std::to_string(step) + ".fail";
}

std::string StepCompensated(StepId step) {
  return "S" + std::to_string(step) + ".comp";
}

EventToken StepDoneToken(StepId step) { return DoneCache().Get(step); }
EventToken StepFailToken(StepId step) { return FailCache().Get(step); }
EventToken StepCompensatedToken(StepId step) {
  return CompCache().Get(step);
}

std::string RelativeOrder(const InstanceId& leading, StepId step) {
  return "RO:" + leading.ToString() + ":S" + std::to_string(step) + ".done";
}

EventToken RelativeOrderToken(const InstanceId& leading, StepId step) {
  return InternToken(RelativeOrder(leading, step));
}

std::string MutexFree(const std::string& resource) {
  return "ME:" + resource + ".free";
}

EventToken MutexFreeToken(const std::string& resource) {
  return InternToken(MutexFree(resource));
}

StepId ParseStepEvent(std::string_view token, std::string_view suffix) {
  if (token.size() < 2 || token[0] != 'S') return kInvalidStep;
  size_t dot = token.find('.');
  if (dot == std::string_view::npos || token.substr(dot + 1) != suffix) {
    return kInvalidStep;
  }
  long id = 0;
  auto [end, ec] =
      std::from_chars(token.data() + 1, token.data() + dot, id);
  if (ec != std::errc() || end != token.data() + dot || id <= 0) {
    return kInvalidStep;
  }
  return static_cast<StepId>(id);
}

StepId ParseStepEvent(EventToken token, std::string_view suffix) {
  return ParseStepEvent(TokenName(token), suffix);
}

}  // namespace crew::rules::event
