// Edge cases of the centralized engine's administrative surface and of
// designer-error handling.
#include <gtest/gtest.h>

#include "central/system.h"
#include "model/builder.h"

namespace crew::central {
namespace {

using model::SchemaBuilder;
using runtime::WorkflowState;

class EdgeFixture {
 public:
  EdgeFixture() : simulator_(42) {
    programs_.RegisterBuiltins();
    system_ = std::make_unique<CentralSystem>(
        &simulator_, &programs_, &deployment_, &coordination_, 4);
  }

  void Register(model::Schema schema) {
    auto compiled = model::CompiledSchema::Compile(std::move(schema));
    ASSERT_TRUE(compiled.ok());
    for (StepId s = 1; s <= compiled.value()->schema().num_steps(); ++s) {
      deployment_.SetEligible(compiled.value()->schema().name(), s,
                              {system_->agent_ids()[0],
                               system_->agent_ids()[1]});
    }
    system_->engine().RegisterSchema(compiled.value());
  }

  sim::Simulator simulator_;
  runtime::ProgramRegistry programs_;
  model::Deployment deployment_;
  runtime::CoordinationSpec coordination_;
  std::unique_ptr<CentralSystem> system_;
};

model::Schema Seq2(const std::string& name,
                   const std::string& second_program = "noop") {
  SchemaBuilder b(name);
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", second_program);
  b.Sequence({s1, s2});
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

TEST(CentralEdgeTest, UnknownInstanceQueriesAndRequests) {
  EdgeFixture fix;
  fix.Register(Seq2("Wf"));
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Wf", 404}),
            WorkflowState::kUnknown);
  EXPECT_TRUE(fix.system_->engine().AbortWorkflow({"Wf", 404}).IsNotFound());
  EXPECT_TRUE(fix.system_->engine()
                  .ChangeInputs({"Wf", 404}, {{"WF.I1", Value(int64_t{1})}})
                  .IsNotFound());
  EXPECT_TRUE(fix.system_->engine().FinalData({"Wf", 404}).empty());
}

TEST(CentralEdgeTest, ChangeInputsWithIdenticalValuesIsNoOp) {
  EdgeFixture fix;
  SchemaBuilder b("Wf");
  StepId s1 = b.AddTask("A", "copy");
  b.step(s1).inputs = {"WF.I1"};
  StepId s2 = b.AddTask("B", "noop");
  b.Sequence({s1, s2});
  fix.Register(std::move(b.Build()).value());

  ASSERT_TRUE(fix.system_->engine()
                  .StartWorkflow("Wf", 1, {{"WF.I1", Value(int64_t{5})}})
                  .ok());
  fix.simulator_.queue().RunUntil(2);
  int64_t messages_before = fix.simulator_.metrics().TotalMessages();
  // Same value: no rollback, no extra traffic beyond what's in flight.
  ASSERT_TRUE(fix.system_->engine()
                  .ChangeInputs({"Wf", 1}, {{"WF.I1", Value(int64_t{5})}})
                  .ok());
  EXPECT_EQ(fix.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kInputChange),
            0);
  fix.simulator_.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Wf", 1}),
            WorkflowState::kCommitted);
  (void)messages_before;
}

TEST(CentralEdgeTest, ChangeInputsBeforeConsumerRanMergesSilently) {
  EdgeFixture fix;
  SchemaBuilder b("Wf");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "copy");
  b.step(s2).inputs = {"WF.I1"};
  b.Sequence({s1, s2});
  fix.Register(std::move(b.Build()).value());

  ASSERT_TRUE(fix.system_->engine()
                  .StartWorkflow("Wf", 1, {{"WF.I1", Value(int64_t{5})}})
                  .ok());
  // Change before B (the consumer) has run: just a data merge.
  ASSERT_TRUE(fix.system_->engine()
                  .ChangeInputs({"Wf", 1}, {{"WF.I1", Value(int64_t{9})}})
                  .ok());
  fix.simulator_.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Wf", 1}),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->engine().FinalData({"Wf", 1}).at("S2.O1"),
            Value(int64_t{9}));
}

TEST(CentralEdgeTest, MissingProgramFailsStepAndAborts) {
  EdgeFixture fix;
  fix.Register(Seq2("Wf", "never_registered"));
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Wf", 1, {}).ok());
  fix.simulator_.Run();
  // The unknown program behaves as a failing step; with no rollback
  // target the workflow aborts rather than hanging.
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Wf", 1}),
            WorkflowState::kAborted);
}

TEST(CentralEdgeTest, ChoiceWithNoMatchingBranchHangsNotCrashes) {
  EdgeFixture fix;
  // Designer error: conditions cover nothing and there is no else.
  SchemaBuilder b("Stuck");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("L", "noop");
  StepId s3 = b.AddTask("R", "noop");
  b.CondArc(s1, s2, "S1.O1 > 100");
  b.CondArc(s1, s3, "S1.O1 > 200");
  b.TerminalGroup({s2, s3});
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Stuck", 1, {}).ok());
  fix.simulator_.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Stuck", 1}),
            WorkflowState::kExecuting);  // hangs, by design
}

TEST(CentralEdgeTest, AbortedLeaderReleasesOrderedFollowers) {
  EdgeFixture fix;
  runtime::RelativeOrderReq ro;
  ro.id = "fifo";
  ro.workflow_a = "Wf";
  ro.workflow_b = "Wf";
  ro.step_pairs = {{2, 2}};
  fix.coordination_.relative_orders.push_back(ro);
  fix.Register(Seq2("Wf"));

  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Wf", 1, {}).ok());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Wf", 2, {}).ok());
  // Abort the leader before its ordered step completes.
  ASSERT_TRUE(fix.system_->engine().AbortWorkflow({"Wf", 1}).ok());
  fix.simulator_.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Wf", 1}),
            WorkflowState::kAborted);
  // The follower must not hang on the dead leader's ordering token.
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Wf", 2}),
            WorkflowState::kCommitted);
}

TEST(CentralEdgeTest, ManyInstancesInterleaveDeterministically) {
  EdgeFixture fix;
  fix.Register(Seq2("Wf"));
  for (int64_t n = 1; n <= 40; ++n) {
    ASSERT_TRUE(fix.system_->engine().StartWorkflow("Wf", n, {}).ok());
  }
  fix.simulator_.Run();
  EXPECT_EQ(fix.system_->engine().committed_count(), 40);
  EXPECT_EQ(fix.system_->engine().live_instances(), 40u);  // archived
}

}  // namespace
}  // namespace crew::central
