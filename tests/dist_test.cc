#include <gtest/gtest.h>
#include <filesystem>

#include "dist/system.h"
#include "expr/parser.h"
#include "model/builder.h"

namespace crew::dist {
namespace {

using model::SchemaBuilder;
using runtime::WorkflowState;

class DistFixture {
 public:
  explicit DistFixture(int agents = 6, uint64_t seed = 42,
                       AgentOptions options = {})
      : simulator_(seed) {
    programs_.RegisterBuiltins();
    system_ = std::make_unique<DistributedSystem>(
        &simulator_, &programs_, &deployment_, &coordination_, agents,
        options);
  }

  void Register(model::Schema schema, int eligible = 2) {
    auto compiled = model::CompiledSchema::Compile(std::move(schema));
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    const auto& ids = system_->agent_ids();
    for (StepId s = 1; s <= compiled.value()->schema().num_steps(); ++s) {
      std::vector<NodeId> agents;
      for (int k = 0; k < eligible; ++k) {
        agents.push_back(ids[(s - 1 + k) % ids.size()]);
      }
      std::sort(agents.begin(), agents.end());
      deployment_.SetEligible(compiled.value()->schema().name(), s,
                              agents);
    }
    system_->RegisterSchema(compiled.value());
  }

  InstanceId Start(const std::string& workflow,
                   std::map<std::string, Value> inputs = {}) {
    Result<InstanceId> id =
        system_->front_end().StartWorkflow(workflow, std::move(inputs));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.value_or(InstanceId{});
  }

  void Run() { simulator_.Run(); }

  sim::Simulator simulator_;
  runtime::ProgramRegistry programs_;
  model::Deployment deployment_;
  runtime::CoordinationSpec coordination_;
  std::unique_ptr<DistributedSystem> system_;
};

model::Schema Seq(const std::string& name, int steps,
                  const std::string& program = "noop") {
  SchemaBuilder b(name);
  std::vector<StepId> ids;
  for (int i = 0; i < steps; ++i) {
    ids.push_back(b.AddTask("T" + std::to_string(i + 1), program));
  }
  b.Sequence(ids);
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

TEST(DistAgentTest, SequentialWorkflowCommits) {
  DistFixture fix;
  fix.Register(Seq("Wf", 4));
  InstanceId id = fix.Start("Wf");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  // Terminal data reached the coordination agent.
  std::map<std::string, Value> data = fix.system_->ArchivedData(id);
  EXPECT_EQ(data.at("S4.O1"), Value(int64_t{1}));
}

TEST(DistAgentTest, NoEngineNodeCarriesNavigationLoad) {
  DistFixture fix(/*agents=*/6);
  fix.Register(Seq("Wf", 6));
  for (int i = 0; i < 6; ++i) fix.Start("Wf");
  fix.Run();
  EXPECT_EQ(fix.system_->committed_count(), 6);
  // Navigation load is spread across agents; no node dominates like a
  // central engine would.
  std::vector<NodeId> loaded = fix.simulator_.metrics().LoadedNodes();
  int with_nav = 0;
  for (NodeId node : loaded) {
    if (fix.simulator_.metrics().LoadAt(
            node, sim::LoadCategory::kNavigation) > 0) {
      ++with_nav;
    }
  }
  EXPECT_GE(with_nav, 4);
}

TEST(DistAgentTest, ParallelBranchesJoinAcrossAgents) {
  DistFixture fix;
  SchemaBuilder b("Par");
  StepId s1 = b.AddTask("split", "noop");
  StepId s2 = b.AddTask("left", "noop");
  StepId s3 = b.AddTask("right", "noop");
  StepId s4 = b.AddTask("join", "noop");
  b.Parallel(s1, {{s2, s2}, {s3, s3}}, s4);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  InstanceId id = fix.Start("Par");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
}

TEST(DistAgentTest, ChoiceBranchEvaluatedAtReceivingAgents) {
  DistFixture fix;
  SchemaBuilder b("Choice");
  StepId s1 = b.AddTask("decide", "copy");
  b.step(s1).inputs = {"WF.I1"};
  StepId s2 = b.AddTask("big", "noop");
  StepId s3 = b.AddTask("small", "noop");
  b.CondArc(s1, s2, "S1.O1 >= 10");
  b.ElseArc(s1, s3);
  b.TerminalGroup({s2, s3});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());

  InstanceId big = fix.Start("Choice", {{"WF.I1", Value(int64_t{50})}});
  InstanceId small = fix.Start("Choice", {{"WF.I1", Value(int64_t{2})}});
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(big),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->front_end().KnownStatus(small),
            WorkflowState::kCommitted);
  EXPECT_TRUE(fix.system_->ArchivedData(big).count("S2.O1"));
  EXPECT_TRUE(fix.system_->ArchivedData(small).count("S3.O1"));
}

TEST(DistAgentTest, LoopIteratesViaBackEdgePackets) {
  DistFixture fix;
  SchemaBuilder b("Loop");
  StepId s1 = b.AddTask("body", "noop");
  StepId s2 = b.AddTask("after", "noop");
  b.CondArc(s1, s2, "S1.O1 >= 3");
  b.BackArc(s1, s1, "S1.O1 < 3");
  b.SetJoin(s1, model::JoinKind::kOr);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  InstanceId id = fix.Start("Loop");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->ArchivedData(id).at("S1.O1"), Value(int64_t{3}));
}

TEST(DistAgentTest, StepFailureRollsBackViaHaltProbes) {
  DistFixture fix;
  fix.programs_.RegisterFailFirstN("flaky", 1);
  SchemaBuilder b("Retry");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "flaky");
  b.Sequence({s1, s2, s3});
  b.OnFail(s3, s2, 3);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  InstanceId id = fix.Start("Retry");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->ArchivedData(id).at("S3.O1"), Value(int64_t{2}));
  EXPECT_GT(fix.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kFailureHandling),
            0);
}

TEST(DistAgentTest, OcrReuseAvoidsReexecution) {
  DistFixture fix;
  fix.programs_.RegisterFailFirstN("flaky", 1);
  SchemaBuilder b("Ocr");
  StepId s1 = b.AddTask("A", "noop");
  b.step(s1).inputs = {"WF.I1"};
  b.step(s1).ocr.reexec_condition =
      expr::ParseExpression("changed(WF.I1)").value();
  StepId s2 = b.AddTask("B", "noop");
  b.step(s2).inputs = {"S1.O1"};
  b.step(s2).ocr.reexec_condition =
      expr::ParseExpression("changed(S1.O1)").value();
  StepId s3 = b.AddTask("C", "flaky");
  b.Sequence({s1, s2, s3});
  b.OnFail(s3, s1, 3);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  InstanceId id = fix.Start("Ocr", {{"WF.I1", Value(int64_t{7})}});
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  std::map<std::string, Value> data = fix.system_->ArchivedData(id);
  EXPECT_EQ(data.at("S1.O1"), Value(int64_t{1}));  // reused
  EXPECT_EQ(data.at("S2.O1"), Value(int64_t{1}));  // reused
  EXPECT_EQ(data.at("S3.O1"), Value(int64_t{2}));  // retried
}

TEST(DistAgentTest, ExhaustedRetriesAbortViaCoordinationAgent) {
  DistFixture fix;
  SchemaBuilder b("Doomed");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "fail_always");
  b.Sequence({s1, s2});
  b.OnFail(s2, s1, 2);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  InstanceId id = fix.Start("Doomed");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kAborted);
}

TEST(DistAgentTest, UserAbortCompensatesAndHalts) {
  DistFixture fix;
  fix.Register(Seq("Wf", 5));
  InstanceId id = fix.Start("Wf");
  fix.simulator_.queue().RunUntil(6);
  ASSERT_TRUE(fix.system_->front_end().RequestAbort(id).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kAborted);
  EXPECT_GT(
      fix.simulator_.metrics().MessagesIn(sim::MsgCategory::kAbort), 0);
}

TEST(DistAgentTest, AbortAfterCommitIsRejected) {
  DistFixture fix;
  fix.Register(Seq("Wf", 3));
  InstanceId id = fix.Start("Wf");
  fix.Run();
  ASSERT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  ASSERT_TRUE(fix.system_->front_end().RequestAbort(id).ok());
  fix.Run();
  // Still committed: the coordination agent rejected the abort.
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->committed_count(), 1);
  EXPECT_EQ(fix.system_->aborted_count(), 0);
}

TEST(DistAgentTest, InputChangeRollsBackAffectedSteps) {
  DistFixture fix;
  SchemaBuilder b("InChange");
  StepId s1 = b.AddTask("A", "copy");
  b.step(s1).inputs = {"WF.I1"};
  StepId s2 = b.AddTask("B", "copy");
  b.step(s2).inputs = {"S1.O1"};
  StepId s3 = b.AddTask("C", "copy");
  b.step(s3).inputs = {"S2.O1"};
  b.Sequence({s1, s2, s3});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());

  InstanceId id = fix.Start("InChange", {{"WF.I1", Value(int64_t{10})}});
  fix.simulator_.queue().RunUntil(5);
  ASSERT_TRUE(fix.system_->front_end()
                  .RequestChangeInputs(id, {{"WF.I1", Value(int64_t{99})}})
                  .ok());
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->ArchivedData(id).at("S3.O1"),
            Value(int64_t{99}));
}

TEST(DistAgentTest, RelativeOrderingViaAddRuleProtocol) {
  DistFixture fix;
  runtime::RelativeOrderReq ro;
  ro.id = "orders";
  ro.workflow_a = "Wf";
  ro.workflow_b = "Wf";
  ro.step_pairs = {{2, 2}, {3, 3}};
  fix.coordination_.relative_orders.push_back(ro);
  fix.Register(Seq("Wf", 4));
  InstanceId first = fix.Start("Wf");
  InstanceId second = fix.Start("Wf");
  InstanceId third = fix.Start("Wf");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(first),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->front_end().KnownStatus(second),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->front_end().KnownStatus(third),
            WorkflowState::kCommitted);
  EXPECT_GT(fix.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kCoordination),
            0);
}

TEST(DistAgentTest, MutualExclusionViaArbiterAgent) {
  DistFixture fix;
  runtime::MutexReq me;
  me.id = "m";
  me.resource = "machine";
  me.critical_steps = {{"Wf", 2}};
  fix.coordination_.mutexes.push_back(me);
  fix.Register(Seq("Wf", 3));
  std::vector<InstanceId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(fix.Start("Wf"));
  fix.Run();
  for (const InstanceId& id : ids) {
    EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
              WorkflowState::kCommitted)
        << id.ToString();
  }
}

TEST(DistAgentTest, CompensationDependentSetChains) {
  DistFixture fix;
  fix.programs_.RegisterFailFirstN("flaky", 1);
  // S1 S2 S3 S4(flaky; rollback to S2). Comp-dep set {S2, S3}: when S2
  // re-executes, S3 (executed after S2) must compensate first.
  SchemaBuilder b("Sets");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  StepId s4 = b.AddTask("D", "flaky");
  b.Sequence({s1, s2, s3, s4});
  b.OnFail(s4, s2, 3);
  b.AddCompDepSet({s2, s3});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  InstanceId id = fix.Start("Sets");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  // Re-execution happened: S2/S3 ran twice.
  EXPECT_EQ(fix.system_->ArchivedData(id).at("S2.O1"), Value(int64_t{2}));
  EXPECT_EQ(fix.system_->ArchivedData(id).at("S3.O1"), Value(int64_t{2}));
}

TEST(DistAgentTest, BranchSwitchCompensatesOldBranchThread) {
  DistFixture fix;
  fix.programs_.RegisterFailFirstN("flaky", 1);
  SchemaBuilder b("Switch");
  StepId s1 = b.AddTask("decide", "noop");  // O1 = attempt
  StepId s2 = b.AddTask("top", "noop");
  StepId s3 = b.AddTask("bottom", "noop");
  StepId s4 = b.AddTask("final", "flaky");
  b.CondArc(s1, s2, "S1.O1 == 1");
  b.ElseArc(s1, s3);
  b.Arc(s2, s4);
  b.Arc(s3, s4);
  b.SetJoin(s4, model::JoinKind::kOr);
  b.OnFail(s4, s1, 3);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  InstanceId id = fix.Start("Switch");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  EXPECT_TRUE(fix.system_->ArchivedData(id).count("S3.O1"));
}

TEST(DistAgentTest, RollbackDependencyPropagatesViaFrontEnd) {
  DistFixture fix;
  fix.programs_.RegisterFailFirstN("flaky", 1);
  // "Lead" fails at S3 and rolls back to S1; the RD requirement then
  // rolls every live "Dep" instance back to its S1 as well. The re-run
  // is observable through Dep's S1 attempt count.
  runtime::RollbackDepReq rd;
  rd.id = "rd";
  rd.workflow_a = "Lead";
  rd.step_a = 2;
  rd.workflow_b = "Dep";
  rd.step_b = 1;
  fix.coordination_.rollback_deps.push_back(rd);

  {
    model::SchemaBuilder b("Lead");
    StepId s1 = b.AddTask("l1", "noop");
    StepId s2 = b.AddTask("l2", "noop");
    StepId s3 = b.AddTask("l3", "flaky");
    b.Sequence({s1, s2, s3});
    b.OnFail(s3, s1, 3);
    auto schema = b.Build();
    ASSERT_TRUE(schema.ok());
    fix.Register(std::move(schema).value());
  }
  {
    // Dep is long enough to still be live when Lead's failure hits, and
    // its steps always re-execute on revisit (no reuse condition).
    fix.Register(Seq("Dep", 8));
  }
  InstanceId dep = fix.Start("Dep");
  InstanceId lead = fix.Start("Lead");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(lead),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->front_end().KnownStatus(dep),
            WorkflowState::kCommitted);
  // Dep's first step ran at least twice: once normally, once after the
  // RD-induced rollback.
  std::map<std::string, Value> data = fix.system_->ArchivedData(dep);
  ASSERT_TRUE(data.count("S1.O1"));
  EXPECT_GE(data.at("S1.O1").AsInt(), 2);
}

TEST(DistAgentTest, NestedWorkflowRunsChildToCommit) {
  DistFixture fix;
  fix.Register(Seq("Child", 3));
  SchemaBuilder b("Parent");
  StepId s1 = b.AddTask("pre", "noop");
  StepId s2 = b.AddSubWorkflow("child", "Child");
  b.step(s2).inputs = {"S1.O1"};
  StepId s3 = b.AddTask("post", "noop");
  b.Sequence({s1, s2, s3});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  InstanceId id = fix.Start("Parent");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  // The child's terminal results surfaced under the parent step.
  std::map<std::string, Value> data = fix.system_->ArchivedData(id);
  EXPECT_TRUE(data.count("S2.sub.S3.O1"));
}

TEST(DistAgentTest, SuccessorAgentFailureRoutesAroundDownNode) {
  DistFixture fix(/*agents=*/4);
  fix.Register(Seq("Wf", 3), /*eligible=*/2);
  // Take one agent down for the whole interesting window.
  sim::InjectCrash(&fix.simulator_, fix.system_->agent_ids()[1], 0, 200);
  InstanceId id = fix.Start("Wf");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
}

TEST(DistAgentTest, QueryStepReexecutedWhenPredecessorDown) {
  AgentOptions options;
  options.pending_timeout = 30;
  DistFixture fix(/*agents=*/6, /*seed=*/42, options);
  // Parallel split: S1 -> (S2 || S3) -> S4. S2 is a *query* step whose
  // elected executor crashes after receiving the packet but before
  // completing — the work is lost. S4's agent holds a pending join rule
  // missing only S2.done; after the timeout it polls S2's eligible
  // agents (all reply "unknown"), and because S2 is a query it
  // re-requests execution at a living eligible agent (§5.2).
  SchemaBuilder b("Poll");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  b.step(s2).access = model::AccessKind::kQuery;
  StepId s3 = b.AddTask("C", "noop");
  StepId s4 = b.AddTask("D", "noop");
  b.Parallel(s1, {{s2, s2}, {s3, s3}}, s4);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value(), /*eligible=*/3);
  InstanceId id = fix.Start("Poll");
  // The S2 executor is elected by hash over the eligible agents (all up
  // at election time). Crash it after it receives the packet (t=3) but
  // before its completion callback (t=5); keep it down long past the
  // poll window.
  const auto& eligible = fix.deployment_.Eligible("Poll", s2);
  NodeId executor =
      eligible[static_cast<size_t>(id.number + s2) % eligible.size()];
  // t=4: the executor has already received the packet; its completion
  // callback is due at t=6 and is lost to the crash.
  sim::InjectCrash(&fix.simulator_, executor, 5, 2000);
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  EXPECT_GT(fix.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kFailureHandling),
            0);
}

TEST(DistAgentTest, MessageCountMatchesFanoutModel) {
  DistFixture fix(/*agents=*/6);
  fix.Register(Seq("Wf", 5), /*eligible=*/2);
  InstanceId id = fix.Start("Wf");
  fix.Run();
  ASSERT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  // Paper model: s·a + f. Five steps: the four non-terminal completions
  // fan out to a=2 eligible successors; terminal completion sends one
  // StepCompleted. Self-deliveries are free, so the measured count is
  // bounded by the model.
  int64_t normal =
      fix.simulator_.metrics().MessagesIn(sim::MsgCategory::kNormal);
  EXPECT_LE(normal, 4 * 2 + 1);
  EXPECT_GE(normal, 4);
}

TEST(DistAgentTest, ElectionProbesAreMeteredSeparately) {
  // With election probes on, successor selection exchanges
  // StateInformation messages among the eligible agents; they are
  // metered in their own category and never change the outcome.
  AgentOptions probing;
  probing.election_probes = true;
  DistFixture with(/*agents=*/6, /*seed=*/42, probing);
  DistFixture without(/*agents=*/6, /*seed=*/42);
  for (DistFixture* fix : {&with, &without}) {
    fix->Register(Seq("Wf", 5), /*eligible=*/3);
    InstanceId id = fix->Start("Wf");
    fix->Run();
    ASSERT_EQ(fix->system_->front_end().KnownStatus(id),
              WorkflowState::kCommitted);
  }
  EXPECT_GT(with.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kElection),
            0);
  EXPECT_EQ(without.simulator_.metrics().MessagesIn(
                sim::MsgCategory::kElection),
            0);
  // The modelled (headline) message count is unaffected by probing.
  EXPECT_EQ(
      with.simulator_.metrics().MessagesIn(sim::MsgCategory::kNormal),
      without.simulator_.metrics().MessagesIn(sim::MsgCategory::kNormal));
}

TEST(DistAgentTest, PurgeBroadcastClearsAgentState) {
  DistFixture fix(/*agents=*/4);
  fix.Register(Seq("Wf", 3));
  InstanceId id = fix.Start("Wf");
  fix.Run();
  ASSERT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  for (size_t i = 0; i < fix.system_->num_agents(); ++i) {
    EXPECT_EQ(fix.system_->agent(i).live_instances(), 0u)
        << "agent " << fix.system_->agent(i).id();
  }
}

TEST(DistAgentTest, CoordinationAgentOutageDelaysButCommits) {
  // The coordination agent (agent 1, owner of the start step) is down
  // when the workflow is started: the WorkflowStart parks in its queue
  // (persistent messaging) and the instance runs to commit once it
  // recovers.
  DistFixture fix(/*agents=*/4);
  fix.Register(Seq("Wf", 3), /*eligible=*/2);
  sim::InjectCrash(&fix.simulator_, 1, /*at=*/0, /*outage=*/60);
  InstanceId id = fix.Start("Wf");
  fix.simulator_.queue().RunUntil(50);
  EXPECT_NE(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
}

TEST(DistAgentTest, CrashDuringRecoveryStillConverges) {
  // A step fails (rollback in progress) while one of the re-execution
  // agents is down; parked packets deliver on recovery and the workflow
  // commits.
  DistFixture fix(/*agents=*/5);
  fix.programs_.RegisterFailFirstN("flaky", 1);
  SchemaBuilder b("Wf");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  StepId s4 = b.AddTask("D", "flaky");
  b.Sequence({s1, s2, s3, s4});
  b.OnFail(s4, s2, 3);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value(), /*eligible=*/2);
  // Crash an agent in the middle of the recovery window.
  sim::InjectCrash(&fix.simulator_, 3, /*at=*/8, /*outage=*/100);
  InstanceId id = fix.Start("Wf");
  fix.Run();
  EXPECT_EQ(fix.system_->front_end().KnownStatus(id),
            WorkflowState::kCommitted);
}

TEST(DistAgentTest, ManyConcurrentInstancesWithFailuresAllTerminate) {
  DistFixture fix(/*agents=*/10);
  fix.programs_.RegisterFlaky("maybe", 0.15);
  SchemaBuilder b("Wf");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "maybe");
  StepId s3 = b.AddTask("C", "maybe");
  StepId s4 = b.AddTask("D", "noop");
  b.Sequence({s1, s2, s3, s4});
  b.OnFail(s2, s1, 6);
  b.OnFail(s3, s1, 6);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  fix.Register(std::move(schema).value());
  std::vector<InstanceId> ids;
  for (int i = 0; i < 30; ++i) ids.push_back(fix.Start("Wf"));
  fix.Run();
  int committed = 0, aborted = 0;
  for (const InstanceId& id : ids) {
    WorkflowState state = fix.system_->front_end().KnownStatus(id);
    committed += state == WorkflowState::kCommitted ? 1 : 0;
    aborted += state == WorkflowState::kAborted ? 1 : 0;
  }
  EXPECT_EQ(committed + aborted, 30);
  EXPECT_GT(committed, 20);  // p(6 consecutive failures) is tiny
}

TEST(DistAgentTest, AgdbPersistsStepRecords) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "crew_agdb").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  AgentOptions options;
  options.agdb_dir = dir;
  {
    DistFixture fix(/*agents=*/3, /*seed=*/42, options);
    fix.Register(Seq("Wf", 3), /*eligible=*/1);
    InstanceId id = fix.Start("Wf");
    fix.Run();
    ASSERT_EQ(fix.system_->front_end().KnownStatus(id),
              WorkflowState::kCommitted);
    bool any_journal = false;
    for (size_t i = 0; i < fix.system_->num_agents(); ++i) {
      if (fix.system_->agent(i).agdb().journaled_mutations() > 0) {
        any_journal = true;
      }
    }
    EXPECT_TRUE(any_journal);
  }
  {
    // Restarted agents recover their AGDB tables from the WAL.
    DistFixture fix(/*agents=*/3, /*seed=*/42, options);
    bool recovered = false;
    for (size_t i = 0; i < fix.system_->num_agents(); ++i) {
      const storage::Table* steps =
          fix.system_->agent(i).agdb().FindTable("steps");
      if (steps != nullptr && steps->size() > 0) recovered = true;
    }
    EXPECT_TRUE(recovered);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace crew::dist
