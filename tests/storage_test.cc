#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "storage/database.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace crew::storage {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("crew_test_" + std::to_string(::testing::UnitTest::GetInstance()
                                               ->random_seed()) +
             "_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static int counter_;
  std::filesystem::path path_;
};
int TempDir::counter_ = 0;

TEST(WalTest, AppendAndReplayRoundTrip) {
  TempDir dir;
  std::string path = dir.path() + "/log.wal";
  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append("first record").ok());
  ASSERT_TRUE(wal.Append("second\nmultiline").ok());
  ASSERT_TRUE(wal.Append("").ok());
  wal.Close();

  std::vector<std::string> seen;
  Wal reader;
  ASSERT_TRUE(
      reader.Replay(path, [&](const std::string& p) { seen.push_back(p); })
          .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"first record",
                                            "second\nmultiline", ""}));
}

TEST(WalTest, ReplayStopsAtCorruptTail) {
  TempDir dir;
  std::string path = dir.path() + "/log.wal";
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("good one").ok());
    ASSERT_TRUE(wal.Append("good two").ok());
  }
  // Simulate a torn write: truncate off the last few bytes.
  {
    uintmax_t size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 4);
  }
  std::vector<std::string> seen;
  Wal reader;
  ASSERT_TRUE(
      reader.Replay(path, [&](const std::string& p) { seen.push_back(p); })
          .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"good one"}));
}

TEST(WalTest, ReplayDetectsBitFlip) {
  TempDir dir;
  std::string path = dir.path() + "/log.wal";
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("record aaaa").ok());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);
    std::fputc('X', f);
    std::fclose(f);
  }
  int count = 0;
  Wal reader;
  ASSERT_TRUE(reader.Replay(path, [&](const std::string&) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

TEST(WalTest, RecoverKeepsPrefixTruncatesTornPayload) {
  TempDir dir;
  std::string path = dir.path() + "/log.wal";
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("one").ok());
    ASSERT_TRUE(wal.Append("two").ok());
    ASSERT_TRUE(wal.Append("three").ok());
  }
  uintmax_t intact_size = std::filesystem::file_size(path);
  // Crash mid-append: a header promising 32 bytes, payload cut short.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("32 12345\npartial", f);
    std::fclose(f);
  }
  std::vector<std::string> seen;
  Result<int64_t> recovered =
      Wal::Recover(path, [&](const std::string& p) { seen.push_back(p); });
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value(), 3);
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_EQ(std::filesystem::file_size(path), intact_size);
}

TEST(WalTest, AppendAfterRecoverStaysReplayable) {
  TempDir dir;
  std::string path = dir.path() + "/log.wal";
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("survivor").ok());
  }
  // Crash leaves an unparsable torn header at the tail. Without
  // Recover's truncation, a record appended after reopening would sit
  // behind this garbage and be invisible to every future replay.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage-not-a-header", f);
    std::fclose(f);
  }
  Result<int64_t> recovered = Wal::Recover(path, [](const std::string&) {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 1);

  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append("post-crash").ok());
  wal.Close();
  std::vector<std::string> seen;
  Wal reader;
  ASSERT_TRUE(
      reader.Replay(path, [&](const std::string& p) { seen.push_back(p); })
          .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"survivor", "post-crash"}));
}

TEST(WalTest, RecoverOnCleanLogIsNoOp) {
  TempDir dir;
  std::string path = dir.path() + "/log.wal";
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append("a").ok());
    ASSERT_TRUE(wal.Append("b").ok());
  }
  uintmax_t size = std::filesystem::file_size(path);
  int count = 0;
  Result<int64_t> recovered =
      Wal::Recover(path, [&](const std::string&) { ++count; });
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 2);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(std::filesystem::file_size(path), size);
}

TEST(WalTest, RecoverOnMissingFileIsZero) {
  TempDir dir;
  Result<int64_t> recovered =
      Wal::Recover(dir.path() + "/absent.wal", [](const std::string&) {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 0);
}

TEST(WalTest, TruncateEmptiesLog) {
  TempDir dir;
  std::string path = dir.path() + "/log.wal";
  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append("before checkpoint").ok());
  ASSERT_TRUE(wal.Truncate().ok());
  ASSERT_TRUE(wal.Append("after checkpoint").ok());
  wal.Close();

  std::vector<std::string> seen;
  Wal reader;
  ASSERT_TRUE(
      reader.Replay(path, [&](const std::string& p) { seen.push_back(p); })
          .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"after checkpoint"}));
}

TEST(WalTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (standard test vector).
  EXPECT_EQ(Wal::Crc32("123456789"), 0xCBF43926u);
}

TEST(RowTest, SerializeRoundTrip) {
  Row row;
  row.Set("status", Value("executing"));
  row.Set("count", Value(int64_t{7}));
  row.Set("note", Value("semi;colon and \"quotes\""));
  Result<Row> parsed = Row::Deserialize(row.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Get("status"), Value("executing"));
  EXPECT_EQ(parsed.value().Get("count"), Value(int64_t{7}));
  EXPECT_EQ(parsed.value().Get("note"), Value("semi;colon and \"quotes\""));
}

TEST(TableTest, PutGetUpdateDelete) {
  Table table("steps");
  Row row;
  row.Set("state", Value("done"));
  table.Put("S1", row);
  ASSERT_NE(table.Get("S1"), nullptr);
  EXPECT_EQ(table.Get("S1")->Get("state"), Value("done"));

  Row patch;
  patch.Set("attempts", Value(int64_t{2}));
  table.Update("S1", patch);
  EXPECT_EQ(table.Get("S1")->Get("state"), Value("done"));
  EXPECT_EQ(table.Get("S1")->Get("attempts"), Value(int64_t{2}));

  EXPECT_TRUE(table.Delete("S1"));
  EXPECT_FALSE(table.Delete("S1"));
  EXPECT_EQ(table.Get("S1"), nullptr);
}

TEST(TableTest, SelectScansByField) {
  Table table("instances");
  for (int i = 0; i < 5; ++i) {
    Row row;
    row.Set("status", Value(i % 2 == 0 ? "done" : "executing"));
    table.Put("I" + std::to_string(i), row);
  }
  EXPECT_EQ(table.Select("status", Value("done")).size(), 3u);
  EXPECT_EQ(table.Select("status", Value("nope")).size(), 0u);
}

TEST(DatabaseTest, DurableRecoverRestoresTables) {
  TempDir dir;
  {
    Database db("agdb-1");
    ASSERT_TRUE(db.OpenDurable(dir.path()).ok());
    Row row;
    row.Set("result", Value(int64_t{99}));
    db.table("steps").Put("WF1#1/S3", row);
    Row status;
    status.Set("status", Value("committed"));
    db.table("summary").Put("WF1#1", status);
    db.table("summary").Delete("WF1#1");
  }
  Database recovered("agdb-1");
  ASSERT_TRUE(recovered.Recover(dir.path()).ok());
  const Table* steps = recovered.FindTable("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_NE(steps->Get("WF1#1/S3"), nullptr);
  EXPECT_EQ(steps->Get("WF1#1/S3")->Get("result"), Value(int64_t{99}));
  const Table* summary = recovered.FindTable("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Get("WF1#1"), nullptr);  // delete replayed too
}

TEST(DatabaseTest, CheckpointBoundsRecovery) {
  TempDir dir;
  {
    Database db("engine-db");
    ASSERT_TRUE(db.OpenDurable(dir.path()).ok());
    for (int i = 0; i < 10; ++i) {
      Row row;
      row.Set("n", Value(static_cast<int64_t>(i)));
      db.table("t").Put("k" + std::to_string(i), row);
    }
    ASSERT_TRUE(db.Checkpoint(dir.path()).ok());
    // Post-checkpoint mutations go to the (now short) WAL.
    Row row;
    row.Set("n", Value(int64_t{99}));
    db.table("t").Put("post", row);
    db.table("t").Delete("k0");
  }
  // The WAL alone holds only 2 records; full state needs the snapshot.
  {
    int wal_records = 0;
    Wal reader;
    ASSERT_TRUE(reader
                    .Replay(dir.path() + "/engine-db.wal",
                            [&](const std::string&) { ++wal_records; })
                    .ok());
    EXPECT_EQ(wal_records, 2);
  }
  Database recovered("engine-db");
  ASSERT_TRUE(recovered.Recover(dir.path()).ok());
  const Table* t = recovered.FindTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 10u);  // 10 snapshot rows - k0 + post
  EXPECT_EQ(t->Get("k0"), nullptr);
  ASSERT_NE(t->Get("post"), nullptr);
  EXPECT_EQ(t->Get("post")->Get("n"), Value(int64_t{99}));
  ASSERT_NE(t->Get("k5"), nullptr);
}

TEST(DatabaseTest, CheckpointRequiresDurableMode) {
  Database db("mem");
  EXPECT_EQ(db.Checkpoint("/tmp").code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, InMemoryModeJournalsNothingToDisk) {
  Database db("mem");
  Row row;
  row.Set("x", Value(int64_t{1}));
  db.table("t").Put("k", row);
  EXPECT_FALSE(db.durable());
  EXPECT_EQ(db.journaled_mutations(), 1);
}

}  // namespace
}  // namespace crew::storage
