#ifndef CREW_RUNTIME_INSTANCE_H_
#define CREW_RUNTIME_INSTANCE_H_

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "expr/eval.h"
#include "model/compiled.h"
#include "runtime/packet.h"
#include "runtime/wire.h"

namespace crew::runtime {

/// Per-step execution record within an instance (the "step status table").
/// `state` records the last *completed* outcome; `in_flight` marks a
/// program run in progress (the two together yield the StepStatus wire
/// answer: in_flight => "executing").
struct StepRecord {
  StepRunState state = StepRunState::kUnknown;
  bool in_flight = false;
  int attempts = 0;          ///< program invocations so far
  int64_t exec_seq = 0;      ///< global order stamp of the last completion
  int64_t epoch = -1;        ///< epoch of the last completion
  NodeId executed_by = kInvalidNode;
  /// Inputs as seen at the last execution — drives changed() in OCR
  /// re-execution conditions.
  std::map<std::string, Value> prev_inputs;
  /// Outputs of the last execution — reused when OCR decides kReuse.
  std::map<std::string, Value> prev_outputs;
};

/// The state of one workflow instance as known at one node: the workflow
/// instance table (data + context), the step status table, and the
/// bookkeeping the distributed protocols need (epoch, halt flags,
/// forwarded-to sets, RO obligations). In distributed control each agent
/// holds a *partial* copy, merged from arriving packets; in centralized
/// control the engine's copy is complete.
class InstanceState {
 public:
  InstanceState() = default;
  InstanceState(InstanceId id, model::CompiledSchemaPtr schema)
      : id_(std::move(id)), schema_(std::move(schema)) {}

  const InstanceId& id() const { return id_; }
  const model::CompiledSchemaPtr& schema() const { return schema_; }

  // ---- data table ----
  void SetData(const std::string& item, Value value);
  std::optional<Value> GetData(const std::string& item) const;
  const std::map<std::string, Value>& data() const { return data_; }
  /// Merges items from a packet (packet values win: they are newer).
  void MergeData(const std::map<std::string, Value>& data);
  void MergeData(const PacketDataMap& data);

  // ---- step status table ----
  StepRecord& step_record(StepId step) { return steps_[step]; }
  const StepRecord* FindStepRecord(StepId step) const;
  StepRunState StepState(StepId step) const;
  /// Next global execution sequence stamp.
  int64_t NextExecSeq() { return ++exec_seq_; }
  /// Current (last issued) execution sequence stamp.
  int64_t exec_seq() const { return exec_seq_; }

  // ---- epochs & halting (distributed failure handling) ----
  int64_t epoch() const { return epoch_; }
  void set_epoch(int64_t epoch) { epoch_ = epoch; }
  /// True while a HaltThread for `>= epoch` quiesced this node's thread:
  /// completions must not forward packets.
  bool halted() const { return halted_; }
  void set_halted(bool halted) { halted_ = halted; }

  /// Agents this node already forwarded packets to for this instance
  /// (per target step), so HaltThread can chase them (§5.2).
  void NoteForwarded(StepId step, NodeId agent);
  const std::map<StepId, std::vector<NodeId>>& forwarded() const {
    return forwarded_;
  }
  void ClearForwarded();

  // ---- event occurrence table ----
  /// Per-token occurrence tracking mirroring the packet's event entries.
  /// Keyed by interned EventToken (see rules/token.h).
  struct EventEntry {
    int64_t occ = 0;
    int64_t epoch = 0;
    bool valid = false;
  };

  /// Merges an event occurrence from a packet. Returns true iff the
  /// occurrence is *fresh* here (new token or higher occurrence number) —
  /// only then should the caller Post() it into the rule engine.
  bool MergeEvent(const EventOcc& event);

  /// Posts a locally generated occurrence (occ+1 at the current epoch).
  EventOcc PostLocalEvent(rules::EventToken token);
  EventOcc PostLocalEvent(std::string_view token);  ///< interns

  /// Invalidates step.done/step.fail events of steps downstream of
  /// `origin` (inclusive) that were produced under an epoch older than
  /// `new_epoch`. Returns the invalidated tokens so the caller can
  /// Invalidate() them in the rule engine. WF-level events are untouched.
  std::vector<rules::EventToken> InvalidateDownstream(StepId origin,
                                                      int64_t new_epoch);

  /// All currently valid event occurrences (packet payload), ordered by
  /// token name (the wire order of the original string-keyed table).
  std::vector<EventOcc> ValidEvents() const;

  bool EventValid(rules::EventToken token) const;
  bool EventValid(std::string_view token) const;

  // ---- relative ordering obligations ----
  /// `Links` is any range of RoLink (std::vector from wire messages,
  /// PacketRoList from packets).
  template <typename Links>
  void MergeRoLinks(const Links& links) {
    for (const RoLink& link : links) {
      if (std::find(ro_links_.begin(), ro_links_.end(), link) ==
          ro_links_.end()) {
        ro_links_.push_back(link);
      }
    }
  }
  const std::vector<RoLink>& ro_links() const { return ro_links_; }

  // ---- rollback dependency obligations ----
  template <typename Links>
  void MergeRdLinks(const Links& links) {
    for (const RdLink& link : links) {
      if (std::find(rd_links_.begin(), rd_links_.end(), link) ==
          rd_links_.end()) {
        rd_links_.push_back(link);
      }
    }
  }
  const std::vector<RdLink>& rd_links() const { return rd_links_; }

  // ---- input snapshots for OCR ----
  /// Resolves the declared inputs of `step` from the data table.
  std::map<std::string, Value> ResolveInputs(StepId step) const;

  /// Environment for evaluating a rule/arc condition: looks up the data
  /// table only.
  expr::FunctionEnvironment DataEnv() const;
  /// Environment for a step's OCR re-execution condition: current data
  /// table + the step's previous-execution snapshot.
  expr::FunctionEnvironment OcrEnv(StepId step) const;

  /// Applies an arriving packet: merge data, RO links, executed_by.
  /// (Events go to the rule engine, owned by the caller.)
  void MergePacket(const WorkflowPacket& packet);

  /// Builds the outgoing packet state: full data table, executed_by map
  /// and RO links (events are supplied by the caller).
  WorkflowPacket MakePacket(StepId target_step) const;

  const std::map<StepId, NodeId>& executed_by() const {
    return executed_by_;
  }
  void SetExecutedBy(StepId step, NodeId agent);

  // ---- coordination agent (placement) ----
  /// The coordination agent the front end placed this instance at;
  /// kInvalidNode until a packet (or the coordinating agent itself)
  /// establishes it. Sticky: first valid value wins.
  NodeId coordinator() const { return coordinator_; }
  void set_coordinator(NodeId node) {
    if (coordinator_ == kInvalidNode) coordinator_ = node;
  }

 private:
  InstanceId id_;
  model::CompiledSchemaPtr schema_;
  std::map<std::string, Value> data_;
  std::map<StepId, StepRecord> steps_;
  std::map<StepId, NodeId> executed_by_;
  std::map<StepId, std::vector<NodeId>> forwarded_;
  std::vector<RoLink> ro_links_;
  std::vector<RdLink> rd_links_;
  std::unordered_map<rules::EventToken, EventEntry> events_;
  int64_t exec_seq_ = 0;
  int64_t epoch_ = 0;
  bool halted_ = false;
  NodeId coordinator_ = kInvalidNode;
};

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_INSTANCE_H_
