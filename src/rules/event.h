#ifndef CREW_RULES_EVENT_H_
#define CREW_RULES_EVENT_H_

#include <string>
#include <string_view>

#include "common/ids.h"
#include "rules/token.h"

namespace crew::rules {

/// Events are string tokens scoped to a workflow instance. The tokens the
/// runtime generates mirror the paper's event vocabulary:
///   WF.start, WF.done, WF.abort          — workflow lifecycle
///   S<k>.done, S<k>.fail, S<k>.comp      — step lifecycle
///   RO:<instance>:S<k>.done              — cross-instance ordering event
///   ME:<resource>.free                   — mutual-exclusion release
///
/// Hot-path call sites use the *Token variants, which return the interned
/// EventToken without allocating (step tokens are served from a dense
/// per-suffix cache); the string variants remain for wire/debug output.
namespace event {

std::string WorkflowStart();
std::string WorkflowDone();
std::string WorkflowAbort();
std::string StepDone(StepId step);
std::string StepFail(StepId step);
std::string StepCompensated(StepId step);

EventToken WorkflowStartToken();
EventToken WorkflowDoneToken();
EventToken WorkflowAbortToken();
EventToken StepDoneToken(StepId step);
EventToken StepFailToken(StepId step);
EventToken StepCompensatedToken(StepId step);

/// Relative-ordering precondition: the named step of the *leading*
/// instance has completed. Delivered across instances via AddEvent().
std::string RelativeOrder(const InstanceId& leading, StepId step);
EventToken RelativeOrderToken(const InstanceId& leading, StepId step);

/// Mutual-exclusion token: the named logical resource is free.
std::string MutexFree(const std::string& resource);
EventToken MutexFreeToken(const std::string& resource);

/// Parses "S<k>.done" / "S<k>.fail" / "S<k>.comp"; returns kInvalidStep
/// if `token` is not a step event of the given suffix.
StepId ParseStepEvent(std::string_view token, std::string_view suffix);
StepId ParseStepEvent(EventToken token, std::string_view suffix);

}  // namespace event
}  // namespace crew::rules

#endif  // CREW_RULES_EVENT_H_
