#include "rules/token.h"

#include <mutex>

namespace crew::rules {

TokenTable::~TokenTable() {
  for (auto& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

EventToken TokenTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;  // raced: interned meanwhile
  uint32_t token = count_.load(std::memory_order_relaxed);
  uint32_t chunk = token >> kChunkBits;
  if (chunk >= kMaxChunks) return kInvalidEventToken;  // table full
  std::string* block = chunks_[chunk].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::string[kChunkSize];
    chunks_[chunk].store(block, std::memory_order_relaxed);
  }
  std::string& stored = block[token & (kChunkSize - 1)];
  stored.assign(name);
  index_.emplace(std::string_view(stored), token);
  // Publish: the release store orders the slot write before any reader
  // that observes the new count.
  count_.store(token + 1, std::memory_order_release);
  return token;
}

EventToken TokenTable::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidEventToken : it->second;
}

TokenTable& GlobalTokens() {
  static TokenTable* table = new TokenTable();  // leaked: outlives statics
  return *table;
}

}  // namespace crew::rules
