#ifndef CREW_RT_MAILBOX_H_
#define CREW_RT_MAILBOX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

namespace crew::rt {

/// Bounded multi-producer / single-consumer task queue: the inbox of one
/// worker cell in the live runtime. Producers are other nodes' workers
/// (message deliveries), the timer thread (due callbacks), and the
/// driver (admin posts).
///
/// Baseline is mutex + condvar; the consumer fast path spins on an
/// approximate size counter before parking, so a loaded mailbox never
/// pays a futex wait per task. FIFO order is total per mailbox, which is
/// stronger than the per-sender-pair in-order delivery the paper assumes.
class Mailbox {
 public:
  using Task = std::function<void()>;

  explicit Mailbox(size_t capacity, int spin_iterations = 256)
      : capacity_(capacity), spin_iterations_(spin_iterations) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues `task`, blocking while the mailbox is at capacity
  /// (backpressure on remote senders and admin drivers). Returns false —
  /// and drops the task — once the mailbox is closed.
  bool Push(Task task);

  /// Enqueues ignoring the capacity bound. Self-posts and timer
  /// deliveries use this: the owning worker blocking on its *own* full
  /// mailbox would deadlock the cell, and the timer thread must never
  /// stall behind one slow node. Returns false once closed.
  bool ForcePush(Task task);

  /// Takes the next task, marking the consumer busy until the next Pop
  /// (or PopDone) call. Spins briefly, then parks on the condvar.
  /// Returns false once the mailbox is closed *and* drained.
  bool Pop(Task* out);

  /// Marks the in-flight task finished without taking another (the
  /// worker calls Pop in a loop, which does this implicitly; PopDone is
  /// for the final task before exit).
  void PopDone();

  /// Closes the mailbox: producers are refused, the consumer drains what
  /// remains and then Pop returns false.
  void Close();

  /// True when nothing is queued and the consumer is between tasks.
  /// Acquires the mailbox lock, so a true result is also a memory
  /// barrier against everything the consumer wrote before going quiet.
  bool QuietNow() const;

  size_t size() const;

  // ---- counters for RuntimeStats ----
  /// Total tasks accepted (lock-free read; exact only when quiet).
  int64_t pushed() const {
    return pushed_total_.load(std::memory_order_acquire);
  }
  /// Times the consumer parked on the condvar (spin fast-path misses).
  int64_t parks() const;
  /// High-water mark of the queue depth.
  size_t max_depth() const;

 private:
  bool PushLocked(Task task, bool bounded);

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Task> queue_;
  const size_t capacity_;
  const int spin_iterations_;
  bool closed_ = false;
  bool executing_ = false;
  /// Mirror of queue_.size() the consumer can spin on without the lock.
  std::atomic<size_t> approx_size_{0};
  std::atomic<int64_t> pushed_total_{0};
  int64_t parks_ = 0;
  size_t max_depth_ = 0;
};

}  // namespace crew::rt

#endif  // CREW_RT_MAILBOX_H_
