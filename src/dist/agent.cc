#include "dist/agent.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>

#include "common/logging.h"
#include "rules/event.h"
#include "runtime/rulegen.h"
#include "runtime/wire.h"

namespace crew::dist {

using runtime::StepRecord;
using runtime::StepRunState;
using runtime::WorkflowState;

namespace {
/// Inverse of InstanceId::ToString ("WF2#4"). Returns an empty workflow
/// name on malformed keys.
InstanceId ParseInstanceKey(const std::string& key) {
  InstanceId id;
  size_t hash = key.rfind('#');
  if (hash == std::string::npos || hash == 0) return id;
  id.workflow = key.substr(0, hash);
  id.number = std::atoll(key.c_str() + hash + 1);
  return id;
}
}  // namespace

Agent::Agent(NodeId id, sim::Context* context,
             const runtime::ProgramRegistry* programs,
             const model::Deployment* deployment,
             const runtime::CoordinationSpec* coordination,
             std::vector<NodeId> all_agents, AgentOptions options)
    : id_(id),
      ctx_(context),
      programs_(programs),
      deployment_(deployment),
      coordination_(coordination),
      all_agents_(std::move(all_agents)),
      options_(std::move(options)),
      rng_(context->rng().Fork()),
      agdb_("agdb-" + std::to_string(id)) {
  ctx_->network().Register(id_, this);
  if (!options_.agdb_dir.empty()) {
    Status status = agdb_.Recover(options_.agdb_dir);
    if (status.ok()) status = agdb_.OpenDurable(options_.agdb_dir);
    if (!status.ok()) {
      CREW_LOG(Error) << "AGDB durability disabled for agent " << id_
                      << ": " << status.ToString();
    }
  }
}

void Agent::RegisterSchema(model::CompiledSchemaPtr schema) {
  schemas_[schema->schema().name()] = std::move(schema);
  // A recovered AGDB may hold executing instances of this schema whose
  // coordination state could not be rebuilt until now.
  RebuildFromAgdb();
}

model::CompiledSchemaPtr Agent::FindSchema(const std::string& workflow) {
  auto it = schemas_.find(workflow);
  return it == schemas_.end() ? nullptr : it->second;
}

Agent::AgentInstance* Agent::FindInstance(const InstanceId& instance) {
  auto it = instances_.find(instance);
  return it == instances_.end() ? nullptr : it->second.get();
}

Agent::AgentInstance* Agent::GetOrCreateInstance(
    const InstanceId& instance) {
  AgentInstance* existing = FindInstance(instance);
  if (existing != nullptr) return existing;
  model::CompiledSchemaPtr schema = FindSchema(instance.workflow);
  if (schema == nullptr) return nullptr;
  auto inst = std::make_unique<AgentInstance>();
  inst->schema = schema;
  inst->state = runtime::InstanceState(instance, schema);
  for (rules::Rule& rule : runtime::MakeAllRules(*schema)) {
    (void)inst->rules.AddRule(std::move(rule));
  }
  AgentInstance* raw = inst.get();
  instances_[instance] = std::move(inst);
  return raw;
}

void Agent::Send(NodeId to, const std::string& type,
                 const std::string& payload, sim::MsgCategory category) {
  if (to == id_) {
    // Self-delivery: defer through the event queue. This costs no
    // network message and — crucially — never re-enters handler state
    // that is still live on the call stack (a synchronous self-call
    // could, e.g., purge the instance the caller is working on).
    sim::Message self{id_, id_, type, payload, category};
    ctx_->queue().ScheduleAfter(0, [this, self]() {
      HandleMessage(self);
    });
    return;
  }
  sim::Message out{id_, to, type, payload, category};
  Status status = ctx_->network().Send(std::move(out));
  if (!status.ok()) {
    CREW_LOG(Error) << "agent " << id_ << " send failed: "
                    << status.ToString();
  }
}

NodeId Agent::CoordinationAgentOf(const AgentInstance& inst) const {
  // A placed instance carries its coordination agent in every packet;
  // the static eligible-first rule is the fallback for state that
  // predates the placement decision's arrival.
  NodeId placed = inst.state.coordinator();
  if (placed != kInvalidNode) return placed;
  const std::vector<NodeId>& eligible = deployment_->Eligible(
      inst.state.id().workflow, inst.schema->schema().start_step());
  return eligible.empty() ? kInvalidNode : eligible.front();
}

NodeId Agent::MutexArbiter(const runtime::MutexReq& req) const {
  if (req.critical_steps.empty()) return kInvalidNode;
  const auto& [workflow, step] = req.critical_steps.front();
  const std::vector<NodeId>& eligible =
      deployment_->Eligible(workflow, step);
  if (eligible.empty()) return kInvalidNode;
  return *std::min_element(eligible.begin(), eligible.end());
}

void Agent::HandleMessage(const sim::Message& message) {
  using namespace runtime::wi;
  const std::string& type = message.type;
  if (type == kStepExecute) return OnStepExecute(message);
  if (type == kWorkflowStart) return OnWorkflowStart(message);
  if (type == kStepCompleted) return OnStepCompleted(message);
  if (type == kWorkflowRollback) return OnWorkflowRollback(message);
  if (type == kHaltThread) return OnHaltThread(message);
  if (type == kCompensateSet) return OnCompensateSet(message);
  if (type == kCompensateThread) return OnCompensateThread(message);
  if (type == kStepCompensate) return OnStepCompensate(message);
  if (type == kWorkflowAbort) return OnWorkflowAbort(message);
  if (type == kWorkflowChangeInputs) return OnWorkflowChangeInputs(message);
  if (type == kInputsChanged) return OnInputsChanged(message);
  if (type == kWorkflowStatus) return OnWorkflowStatus(message);
  if (type == kStepStatus) return OnStepStatus(message);
  if (type == kStepStatusReply) return OnStepStatusReply(message);
  if (type == kStateInformation) return OnStateInformation(message);
  if (type == kAddRule) return OnAddRule(message);
  if (type == kAddEvent) return OnAddEvent(message);
  if (type == kAddPrecondition) return OnAddPrecondition(message);
  if (type == kPurgeInstances) return OnPurgeInstances(message);
  if (type == kStateInformationReply) return;  // load gossip; no action
  if (type == kWorkflowStatusReply) {
    // A child workflow we launched ended. Commits arrive as
    // StepCompleted; an *abort* reply means the parent step failed.
    Result<runtime::WorkflowStatusReplyMsg> parsed =
        runtime::WorkflowStatusReplyMsg::Parse(message.payload);
    if (!parsed.ok()) return;
    auto child = children_.find(parsed.value().instance);
    if (child == children_.end()) return;
    if (parsed.value().state != WorkflowState::kAborted) return;
    const auto& [parent_id, parent_step] = child->second;
    AgentInstance* parent = FindInstance(parent_id);
    children_.erase(child);
    if (parent == nullptr) return;
    StepRecord& record = parent->state.step_record(parent_step);
    if (!record.in_flight) return;
    record.in_flight = false;
    record.state = StepRunState::kFailed;
    OnStepFailedLocal(parent, parent_step);
    return;
  }
  CREW_LOG(Warn) << "agent " << id_ << " ignoring message type " << type;
}

// ---------------------------------------------------------------------
// Coordination-agent role
// ---------------------------------------------------------------------

void Agent::OnWorkflowStart(const sim::Message& message) {
  Result<runtime::WorkflowStartMsg> parsed =
      runtime::WorkflowStartMsg::Parse(message.payload);
  if (!parsed.ok()) {
    CREW_LOG(Error) << "bad WorkflowStart: " << parsed.status().ToString();
    return;
  }
  const runtime::WorkflowStartMsg& msg = parsed.value();
  model::CompiledSchemaPtr schema = FindSchema(msg.instance.workflow);
  if (schema == nullptr) {
    CREW_LOG(Error) << "agent " << id_ << ": unknown schema "
                    << msg.instance.workflow;
    return;
  }

  CoordInstance& coord = coordinating_[msg.instance];
  coord.schema = schema;
  coord.status = WorkflowState::kExecuting;
  coord.reply_to = msg.reply_to;
  coord.parent = msg.parent;
  coord.parent_step = msg.parent_step;
  coord.started_at = ctx_->now();
  summary_[msg.instance] = WorkflowState::kExecuting;
  // Per-node admission count: the cluster imbalance metric (max/mean
  // wf routed) is computed from these after the shard merge.
  ctx_->metrics().AddCounter("placement.wf.n" + std::to_string(id_), 1);
  // The coordination agent owns the instance's end-to-end span.
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.Begin(obs::SpanKind::kInstance, id_, msg.instance, kInvalidStep,
             "instance");
  }
  {
    storage::Row row;
    row.Set("status", Value(std::string("executing")));
    // Enough to rebuild the CoordInstance after a crash-restart.
    row.Set("reply_to", Value(static_cast<int64_t>(msg.reply_to)));
    if (!msg.parent.workflow.empty()) {
      row.Set("parent", Value(msg.parent.ToString()));
      row.Set("parent_step", Value(static_cast<int64_t>(msg.parent_step)));
    }
    agdb_.table("coord_summary").Put(msg.instance.ToString(), row);
  }

  AgentInstance* inst = GetOrCreateInstance(msg.instance);
  if (inst == nullptr) return;
  // The front end placed the instance here: record the decision so
  // every outgoing packet carries it.
  inst->state.set_coordinator(id_);
  for (const auto& [name, value] : msg.inputs) {
    inst->state.SetData(name, value);
  }
  inst->state.MergeRoLinks(msg.ro_links);
  inst->state.MergeRdLinks(msg.rd_links);
  ApplyRoGating(inst);

  runtime::EventOcc start =
      inst->state.PostLocalEvent(rules::event::WorkflowStartToken());
  inst->rules.Post(start.token);
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kNavigation,
                                options_.navigation_load);
  Pump(inst);
}

void Agent::OnStepCompleted(const sim::Message& message) {
  Result<runtime::StepCompletedMsg> parsed =
      runtime::StepCompletedMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::StepCompletedMsg& msg = parsed.value();

  // Nested-workflow completion: the child's coordination agent reports
  // to the parent-step executor (this agent). Complete the parent step.
  AgentInstance* parent = FindInstance(msg.instance);
  if (parent != nullptr && parent->schema->schema().has_step(msg.step) &&
      parent->schema->schema().step(msg.step).kind ==
          model::StepKind::kSubWorkflow) {
    StepRecord& record = parent->state.step_record(msg.step);
    if (!record.in_flight) return;  // stale (halted meanwhile)
    record.in_flight = false;
    parent->state.MergeData(msg.results);
    std::map<std::string, Value> marker;
    marker["S" + std::to_string(msg.step) + ".O1"] = Value(int64_t{1});
    parent->state.MergeData(marker);
    record.prev_outputs = msg.results;
    record.state = StepRunState::kDone;
    record.exec_seq = parent->state.NextExecSeq();
    record.epoch = parent->state.epoch();
    record.executed_by = id_;
    parent->state.SetExecutedBy(msg.step, id_);
    PersistStepRecord(msg.instance, msg.step);
    OnStepDoneLocal(parent, msg.step, record.attempts == 1);
    return;
  }

  auto it = coordinating_.find(msg.instance);
  if (it == coordinating_.end()) return;
  CoordInstance& coord = it->second;
  if (coord.status != WorkflowState::kExecuting) return;

  int group = coord.schema->terminal_group_of(msg.step);
  if (group < 0) return;
  int64_t& best = coord.groups_done[group];
  best = std::max(best, msg.epoch);
  {
    // Journal the commit-progress vector: a restarted coordination agent
    // must not wait forever for terminal groups that already reported.
    storage::Row row;
    row.Set("epoch", Value(best));
    agdb_.table("coord_groups")
        .Put(msg.instance.ToString() + "/G" + std::to_string(group), row);
  }
  for (const auto& [name, value] : msg.results) {
    coord.results[name] = value;
  }
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kNavigation,
                                options_.navigation_load);
  MaybeCommit(msg.instance);
}

void Agent::MaybeCommit(const InstanceId& instance) {
  auto it = coordinating_.find(instance);
  if (it == coordinating_.end()) return;
  CoordInstance& coord = it->second;
  if (coord.status != WorkflowState::kExecuting) return;
  if (static_cast<int>(coord.groups_done.size()) <
      coord.schema->num_terminal_groups()) {
    return;
  }
  // Committed: make it permanent and let everyone purge (§4.2).
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kInstance, id_, instance, kInvalidStep,
           "instance", 0, "committed");
  }
  coord.status = WorkflowState::kCommitted;
  summary_[instance] = WorkflowState::kCommitted;
  {
    storage::Row row;
    row.Set("status", Value(std::string("committed")));
    agdb_.table("coord_summary").Put(instance.ToString(), row);
  }
  archived_[instance] = coord.results;
  ++committed_count_;
  ctx_->metrics().AddCounter("wf.committed", 1);
  ctx_->metrics()
      .Latency("wf.sojourn_ticks")
      .Add(ctx_->now() - coord.started_at);

  if (!coord.parent.workflow.empty()) {
    // Nested workflow: hand the completion to the parent step's agent.
    runtime::StepCompletedMsg done;
    done.instance = coord.parent;
    done.step = coord.parent_step;
    done.epoch = 0;
    for (const auto& [name, value] : coord.results) {
      done.results["S" + std::to_string(coord.parent_step) + ".sub." +
                   name] = value;
    }
    Send(coord.reply_to, runtime::wi::kStepCompleted, done.Serialize(),
         sim::MsgCategory::kNormal);
  } else if (coord.reply_to != kInvalidNode) {
    runtime::WorkflowStatusReplyMsg reply;
    reply.instance = instance;
    reply.state = WorkflowState::kCommitted;
    Send(coord.reply_to, runtime::wi::kWorkflowStatusReply,
         reply.Serialize(), sim::MsgCategory::kAdmin);
  }
  BroadcastPurge(instance);
}

std::vector<NodeId> Agent::PurgeTargets(const InstanceId& instance) {
  if (options_.purge_broadcast) return all_agents_;
  model::CompiledSchemaPtr schema = FindSchema(instance.workflow);
  if (schema == nullptr) return all_agents_;
  // Every agent that could hold state for this instance is eligible
  // for some step: executors (ElectedExecutor picks among eligibles),
  // the coordination agent (eligible for the start step), mutex
  // arbiters (min eligible of a critical step), and RO registration
  // sites (eligible for the leading instance's lead step).
  std::set<NodeId> footprint;
  const model::Schema& s = schema->schema();
  for (StepId step = 1; step <= s.num_steps(); ++step) {
    for (NodeId agent : deployment_->Eligible(instance.workflow, step)) {
      footprint.insert(agent);
    }
  }
  return std::vector<NodeId>(footprint.begin(), footprint.end());
}

void Agent::BroadcastPurge(const InstanceId& instance) {
  runtime::PurgeInstancesMsg purge;
  purge.committed.push_back(instance);
  for (NodeId agent : PurgeTargets(instance)) {
    if (agent == id_) continue;
    Send(agent, runtime::wi::kPurgeInstances, purge.Serialize(),
         sim::MsgCategory::kAdmin);
  }
  // Apply locally too.
  ended_instances_.insert(instance);
  instances_.erase(instance);
  // Resolve registrations parked on the ended instance.
  for (auto it = ro_registrations_.begin();
       it != ro_registrations_.end();) {
    if (it->first.first == instance) {
      for (const auto& [registrant, token] : it->second) {
        runtime::AddEventMsg notify;
        notify.instance = it->first.first;
        notify.event_token = token;
        Send(registrant, runtime::wi::kAddEvent, notify.Serialize(),
             sim::MsgCategory::kCoordination);
      }
      it = ro_registrations_.erase(it);
    } else {
      ++it;
    }
  }
}

void Agent::OnPurgeInstances(const sim::Message& message) {
  Result<runtime::PurgeInstancesMsg> parsed =
      runtime::PurgeInstancesMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  for (const InstanceId& instance : parsed.value().committed) {
    ended_instances_.insert(instance);
    instances_.erase(instance);
    // Registrations on an ended instance: ordering trivially satisfied.
    auto it = ro_registrations_.begin();
    while (it != ro_registrations_.end()) {
      if (it->first.first == instance) {
        for (const auto& [registrant, token] : it->second) {
          runtime::AddEventMsg notify;
          notify.instance = instance;
          notify.event_token = token;
          Send(registrant, runtime::wi::kAddEvent, notify.Serialize(),
               sim::MsgCategory::kCoordination);
        }
        it = ro_registrations_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Agent::OnWorkflowStatus(const sim::Message& message) {
  Result<runtime::WorkflowStatusMsg> parsed =
      runtime::WorkflowStatusMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  runtime::WorkflowStatusReplyMsg reply;
  reply.instance = parsed.value().instance;
  reply.state = CoordinationStatus(parsed.value().instance);
  Send(parsed.value().reply_to, runtime::wi::kWorkflowStatusReply,
       reply.Serialize(), sim::MsgCategory::kAdmin);
}

runtime::WorkflowState Agent::CoordinationStatus(
    const InstanceId& instance) const {
  auto it = summary_.find(instance);
  return it == summary_.end() ? WorkflowState::kUnknown : it->second;
}

std::map<std::string, Value> Agent::ArchivedData(
    const InstanceId& instance) const {
  auto it = archived_.find(instance);
  return it == archived_.end() ? std::map<std::string, Value>{}
                               : it->second;
}

void Agent::OnWorkflowAbort(const sim::Message& message) {
  Result<runtime::WorkflowAbortMsg> parsed =
      runtime::WorkflowAbortMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const InstanceId& instance = parsed.value().instance;
  auto it = coordinating_.find(instance);
  if (it == coordinating_.end()) return;
  CoordInstance& coord = it->second;
  // "The abort request can be processed as long as the workflow has not
  // been committed" (§5.2).
  if (coord.status != WorkflowState::kExecuting) {
    if (coord.reply_to != kInvalidNode) {
      runtime::WorkflowStatusReplyMsg reply;
      reply.instance = instance;
      reply.state = coord.status;
      Send(coord.reply_to, runtime::wi::kWorkflowStatusReply,
           reply.Serialize(), sim::MsgCategory::kAdmin);
    }
    return;
  }
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kInstance, id_, instance, kInvalidStep,
           "instance", static_cast<int>(sim::MsgCategory::kAbort),
           "aborted");
  }
  coord.status = WorkflowState::kAborted;
  summary_[instance] = WorkflowState::kAborted;
  {
    storage::Row row;
    row.Set("status", Value(std::string("aborted")));
    agdb_.table("coord_summary").Put(instance.ToString(), row);
  }
  ++aborted_count_;
  ctx_->metrics().AddCounter("wf.aborted", 1);

  // Compensate the schema-designated steps. The coordination agent does
  // not know where each step executed, so it messages *all* eligible
  // agents (the paper's 2·w·pa·a cost).
  const model::Schema& schema = coord.schema->schema();
  int64_t abort_epoch = 0;
  AgentInstance* local = FindInstance(instance);
  if (local != nullptr) {
    abort_epoch = local->state.epoch() + 1;
  }
  for (StepId step = 1; step <= schema.num_steps(); ++step) {
    if (!schema.step(step).compensate_on_abort) continue;
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kAbort,
                                  options_.navigation_load);
    runtime::StepCompensateMsg comp;
    comp.instance = instance;
    comp.step = step;
    comp.epoch = abort_epoch;
    for (NodeId agent : deployment_->Eligible(instance.workflow, step)) {
      if (agent == id_) {
        // Local shortcut: compensate here if we executed it.
        AgentInstance* inst = FindInstance(instance);
        if (inst != nullptr &&
            inst->state.StepState(step) == StepRunState::kDone) {
          CompensateLocal(inst, step, []() {});
        }
        continue;
      }
      Send(agent, runtime::wi::kStepCompensate, comp.Serialize(),
           sim::MsgCategory::kAbort);
    }
  }

  // Halt all threads starting from the first step.
  if (local != nullptr) {
    LocalHalt(local, schema.start_step(), abort_epoch, /*propagate=*/true);
    local->mode = sim::MsgCategory::kAbort;
  }

  if (coord.reply_to != kInvalidNode) {
    runtime::WorkflowStatusReplyMsg reply;
    reply.instance = instance;
    reply.state = WorkflowState::kAborted;
    Send(coord.reply_to, runtime::wi::kWorkflowStatusReply,
         reply.Serialize(), sim::MsgCategory::kAdmin);
  }
  // Purge later so in-flight compensations still find their state.
  InstanceId copy = instance;
  ctx_->queue().ScheduleAfter(options_.purge_delay, [this, copy]() {
    BroadcastPurge(copy);
  });
}

void Agent::OnWorkflowChangeInputs(const sim::Message& message) {
  Result<runtime::WorkflowChangeInputsMsg> parsed =
      runtime::WorkflowChangeInputsMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::WorkflowChangeInputsMsg& msg = parsed.value();
  auto it = coordinating_.find(msg.instance);
  if (it == coordinating_.end()) return;
  CoordInstance& coord = it->second;
  if (coord.status != WorkflowState::kExecuting) return;

  // Earliest step (topologically) consuming a changed input.
  StepId origin = kInvalidStep;
  for (StepId step : coord.schema->topo_order()) {
    for (const std::string& input :
         coord.schema->schema().step(step).inputs) {
      if (msg.new_inputs.count(input) > 0) {
        origin = step;
        break;
      }
    }
    if (origin != kInvalidStep) break;
  }
  if (origin == kInvalidStep) {
    // No step consumes the changed items; only the data table changes.
    AgentInstance* inst = FindInstance(msg.instance);
    if (inst != nullptr) inst->state.MergeData(msg.new_inputs);
    return;
  }

  // Relay as InputsChanged to every agent eligible for the origin step
  // (the coordination agent cannot know which one executed it).
  runtime::WorkflowChangeInputsMsg relay = msg;
  relay.origin_step = origin;
  for (NodeId agent :
       deployment_->Eligible(msg.instance.workflow, origin)) {
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kInputChange,
                                  options_.navigation_load);
    Send(agent, runtime::wi::kInputsChanged, relay.Serialize(),
           sim::MsgCategory::kInputChange);
  }
}

void Agent::OnInputsChanged(const sim::Message& message) {
  Result<runtime::WorkflowChangeInputsMsg> parsed =
      runtime::WorkflowChangeInputsMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::WorkflowChangeInputsMsg& msg = parsed.value();
  AgentInstance* inst = FindInstance(msg.instance);
  if (inst == nullptr) return;
  inst->state.MergeData(msg.new_inputs);
  StepId origin = msg.origin_step;
  if (origin == kInvalidStep) return;
  const StepRecord* record = inst->state.FindStepRecord(origin);
  if (record == nullptr || (record->state != StepRunState::kDone &&
                            !record->in_flight)) {
    // Origin not executed here (or anywhere yet): new data will be used
    // naturally when the step runs.
    return;
  }
  // Behave as the rollback target agent: halt downstream and re-execute
  // with the OCR strategy.
  inst->mode = sim::MsgCategory::kInputChange;
  int64_t new_epoch = inst->state.epoch() + 1;
  LocalHalt(inst, origin, new_epoch, /*propagate=*/true);
  Pump(inst);
}

// ---------------------------------------------------------------------
// Execution-agent role: packets, rules, programs
// ---------------------------------------------------------------------

void Agent::OnStepExecute(const sim::Message& message) {
  Result<runtime::StepExecuteMsg> parsed =
      runtime::StepExecuteMsg::Parse(message.payload);
  if (!parsed.ok()) {
    CREW_LOG(Error) << "bad StepExecute: " << parsed.status().ToString();
    return;
  }
  const runtime::WorkflowPacket& packet = parsed.value().packet;
  if (ended_instances_.count(packet.instance) > 0) return;
  AgentInstance* inst = GetOrCreateInstance(packet.instance);
  if (inst == nullptr) return;
  if (packet.epoch < inst->state.epoch()) return;  // stale epoch

  inst->state.MergePacket(packet);
  for (const runtime::EventOcc& event : packet.events) {
    if (inst->state.MergeEvent(event)) {
      inst->rules.Post(event.token);
    }
  }
  ApplyRoGating(inst);
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kNavigation,
                                options_.navigation_load);

  // Comp-dep-set resume: the chain finished and handed execution back.
  if (inst->awaiting_comp_resume.count(packet.target_step) > 0) {
    inst->awaiting_comp_resume.erase(packet.target_step);
    const model::Step& spec =
        inst->schema->schema().step(packet.target_step);
    AgentInstance* captured = inst;
    StepId step = packet.target_step;
    CompensateLocal(inst, step, [this, captured, step, spec]() {
      RunProgramLocal(captured, step,
                      runtime::DecideOcr(spec, captured->state) ==
                              runtime::OcrDecision::kPartialCompIncrReexec
                          ? spec.ocr.incremental_reexec_fraction
                          : 1.0);
    });
    return;
  }

  Pump(inst);

  // Failure-protocol safety net: a re-requested step's firing rule may
  // already have consumed its trigger stamps at this agent (the packet
  // was fanned out earlier and the elected executor then died). If the
  // target step should run, is not running anywhere we know of, and we
  // are the (living) elected executor, start it directly.
  StepId target = packet.target_step;
  if (inst->schema->schema().has_step(target)) {
    const StepRecord* record = inst->state.FindStepRecord(target);
    bool done_now =
        inst->state.EventValid(rules::event::StepDoneToken(target));
    if (!done_now && (record == nullptr || !record->in_flight) &&
        inst->starting.count(target) == 0 &&
        ElectedExecutor(inst, target)) {
      bool triggers_ready = false;
      expr::FunctionEnvironment env = inst->state.DataEnv();
      for (const rules::Rule& generated :
           runtime::MakeStepRules(*inst->schema, target)) {
        // Consult the *live* rule: AddPrecondition may have appended
        // ordering events that must also be satisfied.
        const rules::Rule* live = inst->rules.FindRule(generated.id);
        const rules::Rule& rule = live != nullptr ? *live : generated;
        bool all_valid = true;
        for (rules::EventToken token : rule.events) {
          if (!inst->state.EventValid(token)) {
            all_valid = false;
            break;
          }
        }
        if (all_valid && expr::EvaluateCondition(rule.condition, env)) {
          triggers_ready = true;
          break;
        }
      }
      if (triggers_ready) StartStepLocal(inst, target);
    }
  }

  SchedulePendingCheck(packet.instance);
}

void Agent::Pump(AgentInstance* inst) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    expr::FunctionEnvironment env = inst->state.DataEnv();
    std::vector<rules::RuleAction> actions =
        inst->rules.CollectFireable(env);
    std::set<StepId> dispatched;
    for (const rules::RuleAction& action : actions) {
      if (action.kind != rules::ActionKind::kExecuteStep) continue;
      if (!dispatched.insert(action.step).second) continue;
      if (!ElectedExecutor(inst, action.step)) continue;
      progressed = true;
      StartStepLocal(inst, action.step);
    }
  }
}

bool Agent::ElectedExecutor(AgentInstance* inst, StepId step) {
  const std::vector<NodeId>& eligible =
      deployment_->Eligible(inst->state.id().workflow, step);
  if (eligible.empty()) return false;
  // The start step always runs at the coordination agent — it is the
  // only agent that received WorkflowStart (§4.1).
  if (step == inst->schema->schema().start_step()) {
    return CoordinationAgentOf(*inst) == id_;
  }
  if (eligible.size() == 1) return eligible[0] == id_;

  // OCR locality: a step re-executes at the agent that holds its history.
  auto it = inst->state.executed_by().find(step);
  if (it != inst->state.executed_by().end()) {
    if (std::find(eligible.begin(), eligible.end(), it->second) !=
        eligible.end()) {
      if (!ctx_->network().IsNodeDown(it->second)) {
        return it->second == id_;
      }
    }
  }

  // Deterministic leader election among the eligible agents: everyone
  // computes the same pick, skipping down agents (§4.2 / §5.2). Optional
  // StateInformation probes model the paper's load exchange.
  if (options_.election_probes) {
    for (NodeId other : eligible) {
      if (other == id_) continue;
      runtime::StateInformationMsg probe;
      probe.reply_to = id_;
      probe.instance = inst->state.id();
      probe.step = step;
      Send(other, runtime::wi::kStateInformation, probe.Serialize(),
           sim::MsgCategory::kElection);
    }
  }
  std::vector<NodeId> up;
  for (NodeId agent : eligible) {
    if (!ctx_->network().IsNodeDown(agent)) up.push_back(agent);
  }
  if (up.empty()) up = eligible;
  size_t index =
      static_cast<size_t>(inst->state.id().number + step) % up.size();
  return up[index] == id_;
}

void Agent::StartStepLocal(AgentInstance* inst, StepId step) {
  if (ended_instances_.count(inst->state.id()) > 0) return;
  StepRecord& record = inst->state.step_record(step);
  if (record.in_flight || inst->starting.count(step) > 0 ||
      inst->awaiting_comp_resume.count(step) > 0) {
    return;
  }
  inst->starting.insert(step);
  const model::Step& spec = inst->schema->schema().step(step);

  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.Begin(obs::SpanKind::kStep, id_, inst->state.id(), step, "step",
             static_cast<int>(inst->mode));
  }

  if (!AcquireMutexesDistributed(inst, step)) {
    if (tr.enabled()) {
      tr.Begin(obs::SpanKind::kCoord, id_, inst->state.id(), step,
               "mutex.wait",
               static_cast<int>(sim::MsgCategory::kCoordination));
    }
    inst->starting.erase(step);
    return;  // resumed when the grant arrives
  }
  if (tr.enabled()) {
    // Closes a grant-resume wait; dropped when the step never blocked.
    tr.End(obs::SpanKind::kCoord, id_, inst->state.id(), step,
           "mutex.wait");
  }

  if (spec.kind == model::StepKind::kSubWorkflow) {
    LaunchSubWorkflow(inst, step);
    return;
  }

  runtime::OcrDecision decision = runtime::DecideOcr(spec, inst->state);
  if (tr.enabled()) {
    tr.Instant(obs::SpanKind::kOcr, id_, inst->state.id(), step,
               std::string("ocr.") + runtime::OcrDecisionName(decision), 0,
               {}, static_cast<int>(sim::MsgCategory::kFailureHandling));
    if (decision == runtime::OcrDecision::kReuse) {
      tr.Instant(obs::SpanKind::kOcr, id_, inst->state.id(), step,
                 "ocr.result-reused", 0, {},
                 static_cast<int>(sim::MsgCategory::kFailureHandling));
    }
  }
  switch (decision) {
    case runtime::OcrDecision::kReuse: {
      inst->starting.erase(step);
      record.epoch = inst->state.epoch();
      OnStepDoneLocal(inst, step, /*first_execution=*/false);
      return;
    }
    case runtime::OcrDecision::kFirstExecution: {
      RunProgramLocal(inst, step, 1.0);
      return;
    }
    case runtime::OcrDecision::kPartialCompIncrReexec:
    case runtime::OcrDecision::kFullCompReexec: {
      if (!spec.ocr.compensate_before_reexec) {
        RunProgramLocal(inst, step, 1.0);  // plain loop iteration
        return;
      }
      double exec_fraction =
          decision == runtime::OcrDecision::kPartialCompIncrReexec
              ? spec.ocr.incremental_reexec_fraction
              : 1.0;
      // Compensation dependent sets: members executed after this step
      // are compensated first, in reverse order, by a CompensateSet
      // chain over the agents that executed them (§5.2).
      // Build the StepList from the schema's declared set order — the
      // paper's CompensateSet protocol: each visited agent checks its own
      // record and skips members that never executed (§5.2).
      std::vector<StepId> chain;
      for (int set_index : inst->schema->comp_dep_sets_of(step)) {
        const model::CompDepSet& set =
            inst->schema->schema().comp_dep_sets()[set_index];
        bool after = false;
        for (StepId member : set.steps) {
          if (member == step) {
            after = true;
            continue;
          }
          if (after) chain.push_back(member);
        }
      }
      if (chain.empty()) {
        AgentInstance* captured = inst;
        CompensateLocal(inst, step, [this, captured, step, exec_fraction]() {
          RunProgramLocal(captured, step, exec_fraction);
        });
        return;
      }
      // Reverse declared order: last member first.
      std::reverse(chain.begin(), chain.end());
      runtime::CompensateSetMsg msg;
      msg.instance = inst->state.id();
      msg.origin_step = step;
      msg.remaining = chain;
      msg.epoch = inst->state.epoch();
      msg.resume_agent = id_;
      msg.resume = inst->state.MakePacket(step);
      inst->awaiting_comp_resume.insert(step);
      inst->starting.erase(step);
      NodeId first = kInvalidNode;
      auto by = inst->state.executed_by().find(chain.front());
      if (by != inst->state.executed_by().end()) {
        first = by->second;
      } else {
        const std::vector<NodeId>& eligible = deployment_->Eligible(
            inst->state.id().workflow, chain.front());
        if (!eligible.empty()) first = eligible.front();
      }
      if (first == kInvalidNode) {
        inst->awaiting_comp_resume.erase(step);
        return;
      }
      ctx_->metrics().AddLoad(
          id_, sim::LoadCategory::kFailureHandling,
          options_.navigation_load);
      Send(first, runtime::wi::kCompensateSet, msg.Serialize(),
             sim::MsgCategory::kFailureHandling);
      return;
    }
  }
}

void Agent::RunProgramLocal(AgentInstance* inst, StepId step,
                            double cost_fraction) {
  const model::Step& spec = inst->schema->schema().step(step);
  StepRecord& record = inst->state.step_record(step);
  inst->starting.erase(step);
  record.in_flight = true;
  record.attempts += 1;

  runtime::ProgramContext context;
  context.instance = inst->state.id();
  context.step = step;
  context.attempt = record.attempts;
  context.inputs = inst->state.ResolveInputs(step);
  context.rng = &rng_;

  Result<runtime::ProgramOutcome> outcome =
      programs_->Run(spec.program, context);
  bool success = outcome.ok() && outcome.value().success;
  int64_t cost = 0;
  std::map<std::string, Value> outputs;
  if (outcome.ok()) {
    outputs = outcome.value().outputs;
    int64_t base =
        outcome.value().cost > 0 ? outcome.value().cost : spec.cost;
    cost = static_cast<int64_t>(base * cost_fraction);
  }

  ++active_programs_;
  InstanceId instance = inst->state.id();
  int64_t epoch = inst->state.epoch();
  std::map<std::string, Value> inputs_snapshot = context.inputs;
  {
    obs::Tracer& tr = ctx_->tracer();
    if (tr.enabled()) {
      tr.Begin(obs::SpanKind::kProgram, id_, instance, step, "program", 0,
               spec.program);
    }
  }
  ctx_->queue().ScheduleAfter(
      options_.exec_latency,
      [this, instance, step, epoch, success, cost, outputs,
       inputs_snapshot]() {
        --active_programs_;
        obs::Tracer& tr = ctx_->tracer();
        if (tr.enabled()) {
          tr.End(obs::SpanKind::kProgram, id_, instance, step, "program", 0,
                 success ? "" : "failed");
        }
        AgentInstance* inst = FindInstance(instance);
        if (inst == nullptr) return;
        StepRecord& record = inst->state.step_record(step);
        if (ctx_->network().IsNodeDown(id_)) {
          // This agent crashed mid-step: the work is lost. The
          // predecessor-failure protocol (§5.2) recovers query steps at
          // other agents; update steps resume when we come back and the
          // step is re-driven.
          record.in_flight = false;
          return;
        }
        if (inst->state.epoch() != epoch) return;  // halted meanwhile
        if (!record.in_flight) return;  // reset by a halt
        record.in_flight = false;
        ctx_->metrics().AddLoad(id_, sim::LoadCategory::kProgram,
                                      cost);
        if (success) {
          const std::string prefix = "S" + std::to_string(step) + ".";
          std::map<std::string, Value> qualified;
          for (const auto& [name, value] : outputs) {
            qualified[prefix + name] = value;
          }
          inst->state.MergeData(qualified);
          record.prev_inputs = inputs_snapshot;
          record.prev_outputs = qualified;
          record.state = StepRunState::kDone;
          record.exec_seq = inst->state.NextExecSeq();
          record.epoch = inst->state.epoch();
          record.executed_by = id_;
          inst->state.SetExecutedBy(step, id_);
          PersistStepRecord(instance, step);
          OnStepDoneLocal(inst, step, record.attempts == 1);
        } else {
          record.state = StepRunState::kFailed;
          PersistStepRecord(instance, step);
          OnStepFailedLocal(inst, step);
        }
      });
}

void Agent::PersistStepRecord(const InstanceId& instance, StepId step) {
  const AgentInstance* inst =
      const_cast<Agent*>(this)->FindInstance(instance);
  if (inst == nullptr) return;
  const StepRecord* record = inst->state.FindStepRecord(step);
  if (record == nullptr) return;
  storage::Row row;
  row.Set("state",
          Value(std::string(runtime::StepRunStateName(record->state))));
  row.Set("attempts", Value(static_cast<int64_t>(record->attempts)));
  row.Set("epoch", Value(record->epoch));
  agdb_.table("steps").Put(
      instance.ToString() + "/S" + std::to_string(step), row);
}

void Agent::RebuildFromAgdb() {
  const storage::Table* summary = agdb_.FindTable("coord_summary");
  if (summary == nullptr) return;
  std::vector<InstanceId> rebuilt_executing;
  for (const auto& [key, row] : summary->rows()) {
    InstanceId instance = ParseInstanceKey(key);
    if (instance.workflow.empty()) continue;
    if (summary_.count(instance) != 0) continue;  // live or already rebuilt
    auto status = row.Get("status");
    if (!status || !status->is_string()) continue;
    WorkflowState state = runtime::ParseWorkflowState(status->AsString());
    if (state == WorkflowState::kExecuting) {
      // Needs its schema to re-arm the commit decision; retried on the
      // next RegisterSchema if it is not known yet.
      model::CompiledSchemaPtr schema = FindSchema(instance.workflow);
      if (schema == nullptr) continue;
      CoordInstance& coord = coordinating_[instance];
      coord.schema = std::move(schema);
      coord.status = WorkflowState::kExecuting;
      if (auto reply = row.Get("reply_to"); reply && reply->is_int()) {
        coord.reply_to = static_cast<NodeId>(reply->AsInt());
      }
      if (auto parent = row.Get("parent"); parent && parent->is_string()) {
        coord.parent = ParseInstanceKey(parent->AsString());
        if (auto pstep = row.Get("parent_step"); pstep && pstep->is_int()) {
          coord.parent_step = static_cast<StepId>(pstep->AsInt());
        }
      }
      rebuilt_executing.push_back(instance);
    } else if (state == WorkflowState::kCommitted) {
      ++committed_count_;
    } else if (state == WorkflowState::kAborted) {
      ++aborted_count_;
    }
    summary_[instance] = state;
  }
  if (const storage::Table* groups = agdb_.FindTable("coord_groups")) {
    for (const auto& [key, row] : groups->rows()) {
      size_t sep = key.rfind("/G");
      if (sep == std::string::npos) continue;
      InstanceId instance = ParseInstanceKey(key.substr(0, sep));
      auto it = coordinating_.find(instance);
      if (it == coordinating_.end() ||
          it->second.status != WorkflowState::kExecuting) {
        continue;
      }
      int group = std::atoi(key.c_str() + sep + 2);
      auto epoch = row.Get("epoch");
      int64_t value = epoch && epoch->is_int() ? epoch->AsInt() : 0;
      int64_t& best = it->second.groups_done[group];
      best = std::max(best, value);
    }
  }
  // A crash between the last group report and the commit record leaves a
  // fully-reported instance executing in the log; decide it now.
  for (const InstanceId& instance : rebuilt_executing) {
    MaybeCommit(instance);
  }
}

void Agent::RecoverFromLog() {
  if (!agdb_.durable()) return;
  // Everything here dies with the process; the AGDB is what survives.
  instances_.clear();
  coordinating_.clear();
  summary_.clear();
  archived_.clear();
  ro_registrations_.clear();
  ended_instances_.clear();
  locks_.clear();
  children_.clear();
  polls_.clear();
  last_poll_.clear();
  committed_count_ = 0;
  aborted_count_ = 0;
  active_programs_ = 0;
  Result<int64_t> replayed = agdb_.RestartRecover(options_.agdb_dir);
  if (!replayed.ok()) {
    CREW_LOG(Error) << "agent " << id_ << " restart recovery failed: "
                    << replayed.status().ToString();
    return;
  }
  RebuildFromAgdb();
}

void Agent::OnStepDoneLocal(AgentInstance* inst, StepId step,
                            bool first_execution) {
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kStep, id_, inst->state.id(), step, "step", 0,
           "done");
  }
  runtime::EventOcc done =
      inst->state.PostLocalEvent(rules::event::StepDoneToken(step));
  inst->rules.Post(done.token);

  // Passing the re-executed region: a first-ever completion means the
  // instance's traffic is normal execution again. (Reused results keep
  // the recovery category: they are part of the rollback revisit.)
  if (first_execution) {
    inst->mode = sim::MsgCategory::kNormal;
  }

  ReleaseMutexesDistributed(inst, step);
  NotifyRoRegistrants(inst->state.id(), step);

  // Coordination load: every completion checks the class requirements.
  int requirements =
      coordination_->RequirementCount(inst->state.id().workflow);
  if (requirements > 0) {
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                  options_.navigation_load * requirements);
  }

  if (inst->schema->is_choice_split(step)) {
    HandleBranchSwitch(inst, step);
  }

  // Rollback dependency: this instance *leads* rd-linked instances; a
  // completion never triggers them, only rollbacks do (see
  // OnWorkflowRollback / LocalHalt).

  if (inst->state.halted()) return;  // thread quiesced by a halt probe

  if (inst->schema->terminal_group_of(step) >= 0) {
    // Termination-agent role: report to the coordination agent.
    runtime::StepCompletedMsg msg;
    msg.instance = inst->state.id();
    msg.step = step;
    msg.epoch = inst->state.epoch();
    msg.results = inst->state.data();
    NodeId coordination_agent = CoordinationAgentOf(*inst);
    Send(coordination_agent, runtime::wi::kStepCompleted,
           msg.Serialize(), sim::MsgCategory::kNormal);
  }
  ForwardPackets(inst, step);
  Pump(inst);
}

void Agent::ForwardPackets(AgentInstance* inst, StepId completed_step) {
  // Control arcs: forward + back edges. Back-edge conditions are
  // evaluated by the receiving rule, so packets flow unconditionally.
  for (const model::ControlArc* arc :
       inst->schema->forward_out(completed_step)) {
    SendPacketTo(inst, arc->to,
                 deployment_->Eligible(inst->state.id().workflow,
                                       arc->to));
  }
  for (const model::ControlArc* arc :
       inst->schema->back_out(completed_step)) {
    SendPacketTo(inst, arc->to,
                 deployment_->Eligible(inst->state.id().workflow,
                                       arc->to));
  }
  // Declared data arcs: cross-branch data flow rides the same packets.
  for (const model::DataArc& arc : inst->schema->schema().data_arcs()) {
    if (arc.from != completed_step) continue;
    SendPacketTo(inst, arc.to,
                 deployment_->Eligible(inst->state.id().workflow,
                                       arc.to));
  }
}

void Agent::SendPacketTo(AgentInstance* inst, StepId target,
                         const std::vector<NodeId>& eligible) {
  if (eligible.empty()) return;
  runtime::WorkflowPacket packet = inst->state.MakePacket(target);
  std::string payload = packet.Serialize();
  for (NodeId agent : eligible) {
    inst->state.NoteForwarded(target, agent);
    // Self-delivery is deferred by Send and costs no network message.
    Send(agent, runtime::wi::kStepExecute, payload, inst->mode);
  }
}

void Agent::HandleBranchSwitch(AgentInstance* inst, StepId split_step) {
  expr::FunctionEnvironment env = inst->state.DataEnv();
  StepId chosen = kInvalidStep;
  const model::ControlArc* else_arc = nullptr;
  for (const model::ControlArc* arc :
       inst->schema->forward_out(split_step)) {
    if (arc->is_else) {
      else_arc = arc;
      continue;
    }
    if (arc->condition && expr::EvaluateCondition(arc->condition, env)) {
      chosen = arc->to;
      break;
    }
  }
  if (chosen == kInvalidStep && else_arc != nullptr) chosen = else_arc->to;
  if (chosen == kInvalidStep) return;

  auto it = inst->taken_branch.find(split_step);
  if (it != inst->taken_branch.end() && it->second != chosen) {
    // Different branch on re-execution: compensate the abandoned branch
    // with a CompensateThread walk up to the confluence (§5.2).
    StepId old_entry = it->second;
    StepId confluence = kInvalidStep;
    for (StepId candidate : inst->schema->topo_order()) {
      if (candidate != old_entry &&
          inst->schema->IsDownstream(old_entry, candidate) &&
          inst->schema->IsDownstream(chosen, candidate)) {
        confluence = candidate;
        break;
      }
    }
    runtime::CompensateThreadMsg msg;
    msg.instance = inst->state.id();
    msg.step = old_entry;
    msg.until_join = confluence;
    msg.epoch = inst->state.epoch();
    NodeId target = kInvalidNode;
    auto by = inst->state.executed_by().find(old_entry);
    if (by != inst->state.executed_by().end()) {
      target = by->second;
    } else {
      const std::vector<NodeId>& eligible =
          deployment_->Eligible(inst->state.id().workflow, old_entry);
      if (!eligible.empty()) target = eligible.front();
    }
    if (target != kInvalidNode) {
      ctx_->metrics().AddLoad(
          id_, sim::LoadCategory::kFailureHandling,
          options_.navigation_load);
      Send(target, runtime::wi::kCompensateThread, msg.Serialize(),
             sim::MsgCategory::kFailureHandling);
    }
  }
  inst->taken_branch[split_step] = chosen;
}

// ---------------------------------------------------------------------
// Failure handling: rollback, halts, compensation
// ---------------------------------------------------------------------

void Agent::OnStepFailedLocal(AgentInstance* inst, StepId step) {
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    tr.End(obs::SpanKind::kStep, id_, inst->state.id(), step, "step",
           static_cast<int>(sim::MsgCategory::kFailureHandling), "failed");
    tr.Instant(obs::SpanKind::kOcr, id_, inst->state.id(), step,
               "step.failed", 0, {},
               static_cast<int>(sim::MsgCategory::kFailureHandling));
  }
  runtime::EventOcc fail =
      inst->state.PostLocalEvent(rules::event::StepFailToken(step));
  inst->rules.Post(fail.token);
  ReleaseMutexesDistributed(inst, step);

  const model::Step& spec = inst->schema->schema().step(step);
  const StepRecord* record = inst->state.FindStepRecord(step);
  if ((record != nullptr &&
       record->attempts >= spec.failure.max_attempts) ||
      spec.failure.rollback_to == kInvalidStep) {
    // Give up: ask the coordination agent to abort the workflow.
    runtime::WorkflowAbortMsg abort;
    abort.instance = inst->state.id();
    NodeId coordination_agent = CoordinationAgentOf(*inst);
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kFailureHandling,
                                  options_.navigation_load);
    Send(coordination_agent, runtime::wi::kWorkflowAbort,
           abort.Serialize(), sim::MsgCategory::kAbort);
    return;
  }

  // Partial rollback (§5.2): notify the agent that executed the rollback
  // target; none of the other agents are told directly.
  StepId origin = spec.failure.rollback_to;
  runtime::WorkflowRollbackMsg msg;
  msg.instance = inst->state.id();
  msg.origin_step = origin;
  msg.new_epoch = inst->state.epoch() + 1;
  msg.state = inst->state.MakePacket(origin);
  NodeId target = kInvalidNode;
  auto by = inst->state.executed_by().find(origin);
  if (by != inst->state.executed_by().end()) {
    target = by->second;
  } else {
    const std::vector<NodeId>& eligible =
        deployment_->Eligible(inst->state.id().workflow, origin);
    if (!eligible.empty()) target = eligible.front();
  }
  if (target == kInvalidNode) return;
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kFailureHandling,
                                options_.navigation_load);
  inst->mode = sim::MsgCategory::kFailureHandling;
  Send(target, runtime::wi::kWorkflowRollback, msg.Serialize(),
         sim::MsgCategory::kFailureHandling);
}

void Agent::OnWorkflowRollback(const sim::Message& message) {
  Result<runtime::WorkflowRollbackMsg> parsed =
      runtime::WorkflowRollbackMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::WorkflowRollbackMsg& msg = parsed.value();
  AgentInstance* inst = GetOrCreateInstance(msg.instance);
  if (inst == nullptr) return;
  if (msg.new_epoch <= inst->state.epoch() &&
      inst->last_halt_epoch >= msg.new_epoch) {
    return;  // stale rollback
  }
  inst->state.MergePacket(msg.state);
  for (const runtime::EventOcc& event : msg.state.events) {
    if (inst->state.MergeEvent(event)) {
      inst->rules.Post(event.token);
    }
  }
  if (inst->mode == sim::MsgCategory::kNormal) {
    inst->mode = message.category;
  }

  // Rollback dependencies: this instance leads rd-linked dependents.
  for (const runtime::RdLink& link : inst->state.rd_links()) {
    if (msg.origin_step > link.my_step) continue;
    obs::Tracer& tr = ctx_->tracer();
    if (tr.enabled()) {
      tr.Instant(obs::SpanKind::kCoord, id_, inst->state.id(),
                 msg.origin_step, "rd.trigger", link.other_step,
                 "dependent=" + link.other.ToString(),
                 static_cast<int>(sim::MsgCategory::kCoordination));
    }
    runtime::WorkflowRollbackMsg dep;
    dep.instance = link.other;
    dep.origin_step = link.other_step;
    dep.new_epoch = 0;  // dependent's agent computes its own epoch
    dep.state.instance = link.other;
    const std::vector<NodeId>& eligible =
        deployment_->Eligible(link.other.workflow, link.other_step);
    for (NodeId agent : eligible) {
      ctx_->metrics().AddLoad(
          id_, sim::LoadCategory::kCoordination, options_.navigation_load);
      if (agent == id_) continue;
      Send(agent, runtime::wi::kWorkflowRollback, dep.Serialize(),
           sim::MsgCategory::kCoordination);
    }
  }

  int64_t new_epoch =
      std::max(msg.new_epoch, inst->state.epoch() + 1);
  if (msg.new_epoch == 0) {
    // RD-induced rollback: only meaningful if we executed the origin and
    // the instance progressed since its last rollback (this breaks RD
    // rings and duplicate fan-out deliveries).
    const StepRecord* record =
        inst->state.FindStepRecord(msg.origin_step);
    if (record == nullptr || record->state != StepRunState::kDone) {
      return;
    }
    if (inst->last_rd_rollback_seq == inst->state.exec_seq()) return;
    inst->last_rd_rollback_seq = inst->state.exec_seq();
  } else if (!coordination_->RollbackDepsLeading(msg.instance.workflow)
                  .empty()) {
    // This class leads rollback dependencies: tell the front end (which
    // holds the global instance registry) so it can roll the dependent
    // instances back (§3). RD-induced rollbacks do not re-notify.
    runtime::AddEventMsg notice;
    notice.instance = msg.instance;
    notice.event_token = "rd.rollback:S" + std::to_string(msg.origin_step);
    Send(kFrontEndNode, runtime::wi::kAddEvent, notice.Serialize(),
         sim::MsgCategory::kCoordination);
  }
  LocalHalt(inst, msg.origin_step, new_epoch, /*propagate=*/true);
  Pump(inst);
}

void Agent::LocalHalt(AgentInstance* inst, StepId origin,
                      int64_t new_epoch, bool propagate) {
  if (inst->last_halt_epoch >= new_epoch) return;
  inst->last_halt_epoch = new_epoch;
  if (new_epoch > inst->state.epoch()) inst->state.set_epoch(new_epoch);

  // Invalidate old-epoch events of downstream steps, discard pending
  // rule progress, and re-arm their rules (§5.2's two-pronged strategy).
  std::vector<rules::EventToken> invalidated =
      inst->state.InvalidateDownstream(origin, new_epoch);
  for (rules::EventToken token : invalidated) {
    inst->rules.Invalidate(token);
  }
  const model::CompiledSchema* schema = inst->schema.get();
  inst->rules.ResetFiringIf([schema, origin](const rules::Rule& rule) {
    return rule.action.kind == rules::ActionKind::kExecuteStep &&
           schema->IsDownstream(origin, rule.action.step);
  });
  int64_t touched_steps = 0;
  for (StepId step : schema->downstream_including(origin)) {
    const StepRecord* existing = inst->state.FindStepRecord(step);
    bool touched = existing != nullptr &&
                   (existing->state != StepRunState::kUnknown ||
                    existing->in_flight);
    StepRecord* record = &inst->state.step_record(step);
    record->in_flight = false;
    inst->starting.erase(step);
    if (touched) {
      ++touched_steps;
      // Recovery work is charged per step actually rolled back (the
      // paper's l·r accounting), not per reachable step.
      ctx_->metrics().AddLoad(
          id_, sim::LoadCategory::kFailureHandling,
          options_.navigation_load);
    }
  }
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    // One "halt" instant per node touched by the rollback; its value is
    // that node's share of rolled-back steps (rollback-depth histogram).
    tr.Instant(obs::SpanKind::kOcr, id_, inst->state.id(), origin, "halt",
               touched_steps,
               "origin=S" + std::to_string(origin) +
                   " epoch=" + std::to_string(new_epoch),
               static_cast<int>(sim::MsgCategory::kFailureHandling));
  }

  if (!propagate) return;
  // Chase the packets we already forwarded for downstream steps.
  runtime::HaltThreadMsg halt;
  halt.instance = inst->state.id();
  halt.origin_step = origin;
  halt.new_epoch = new_epoch;
  for (const auto& [step, agents] : inst->state.forwarded()) {
    if (!schema->IsDownstream(origin, step)) continue;
    for (NodeId agent : agents) {
      if (agent == id_) continue;
      Send(agent, runtime::wi::kHaltThread, halt.Serialize(),
           sim::MsgCategory::kFailureHandling);
    }
  }
}

void Agent::OnHaltThread(const sim::Message& message) {
  Result<runtime::HaltThreadMsg> parsed =
      runtime::HaltThreadMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::HaltThreadMsg& msg = parsed.value();
  AgentInstance* inst = FindInstance(msg.instance);
  if (inst == nullptr) return;
  if (inst->mode == sim::MsgCategory::kNormal) {
    inst->mode = message.category;
  }
  LocalHalt(inst, msg.origin_step, msg.new_epoch, /*propagate=*/true);
  // After the halt, new-epoch packets re-trigger execution through the
  // normal Pump path; nothing to restart here.
}

void Agent::CompensateLocal(AgentInstance* inst, StepId step,
                            std::function<void()> then) {
  const model::Step& spec = inst->schema->schema().step(step);
  StepRecord& record = inst->state.step_record(step);
  if (record.state != StepRunState::kDone) {
    then();
    return;
  }
  const std::string& program = spec.compensation_program.empty()
                                   ? spec.program
                                   : spec.compensation_program;
  runtime::ProgramContext context;
  context.instance = inst->state.id();
  context.step = step;
  context.attempt = record.attempts;
  context.compensation = true;
  context.inputs = record.prev_inputs;
  context.rng = &rng_;
  int64_t cost = spec.cost;
  if (programs_->Contains(program)) {
    Result<runtime::ProgramOutcome> outcome =
        programs_->Run(program, context);
    if (outcome.ok() && outcome.value().cost > 0) {
      cost = outcome.value().cost;
    }
  }
  cost = static_cast<int64_t>(cost *
                              spec.ocr.partial_compensation_fraction);
  InstanceId instance = inst->state.id();
  {
    obs::Tracer& tr = ctx_->tracer();
    if (tr.enabled()) {
      tr.Begin(obs::SpanKind::kOcr, id_, instance, step, "compensate",
               static_cast<int>(sim::MsgCategory::kFailureHandling),
               program);
    }
  }
  ctx_->queue().ScheduleAfter(
      options_.exec_latency, [this, instance, step, cost, then]() {
        obs::Tracer& tr = ctx_->tracer();
        if (tr.enabled()) {
          tr.End(obs::SpanKind::kOcr, id_, instance, step, "compensate");
        }
        AgentInstance* inst = FindInstance(instance);
        if (inst == nullptr) return;
        StepRecord& record = inst->state.step_record(step);
        record.state = StepRunState::kCompensated;
        ctx_->metrics().AddLoad(id_, sim::LoadCategory::kProgram,
                                      cost);
        runtime::EventOcc comp = inst->state.PostLocalEvent(
            rules::event::StepCompensatedToken(step));
        inst->rules.Post(comp.token);
        PersistStepRecord(instance, step);
        then();
      });
}

void Agent::OnCompensateSet(const sim::Message& message) {
  Result<runtime::CompensateSetMsg> parsed =
      runtime::CompensateSetMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  runtime::CompensateSetMsg msg = parsed.value();
  if (msg.remaining.empty()) {
    // Chain exhausted: hand execution back to the origin agent.
    Send(msg.resume_agent, runtime::wi::kStepExecute,
         msg.resume.Serialize(), sim::MsgCategory::kFailureHandling);
    return;
  }
  StepId step = msg.remaining.front();
  msg.remaining.erase(msg.remaining.begin());
  AgentInstance* inst = GetOrCreateInstance(msg.instance);
  if (inst == nullptr) return;
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kFailureHandling,
                                options_.navigation_load);
  obs::Tracer& tr = ctx_->tracer();
  if (tr.enabled()) {
    // Compensation-set traversal: one instant per visited member, value
    // is how many members remain after this one.
    tr.Instant(obs::SpanKind::kOcr, id_, msg.instance, step,
               "compensate.set",
               static_cast<int64_t>(msg.remaining.size()),
               "origin=S" + std::to_string(msg.origin_step),
               static_cast<int>(sim::MsgCategory::kFailureHandling));
  }

  auto forward = [this, msg]() mutable {
    if (msg.remaining.empty()) {
      Send(msg.resume_agent, runtime::wi::kStepExecute,
             msg.resume.Serialize(), sim::MsgCategory::kFailureHandling);
      return;
    }
    StepId next = msg.remaining.front();
    NodeId target = kInvalidNode;
    AgentInstance* inst = FindInstance(msg.instance);
    if (inst != nullptr) {
      auto by = inst->state.executed_by().find(next);
      if (by != inst->state.executed_by().end()) target = by->second;
    }
    if (target == kInvalidNode) {
      const std::vector<NodeId>& eligible =
          deployment_->Eligible(msg.instance.workflow, next);
      if (!eligible.empty()) target = eligible.front();
    }
    if (target == kInvalidNode) return;
    Send(target, runtime::wi::kCompensateSet, msg.Serialize(),
           sim::MsgCategory::kFailureHandling);
  };

  // Paper: "checks if the step has been executed. If not, no action."
  CompensateLocal(inst, step, forward);
}

void Agent::OnCompensateThread(const sim::Message& message) {
  Result<runtime::CompensateThreadMsg> parsed =
      runtime::CompensateThreadMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::CompensateThreadMsg& msg = parsed.value();
  AgentInstance* inst = FindInstance(msg.instance);
  if (inst == nullptr) return;
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kFailureHandling,
                                options_.navigation_load);

  InstanceId instance = msg.instance;
  StepId step = msg.step;
  StepId until = msg.until_join;
  int64_t epoch = msg.epoch;
  CompensateLocal(inst, step, [this, instance, step, until, epoch]() {
    AgentInstance* inst = FindInstance(instance);
    if (inst == nullptr) return;
    // Continue along the abandoned branch until the confluence.
    for (const model::ControlArc* arc : inst->schema->forward_out(step)) {
      if (arc->to == until) continue;
      runtime::CompensateThreadMsg next;
      next.instance = instance;
      next.step = arc->to;
      next.until_join = until;
      next.epoch = epoch;
      NodeId target = kInvalidNode;
      auto by = inst->state.executed_by().find(arc->to);
      if (by != inst->state.executed_by().end()) {
        target = by->second;
      } else {
        const std::vector<NodeId>& eligible =
            deployment_->Eligible(instance.workflow, arc->to);
        if (!eligible.empty()) target = eligible.front();
      }
      if (target == kInvalidNode) continue;
      Send(target, runtime::wi::kCompensateThread, next.Serialize(),
             sim::MsgCategory::kFailureHandling);
    }
  });
}

void Agent::OnStepCompensate(const sim::Message& message) {
  Result<runtime::StepCompensateMsg> parsed =
      runtime::StepCompensateMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::StepCompensateMsg& msg = parsed.value();
  AgentInstance* inst = FindInstance(msg.instance);
  if (inst == nullptr) return;
  CompensateLocal(inst, msg.step, []() {});
}

// ---------------------------------------------------------------------
// Coordinated execution: RO registration/notification, ME arbitration
// ---------------------------------------------------------------------

void Agent::ApplyRoGating(AgentInstance* inst) {
  for (const runtime::RoLink& link : inst->state.ro_links()) {
    if (link.leading) continue;  // leaders act via registrations
    rules::EventToken token =
        rules::event::RelativeOrderToken(link.other, link.other_step);
    // RO wait span: opens when the gate is installed, closes when the
    // ordering token posts (here or in OnAddEvent).
    obs::Tracer& tr = ctx_->tracer();
    if (tr.enabled() && !inst->state.EventValid(token)) {
      tr.Begin(obs::SpanKind::kCoord, id_, inst->state.id(), kInvalidStep,
               "ro.wait:" + rules::TokenNameStr(token),
               static_cast<int>(sim::MsgCategory::kCoordination));
    }
    // Gate every rule that can fire the lagging step.
    for (const rules::Rule& rule :
         runtime::MakeStepRules(*inst->schema, link.my_step)) {
      (void)inst->rules.AddPrecondition(rule.id, token);
    }
    // Only the agents that may execute the lagging step register at the
    // leading step's agents; fan-out observers merely gate their rules.
    const std::vector<NodeId>& lag_eligible = deployment_->Eligible(
        inst->state.id().workflow, link.my_step);
    if (std::find(lag_eligible.begin(), lag_eligible.end(), id_) ==
        lag_eligible.end()) {
      continue;
    }
    if (inst->ro_registered.insert(token).second) {
      ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                    options_.navigation_load);
      if (ended_instances_.count(link.other) > 0) {
        // Leading instance already finished: ordering holds trivially.
        if (tr.enabled()) {
          tr.End(obs::SpanKind::kCoord, id_, inst->state.id(),
                 kInvalidStep, "ro.wait:" + rules::TokenNameStr(token));
        }
        inst->state.PostLocalEvent(token);
        inst->rules.Post(token);
        continue;
      }
      // Register interest at every agent eligible to run the leading
      // step (AddRule protocol, Figure 4).
      runtime::AddRuleMsg reg;
      reg.instance = link.other;
      reg.rule_id = rules::TokenNameStr(token);
      reg.trigger_events = {std::to_string(id_)};
      reg.action_step = link.other_step;
      for (NodeId agent :
           deployment_->Eligible(link.other.workflow, link.other_step)) {
        Send(agent, runtime::wi::kAddRule, reg.Serialize(),
               sim::MsgCategory::kCoordination);
      }
    }
  }
}

void Agent::OnAddRule(const sim::Message& message) {
  Result<runtime::AddRuleMsg> parsed =
      runtime::AddRuleMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::AddRuleMsg& msg = parsed.value();

  // ME arbitration requests reuse the AddRule WI.
  if (msg.rule_id == "me.acquire" || msg.rule_id == "me.release") {
    NodeId requester = msg.trigger_events.empty()
                           ? message.from
                           : static_cast<NodeId>(strtol(
                                 msg.trigger_events[0].c_str(), nullptr,
                                 10));
    const std::string& resource = msg.condition_source;
    LockState& lock = locks_[resource];
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                  options_.navigation_load);
    if (msg.rule_id == "me.acquire") {
      if (!lock.held) {
        lock.held = true;
        lock.holder = msg.instance;
        lock.holder_step = msg.action_step;
        runtime::AddEventMsg grant;
        grant.instance = msg.instance;
        grant.event_token = "me.grant:" + resource + ":S" +
                            std::to_string(msg.action_step);
        Send(requester, runtime::wi::kAddEvent, grant.Serialize(),
               sim::MsgCategory::kCoordination);
      } else if (!(lock.holder == msg.instance &&
                   lock.holder_step == msg.action_step)) {
        lock.waiters.push_back(
            {msg.instance, msg.action_step, requester});
      }
    } else {  // me.release
      if (lock.held && lock.holder == msg.instance &&
          lock.holder_step == msg.action_step) {
        lock.held = false;
        if (!lock.waiters.empty()) {
          auto [next_inst, next_step, next_agent] = lock.waiters.front();
          lock.waiters.pop_front();
          lock.held = true;
          lock.holder = next_inst;
          lock.holder_step = next_step;
          runtime::AddEventMsg grant;
          grant.instance = next_inst;
          grant.event_token = "me.grant:" + resource + ":S" +
                              std::to_string(next_step);
          Send(next_agent, runtime::wi::kAddEvent, grant.Serialize(),
                 sim::MsgCategory::kCoordination);
        }
      }
    }
    return;
  }

  // RO registration: notify when (instance, action_step) completes here.
  NodeId registrant = msg.trigger_events.empty()
                          ? message.from
                          : static_cast<NodeId>(strtol(
                                msg.trigger_events[0].c_str(), nullptr,
                                10));
  ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                options_.navigation_load);
  if (ended_instances_.count(msg.instance) > 0) {
    runtime::AddEventMsg notify;
    notify.instance = msg.instance;
    notify.event_token = msg.rule_id;
    Send(registrant, runtime::wi::kAddEvent, notify.Serialize(),
           sim::MsgCategory::kCoordination);
    return;
  }
  AgentInstance* inst = FindInstance(msg.instance);
  if (inst != nullptr &&
      inst->state.EventValid(rules::event::StepDoneToken(msg.action_step))) {
    runtime::AddEventMsg notify;
    notify.instance = msg.instance;
    notify.event_token = msg.rule_id;
    Send(registrant, runtime::wi::kAddEvent, notify.Serialize(),
           sim::MsgCategory::kCoordination);
    return;
  }
  ro_registrations_[{msg.instance, msg.action_step}].push_back(
      {registrant, msg.rule_id});
}

void Agent::NotifyRoRegistrants(const InstanceId& instance, StepId step) {
  auto it = ro_registrations_.find({instance, step});
  if (it == ro_registrations_.end()) return;
  std::vector<std::pair<NodeId, std::string>> registrants =
      std::move(it->second);
  ro_registrations_.erase(it);
  for (const auto& [registrant, token] : registrants) {
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                  options_.navigation_load);
    runtime::AddEventMsg notify;
    notify.instance = instance;
    notify.event_token = token;
    Send(registrant, runtime::wi::kAddEvent, notify.Serialize(),
           sim::MsgCategory::kCoordination);
  }
}

void Agent::OnAddEvent(const sim::Message& message) {
  Result<runtime::AddEventMsg> parsed =
      runtime::AddEventMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::AddEventMsg& msg = parsed.value();
  const std::string& token = msg.event_token;

  if (token.rfind("me.grant:", 0) == 0) {
    size_t colon = token.rfind(":S");
    if (colon == std::string::npos) return;
    std::string resource = token.substr(9, colon - 9);
    StepId step = static_cast<StepId>(
        strtol(token.c_str() + colon + 2, nullptr, 10));
    AgentInstance* inst = FindInstance(msg.instance);
    if (inst == nullptr) {
      // Instance gone: release the lock straight back.
      runtime::AddRuleMsg release;
      release.instance = msg.instance;
      release.rule_id = "me.release";
      release.condition_source = resource;
      release.action_step = step;
      release.trigger_events = {std::to_string(id_)};
      Send(message.from, runtime::wi::kAddRule, release.Serialize(),
           sim::MsgCategory::kCoordination);
      return;
    }
    inst->me_pending.erase({step, resource});
    inst->me_granted.insert({step, resource});
    StartStepLocal(inst, step);
    return;
  }

  // RO tokens (or other plain events) post into the instance.
  // The token may arrive before any packet created the instance: the
  // *RO event* itself concerns the lagging instance, but msg.instance is
  // the *leading* one. Deliver to every local instance that waits for it.
  rules::EventToken tok = rules::InternToken(token);
  bool delivered = false;
  for (auto& [id, inst] : instances_) {
    bool waits = false;
    for (const runtime::RoLink& link : inst->state.ro_links()) {
      if (!link.leading &&
          rules::event::RelativeOrderToken(link.other, link.other_step) ==
              tok) {
        waits = true;
        break;
      }
    }
    if (!waits) continue;
    // Ordering tokens are one-shot: a duplicate notification (e.g. the
    // executor's AddEvent plus the purge-time resolution of a parked
    // registration) must not re-fire the gated rule.
    if (inst->state.EventValid(tok)) {
      delivered = true;
      continue;
    }
    obs::Tracer& tr = ctx_->tracer();
    if (tr.enabled()) {
      tr.End(obs::SpanKind::kCoord, id_, id, kInvalidStep,
             "ro.wait:" + token);
    }
    inst->state.PostLocalEvent(tok);
    inst->rules.Post(tok);
    Pump(inst.get());
    delivered = true;
  }
  if (!delivered) {
    CREW_LOG(Debug) << "agent " << id_ << ": no local waiter for " << token;
  }
}

void Agent::OnAddPrecondition(const sim::Message& message) {
  Result<runtime::AddPreconditionMsg> parsed =
      runtime::AddPreconditionMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::AddPreconditionMsg& msg = parsed.value();
  AgentInstance* inst = FindInstance(msg.instance);
  if (inst == nullptr) return;
  (void)inst->rules.AddPrecondition(msg.rule_id, msg.event_token);
}

bool Agent::AcquireMutexesDistributed(AgentInstance* inst, StepId step) {
  std::vector<const runtime::MutexReq*> reqs =
      coordination_->MutexesOf(inst->state.id().workflow, step);
  for (const runtime::MutexReq* req : reqs) {
    ctx_->metrics().AddLoad(id_, sim::LoadCategory::kCoordination,
                                  options_.navigation_load);
    std::pair<StepId, std::string> key{step, req->resource};
    if (inst->me_granted.count(key) > 0) continue;
    if (inst->me_pending.insert(key).second) {
      runtime::AddRuleMsg request;
      request.instance = inst->state.id();
      request.rule_id = "me.acquire";
      request.condition_source = req->resource;
      request.action_step = step;
      request.trigger_events = {std::to_string(id_)};
      NodeId arbiter = MutexArbiter(*req);
      Send(arbiter, runtime::wi::kAddRule, request.Serialize(),
             sim::MsgCategory::kCoordination);
    }
    return false;
  }
  return true;
}

void Agent::ReleaseMutexesDistributed(AgentInstance* inst, StepId step) {
  std::vector<const runtime::MutexReq*> reqs =
      coordination_->MutexesOf(inst->state.id().workflow, step);
  for (const runtime::MutexReq* req : reqs) {
    std::pair<StepId, std::string> key{step, req->resource};
    if (inst->me_granted.erase(key) == 0) continue;
    runtime::AddRuleMsg release;
    release.instance = inst->state.id();
    release.rule_id = "me.release";
    release.condition_source = req->resource;
    release.action_step = step;
    release.trigger_events = {std::to_string(id_)};
    NodeId arbiter = MutexArbiter(*req);
    Send(arbiter, runtime::wi::kAddRule, release.Serialize(),
           sim::MsgCategory::kCoordination);
  }
}

// ---------------------------------------------------------------------
// Nested workflows
// ---------------------------------------------------------------------

void Agent::LaunchSubWorkflow(AgentInstance* inst, StepId step) {
  const model::Step& spec = inst->schema->schema().step(step);
  StepRecord& record = inst->state.step_record(step);
  if (record.state == StepRunState::kDone) {
    // Re-execution of a completed child: reuse (children are not
    // re-spawned; DESIGN.md documents the simplification).
    inst->starting.erase(step);
    OnStepDoneLocal(inst, step, /*first_execution=*/false);
    return;
  }
  model::CompiledSchemaPtr child_schema = FindSchema(spec.sub_workflow);
  if (child_schema == nullptr) {
    CREW_LOG(Error) << "agent " << id_ << ": unknown child schema "
                    << spec.sub_workflow;
    inst->starting.erase(step);
    return;
  }
  inst->starting.erase(step);
  record.in_flight = true;
  record.attempts += 1;

  runtime::WorkflowStartMsg start;
  start.instance.workflow = spec.sub_workflow;
  start.instance.number =
      (static_cast<int64_t>(id_) << 40) | (++child_counter_);
  start.reply_to = id_;
  start.parent = inst->state.id();
  start.parent_step = step;
  // Parent inputs map to the child's workflow inputs in order.
  int index = 1;
  for (const std::string& input : spec.inputs) {
    std::optional<Value> v = inst->state.GetData(input);
    if (v.has_value()) {
      start.inputs["WF.I" + std::to_string(index)] = *v;
    }
    ++index;
  }
  children_[start.instance] = {inst->state.id(), step};

  Result<NodeId> coordination_agent =
      deployment_->CoordinationAgent(*child_schema);
  if (!coordination_agent.ok()) {
    record.in_flight = false;
    return;
  }
  Send(coordination_agent.value(), runtime::wi::kWorkflowStart,
         start.Serialize(), sim::MsgCategory::kNormal);
}

// ---------------------------------------------------------------------
// Agent-failure handling (§5.2 predecessor/successor protocols)
// ---------------------------------------------------------------------

void Agent::SchedulePendingCheck(const InstanceId& instance) {
  InstanceId copy = instance;
  ctx_->queue().ScheduleAfter(options_.pending_timeout,
                                    [this, copy]() {
                                      CheckPendingRules(copy);
                                    });
}

void Agent::CheckPendingRules(const InstanceId& instance) {
  AgentInstance* inst = FindInstance(instance);
  if (inst == nullptr) return;
  for (const auto& [rule_id, missing] : inst->rules.PendingRules()) {
    if (missing.size() != 1) continue;
    StepId step = rules::event::ParseStepEvent(missing[0], "done");
    if (step == kInvalidStep) continue;
    // Only the agents that might have to execute the *waiting* step care
    // about its missing predecessor; fan-out observers do not poll.
    const rules::Rule* rule = inst->rules.FindRule(rule_id);
    if (rule == nullptr ||
        rule->action.kind != rules::ActionKind::kExecuteStep) {
      continue;
    }
    const std::vector<NodeId>& action_eligible = deployment_->Eligible(
        instance.workflow, rule->action.step);
    if (std::find(action_eligible.begin(), action_eligible.end(), id_) ==
        action_eligible.end()) {
      continue;
    }
    // Poll only for a step that is *overdue*: from this agent's state,
    // the step itself was triggerable (all events of one of its firing
    // rules are valid here), so it should have executed by now. Rules
    // merely waiting for upstream progress are not suspicious.
    if (!inst->schema->schema().has_step(step)) continue;
    bool overdue = false;
    expr::FunctionEnvironment env = inst->state.DataEnv();
    for (const rules::Rule& generated :
         runtime::MakeStepRules(*inst->schema, step)) {
      const rules::Rule* live = inst->rules.FindRule(generated.id);
      const rules::Rule& step_rule = live != nullptr ? *live : generated;
      bool all_valid = true;
      for (rules::EventToken token : step_rule.events) {
        if (!inst->state.EventValid(token)) {
          all_valid = false;
          break;
        }
      }
      if (all_valid && expr::EvaluateCondition(step_rule.condition, env)) {
        overdue = true;
        break;
      }
    }
    if (!overdue) continue;
    std::pair<InstanceId, StepId> key{instance, step};
    if (polls_.count(key) > 0) continue;
    // Rate-limit: at most one poll per step per timeout window.
    auto last = last_poll_.find(key);
    if (last != last_poll_.end() &&
        ctx_->now() - last->second < options_.pending_timeout) {
      continue;
    }
    last_poll_[key] = ctx_->now();
    StatusPoll poll;
    poll.instance = instance;
    poll.step = step;
    const std::vector<NodeId>& eligible =
        deployment_->Eligible(instance.workflow, step);
    for (NodeId agent : eligible) {
      // Down agents are unreachable — the failure detector the paper
      // assumes; their silence is what the protocol reacts to.
      if (ctx_->network().IsNodeDown(agent)) {
        ++poll.skipped_down;
        continue;
      }
      if (agent == id_) continue;  // our own record is already "unknown"
      runtime::StepStatusMsg query;
      query.instance = instance;
      query.step = step;
      query.reply_to = id_;
      Send(agent, runtime::wi::kStepStatus, query.Serialize(),
           sim::MsgCategory::kFailureHandling);
      ++poll.outstanding;
    }
    if (poll.outstanding > 0) {
      polls_[key] = poll;
    } else {
      // No one to ask (the other eligible agents are down or we are the
      // only one): resolve the round with what we know.
      ResolvePoll(poll);
    }
  }
}

void Agent::OnStepStatus(const sim::Message& message) {
  Result<runtime::StepStatusMsg> parsed =
      runtime::StepStatusMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::StepStatusMsg& msg = parsed.value();
  runtime::StepStatusReplyMsg reply;
  reply.instance = msg.instance;
  reply.step = msg.step;
  reply.responder = id_;
  AgentInstance* inst = FindInstance(msg.instance);
  if (inst == nullptr) {
    reply.state = StepRunState::kUnknown;
  } else {
    const StepRecord* record = inst->state.FindStepRecord(msg.step);
    if (record == nullptr) {
      reply.state = StepRunState::kUnknown;
    } else if (record->in_flight) {
      reply.state = StepRunState::kExecuting;
    } else {
      reply.state = record->state;
    }
  }
  Send(msg.reply_to, runtime::wi::kStepStatusReply, reply.Serialize(),
       sim::MsgCategory::kFailureHandling);
}

void Agent::OnStepStatusReply(const sim::Message& message) {
  Result<runtime::StepStatusReplyMsg> parsed =
      runtime::StepStatusReplyMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  const runtime::StepStatusReplyMsg& msg = parsed.value();
  auto it = polls_.find({msg.instance, msg.step});
  if (it == polls_.end()) return;
  StatusPoll& poll = it->second;
  --poll.outstanding;
  if (msg.state == StepRunState::kDone) poll.any_done = true;
  if (msg.state == StepRunState::kExecuting) poll.any_executing = true;
  if (poll.outstanding > 0) return;

  StatusPoll done = poll;
  polls_.erase(it);
  ResolvePoll(done);
}

void Agent::ResolvePoll(const StatusPoll& poll) {
  AgentInstance* inst = FindInstance(poll.instance);
  if (inst == nullptr) return;
  StepId step = poll.step;
  if (inst->state.EventValid(rules::event::StepDoneToken(step))) return;

  if (poll.any_done || poll.any_executing) {
    // Someone has or will have the result; its packet will arrive
    // (reliable, persistent delivery). Wait passively.
    return;
  }
  // Everyone reachable says "unknown". Two cases (§5.2):
  //  - an eligible agent is unreachable: it may have performed (or be
  //    performing) the step. A *query* step is safe to re-run at another
  //    agent; an *update* step must wait — we re-poll after the timeout
  //    so recovery is noticed.
  //  - every eligible agent is reachable: nobody did the work (it died
  //    with a mid-step crash); re-drive it regardless of access kind.
  const model::Step& spec = inst->schema->schema().step(step);
  if (poll.skipped_down > 0 &&
      spec.access == model::AccessKind::kUpdate) {
    SchedulePendingCheck(poll.instance);
    return;
  }
  const std::vector<NodeId>& eligible =
      deployment_->Eligible(poll.instance.workflow, step);
  std::vector<NodeId> up;
  for (NodeId agent : eligible) {
    if (!ctx_->network().IsNodeDown(agent)) up.push_back(agent);
  }
  if (up.empty()) {
    SchedulePendingCheck(poll.instance);
    return;
  }
  // Mirror the receivers' deterministic election so the re-request lands
  // on the agent that will actually self-elect for the step.
  NodeId target = up[static_cast<size_t>(poll.instance.number + step) %
                     up.size()];
  runtime::WorkflowPacket packet = inst->state.MakePacket(step);
  Send(target, runtime::wi::kStepExecute, packet.Serialize(),
       sim::MsgCategory::kFailureHandling);
}

void Agent::OnStateInformation(const sim::Message& message) {
  Result<runtime::StateInformationMsg> parsed =
      runtime::StateInformationMsg::Parse(message.payload);
  if (!parsed.ok()) return;
  runtime::StateInformationReplyMsg reply;
  reply.responder = id_;
  reply.load = active_programs_;
  reply.instance = parsed.value().instance;
  reply.step = parsed.value().step;
  Send(parsed.value().reply_to, runtime::wi::kStateInformationReply,
       reply.Serialize(), sim::MsgCategory::kElection);
}

}  // namespace crew::dist
