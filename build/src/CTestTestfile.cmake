# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("expr")
subdirs("sim")
subdirs("storage")
subdirs("model")
subdirs("rules")
subdirs("laws")
subdirs("runtime")
subdirs("central")
subdirs("parallel")
subdirs("dist")
subdirs("workload")
subdirs("analysis")
