// Quickstart: define a four-step workflow with the SchemaBuilder, deploy
// it on a simulated distributed-control system (6 agents + front end),
// run one instance to commit, and inspect the archived results.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "dist/system.h"
#include "model/builder.h"

using namespace crew;

int main() {
  // 1. Describe the workflow: fetch -> (enrich || audit) -> publish.
  model::SchemaBuilder builder("Quickstart");
  StepId fetch = builder.AddTask("fetch", "fetch_data", /*cost=*/400);
  builder.step(fetch).inputs = {"WF.I1"};
  StepId enrich = builder.AddTask("enrich", "enrich_data", 900);
  StepId audit = builder.AddTask("audit", "audit_data", 300);
  builder.step(audit).access = model::AccessKind::kQuery;
  StepId publish = builder.AddTask("publish", "publish_data", 600);
  builder.Parallel(fetch, {{enrich, enrich}, {audit, audit}}, publish);

  Result<model::Schema> schema = builder.Build();
  if (!schema.ok()) {
    fprintf(stderr, "schema error: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  Result<model::CompiledSchemaPtr> compiled =
      model::CompiledSchema::Compile(std::move(schema).value());
  if (!compiled.ok()) return 1;
  printf("%s\n", compiled.value()->schema().Describe().c_str());

  // 2. Register the step programs (black boxes to the WFMS).
  runtime::ProgramRegistry programs;
  programs.Register("fetch_data", [](const runtime::ProgramContext& ctx) {
    runtime::ProgramOutcome out;
    auto input = ctx.inputs.find("WF.I1");
    int64_t seed = input != ctx.inputs.end() && input->second.is_int()
                       ? input->second.AsInt()
                       : 0;
    out.outputs["O1"] = Value(seed * 2);
    return out;
  });
  programs.Register("enrich_data", [](const runtime::ProgramContext& ctx) {
    runtime::ProgramOutcome out;
    auto fetched = ctx.inputs.find("S1.O1");
    (void)fetched;
    out.outputs["O1"] = Value("enriched");
    return out;
  });
  programs.Register("audit_data", [](const runtime::ProgramContext&) {
    runtime::ProgramOutcome out;
    out.outputs["O1"] = Value(true);
    return out;
  });
  programs.Register("publish_data", [](const runtime::ProgramContext&) {
    runtime::ProgramOutcome out;
    out.outputs["O1"] = Value("published");
    return out;
  });

  // 3. Deploy: 6 distributed agents, 2 eligible agents per step.
  sim::Simulator simulator(/*seed=*/7);
  model::Deployment deployment;
  runtime::CoordinationSpec coordination;  // none for the quickstart
  dist::DistributedSystem system(&simulator, &programs, &deployment,
                                 &coordination, /*num_agents=*/6);
  deployment.AssignRandom(*compiled.value(), system.agent_ids(),
                          /*eligible_per_step=*/2, &simulator.rng());
  system.RegisterSchema(compiled.value());

  // 4. Start an instance through the front end and run to quiescence.
  Result<InstanceId> instance = system.front_end().StartWorkflow(
      "Quickstart", {{"WF.I1", Value(int64_t{21})}});
  if (!instance.ok()) return 1;
  simulator.Run();

  printf("instance %s: %s\n", instance.value().ToString().c_str(),
         runtime::WorkflowStateName(
             system.front_end().KnownStatus(instance.value())));
  for (const auto& [item, value] : system.ArchivedData(instance.value())) {
    printf("  %s = %s\n", item.c_str(), value.ToString().c_str());
  }
  printf("messages exchanged: %lld (normal %lld)\n",
         static_cast<long long>(simulator.metrics().TotalMessages()),
         static_cast<long long>(
             simulator.metrics().MessagesIn(sim::MsgCategory::kNormal)));
  return 0;
}
