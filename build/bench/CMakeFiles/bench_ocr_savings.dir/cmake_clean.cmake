file(REMOVE_RECURSE
  "CMakeFiles/bench_ocr_savings.dir/bench_ocr_savings.cc.o"
  "CMakeFiles/bench_ocr_savings.dir/bench_ocr_savings.cc.o.d"
  "bench_ocr_savings"
  "bench_ocr_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ocr_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
