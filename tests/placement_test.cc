#include "runtime/placement.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace crew::runtime {
namespace {

InstanceId Inst(int64_t n, const std::string& wf = "Wf") {
  return InstanceId{wf, n};
}

TEST(PlacementParseTest, NamesAndAliases) {
  PlacementKind kind;
  EXPECT_TRUE(ParsePlacementKind("static", &kind));
  EXPECT_EQ(kind, PlacementKind::kStatic);
  EXPECT_TRUE(ParsePlacementKind("", &kind));
  EXPECT_EQ(kind, PlacementKind::kStatic);
  EXPECT_TRUE(ParsePlacementKind("rr", &kind));
  EXPECT_EQ(kind, PlacementKind::kRoundRobin);
  EXPECT_TRUE(ParsePlacementKind("round-robin", &kind));
  EXPECT_EQ(kind, PlacementKind::kRoundRobin);
  EXPECT_TRUE(ParsePlacementKind("hash", &kind));
  EXPECT_EQ(kind, PlacementKind::kConsistentHash);
  EXPECT_TRUE(ParsePlacementKind("consistent-hash", &kind));
  EXPECT_EQ(kind, PlacementKind::kConsistentHash);
  EXPECT_TRUE(ParsePlacementKind("least", &kind));
  EXPECT_EQ(kind, PlacementKind::kLeastLoaded);
  EXPECT_TRUE(ParsePlacementKind("least-loaded", &kind));
  EXPECT_EQ(kind, PlacementKind::kLeastLoaded);
  EXPECT_FALSE(ParsePlacementKind("bogus", &kind));

  for (PlacementKind k :
       {PlacementKind::kStatic, PlacementKind::kRoundRobin,
        PlacementKind::kConsistentHash, PlacementKind::kLeastLoaded}) {
    auto policy = MakePlacementPolicy(k);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), k);
    PlacementKind parsed;
    EXPECT_TRUE(ParsePlacementKind(policy->name(), &parsed));
    EXPECT_EQ(parsed, k);
  }
}

TEST(PlacementTest, StaticTakesFirstCandidate) {
  StaticPlacement placement;
  std::vector<NodeId> candidates = {4, 7, 9};
  EXPECT_EQ(placement.Place(Inst(1), candidates), 4);
  EXPECT_EQ(placement.Owner(Inst(99), candidates), 4);
  EXPECT_EQ(placement.Place(Inst(1), {}), kInvalidNode);
}

TEST(PlacementTest, RoundRobinMatchesLegacyModuloRule) {
  RoundRobinPlacement placement;
  std::vector<NodeId> candidates = {1, 2, 3};
  for (int64_t n = 0; n < 30; ++n) {
    NodeId expected = candidates[static_cast<size_t>(n) % 3];
    EXPECT_EQ(placement.Place(Inst(n), candidates), expected);
    EXPECT_EQ(placement.Owner(Inst(n), candidates), expected);
  }
  EXPECT_EQ(placement.Owner(Inst(5), {}), kInvalidNode);
}

TEST(PlacementTest, ConsistentHashDeterministicAndBalanced) {
  ConsistentHashPlacement placement;
  std::vector<NodeId> candidates = {1, 2, 3, 4, 5, 6, 7, 8};
  std::map<NodeId, int> per_node;
  for (int64_t n = 0; n < 1000; ++n) {
    NodeId owner = placement.Place(Inst(n), candidates);
    EXPECT_EQ(placement.Owner(Inst(n), candidates), owner);
    ASSERT_NE(owner, kInvalidNode);
    ++per_node[owner];
  }
  // Rendezvous hashing spreads uniformly: every node gets a share, and
  // no node dominates (loose 2x-mean bound — the hash is fixed, so this
  // cannot flake).
  EXPECT_EQ(per_node.size(), candidates.size());
  for (const auto& [node, count] : per_node) {
    EXPECT_GT(count, 0) << "node " << node;
    EXPECT_LT(count, 2 * 1000 / 8) << "node " << node;
  }
  // Different workflow names hash independently.
  EXPECT_EQ(placement.Owner(Inst(7, "A"), candidates),
            placement.Owner(Inst(7, "A"), candidates));
}

TEST(PlacementTest, ConsistentHashStableUnderNodeRemoval) {
  ConsistentHashPlacement placement;
  std::vector<NodeId> all = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<NodeId> without_5 = {1, 2, 3, 4, 6, 7, 8};
  int moved = 0;
  for (int64_t n = 0; n < 1000; ++n) {
    NodeId before = placement.Owner(Inst(n), all);
    NodeId after = placement.Owner(Inst(n), without_5);
    if (before == 5) {
      // Displaced instances must land somewhere else...
      EXPECT_NE(after, 5);
      ++moved;
    } else {
      // ...and every other instance must not move at all.
      EXPECT_EQ(after, before) << "instance " << n;
    }
  }
  // Roughly 1/8 of instances lived on node 5.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 2 * 1000 / 8);
}

TEST(PlacementTest, ConsistentHashStableUnderNodeAddition) {
  ConsistentHashPlacement placement;
  std::vector<NodeId> eight = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<NodeId> nine = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  int moved = 0;
  for (int64_t n = 0; n < 1000; ++n) {
    NodeId before = placement.Owner(Inst(n), eight);
    NodeId after = placement.Owner(Inst(n), nine);
    if (after != before) {
      // The only legal move is onto the new node.
      EXPECT_EQ(after, 9) << "instance " << n;
      ++moved;
    }
  }
  // The new node takes roughly 1/9 of the keyspace.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 2 * 1000 / 9);
}

TEST(PlacementTest, ConsistentHashWeightIsArgmaxWitness) {
  std::vector<NodeId> candidates = {3, 5, 11};
  ConsistentHashPlacement placement;
  for (int64_t n = 0; n < 50; ++n) {
    NodeId owner = placement.Owner(Inst(n), candidates);
    uint64_t best = ConsistentHashPlacement::Weight(Inst(n), owner);
    for (NodeId node : candidates) {
      EXPECT_LE(ConsistentHashPlacement::Weight(Inst(n), node), best);
    }
  }
}

TEST(PlacementTest, LeastLoadedDeterministicUnderPinnedFeed) {
  LeastLoadedPlacement placement;
  std::vector<NodeId> candidates = {1, 2, 3};
  placement.UpdateLoad(1, 5);
  placement.UpdateLoad(2, 0);
  placement.UpdateLoad(3, 2);

  // Effective load after each placement: feed + in-flight.
  EXPECT_EQ(placement.Place(Inst(10), candidates), 2);  // 5,0,2 -> n2
  EXPECT_EQ(placement.Place(Inst(11), candidates), 2);  // 5,1,2 -> n2
  // 5,2,2: tie broken by lowest node id.
  EXPECT_EQ(placement.Place(Inst(12), candidates), 2);
  EXPECT_EQ(placement.Place(Inst(13), candidates), 3);  // 5,3,2 -> n3
  EXPECT_EQ(placement.LoadOf(2), 3);
  EXPECT_EQ(placement.LoadOf(3), 3);
}

TEST(PlacementTest, LeastLoadedIsStickyAndForgets) {
  LeastLoadedPlacement placement;
  std::vector<NodeId> candidates = {1, 2};
  NodeId first = placement.Place(Inst(1), candidates);
  // Piling load onto the chosen node must not move an already-placed
  // instance (the decision travelled with it).
  placement.UpdateLoad(first, 1000);
  EXPECT_EQ(placement.Place(Inst(1), candidates), first);
  EXPECT_EQ(placement.Owner(Inst(1), candidates), first);
  // An unknown instance has no recalled owner.
  EXPECT_EQ(placement.Owner(Inst(2), candidates), kInvalidNode);
  placement.Forget(Inst(1));
  EXPECT_EQ(placement.Owner(Inst(1), candidates), kInvalidNode);
}

TEST(PlacementTest, LeastLoadedInFlightDrainsOnForget) {
  LeastLoadedPlacement placement;
  std::vector<NodeId> candidates = {1, 2};
  EXPECT_EQ(placement.Place(Inst(1), candidates), 1);  // tie -> lowest
  EXPECT_EQ(placement.Place(Inst(2), candidates), 2);  // 1,0 -> n2
  EXPECT_EQ(placement.LoadOf(1), 1);
  placement.Forget(Inst(1));
  EXPECT_EQ(placement.LoadOf(1), 0);
  // With node 1 drained, the next instance goes there again.
  EXPECT_EQ(placement.Place(Inst(3), candidates), 1);
}

}  // namespace
}  // namespace crew::runtime
