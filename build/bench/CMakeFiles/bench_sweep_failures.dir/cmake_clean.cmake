file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_failures.dir/bench_sweep_failures.cc.o"
  "CMakeFiles/bench_sweep_failures.dir/bench_sweep_failures.cc.o.d"
  "bench_sweep_failures"
  "bench_sweep_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
