#include <gtest/gtest.h>

#include <filesystem>

#include "central/system.h"
#include "expr/parser.h"
#include "model/builder.h"
#include "rules/event.h"

namespace crew::central {
namespace {

using model::CompiledSchema;
using model::CompiledSchemaPtr;
using model::SchemaBuilder;

using runtime::WorkflowState;

/// Test harness: one engine, `agents` thin agents, every step eligible on
/// `eligible` agents chosen round-robin.
class CentralFixture {
 public:
  explicit CentralFixture(int agents = 4, uint64_t seed = 42)
      : simulator_(seed) {
    programs_.RegisterBuiltins();
    system_ = std::make_unique<CentralSystem>(
        &simulator_, &programs_, &deployment_, &coordination_, agents);
  }

  CompiledSchemaPtr Register(model::Schema schema, int eligible = 2) {
    auto compiled = CompiledSchema::Compile(std::move(schema));
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    CompiledSchemaPtr ptr = compiled.value();
    const auto& ids = system_->agent_ids();
    for (StepId s = 1; s <= ptr->schema().num_steps(); ++s) {
      std::vector<NodeId> agents;
      for (int k = 0; k < eligible; ++k) {
        agents.push_back(ids[(s - 1 + k) % ids.size()]);
      }
      std::sort(agents.begin(), agents.end());
      deployment_.SetEligible(ptr->schema().name(), s, agents);
    }
    system_->engine().RegisterSchema(ptr);
    return ptr;
  }

  void Run() { simulator_.Run(); }

  sim::Simulator simulator_;
  runtime::ProgramRegistry programs_;
  model::Deployment deployment_;
  runtime::CoordinationSpec coordination_;
  std::unique_ptr<CentralSystem> system_;
};

model::Schema Seq3(const std::string& name = "Seq3") {
  SchemaBuilder b(name);
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.Sequence({s1, s2, s3});
  auto schema = b.Build();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

TEST(CentralEngineTest, SequentialWorkflowCommits) {
  CentralFixture fix;
  fix.Register(Seq3());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Seq3", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Seq3", 1}),
            WorkflowState::kCommitted);
  std::map<std::string, Value> data =
      fix.system_->engine().FinalData({"Seq3", 1});
  EXPECT_EQ(data.at("S1.O1"), Value(int64_t{1}));
  EXPECT_EQ(data.at("S3.O1"), Value(int64_t{1}));
}

TEST(CentralEngineTest, DuplicateInstanceRejected) {
  CentralFixture fix;
  fix.Register(Seq3());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Seq3", 1, {}).ok());
  EXPECT_EQ(fix.system_->engine().StartWorkflow("Seq3", 1, {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(CentralEngineTest, UnknownSchemaRejected) {
  CentralFixture fix;
  EXPECT_TRUE(
      fix.system_->engine().StartWorkflow("Ghost", 1, {}).IsNotFound());
}

TEST(CentralEngineTest, ParallelBranchesJoinBeforeCommit) {
  CentralFixture fix;
  SchemaBuilder b("Par");
  StepId s1 = b.AddTask("split", "noop");
  StepId s2 = b.AddTask("left", "noop");
  StepId s3 = b.AddTask("right", "noop");
  StepId s4 = b.AddTask("join", "sum");
  b.Parallel(s1, {{s2, s2}, {s3, s3}}, s4);
  fix.system_->engine();
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Par", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Par", 1}),
            WorkflowState::kCommitted);
}

TEST(CentralEngineTest, ChoiceTakesConditionBranch) {
  CentralFixture fix;
  SchemaBuilder b("Choice");
  StepId s1 = b.AddTask("decide", "copy");
  b.step(s1).inputs = {"WF.I1"};
  StepId s2 = b.AddTask("big", "noop");
  StepId s3 = b.AddTask("small", "noop");
  StepId s4 = b.AddTask("merge", "noop");
  b.CondArc(s1, s2, "S1.O1 >= 10");
  b.ElseArc(s1, s3);
  b.Arc(s2, s4);
  b.Arc(s3, s4);
  b.SetJoin(s4, model::JoinKind::kOr);
  fix.Register(std::move(b.Build()).value());

  ASSERT_TRUE(fix.system_->engine()
                  .StartWorkflow("Choice", 1,
                                 {{"WF.I1", Value(int64_t{42})}})
                  .ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Choice", 1}),
            WorkflowState::kCommitted);
  std::map<std::string, Value> data =
      fix.system_->engine().FinalData({"Choice", 1});
  EXPECT_TRUE(data.count("S2.O1"));   // big branch ran
  EXPECT_FALSE(data.count("S3.O1"));  // small branch did not

  ASSERT_TRUE(fix.system_->engine()
                  .StartWorkflow("Choice", 2,
                                 {{"WF.I1", Value(int64_t{3})}})
                  .ok());
  fix.Run();
  data = fix.system_->engine().FinalData({"Choice", 2});
  EXPECT_FALSE(data.count("S2.O1"));
  EXPECT_TRUE(data.count("S3.O1"));
}

TEST(CentralEngineTest, LoopIteratesUntilExit) {
  CentralFixture fix;
  // Program counts attempts; loop until the counter reaches 3.
  SchemaBuilder b("Loop");
  StepId s1 = b.AddTask("body", "noop");  // O1 = attempt number
  StepId s2 = b.AddTask("after", "noop");
  b.CondArc(s1, s2, "S1.O1 >= 3");
  b.BackArc(s1, s1, "S1.O1 < 3");
  b.SetJoin(s1, model::JoinKind::kOr);
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Loop", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Loop", 1}),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->engine().FinalData({"Loop", 1}).at("S1.O1"),
            Value(int64_t{3}));
}

TEST(CentralEngineTest, StepFailureRollsBackAndRetries) {
  CentralFixture fix;
  fix.programs_.RegisterFailFirstN("flaky", 1);
  SchemaBuilder b("Retry");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "flaky");
  StepId s3 = b.AddTask("C", "noop");
  b.Sequence({s1, s2, s3});
  b.OnFail(s2, s1, /*max_attempts=*/3);
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Retry", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Retry", 1}),
            WorkflowState::kCommitted);
  // Second attempt of B succeeded.
  EXPECT_EQ(fix.system_->engine().FinalData({"Retry", 1}).at("S2.O1"),
            Value(int64_t{2}));
}

TEST(CentralEngineTest, ExhaustedRetriesAbortWorkflow) {
  CentralFixture fix;
  SchemaBuilder b("Doomed");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "fail_always");
  b.Sequence({s1, s2});
  b.OnFail(s2, s1, /*max_attempts=*/2);
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Doomed", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Doomed", 1}),
            WorkflowState::kAborted);
  EXPECT_EQ(fix.system_->engine().aborted_count(), 1);
}

TEST(CentralEngineTest, FailureWithoutRollbackTargetAborts) {
  CentralFixture fix;
  SchemaBuilder b("NoTarget");
  StepId s1 = b.AddTask("A", "fail_always");
  (void)s1;
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("NoTarget", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"NoTarget", 1}),
            WorkflowState::kAborted);
}

TEST(CentralEngineTest, OcrReusesUnchangedResults) {
  CentralFixture fix;
  fix.programs_.RegisterFailFirstN("flaky", 1);
  // S1 -> S2 -> S3(flaky, rollback to S1). S2's re-exec condition reuses
  // results when its input S1.O1 did not change — and "noop" output is
  // the attempt count of S1... S1 reuse too: S1 has no reexec condition?
  // Give S1 and S2 changed()-based conditions so both are reused.
  SchemaBuilder b("Ocr");
  StepId s1 = b.AddTask("A", "noop");
  b.step(s1).ocr.reexec_condition =
      expr::ParseExpression("changed(WF.I1)").value();
  b.step(s1).inputs = {"WF.I1"};
  StepId s2 = b.AddTask("B", "noop");
  b.step(s2).inputs = {"S1.O1"};
  b.step(s2).ocr.reexec_condition =
      expr::ParseExpression("changed(S1.O1)").value();
  StepId s3 = b.AddTask("C", "flaky");
  b.Sequence({s1, s2, s3});
  b.OnFail(s3, s1, 3);
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine()
                  .StartWorkflow("Ocr", 1, {{"WF.I1", Value(int64_t{7})}})
                  .ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Ocr", 1}),
            WorkflowState::kCommitted);
  std::map<std::string, Value> data =
      fix.system_->engine().FinalData({"Ocr", 1});
  // S1 and S2 were reused (outputs still from attempt 1), S3 retried.
  EXPECT_EQ(data.at("S1.O1"), Value(int64_t{1}));
  EXPECT_EQ(data.at("S2.O1"), Value(int64_t{1}));
  EXPECT_EQ(data.at("S3.O1"), Value(int64_t{2}));
}

TEST(CentralEngineTest, UserAbortCompensatesExecutedSteps) {
  CentralFixture fix;
  SchemaBuilder b("AbortMe");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  StepId s3 = b.AddTask("C", "noop");
  b.Sequence({s1, s2, s3});
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("AbortMe", 1, {}).ok());
  // Let a couple of steps run, then abort.
  fix.simulator_.queue().RunUntil(3);
  Status aborted = fix.system_->engine().AbortWorkflow({"AbortMe", 1});
  EXPECT_TRUE(aborted.ok()) << aborted.ToString();
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"AbortMe", 1}),
            WorkflowState::kAborted);
}

TEST(CentralEngineTest, AbortAfterCommitRejected) {
  CentralFixture fix;
  fix.Register(Seq3());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Seq3", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().AbortWorkflow({"Seq3", 1}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CentralEngineTest, InputChangeReexecutesAffectedSteps) {
  CentralFixture fix;
  SchemaBuilder b("InChange");
  StepId s1 = b.AddTask("A", "copy");
  b.step(s1).inputs = {"WF.I1"};
  StepId s2 = b.AddTask("B", "copy");
  b.step(s2).inputs = {"S1.O1"};
  b.Sequence({s1, s2});
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine()
                  .StartWorkflow("InChange", 1,
                                 {{"WF.I1", Value(int64_t{10})}})
                  .ok());
  fix.Run();
  ASSERT_EQ(fix.system_->engine().QueryStatus({"InChange", 1}),
            WorkflowState::kCommitted);

  // Change inputs of a committed workflow: rejected.
  EXPECT_EQ(fix.system_->engine()
                .ChangeInputs({"InChange", 1},
                              {{"WF.I1", Value(int64_t{20})}})
                .code(),
            StatusCode::kFailedPrecondition);

  // Now a live one: change inputs mid-flight.
  ASSERT_TRUE(fix.system_->engine()
                  .StartWorkflow("InChange", 2,
                                 {{"WF.I1", Value(int64_t{10})}})
                  .ok());
  fix.simulator_.queue().RunUntil(3);
  ASSERT_TRUE(fix.system_->engine()
                  .ChangeInputs({"InChange", 2},
                                {{"WF.I1", Value(int64_t{99})}})
                  .ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"InChange", 2}),
            WorkflowState::kCommitted);
  EXPECT_EQ(fix.system_->engine().FinalData({"InChange", 2}).at("S2.O1"),
            Value(int64_t{99}));
}

TEST(CentralEngineTest, RelativeOrderingHoldsAcrossInstances) {
  CentralFixture fix;
  runtime::RelativeOrderReq ro;
  ro.id = "orders";
  ro.workflow_a = "Ordered";
  ro.workflow_b = "Ordered";
  ro.step_pairs = {{2, 2}};
  fix.coordination_.relative_orders.push_back(ro);

  SchemaBuilder b("Ordered");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  b.Sequence({s1, s2});
  fix.Register(std::move(b.Build()).value());

  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Ordered", 1, {}).ok());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Ordered", 2, {}).ok());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Ordered", 3, {}).ok());
  fix.Run();
  for (int64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(fix.system_->engine().QueryStatus({"Ordered", i}),
              WorkflowState::kCommitted)
        << i;
  }
}

TEST(CentralEngineTest, MutualExclusionSerializesCriticalSteps) {
  CentralFixture fix;
  runtime::MutexReq me;
  me.id = "m";
  me.resource = "machine";
  me.critical_steps = {{"Crit", 2}};
  fix.coordination_.mutexes.push_back(me);

  SchemaBuilder b("Crit");
  StepId s1 = b.AddTask("A", "noop");
  StepId s2 = b.AddTask("B", "noop");
  b.Sequence({s1, s2});
  fix.Register(std::move(b.Build()).value());
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(fix.system_->engine().StartWorkflow("Crit", i, {}).ok());
  }
  fix.Run();
  for (int64_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(fix.system_->engine().QueryStatus({"Crit", i}),
              WorkflowState::kCommitted)
        << i;
  }
}

TEST(CentralEngineTest, BranchSwitchCompensatesOldBranch) {
  CentralFixture fix;
  fix.programs_.RegisterFailFirstN("flaky", 1);
  // decide(copy of WF.I1-dependent attempt): first run takes the "top"
  // branch, after failure + re-execution the condition flips because
  // decide's output changes with the attempt count.
  SchemaBuilder b("Switch");
  StepId s1 = b.AddTask("decide", "noop");  // O1 = attempt number
  StepId s2 = b.AddTask("top", "noop");
  StepId s3 = b.AddTask("bottom", "noop");
  StepId s4 = b.AddTask("final", "flaky");
  b.CondArc(s1, s2, "S1.O1 == 1");  // taken on attempt 1
  b.ElseArc(s1, s3);                // taken on attempt >= 2
  b.Arc(s2, s4);
  b.Arc(s3, s4);
  b.SetJoin(s4, model::JoinKind::kOr);
  b.OnFail(s4, s1, 3);
  fix.Register(std::move(b.Build()).value());
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Switch", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Switch", 1}),
            WorkflowState::kCommitted);
  std::map<std::string, Value> data =
      fix.system_->engine().FinalData({"Switch", 1});
  // Bottom branch ran on the second pass.
  EXPECT_TRUE(data.count("S3.O1"));
}

TEST(CentralEngineTest, MessageCountsMatchRedundantFanout) {
  CentralFixture fix(/*agents=*/4);
  fix.Register(Seq3(), /*eligible=*/2);
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Seq3", 1, {}).ok());
  fix.Run();
  // 3 steps x (2 requests + 2 replies) = 12 normal messages (paper: 2·s·a).
  EXPECT_EQ(fix.simulator_.metrics().MessagesIn(sim::MsgCategory::kNormal),
            12);
}

TEST(CentralEngineTest, EngineSurvivesAgentCrash) {
  CentralFixture fix(/*agents=*/3);
  fix.Register(Seq3(), /*eligible=*/2);
  // Crash one agent for a while; the engine must route around it (or the
  // parked messages get delivered on recovery).
  sim::InjectCrash(&fix.simulator_, CentralSystem::kFirstAgentId, 0, 50);
  ASSERT_TRUE(fix.system_->engine().StartWorkflow("Seq3", 1, {}).ok());
  fix.Run();
  EXPECT_EQ(fix.system_->engine().QueryStatus({"Seq3", 1}),
            WorkflowState::kCommitted);
}

TEST(CentralEngineTest, WfdbPersistsStatusAcrossRestart) {
  namespace fs = std::filesystem;
  std::string dir =
      (fs::temp_directory_path() / "crew_central_wfdb").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    CentralFixture fix;
    EngineOptions options;
    options.wfdb_dir = dir;
    WorkflowEngine engine(/*id=*/90, &fix.simulator_, &fix.programs_,
                          &fix.deployment_, &fix.coordination_, options);
    auto compiled = CompiledSchema::Compile(Seq3());
    ASSERT_TRUE(compiled.ok());
    for (StepId s = 1; s <= 3; ++s) {
      fix.deployment_.SetEligible("Seq3", s,
                                  {fix.system_->agent_ids()[0]});
    }
    engine.RegisterSchema(compiled.value());
    ASSERT_TRUE(engine.StartWorkflow("Seq3", 77, {}).ok());
    fix.Run();
    ASSERT_EQ(engine.QueryStatus({"Seq3", 77}), WorkflowState::kCommitted);
  }
  {
    // A fresh engine recovers the committed status from the WFDB.
    CentralFixture fix;
    EngineOptions options;
    options.wfdb_dir = dir;
    WorkflowEngine engine(/*id=*/90, &fix.simulator_, &fix.programs_,
                          &fix.deployment_, &fix.coordination_, options);
    EXPECT_EQ(engine.QueryStatus({"Seq3", 77}), WorkflowState::kCommitted);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace crew::central
