#ifndef CREW_LAWS_EXPORT_H_
#define CREW_LAWS_EXPORT_H_

#include <string>
#include <vector>

#include "model/schema.h"
#include "runtime/coord.h"

namespace crew::laws {

/// Renders a schema back to LAWS source — the inverse of ParseLaws. The
/// output parses back to a structurally identical schema (round-trip
/// property), which is how the paper's modelling tool would persist a
/// designer's workflow definition.
std::string ExportWorkflow(const model::Schema& schema);

/// Renders a coordination block. Step ids are rendered through the step
/// names of the given schemas (which must include every workflow the
/// spec references).
std::string ExportCoordination(
    const runtime::CoordinationSpec& coordination,
    const std::vector<const model::Schema*>& schemas);

/// Full LAWS file: every workflow plus the coordination block.
std::string ExportLaws(const std::vector<const model::Schema*>& schemas,
                       const runtime::CoordinationSpec& coordination);

}  // namespace crew::laws

#endif  // CREW_LAWS_EXPORT_H_
