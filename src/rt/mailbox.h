#ifndef CREW_RT_MAILBOX_H_
#define CREW_RT_MAILBOX_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>

namespace crew::rt {

/// Bounded multi-producer / single-consumer task queue: the inbox of one
/// worker cell in the live runtime. Producers are other nodes' workers
/// (message deliveries), the timer thread (due callbacks), and the
/// driver (admin posts).
///
/// The hot path is a Vyukov-style intrusive MPSC queue: a producer does
/// one atomic exchange on the queue head plus one release store to link
/// its node, and the consumer pops by chasing `next` pointers — no mutex
/// on either side. Tasks live in intrusive nodes drawn from a lock-free
/// fixed pool (ABA-safe via a generation-tagged index stack), with the
/// callable stored inline in the node, so a push of a small callable is
/// also allocation-free; oversized callables and an exhausted pool fall
/// back to the heap. The mutex + condvars survive only for parking the
/// idle consumer and for the bounded-capacity backpressure wait.
///
/// FIFO order is total per mailbox (a single exchange point), which is
/// stronger than the per-sender-pair in-order delivery the paper
/// assumes.
class Mailbox {
  struct Node;

 public:
  /// Interop alias for producers that already hold a type-erased task
  /// (the timer heap); Push accepts any callable directly.
  using Task = std::function<void()>;

  /// Callables up to this size (and max_align_t alignment) are stored
  /// inline in the node; larger ones cost one heap allocation. Sized for
  /// the runtime's delivery lambda (a sim::Message plus three pointers).
  static constexpr size_t kInlineBytes = 128;

  /// RAII handle to one dequeued task. Run() executes it; destruction
  /// without Run() drops it (the Close() drain path). Must be consumed
  /// on the consumer thread before the next Pop().
  class Popped {
   public:
    Popped() = default;
    Popped(Popped&& other) noexcept
        : box_(other.box_), node_(other.node_) {
      other.box_ = nullptr;
      other.node_ = nullptr;
    }
    Popped& operator=(Popped&& other) noexcept {
      if (this != &other) {
        Discard();
        box_ = other.box_;
        node_ = other.node_;
        other.box_ = nullptr;
        other.node_ = nullptr;
      }
      return *this;
    }
    Popped(const Popped&) = delete;
    Popped& operator=(const Popped&) = delete;
    ~Popped() { Discard(); }

    /// False once the mailbox is closed and drained.
    explicit operator bool() const { return node_ != nullptr; }

    /// Invokes the task (exactly once), then marks it complete for
    /// QuietNow accounting.
    void Run();

   private:
    friend class Mailbox;
    Popped(Mailbox* box, Node* node) : box_(box), node_(node) {}
    void Discard();

    Mailbox* box_ = nullptr;
    Node* node_ = nullptr;
  };

  explicit Mailbox(size_t capacity, int spin_iterations = 256);
  ~Mailbox();

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues `fn`, blocking while the mailbox is at capacity
  /// (backpressure on remote senders and admin drivers). Returns false —
  /// and drops the task — once the mailbox is closed.
  template <typename F>
  bool Push(F&& fn) {
    return Emplace(std::forward<F>(fn), /*bounded=*/true);
  }

  /// Enqueues ignoring the capacity bound. Self-posts and timer
  /// deliveries use this: the owning worker blocking on its *own* full
  /// mailbox would deadlock the cell, and the timer thread must never
  /// stall behind one slow node. Returns false once closed.
  template <typename F>
  bool ForcePush(F&& fn) {
    return Emplace(std::forward<F>(fn), /*bounded=*/false);
  }

  /// Takes the next task, spinning briefly and then parking on the
  /// condvar when the queue is empty. Returns an empty handle once the
  /// mailbox is closed *and* drained. The previous handle must be
  /// consumed (Run or destroyed) before the next Pop.
  Popped Pop();

  /// Closes the mailbox: producers are refused, the consumer drains what
  /// remains and then Pop returns an empty handle.
  void Close();

  /// True when every admitted task has finished running — nothing queued
  /// and the consumer is between tasks. A true result is an acquire
  /// barrier against everything the consumer wrote while completing
  /// those tasks (it pairs with the release completion count).
  bool QuietNow() const;

  /// Tasks admitted but not yet dequeued (excludes the one a live Popped
  /// handle holds).
  size_t size() const;

  // ---- counters for RuntimeStats ----
  /// Total tasks accepted. Exact at all times: admission is one atomic
  /// RMW, so the count never under- or over-reports accepted pushes
  /// (a concurrent Push racing Close may inflate it by one until that
  /// push is refused).
  int64_t pushed() const {
    return static_cast<int64_t>(state_.load(std::memory_order_acquire) &
                                kCountMask);
  }
  /// Times the consumer parked on the condvar (spin fast-path misses).
  int64_t parks() const { return parks_.load(std::memory_order_relaxed); }
  /// High-water mark of the queue depth (sampled by the consumer at
  /// dequeue time).
  size_t max_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint32_t kNilIndex = 0xffffffffu;
  static constexpr uint64_t kClosedBit = uint64_t{1} << 63;
  static constexpr uint64_t kCountMask = kClosedBit - 1;

  /// Intrusive queue node. `next` is the MPSC link; `pool_next` is the
  /// free-list link (an index, so the free stack can carry an ABA
  /// generation tag in a single 64-bit word). The callable is stored in
  /// `storage` (inline, or as a pointer to a heap copy for oversized
  /// callables); `run`/`drop` are its type-erased invoke/destroy
  /// entry points, null once the payload has been consumed.
  struct alignas(64) Node {
    std::atomic<Node*> next{nullptr};
    void (*run)(void* storage) = nullptr;
    void (*drop)(void* storage) = nullptr;
    std::atomic<uint32_t> pool_next{kNilIndex};
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  };

  template <typename F>
  static void BindPayload(Node* node, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(node->storage)) Fn(std::forward<F>(fn));
      node->run = [](void* storage) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(storage));
        (*f)();
        f->~Fn();
      };
      node->drop = [](void* storage) {
        std::launder(reinterpret_cast<Fn*>(storage))->~Fn();
      };
    } else {
      Fn* heap = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(node->storage)) Fn*(heap);
      node->run = [](void* storage) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(storage));
        (*f)();
        delete f;
      };
      node->drop = [](void* storage) {
        delete *std::launder(reinterpret_cast<Fn**>(storage));
      };
    }
  }

  template <typename F>
  bool Emplace(F&& fn, bool bounded) {
    if (bounded && !WaitForCapacity()) return false;
    Node* node = AcquireNode();
    BindPayload(node, std::forward<F>(fn));
    if (!Enqueue(node)) return false;
    return true;
  }

  /// Admits and links a payload-bearing node; refuses (destroying the
  /// payload and returning the node) if the mailbox closed first.
  bool Enqueue(Node* node);

  /// Blocks while the queue is at capacity. Returns false once closed.
  bool WaitForCapacity();

  /// Parks the consumer until work arrives or the mailbox closes.
  void ParkConsumer();

  Node* AcquireNode();
  void ReleaseNode(Node* node);
  bool IsPoolNode(const Node* node) const {
    return node >= pool_.get() && node < pool_.get() + pool_slots_;
  }

  /// Consumer-side bookkeeping when a Popped handle finishes or drops
  /// its task.
  void CompleteTask() {
    completed_total_.fetch_add(1, std::memory_order_release);
  }

  const size_t capacity_;
  const int spin_iterations_;
  const uint32_t pool_slots_;
  std::unique_ptr<Node[]> pool_;
  /// Free-node stack: {generation:32, head index:32}. The generation tag
  /// makes the producer-side pop ABA-safe with a plain 64-bit CAS.
  std::atomic<uint64_t> free_head_;

  /// Admission word: bit 63 = closed, low bits = tasks accepted. One
  /// fetch_add both admits a push and serializes it against Close()'s
  /// fetch_or, so a racing push is either counted (and will be drained)
  /// or refused — never silently dropped.
  std::atomic<uint64_t> state_{0};

  // Producer-facing queue head and consumer-owned tail on separate cache
  // lines from each other and from the admission word.
  alignas(64) std::atomic<Node*> head_;
  alignas(64) Node* tail_;       // consumer only
  int64_t popped_ = 0;           // consumer only; mirror below
  std::atomic<int64_t> popped_total_{0};
  std::atomic<int64_t> completed_total_{0};

  // ---- parking / backpressure (cold path only) ----
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<bool> parked_{false};
  std::atomic<int> capacity_waiters_{0};
  std::atomic<int64_t> parks_{0};
  std::atomic<size_t> max_depth_{0};
};

}  // namespace crew::rt

#endif  // CREW_RT_MAILBOX_H_
