#ifndef CREW_RUNTIME_WIRE_H_
#define CREW_RUNTIME_WIRE_H_

#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/value.h"
#include "runtime/packet.h"

namespace crew::runtime {

/// Wire type names for every workflow interface of Table 1, plus the
/// CompensateThread() interface of §5.2 and the reply types. Message
/// dispatch keys on these strings.
namespace wi {
inline constexpr char kWorkflowStart[] = "WorkflowStart";
inline constexpr char kWorkflowChangeInputs[] = "WorkflowChangeInputs";
inline constexpr char kWorkflowAbort[] = "WorkflowAbort";
inline constexpr char kWorkflowStatus[] = "WorkflowStatus";
inline constexpr char kWorkflowStatusReply[] = "WorkflowStatusReply";
inline constexpr char kInputsChanged[] = "InputsChanged";
inline constexpr char kStepExecute[] = "StepExecute";
inline constexpr char kStepCompensate[] = "StepCompensate";
inline constexpr char kStepCompleted[] = "StepCompleted";
inline constexpr char kStepStatus[] = "StepStatus";
inline constexpr char kStepStatusReply[] = "StepStatusReply";
inline constexpr char kWorkflowRollback[] = "WorkflowRollback";
inline constexpr char kHaltThread[] = "HaltThread";
inline constexpr char kCompensateSet[] = "CompensateSet";
inline constexpr char kCompensateThread[] = "CompensateThread";
inline constexpr char kStateInformation[] = "StateInformation";
inline constexpr char kStateInformationReply[] = "StateInformationReply";
inline constexpr char kAddRule[] = "AddRule";
inline constexpr char kAddEvent[] = "AddEvent";
inline constexpr char kAddPrecondition[] = "AddPrecondition";
/// Engine-internal (central/parallel): dispatch a step program to a thin
/// agent and return the outcome.
inline constexpr char kRunProgram[] = "RunProgram";
inline constexpr char kRunProgramReply[] = "RunProgramReply";
/// Coordination-agent broadcast after commit so agents purge instance
/// tables (§4.2 end).
inline constexpr char kPurgeInstances[] = "PurgeInstances";
}  // namespace wi

/// Instance status values surfaced by WorkflowStatus (coordination
/// instance summary table).
enum class WorkflowState { kUnknown, kExecuting, kCommitted, kAborted };
const char* WorkflowStateName(WorkflowState state);
WorkflowState ParseWorkflowState(const std::string& name);

/// Step status values surfaced by StepStatus (§5.2 predecessor-failure
/// protocol).
enum class StepRunState {
  kUnknown,      // this agent has no record of the step
  kExecuting,
  kDone,
  kFailed,
  kCompensated,
};
const char* StepRunStateName(StepRunState state);
StepRunState ParseStepRunState(const std::string& name);

// ---- Typed payloads. Each Serialize()s to the kv wire format and
// Parse()s back; agents construct the sim::Message around them. ----

struct WorkflowStartMsg {
  InstanceId instance;
  std::map<std::string, Value> inputs;
  NodeId reply_to = kInvalidNode;  ///< front end to notify on commit/abort
  /// Coordinated-execution bindings established by the front end at start
  /// time (this instance lags the `other` instances of lagging links).
  std::vector<RoLink> ro_links;
  std::vector<RdLink> rd_links;
  /// Nested workflows: the parent instance/step awaiting this child.
  InstanceId parent;            ///< empty workflow => top-level
  StepId parent_step = kInvalidStep;
  std::string Serialize() const;
  static Result<WorkflowStartMsg> Parse(const std::string& payload);
};

struct WorkflowChangeInputsMsg {
  InstanceId instance;
  std::map<std::string, Value> new_inputs;
  /// Set by the coordination agent when relaying as InputsChanged: the
  /// step the rollback re-starts from.
  StepId origin_step = kInvalidStep;
  std::string Serialize() const;
  static Result<WorkflowChangeInputsMsg> Parse(const std::string& payload);
};

struct WorkflowAbortMsg {
  InstanceId instance;
  std::string Serialize() const;
  static Result<WorkflowAbortMsg> Parse(const std::string& payload);
};

struct WorkflowStatusMsg {
  InstanceId instance;
  NodeId reply_to = kInvalidNode;
  std::string Serialize() const;
  static Result<WorkflowStatusMsg> Parse(const std::string& payload);
};

struct WorkflowStatusReplyMsg {
  InstanceId instance;
  WorkflowState state = WorkflowState::kUnknown;
  std::string Serialize() const;
  static Result<WorkflowStatusReplyMsg> Parse(const std::string& payload);
};

/// StepExecute carries the whole workflow packet.
struct StepExecuteMsg {
  WorkflowPacket packet;
  std::string Serialize() const { return packet.Serialize(); }
  static Result<StepExecuteMsg> Parse(const std::string& payload);
};

struct StepCompensateMsg {
  InstanceId instance;
  StepId step = kInvalidStep;
  int64_t epoch = 0;
  std::string Serialize() const;
  static Result<StepCompensateMsg> Parse(const std::string& payload);
};

/// Termination agent -> coordination agent: a terminal step finished.
/// Carries only completion info, not the full packet (§4.2).
struct StepCompletedMsg {
  InstanceId instance;
  StepId step = kInvalidStep;
  int64_t epoch = 0;
  /// Terminal data the coordination agent archives with the instance.
  std::map<std::string, Value> results;
  std::string Serialize() const;
  static Result<StepCompletedMsg> Parse(const std::string& payload);
};

struct StepStatusMsg {
  InstanceId instance;
  StepId step = kInvalidStep;
  NodeId reply_to = kInvalidNode;
  std::string Serialize() const;
  static Result<StepStatusMsg> Parse(const std::string& payload);
};

struct StepStatusReplyMsg {
  InstanceId instance;
  StepId step = kInvalidStep;
  StepRunState state = StepRunState::kUnknown;
  NodeId responder = kInvalidNode;
  std::string Serialize() const;
  static Result<StepStatusReplyMsg> Parse(const std::string& payload);
};

/// Sent to the agent responsible for the rollback-target step (§5.2).
/// Carries the current packet state so the target agent can re-start
/// execution from the origin step after halting.
struct WorkflowRollbackMsg {
  InstanceId instance;
  StepId origin_step = kInvalidStep;
  int64_t new_epoch = 0;
  WorkflowPacket state;  ///< state as known at the failure site
  std::string Serialize() const;
  static Result<WorkflowRollbackMsg> Parse(const std::string& payload);
};

/// Probe quiescing a thread of control (§5.2): invalidate step.done
/// events of steps downstream of origin_step, stop forwarding packets,
/// propagate to successors already contacted.
struct HaltThreadMsg {
  InstanceId instance;
  StepId origin_step = kInvalidStep;
  int64_t new_epoch = 0;
  std::string Serialize() const;
  static Result<HaltThreadMsg> Parse(const std::string& payload);
};

/// Reverse-order compensation chain over a compensation dependent set.
/// `remaining` is the StepList (execution order); the receiving agent
/// compensates the last entry it executed and forwards the shortened
/// list (§5.2). When the list is exhausted, `resume` is sent back to
/// `resume_agent` as a StepExecute.
struct CompensateSetMsg {
  InstanceId instance;
  StepId origin_step = kInvalidStep;
  std::vector<StepId> remaining;
  int64_t epoch = 0;
  NodeId resume_agent = kInvalidNode;
  WorkflowPacket resume;  ///< packet to re-deliver once the set is done
  std::string Serialize() const;
  static Result<CompensateSetMsg> Parse(const std::string& payload);
};

/// Compensates the abandoned branch after an if-then-else re-execution
/// switched branches (§5.2): walks agent-to-agent from the branch entry
/// until the confluence step.
struct CompensateThreadMsg {
  InstanceId instance;
  StepId step = kInvalidStep;        ///< step to compensate at receiver
  StepId until_join = kInvalidStep;  ///< stop before this confluence step
  int64_t epoch = 0;
  std::string Serialize() const;
  static Result<CompensateThreadMsg> Parse(const std::string& payload);
};

struct StateInformationMsg {
  NodeId reply_to = kInvalidNode;
  /// Election context: instance+step the query concerns (empty workflow
  /// name for plain load probes).
  InstanceId instance;
  StepId step = kInvalidStep;
  std::string Serialize() const;
  static Result<StateInformationMsg> Parse(const std::string& payload);
};

struct StateInformationReplyMsg {
  NodeId responder = kInvalidNode;
  int64_t load = 0;  ///< queue length / active steps at the responder
  InstanceId instance;
  StepId step = kInvalidStep;
  std::string Serialize() const;
  static Result<StateInformationReplyMsg> Parse(const std::string& payload);
};

/// AddRule(): registers an interest/ordering rule at another agent. The
/// rule is transported in a compact form: trigger events + action step.
struct AddRuleMsg {
  InstanceId instance;
  std::string rule_id;
  std::vector<std::string> trigger_events;
  std::string condition_source;  ///< optional expression text
  StepId action_step = kInvalidStep;
  std::string Serialize() const;
  static Result<AddRuleMsg> Parse(const std::string& payload);
};

struct AddEventMsg {
  InstanceId instance;
  std::string event_token;
  std::string Serialize() const;
  static Result<AddEventMsg> Parse(const std::string& payload);
};

struct AddPreconditionMsg {
  InstanceId instance;
  std::string rule_id;
  std::string event_token;
  std::string Serialize() const;
  static Result<AddPreconditionMsg> Parse(const std::string& payload);
};

/// Engine -> agent program dispatch (central/parallel control). The
/// engine sends the step information to *every* eligible agent (so any
/// of them can take over on failure, and all return their load); only
/// `designated` runs the program, the rest acknowledge. This redundant
/// fan-out is the engine<->agent exchange the paper's 2·s·a message
/// expression models (see DESIGN.md §5).
struct RunProgramMsg {
  InstanceId instance;
  StepId step = kInvalidStep;
  std::string program;
  int attempt = 1;
  bool compensation = false;
  /// Fraction of the nominal cost to charge (OCR partial/incremental).
  double cost_fraction = 1.0;
  int64_t nominal_cost = 0;
  NodeId designated = kInvalidNode;
  std::map<std::string, Value> inputs;
  NodeId reply_to = kInvalidNode;
  int64_t epoch = 0;
  std::string Serialize() const;
  static Result<RunProgramMsg> Parse(const std::string& payload);
};

struct RunProgramReplyMsg {
  InstanceId instance;
  StepId step = kInvalidStep;
  bool ack_only = false;  ///< non-designated agent's acknowledgement
  bool success = false;
  bool compensation = false;
  int64_t cost = 0;
  int64_t epoch = 0;
  int64_t agent_load = 0;  ///< responder's current load (for selection)
  NodeId responder = kInvalidNode;
  std::map<std::string, Value> outputs;
  std::string Serialize() const;
  static Result<RunProgramReplyMsg> Parse(const std::string& payload);
};

struct PurgeInstancesMsg {
  std::vector<InstanceId> committed;
  std::string Serialize() const;
  static Result<PurgeInstancesMsg> Parse(const std::string& payload);
};

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_WIRE_H_
