#ifndef CREW_STORAGE_DATABASE_H_
#define CREW_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace crew::storage {

/// A named collection of Tables with optional WAL-backed durability.
/// Instantiated once per engine (WFDB) and once per agent (AGDB).
///
/// In-memory mode (no Open) journals nothing. Durable mode WALs every
/// mutation; Recover() rebuilds the tables from the log, giving the
/// forward-recovery behaviour the paper attributes to the WFDB (§2) and
/// the AGDB (§4.1).
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Enables durability: mutations append to `<dir>/<name>.wal`.
  Status OpenDurable(const std::string& dir);

  /// Restores state into the (empty) tables: loads the last checkpoint
  /// snapshot if one exists, then replays the WAL tail. Call before
  /// OpenDurable's first mutation after a crash.
  Status Recover(const std::string& dir);

  /// Crash-restart recovery for a *live* database: closes the WAL,
  /// discards all in-memory rows, reloads the snapshot, replays the log
  /// through Wal::Recover (truncating any torn tail), and reopens for
  /// appending. This is what a killed-and-restarted node runs before
  /// rejoining — and what the rt backend's recovery hook runs so the
  /// in-process crash path exercises the same code. Returns the number
  /// of WAL records replayed. Precondition: the database is durable.
  Result<int64_t> RestartRecover(const std::string& dir);

  /// Writes a full snapshot of every table to `<dir>/<name>.snap` and
  /// truncates the WAL, bounding recovery time. Crash-safe: the snapshot
  /// is written to a temporary file and renamed into place before the
  /// WAL is truncated.
  Status Checkpoint(const std::string& dir);

  /// Returns the table, creating it on first use.
  Table& table(const std::string& table_name);
  const Table* FindTable(const std::string& table_name) const;

  const std::string& name() const { return name_; }
  bool durable() const { return wal_.is_open(); }

  /// Number of journaled mutations since open (for tests/metrics).
  int64_t journaled_mutations() const { return journaled_; }

 private:
  void JournalMutation(const std::string& table, const std::string& key,
                       const Row* row);
  Status LoadSnapshot(const std::string& dir);
  void ApplyWalRecord(const std::string& record);

  std::string name_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  Wal wal_;
  int64_t journaled_ = 0;
};

}  // namespace crew::storage

#endif  // CREW_STORAGE_DATABASE_H_
