#include "runtime/packet.h"

#include <charconv>
#include <cstdlib>

#include "common/strings.h"
#include "runtime/codec.h"
#include "runtime/kv.h"

namespace crew::runtime {

namespace {

// Binary packet field tags: (field << 2) | wire_type, wire types
// 0 = varint, 1 = length-prefixed bytes. Counted sections (tag, entry
// count, then that many fixed-layout entries) replace per-entry tags —
// the entry layouts are fixed by this codec version and the count gives
// parsers an exact reserve.
constexpr uint8_t kPkWf = (1 << 2) | 1;
constexpr uint8_t kPkInst = (2 << 2) | 0;
constexpr uint8_t kPkStep = (3 << 2) | 0;
constexpr uint8_t kPkEpoch = (4 << 2) | 0;
constexpr uint8_t kPkData = (5 << 2) | 0;
constexpr uint8_t kPkEvents = (6 << 2) | 0;
constexpr uint8_t kPkBy = (7 << 2) | 0;
constexpr uint8_t kPkRo = (8 << 2) | 0;
constexpr uint8_t kPkRd = (9 << 2) | 0;
constexpr uint8_t kPkCoord = (10 << 2) | 0;

bool ReadLink(BinReader& r, InstanceId* other, StepId* my_step,
              StepId* other_step) {
  std::string_view wf;
  int64_t number, mine, theirs;
  if (!r.Bytes(&wf) || !r.Zig(&number) || !r.Zig(&mine) ||
      !r.Zig(&theirs)) {
    return false;
  }
  other->workflow.assign(wf);
  other->number = number;
  *my_step = static_cast<StepId>(mine);
  *other_step = static_cast<StepId>(theirs);
  return true;
}

Result<WorkflowPacket> ParseBinaryPacket(std::string_view payload) {
  BinReader r(payload.substr(2));  // past magic + message id
  WorkflowPacket p;
  bool saw_wf = false, saw_inst = false, saw_step = false;
  while (!r.done()) {
    uint8_t tag;
    if (!r.U8(&tag)) break;
    switch (tag) {
      case kPkWf: {
        std::string_view wf;
        if (!r.Bytes(&wf)) return Status::Corruption("bad packet wf");
        p.instance.workflow.assign(wf);
        saw_wf = true;
        break;
      }
      case kPkInst:
        if (!r.Zig(&p.instance.number)) {
          return Status::Corruption("bad packet inst");
        }
        saw_inst = true;
        break;
      case kPkStep: {
        int64_t step;
        if (!r.Zig(&step)) return Status::Corruption("bad packet step");
        p.target_step = static_cast<StepId>(step);
        saw_step = true;
        break;
      }
      case kPkEpoch:
        if (!r.Zig(&p.epoch)) return Status::Corruption("bad packet epoch");
        break;
      case kPkCoord: {
        int64_t coord;
        if (!r.Zig(&coord)) return Status::Corruption("bad packet coord");
        p.coordinator = static_cast<NodeId>(coord);
        break;
      }
      case kPkData: {
        uint64_t count;
        if (!r.Varint(&count) || count > r.remaining()) {
          return Status::Corruption("bad packet data section");
        }
        // Honest encoders write entries in sorted order, so operator[]
        // hits the append fast path; out-of-order input still lands in
        // the right slot via the binary-search fallback.
        p.data.reserve(p.data.size() + count);
        for (uint64_t i = 0; i < count; ++i) {
          std::string_view key;
          Value value;
          if (!r.Bytes(&key) || !ReadValue(r, &value)) {
            return Status::Corruption("bad packet data entry");
          }
          p.data[key] = std::move(value);
        }
        break;
      }
      case kPkEvents: {
        uint64_t count;
        if (!r.Varint(&count) || count > r.remaining()) {
          return Status::Corruption("bad packet event section");
        }
        p.events.reserve(p.events.size() + count);
        for (uint64_t i = 0; i < count; ++i) {
          std::string_view name;
          int64_t occ, epoch;
          if (!r.Bytes(&name) || !r.Zig(&occ) || !r.Zig(&epoch)) {
            return Status::Corruption("bad packet event entry");
          }
          p.events.emplace_back(rules::InternToken(name), occ, epoch);
        }
        break;
      }
      case kPkBy: {
        uint64_t count;
        if (!r.Varint(&count) || count > r.remaining()) {
          return Status::Corruption("bad packet by section");
        }
        p.executed_by.reserve(p.executed_by.size() + count);
        for (uint64_t i = 0; i < count; ++i) {
          int64_t step, agent;
          if (!r.Zig(&step) || !r.Zig(&agent)) {
            return Status::Corruption("bad packet by entry");
          }
          p.executed_by[static_cast<StepId>(step)] =
              static_cast<NodeId>(agent);
        }
        break;
      }
      case kPkRo: {
        uint64_t count;
        if (!r.Varint(&count) || count > r.remaining()) {
          return Status::Corruption("bad packet ro section");
        }
        p.ro_links.reserve(p.ro_links.size() + count);
        for (uint64_t i = 0; i < count; ++i) {
          RoLink link;
          uint8_t leading;
          if (!ReadLink(r, &link.other, &link.my_step, &link.other_step) ||
              !r.U8(&leading)) {
            return Status::Corruption("bad packet ro entry");
          }
          link.leading = leading != 0;
          p.ro_links.push_back(std::move(link));
        }
        break;
      }
      case kPkRd: {
        uint64_t count;
        if (!r.Varint(&count) || count > r.remaining()) {
          return Status::Corruption("bad packet rd section");
        }
        p.rd_links.reserve(p.rd_links.size() + count);
        for (uint64_t i = 0; i < count; ++i) {
          RdLink link;
          if (!ReadLink(r, &link.other, &link.my_step, &link.other_step)) {
            return Status::Corruption("bad packet rd entry");
          }
          p.rd_links.push_back(std::move(link));
        }
        break;
      }
      default:
        return Status::Corruption("unknown packet field tag " +
                                  std::to_string(tag));
    }
  }
  if (!saw_wf || !saw_inst || !saw_step) {
    return Status::Corruption("binary packet missing required fields");
  }
  return p;
}

}  // namespace

std::string RoLink::Serialize() const {
  return other.workflow + "#" + std::to_string(other.number) + ":S" +
         std::to_string(my_step) + ">S" + std::to_string(other_step);
}

Result<RoLink> RoLink::Parse(const std::string& text, bool leading) {
  // Format: <wf>#<num>:S<my>>S<other>
  size_t hash = text.rfind('#');
  size_t colon = text.find(':', hash == std::string::npos ? 0 : hash);
  if (hash == std::string::npos || colon == std::string::npos) {
    return Status::Corruption("bad RO link: " + text);
  }
  RoLink link;
  link.leading = leading;
  link.other.workflow = text.substr(0, hash);
  link.other.number = strtoll(text.c_str() + hash + 1, nullptr, 10);
  const char* p = text.c_str() + colon + 1;
  if (*p != 'S') return Status::Corruption("bad RO link steps: " + text);
  char* end = nullptr;
  link.my_step = static_cast<StepId>(strtol(p + 1, &end, 10));
  if (end == nullptr || *end != '>' || *(end + 1) != 'S') {
    return Status::Corruption("bad RO link steps: " + text);
  }
  link.other_step = static_cast<StepId>(strtol(end + 2, nullptr, 10));
  if (link.my_step <= 0 || link.other_step <= 0) {
    return Status::Corruption("bad RO link steps: " + text);
  }
  return link;
}

std::string RdLink::Serialize() const {
  return other.workflow + "#" + std::to_string(other.number) + ":S" +
         std::to_string(my_step) + ">S" + std::to_string(other_step);
}

Result<RdLink> RdLink::Parse(const std::string& text) {
  Result<RoLink> ro = RoLink::Parse(text, /*leading=*/true);
  if (!ro.ok()) return ro.status();
  RdLink link;
  link.other = ro.value().other;
  link.my_step = ro.value().my_step;
  link.other_step = ro.value().other_step;
  return link;
}

std::string EventOcc::Serialize() const {
  std::string out;
  AppendTo(&out);
  return out;
}

void EventOcc::AppendTo(std::string* out) const {
  out->append(name());
  char buf[48];
  char* p = buf;
  *p++ = '@';
  p = std::to_chars(p, buf + sizeof(buf), occ).ptr;
  *p++ = '@';
  p = std::to_chars(p, buf + sizeof(buf), epoch).ptr;
  out->append(buf, static_cast<size_t>(p - buf));
}

Result<EventOcc> EventOcc::Parse(const std::string& text) {
  size_t at2 = text.rfind('@');
  if (at2 == std::string::npos || at2 == 0) {
    return Status::Corruption("bad event occurrence: " + text);
  }
  size_t at1 = text.rfind('@', at2 - 1);
  if (at1 == std::string::npos || at1 == 0) {
    return Status::Corruption("bad event occurrence: " + text);
  }
  EventOcc e;
  e.token = rules::InternToken(std::string_view(text).substr(0, at1));
  e.occ = strtoll(text.c_str() + at1 + 1, nullptr, 10);
  e.epoch = strtoll(text.c_str() + at2 + 1, nullptr, 10);
  if (e.occ <= 0) {
    return Status::Corruption("bad event occurrence: " + text);
  }
  return e;
}

std::string WorkflowPacket::Serialize() const {
  return ActivePayloadCodec() == PayloadCodec::kBinary ? SerializeBinary()
                                                       : SerializeKv();
}

std::string WorkflowPacket::SerializeKv() const {
  KvWriter w;
  // Pre-size the buffer: fixed header plus a per-entry estimate (key,
  // separators, and typical value widths) so growth never reallocates
  // more than once for ordinary packets.
  size_t estimate = 64 + instance.workflow.size();
  for (const auto& [name, value] : data) {
    (void)value;
    estimate += name.size() + 24;
  }
  for (const EventOcc& e : events) estimate += e.name().size() + 16;
  estimate += executed_by.size() * 16;
  estimate += (ro_links.size() + rd_links.size()) *
              (instance.workflow.size() + 28);
  w.Reserve(estimate);

  w.Add("wf", instance.workflow);
  w.AddInt("inst", instance.number);
  w.AddInt("step", target_step);
  w.AddInt("epoch", epoch);
  if (coordinator != kInvalidNode) w.AddInt("coord", coordinator);
  for (const auto& [name, value] : data) {
    w.AddPrefixed("d.", name, value.ToString());
  }
  std::string scratch;
  for (const EventOcc& e : events) {
    scratch.clear();
    e.AppendTo(&scratch);
    w.Add("ev", scratch);
  }
  char buf[32];
  for (const auto& [step, agent] : executed_by) {
    char* p = std::to_chars(buf, buf + sizeof(buf), step).ptr;
    *p++ = ':';
    p = std::to_chars(p, buf + sizeof(buf), agent).ptr;
    w.Add("by", std::string_view(buf, static_cast<size_t>(p - buf)));
  }
  for (const RoLink& link : ro_links) {
    w.Add(link.leading ? "ro_lead" : "ro_lag", link.Serialize());
  }
  for (const RdLink& link : rd_links) {
    w.Add("rd", link.Serialize());
  }
  return w.Finish();
}

std::string WorkflowPacket::SerializeBinary() const {
  // Upper bound: magic + id, tagged scalars, then the counted sections.
  size_t bound = 2 + 1 + BytesBound(instance.workflow) +
                 4 * (1 + kMaxVarintBytes);
  if (!data.empty()) {
    bound += 1 + 5;
    for (const auto& [name, value] : data) {
      bound += BytesBound(name) + ValueBound(value);
    }
  }
  if (!events.empty()) {
    bound += 1 + 5;
    for (const EventOcc& e : events) {
      bound += BytesBound(e.name()) + 2 * kMaxVarintBytes;
    }
  }
  if (!executed_by.empty()) {
    bound += 1 + 5 + executed_by.size() * 2 * kMaxVarintBytes;
  }
  for (const RoLink& link : ro_links) {
    bound += BytesBound(link.other.workflow) + 3 * kMaxVarintBytes + 1;
  }
  for (const RdLink& link : rd_links) {
    bound += BytesBound(link.other.workflow) + 3 * kMaxVarintBytes;
  }
  bound += 2 * (1 + 5);  // ro/rd section tags + counts

  std::string out;
  BinWriter w(&out, bound);
  w.U8(kBinaryMagic);
  w.U8(static_cast<uint8_t>(BinMsgId::kPacket));
  w.U8(kPkWf);
  w.Bytes(instance.workflow);
  w.U8(kPkInst);
  w.Zig(instance.number);
  w.U8(kPkStep);
  w.Zig(target_step);
  w.U8(kPkEpoch);
  w.Zig(epoch);
  if (coordinator != kInvalidNode) {
    w.U8(kPkCoord);
    w.Zig(coordinator);
  }
  if (!data.empty()) {
    w.U8(kPkData);
    w.Varint(data.size());
    for (const auto& [name, value] : data) {
      w.Bytes(name);
      WriteValue(w, value);
    }
  }
  if (!events.empty()) {
    w.U8(kPkEvents);
    w.Varint(events.size());
    for (const EventOcc& e : events) {
      w.Bytes(e.name());
      w.Zig(e.occ);
      w.Zig(e.epoch);
    }
  }
  if (!executed_by.empty()) {
    w.U8(kPkBy);
    w.Varint(executed_by.size());
    for (const auto& [step, agent] : executed_by) {
      w.Zig(step);
      w.Zig(agent);
    }
  }
  if (!ro_links.empty()) {
    w.U8(kPkRo);
    w.Varint(ro_links.size());
    for (const RoLink& link : ro_links) {
      w.Bytes(link.other.workflow);
      w.Zig(link.other.number);
      w.Zig(link.my_step);
      w.Zig(link.other_step);
      w.U8(link.leading ? 1 : 0);
    }
  }
  if (!rd_links.empty()) {
    w.U8(kPkRd);
    w.Varint(rd_links.size());
    for (const RdLink& link : rd_links) {
      w.Bytes(link.other.workflow);
      w.Zig(link.other.number);
      w.Zig(link.my_step);
      w.Zig(link.other_step);
    }
  }
  w.Finish();
  return out;
}

Result<WorkflowPacket> WorkflowPacket::Parse(const std::string& payload) {
  if (LooksBinary(payload)) {
    if (payload.size() < 2 ||
        payload[1] != static_cast<char>(BinMsgId::kPacket)) {
      return Status::Corruption("binary payload is not a packet");
    }
    return ParseBinaryPacket(payload);
  }
  Result<KvReader> reader = KvReader::Parse(payload);
  if (!reader.ok()) return reader.status();
  const KvReader& r = reader.value();

  WorkflowPacket p;
  Result<std::string> wf = r.GetRequired("wf");
  if (!wf.ok()) return wf.status();
  p.instance.workflow = std::move(wf).value();
  Result<int64_t> inst = r.GetInt("inst");
  if (!inst.ok()) return inst.status();
  p.instance.number = inst.value();
  Result<int64_t> step = r.GetInt("step");
  if (!step.ok()) return step.status();
  p.target_step = static_cast<StepId>(step.value());
  p.epoch = r.GetIntOr("epoch", 0);
  p.coordinator = static_cast<NodeId>(r.GetIntOr("coord", kInvalidNode));

  for (const auto& [key, raw] : r.entries()) {
    if (StartsWith(key, "d.")) {
      Result<Value> v = Value::Parse(raw);
      if (!v.ok()) return v.status();
      p.data[key.substr(2)] = std::move(v).value();
    } else if (key == "ev") {
      Result<EventOcc> e = EventOcc::Parse(raw);
      if (!e.ok()) return e.status();
      p.events.push_back(std::move(e).value());
    } else if (key == "by") {
      size_t colon = raw.find(':');
      if (colon == std::string::npos) {
        return Status::Corruption("bad by entry: " + raw);
      }
      StepId s = static_cast<StepId>(strtol(raw.c_str(), nullptr, 10));
      NodeId n =
          static_cast<NodeId>(strtol(raw.c_str() + colon + 1, nullptr, 10));
      p.executed_by[s] = n;
    } else if (key == "ro_lead" || key == "ro_lag") {
      Result<RoLink> link = RoLink::Parse(raw, key == "ro_lead");
      if (!link.ok()) return link.status();
      p.ro_links.push_back(std::move(link).value());
    } else if (key == "rd") {
      Result<RdLink> link = RdLink::Parse(raw);
      if (!link.ok()) return link.status();
      p.rd_links.push_back(std::move(link).value());
    }
  }
  return p;
}

}  // namespace crew::runtime
