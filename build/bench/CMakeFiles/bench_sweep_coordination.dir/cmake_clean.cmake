file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_coordination.dir/bench_sweep_coordination.cc.o"
  "CMakeFiles/bench_sweep_coordination.dir/bench_sweep_coordination.cc.o.d"
  "bench_sweep_coordination"
  "bench_sweep_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
