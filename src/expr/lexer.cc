#include "expr/lexer.h"

#include <cctype>
#include <cstdlib>

namespace crew::expr {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "double";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kComma: return ",";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kAnd: return "and";
    case TokenKind::kOr: return "or";
    case TokenKind::kNot: return "not";
    case TokenKind::kTrue: return "true";
    case TokenKind::kFalse: return "false";
    case TokenKind::kNull: return "null";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

// Dots join identifier segments so "S1.O2" lexes as one token.
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = src.size();
  auto error_at = [&](size_t pos, const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos) +
                              " in expression: " + src);
  };
  while (i < n) {
    char c = src[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentBody(src[i])) ++i;
      tok.text = src.substr(start, i - start);
      if (tok.text == "and") {
        tok.kind = TokenKind::kAnd;
      } else if (tok.text == "or") {
        tok.kind = TokenKind::kOr;
      } else if (tok.text == "not") {
        tok.kind = TokenKind::kNot;
      } else if (tok.text == "true") {
        tok.kind = TokenKind::kTrue;
      } else if (tok.text == "false") {
        tok.kind = TokenKind::kFalse;
      } else if (tok.text == "null") {
        tok.kind = TokenKind::kNull;
      } else {
        tok.kind = TokenKind::kIdent;
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      // A '.' is part of the number only if followed by a digit; this
      // keeps "1..2" (malformed) from silently lexing.
      if (i + 1 < n && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      }
      if (i < n && (src[i] == 'e' || src[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (src[j] == '+' || src[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) {
          is_double = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(src[i])))
            ++i;
        }
      }
      std::string text = src.substr(start, i - start);
      if (is_double) {
        tok.kind = TokenKind::kDouble;
        tok.double_value = strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        char d = src[i++];
        if (d == '\\' && i < n) {
          char e = src[i++];
          text += (e == 'n') ? '\n' : e;
        } else if (d == '"') {
          closed = true;
          break;
        } else {
          text += d;
        }
      }
      if (!closed) return error_at(tok.offset, "unterminated string");
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }
    auto two = [&](char second) { return i + 1 < n && src[i + 1] == second; };
    switch (c) {
      case '(': tok.kind = TokenKind::kLParen; ++i; break;
      case ')': tok.kind = TokenKind::kRParen; ++i; break;
      case ',': tok.kind = TokenKind::kComma; ++i; break;
      case '+': tok.kind = TokenKind::kPlus; ++i; break;
      case '-': tok.kind = TokenKind::kMinus; ++i; break;
      case '*': tok.kind = TokenKind::kStar; ++i; break;
      case '/': tok.kind = TokenKind::kSlash; ++i; break;
      case '%': tok.kind = TokenKind::kPercent; ++i; break;
      case '=':
        if (!two('=')) return error_at(i, "lone '=' (use '==')");
        tok.kind = TokenKind::kEq;
        i += 2;
        break;
      case '!':
        if (two('=')) {
          tok.kind = TokenKind::kNe;
          i += 2;
        } else {
          tok.kind = TokenKind::kNot;
          ++i;
        }
        break;
      case '<':
        if (two('=')) {
          tok.kind = TokenKind::kLe;
          i += 2;
        } else {
          tok.kind = TokenKind::kLt;
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          tok.kind = TokenKind::kGe;
          i += 2;
        } else {
          tok.kind = TokenKind::kGt;
          ++i;
        }
        break;
      case '&':
        if (!two('&')) return error_at(i, "lone '&' (use '&&')");
        tok.kind = TokenKind::kAnd;
        i += 2;
        break;
      case '|':
        if (!two('|')) return error_at(i, "lone '|' (use '||')");
        tok.kind = TokenKind::kOr;
        i += 2;
        break;
      default:
        return error_at(i, std::string("unexpected character '") + c + "'");
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

}  // namespace crew::expr
