#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace crew::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(5, [&]() { order.push_back(5); });
  queue.ScheduleAt(1, [&]() { order.push_back(1); });
  queue.ScheduleAt(3, [&]() { order.push_back(3); });
  EXPECT_EQ(queue.RunAll(), 3);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(queue.now(), 5);
}

TEST(EventQueueTest, StableAtEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(7, [&order, i]() { order.push_back(i); });
  }
  queue.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleAfterIsRelative) {
  EventQueue queue;
  Time seen = -1;
  queue.ScheduleAt(10, [&]() {
    queue.ScheduleAfter(5, [&]() { seen = queue.now(); });
  });
  queue.RunAll();
  EXPECT_EQ(seen, 15);
}

TEST(EventQueueTest, PastSchedulesClampToNow) {
  EventQueue queue;
  Time seen = -1;
  queue.ScheduleAt(10, [&]() {
    queue.ScheduleAt(3, [&]() { seen = queue.now(); });  // in the past
  });
  queue.RunAll();
  EXPECT_EQ(seen, 10);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue queue;
  int fired = 0;
  for (Time t : {1, 2, 3, 4, 5}) {
    queue.ScheduleAt(t, [&]() { ++fired; });
  }
  EXPECT_EQ(queue.RunUntil(3), 3);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(EventQueueTest, MaxEventsGuard) {
  EventQueue queue;
  // Self-perpetuating event chain: the guard must stop it.
  std::function<void()> loop = [&]() { queue.ScheduleAfter(1, loop); };
  queue.ScheduleAfter(1, loop);
  EXPECT_EQ(queue.RunAll(/*max_events=*/100), 100);
}

class Recorder : public MessageHandler {
 public:
  std::vector<Message> received;
  void HandleMessage(const Message& message) override {
    received.push_back(message);
  }
};

TEST(NetworkTest, DeliversWithLatency) {
  Simulator simulator;
  Recorder recorder;
  simulator.network().Register(7, &recorder);
  simulator.network().set_latency(3);
  ASSERT_TRUE(simulator.network()
                  .Send({1, 7, "Ping", "payload", MsgCategory::kNormal})
                  .ok());
  simulator.queue().RunUntil(2);
  EXPECT_TRUE(recorder.received.empty());
  simulator.Run();
  ASSERT_EQ(recorder.received.size(), 1u);
  EXPECT_EQ(recorder.received[0].payload, "payload");
  EXPECT_EQ(simulator.now(), 3);
}

TEST(NetworkTest, UnknownDestinationRejected) {
  Simulator simulator;
  EXPECT_TRUE(simulator.network()
                  .Send({1, 99, "Ping", "", MsgCategory::kNormal})
                  .IsNotFound());
}

TEST(NetworkTest, DownNodeParksMessagesUntilRecovery) {
  Simulator simulator;
  Recorder recorder;
  simulator.network().Register(7, &recorder);
  simulator.network().SetNodeDown(7, true);
  ASSERT_TRUE(simulator.network()
                  .Send({1, 7, "A", "first", MsgCategory::kNormal})
                  .ok());
  ASSERT_TRUE(simulator.network()
                  .Send({1, 7, "B", "second", MsgCategory::kNormal})
                  .ok());
  simulator.Run();
  EXPECT_TRUE(recorder.received.empty());  // parked, not lost
  simulator.network().SetNodeDown(7, false);
  simulator.Run();
  ASSERT_EQ(recorder.received.size(), 2u);
  EXPECT_EQ(recorder.received[0].payload, "first");   // order preserved
  EXPECT_EQ(recorder.received[1].payload, "second");
}

TEST(NetworkTest, InjectCrashTogglesLiveness) {
  Simulator simulator;
  Recorder recorder;
  simulator.network().Register(5, &recorder);
  InjectCrash(&simulator, 5, /*at=*/10, /*outage=*/20);
  simulator.queue().RunUntil(15);
  EXPECT_TRUE(simulator.network().IsNodeDown(5));
  simulator.queue().RunUntil(31);
  EXPECT_FALSE(simulator.network().IsNodeDown(5));
}

TEST(MetricsTest, CountsByCategoryAndType) {
  Metrics metrics;
  metrics.CountMessage(1, 2, MsgCategory::kNormal, 100, "StepExecute");
  metrics.CountMessage(1, 2, MsgCategory::kNormal, 50, "StepExecute");
  metrics.CountMessage(2, 3, MsgCategory::kFailureHandling, 10,
                       "HaltThread");
  EXPECT_EQ(metrics.TotalMessages(), 3);
  EXPECT_EQ(metrics.TotalBytes(), 160);
  EXPECT_EQ(metrics.MessagesIn(MsgCategory::kNormal), 2);
  EXPECT_EQ(metrics.MessagesIn(MsgCategory::kFailureHandling), 1);
  EXPECT_NE(metrics.TypeBreakdown(MsgCategory::kNormal)
                .find("StepExecute = 2"),
            std::string::npos);
}

TEST(MetricsTest, ModelledMessagesExcludesElectionAndAdmin) {
  Metrics metrics;
  metrics.CountMessage(1, 2, MsgCategory::kNormal, 1);
  metrics.CountMessage(1, 2, MsgCategory::kElection, 1);
  metrics.CountMessage(1, 2, MsgCategory::kAdmin, 1);
  EXPECT_EQ(metrics.TotalMessages(), 3);
  EXPECT_EQ(metrics.ModelledMessages(), 1);
}

TEST(MetricsTest, LoadAccounting) {
  Metrics metrics;
  metrics.AddLoad(1, LoadCategory::kNavigation, 100);
  metrics.AddLoad(1, LoadCategory::kProgram, 500);
  metrics.AddLoad(2, LoadCategory::kNavigation, 300);
  EXPECT_EQ(metrics.LoadAt(1), 600);
  EXPECT_EQ(metrics.LoadAt(1, LoadCategory::kNavigation), 100);
  EXPECT_EQ(metrics.TotalLoad(LoadCategory::kNavigation), 400);
  EXPECT_EQ(metrics.MaxNodeLoad(), 600);
  EXPECT_DOUBLE_EQ(metrics.MeanNodeLoad(), 450.0);
  EXPECT_EQ(metrics.LoadedNodes(), (std::vector<NodeId>{1, 2}));
}

TEST(MetricsTest, ResetClearsEverything) {
  Metrics metrics;
  metrics.CountMessage(1, 2, MsgCategory::kNormal, 10, "X");
  metrics.AddLoad(1, LoadCategory::kProgram, 5);
  metrics.Reset();
  EXPECT_EQ(metrics.TotalMessages(), 0);
  EXPECT_EQ(metrics.TotalLoad(), 0);
  EXPECT_TRUE(metrics.TypeBreakdown(MsgCategory::kNormal).empty());
}

TEST(SimulatorTest, DeterministicRngFork) {
  Simulator a(99), b(99);
  Rng fork_a = a.rng().Fork();
  Rng fork_b = b.rng().Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fork_a.Uniform(0, 1 << 20), fork_b.Uniform(0, 1 << 20));
  }
}

}  // namespace
}  // namespace crew::sim
