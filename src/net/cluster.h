#ifndef CREW_NET_CLUSTER_H_
#define CREW_NET_CLUSTER_H_

#include <chrono>
#include <memory>
#include <vector>

#include "net/node.h"
#include "net/topology.h"
#include "sim/metrics.h"

namespace crew::net {

/// In-process harness: one NetNode per distinct endpoint of a Topology,
/// talking over real sockets (loopback tests, benches). Gives socket
/// transport coverage without process management; crew_node/crew_launch
/// are the one-process-per-endpoint deployment of the same pieces.
class Cluster {
 public:
  explicit Cluster(Topology topology,
                   rt::RuntimeOptions runtime_options = {},
                   SocketTransportOptions transport_options = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  /// Binds every endpoint (all listeners up before any dial).
  Status Bind();
  /// Starts every runtime and transport.
  void Start();
  /// Waits until every endpoint is connected to every other.
  bool WaitConnected(std::chrono::milliseconds timeout);

  /// Cluster-wide quiescence: every runtime quiet AND every transport
  /// idle, swept twice around an unchanged total admission count — the
  /// distributed analogue of rt::Runtime::Quiesce. Requires external
  /// load to have stopped and all nodes up.
  void Quiesce();

  void Shutdown();

  NetNode* At(const Endpoint& endpoint);
  NetNode* HostOf(NodeId id);
  std::vector<NetNode*> nodes();

  /// Sum of every runtime's merged metrics. Call only after Quiesce()
  /// or Shutdown(). Because remote sends are counted in the *sender's*
  /// shard only, this equals the single-runtime metrics for the same
  /// workload.
  sim::Metrics MergedMetrics() const;

  const Topology& topology() const { return topology_; }

 private:
  Topology topology_;
  std::vector<std::unique_ptr<NetNode>> nodes_;
};

}  // namespace crew::net

#endif  // CREW_NET_CLUSTER_H_
