#include "sim/event_queue.h"

#include <utility>

namespace crew::sim {

void EventQueue::ScheduleAt(Time at, Callback fn) {
  if (at < now_) at = now_;  // clamp: never schedule into the past
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle (shared ownership inside std::function).
  Entry top = heap_.top();
  heap_.pop();
  now_ = top.at;
  top.fn();
  return true;
}

int64_t EventQueue::RunAll(int64_t max_events) {
  int64_t n = 0;
  while (n < max_events && RunOne()) ++n;
  return n;
}

int64_t EventQueue::RunUntil(Time until) {
  int64_t n = 0;
  while (!heap_.empty() && heap_.top().at <= until && RunOne()) ++n;
  return n;
}

}  // namespace crew::sim
