#include "model/builder.h"

#include <algorithm>
#include <set>

#include "expr/parser.h"

namespace crew::model {

SchemaBuilder::SchemaBuilder(std::string workflow_name) {
  schema_.name_ = std::move(workflow_name);
}

StepId SchemaBuilder::AddStep(Step step) {
  step.id = static_cast<StepId>(schema_.steps_.size() + 1);
  if (step.name.empty()) step.name = "S" + std::to_string(step.id);
  schema_.steps_.push_back(std::move(step));
  return schema_.steps_.back().id;
}

StepId SchemaBuilder::AddTask(const std::string& name,
                              const std::string& program, int64_t cost) {
  Step s;
  s.name = name;
  s.program = program;
  s.cost = cost;
  return AddStep(std::move(s));
}

StepId SchemaBuilder::AddSubWorkflow(const std::string& name,
                                     const std::string& child_schema) {
  Step s;
  s.name = name;
  s.kind = StepKind::kSubWorkflow;
  s.sub_workflow = child_schema;
  return AddStep(std::move(s));
}

Step& SchemaBuilder::step(StepId id) { return schema_.mutable_step(id); }

SchemaBuilder& SchemaBuilder::Arc(StepId from, StepId to) {
  pending_arcs_.push_back({from, to, "", false, false});
  return *this;
}

SchemaBuilder& SchemaBuilder::CondArc(StepId from, StepId to,
                                      const std::string& condition) {
  pending_arcs_.push_back({from, to, condition, false, false});
  return *this;
}

SchemaBuilder& SchemaBuilder::ElseArc(StepId from, StepId to) {
  pending_arcs_.push_back({from, to, "", true, false});
  return *this;
}

SchemaBuilder& SchemaBuilder::BackArc(StepId from, StepId to,
                                      const std::string& condition) {
  pending_arcs_.push_back({from, to, condition, false, true});
  return *this;
}

SchemaBuilder& SchemaBuilder::DataFlow(StepId from, StepId to,
                                       const std::string& item) {
  schema_.data_arcs_.push_back({from, to, item});
  return *this;
}

SchemaBuilder& SchemaBuilder::SetJoin(StepId id, JoinKind join) {
  if (schema_.has_step(id)) {
    schema_.mutable_step(id).join = join;
  } else {
    errors_.push_back("SetJoin: no step S" + std::to_string(id));
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::SetStart(StepId id) {
  schema_.start_step_ = id;
  return *this;
}

SchemaBuilder& SchemaBuilder::DeclareInput(const std::string& item) {
  schema_.workflow_inputs_.push_back(item);
  return *this;
}

SchemaBuilder& SchemaBuilder::AddCompDepSet(std::vector<StepId> steps) {
  schema_.comp_dep_sets_.push_back({std::move(steps)});
  return *this;
}

SchemaBuilder& SchemaBuilder::TerminalGroup(std::vector<StepId> steps) {
  schema_.terminal_groups_.push_back(std::move(steps));
  return *this;
}

SchemaBuilder& SchemaBuilder::OnFail(StepId step_id, StepId rollback_to,
                                     int max_attempts) {
  if (schema_.has_step(step_id)) {
    schema_.mutable_step(step_id).failure.rollback_to = rollback_to;
    schema_.mutable_step(step_id).failure.max_attempts = max_attempts;
  } else {
    errors_.push_back("OnFail: no step S" + std::to_string(step_id));
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::Sequence(const std::vector<StepId>& ids) {
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    Arc(ids[i], ids[i + 1]);
  }
  return *this;
}

SchemaBuilder& SchemaBuilder::Parallel(
    StepId from,
    const std::vector<std::pair<StepId, StepId>>& branch_entry_exits,
    StepId join_step) {
  for (const auto& [entry, exit] : branch_entry_exits) {
    Arc(from, entry);
    Arc(exit, join_step);
  }
  SetJoin(join_step, JoinKind::kAnd);
  return *this;
}

SchemaBuilder& SchemaBuilder::Choice(
    StepId from,
    const std::vector<std::pair<std::string, StepId>>& cond_entries,
    StepId else_entry, const std::vector<StepId>& branch_exits,
    StepId join_step) {
  for (const auto& [condition, entry] : cond_entries) {
    CondArc(from, entry, condition);
  }
  if (else_entry != kInvalidStep) ElseArc(from, else_entry);
  for (StepId exit : branch_exits) Arc(exit, join_step);
  SetJoin(join_step, JoinKind::kOr);
  return *this;
}

Result<Schema> SchemaBuilder::Build() {
  if (built_) return Status::FailedPrecondition("Build() called twice");
  built_ = true;
  if (!errors_.empty()) {
    return Status::InvalidArgument("schema " + schema_.name_ + ": " +
                                   errors_.front());
  }
  if (schema_.steps_.empty()) {
    return Status::InvalidArgument("schema " + schema_.name_ +
                                   " has no steps");
  }

  // Materialize arcs, parsing conditions.
  for (const PendingArc& p : pending_arcs_) {
    if (!schema_.has_step(p.from) || !schema_.has_step(p.to)) {
      return Status::InvalidArgument(
          "arc references missing step: S" + std::to_string(p.from) +
          " -> S" + std::to_string(p.to));
    }
    ControlArc arc;
    arc.from = p.from;
    arc.to = p.to;
    arc.is_else = p.is_else;
    arc.is_back_edge = p.is_back_edge;
    if (!p.condition.empty()) {
      Result<expr::NodePtr> cond = expr::ParseExpression(p.condition);
      if (!cond.ok()) {
        return Status::ParseError("arc S" + std::to_string(p.from) +
                                  "->S" + std::to_string(p.to) + ": " +
                                  cond.status().message());
      }
      arc.condition = std::move(cond).value();
    }
    schema_.control_arcs_.push_back(std::move(arc));
  }

  // Determine the start step if not set: unique step with no incoming
  // forward arcs.
  if (schema_.start_step_ == kInvalidStep) {
    std::vector<int> in_degree(schema_.steps_.size() + 1, 0);
    for (const ControlArc& a : schema_.control_arcs_) {
      if (!a.is_back_edge) ++in_degree[a.to];
    }
    for (const Step& s : schema_.steps_) {
      if (in_degree[s.id] == 0) {
        if (schema_.start_step_ != kInvalidStep) {
          return Status::InvalidArgument(
              "multiple start candidates (S" +
              std::to_string(schema_.start_step_) + ", S" +
              std::to_string(s.id) + "); use SetStart()");
        }
        schema_.start_step_ = s.id;
      }
    }
    if (schema_.start_step_ == kInvalidStep) {
      return Status::InvalidArgument("no start step (cycle without entry)");
    }
  }

  // Default terminal groups: terminals not covered by an explicit group
  // become singleton groups.
  {
    std::vector<int> out_degree(schema_.steps_.size() + 1, 0);
    for (const ControlArc& a : schema_.control_arcs_) {
      if (!a.is_back_edge) ++out_degree[a.from];
    }
    std::set<StepId> grouped;
    for (const auto& g : schema_.terminal_groups_) {
      grouped.insert(g.begin(), g.end());
    }
    for (const Step& s : schema_.steps_) {
      if (out_degree[s.id] == 0 && grouped.count(s.id) == 0) {
        schema_.terminal_groups_.push_back({s.id});
      }
    }
  }

  // Mark loop-body steps: for each back edge (from -> to), every step on
  // a forward path from `to` to `from` (inclusive) is loop-enclosed and
  // must not be compensated on plain loop re-execution.
  {
    const int n = schema_.num_steps();
    std::vector<std::vector<StepId>> succ(n + 1);
    for (const ControlArc& a : schema_.control_arcs_) {
      if (!a.is_back_edge) succ[a.from].push_back(a.to);
    }
    auto reaches = [&](StepId from, StepId to) {
      std::vector<bool> seen(n + 1, false);
      std::vector<StepId> stack = {from};
      seen[from] = true;
      while (!stack.empty()) {
        StepId cur = stack.back();
        stack.pop_back();
        if (cur == to) return true;
        for (StepId next : succ[cur]) {
          if (!seen[next]) {
            seen[next] = true;
            stack.push_back(next);
          }
        }
      }
      return false;
    };
    for (const ControlArc& a : schema_.control_arcs_) {
      if (!a.is_back_edge) continue;
      for (StepId id = 1; id <= n; ++id) {
        bool in_body = (id == a.to || id == a.from) ||
                       (reaches(a.to, id) && reaches(id, a.from));
        if (in_body) {
          schema_.mutable_step(id).ocr.compensate_before_reexec = false;
        }
      }
    }
  }

  CREW_RETURN_IF_ERROR(Validate(schema_));
  return std::move(schema_);
}

Status SchemaBuilder::Validate(const Schema& schema) const {
  const int n = schema.num_steps();

  // Split consistency: outgoing forward arcs are either all unconditional
  // or (>=1 conditional, <=1 else, 0 plain unconditional).
  for (StepId id = 1; id <= n; ++id) {
    int conditional = 0, plain = 0, else_arcs = 0;
    for (const ControlArc& a : schema.control_arcs()) {
      if (a.from != id || a.is_back_edge) continue;
      if (a.condition) {
        ++conditional;
      } else if (a.is_else) {
        ++else_arcs;
      } else {
        ++plain;
      }
    }
    if (conditional > 0 && plain > 0) {
      return Status::InvalidArgument(
          "S" + std::to_string(id) +
          " mixes conditional and unconditional outgoing arcs");
    }
    if (else_arcs > 1) {
      return Status::InvalidArgument("S" + std::to_string(id) +
                                     " has multiple else arcs");
    }
    if (else_arcs == 1 && conditional == 0) {
      return Status::InvalidArgument(
          "S" + std::to_string(id) +
          " has an else arc but no conditional arcs");
    }
  }

  // Join declarations for multi-input steps.
  {
    std::vector<int> in_degree(n + 1, 0);
    for (const ControlArc& a : schema.control_arcs()) ++in_degree[a.to];
    for (StepId id = 1; id <= n; ++id) {
      if (in_degree[id] > 1 && schema.step(id).join == JoinKind::kNone) {
        return Status::InvalidArgument(
            "S" + std::to_string(id) +
            " has multiple incoming arcs but no declared join kind");
      }
    }
  }

  // Acyclicity of the forward graph (back edges removed): Kahn's
  // algorithm must consume every step.
  {
    std::vector<int> in_degree(n + 1, 0);
    std::vector<std::vector<StepId>> succ(n + 1);
    for (const ControlArc& a : schema.control_arcs()) {
      if (a.is_back_edge) continue;
      ++in_degree[a.to];
      succ[a.from].push_back(a.to);
    }
    std::vector<StepId> frontier;
    for (StepId id = 1; id <= n; ++id) {
      if (in_degree[id] == 0) frontier.push_back(id);
    }
    int seen = 0;
    while (!frontier.empty()) {
      StepId cur = frontier.back();
      frontier.pop_back();
      ++seen;
      for (StepId next : succ[cur]) {
        if (--in_degree[next] == 0) frontier.push_back(next);
      }
    }
    if (seen != n) {
      return Status::InvalidArgument(
          "forward control graph has a cycle; mark loop arcs with "
          "BackArc()");
    }
  }

  // Reachability from the start step (forward + back edges).
  {
    std::vector<std::vector<StepId>> succ(n + 1);
    for (const ControlArc& a : schema.control_arcs()) {
      succ[a.from].push_back(a.to);
    }
    std::vector<bool> reachable(n + 1, false);
    std::vector<StepId> frontier = {schema.start_step()};
    reachable[schema.start_step()] = true;
    while (!frontier.empty()) {
      StepId cur = frontier.back();
      frontier.pop_back();
      for (StepId next : succ[cur]) {
        if (!reachable[next]) {
          reachable[next] = true;
          frontier.push_back(next);
        }
      }
    }
    for (StepId id = 1; id <= n; ++id) {
      if (!reachable[id]) {
        return Status::InvalidArgument("S" + std::to_string(id) +
                                       " is unreachable from the start step");
      }
    }
  }

  // Rollback targets and comp-dep-set members must exist.
  for (const Step& s : schema.steps()) {
    if (s.failure.rollback_to != kInvalidStep &&
        !schema.has_step(s.failure.rollback_to)) {
      return Status::InvalidArgument(
          "S" + std::to_string(s.id) + " rollback target S" +
          std::to_string(s.failure.rollback_to) + " does not exist");
    }
    if (s.kind == StepKind::kSubWorkflow && s.sub_workflow.empty()) {
      return Status::InvalidArgument("S" + std::to_string(s.id) +
                                     " is a sub-workflow with no schema");
    }
    if (s.kind == StepKind::kTask && s.program.empty()) {
      return Status::InvalidArgument("S" + std::to_string(s.id) +
                                     " has no program");
    }
  }
  for (const CompDepSet& set : schema.comp_dep_sets()) {
    for (StepId id : set.steps) {
      if (!schema.has_step(id)) {
        return Status::InvalidArgument(
            "comp-dep-set references missing step S" + std::to_string(id));
      }
    }
  }

  // Terminal groups exactly cover the terminal steps, no duplicates.
  {
    std::vector<int> out_degree(n + 1, 0);
    for (const ControlArc& a : schema.control_arcs()) {
      if (!a.is_back_edge) ++out_degree[a.from];
    }
    std::set<StepId> grouped;
    for (const auto& group : schema.terminal_groups()) {
      for (StepId id : group) {
        if (!schema.has_step(id)) {
          return Status::InvalidArgument(
              "terminal group references missing step S" +
              std::to_string(id));
        }
        if (out_degree[id] != 0) {
          return Status::InvalidArgument(
              "terminal group member S" + std::to_string(id) +
              " is not a terminal step");
        }
        if (!grouped.insert(id).second) {
          return Status::InvalidArgument(
              "S" + std::to_string(id) + " appears in two terminal groups");
        }
      }
    }
    for (StepId id = 1; id <= n; ++id) {
      if (out_degree[id] == 0 && grouped.count(id) == 0) {
        return Status::Internal("terminal step S" + std::to_string(id) +
                                " not grouped (builder bug)");
      }
    }
  }

  return Status::OK();
}

}  // namespace crew::model
