// Reproduces Table 4: Load and Physical Messages in Centralized Workflow
// Control. Runs the Table 3 midpoint workload on the central engine and
// prints the paper's analytic expressions next to measured values.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  crew::bench::BenchSession session("table4_central", argc, argv,
                                    /*default_json=*/true);
  crew::workload::Params params;  // Table 3 midpoints
  params.num_schemas = 20;
  params.instances_per_schema = 10;

  crew::workload::RunResult result = crew::workload::RunWorkload(
      params, crew::workload::Architecture::kCentral, session.tracer());
  session.Record("central", result);

  crew::bench::PrintTable(
      "Table 4: Centralized Workflow Control (paper vs measured)", params,
      result, crew::analysis::CentralLoad(params),
      crew::analysis::CentralMessages(params),
      crew::bench::CentralEngineNodes());
  session.Finish();
  return 0;
}
