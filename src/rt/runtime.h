#ifndef CREW_RT_RUNTIME_H_
#define CREW_RT_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "rt/mailbox.h"
#include "sim/context.h"

namespace crew::rt {

/// Escape hatch for node ids the runtime does not host. When a send (or a
/// down-flag query) names a node with no local cell, the runtime hands it
/// to the installed router instead of failing — the seam `src/net` uses
/// to stretch one logical node space across OS processes. Implementations
/// must honour the Transport contract for the ids they own: reliable,
/// in-order per sender-receiver pair, down-node parking.
class RemoteRouter {
 public:
  virtual ~RemoteRouter() = default;

  /// Routes a message whose destination is not hosted here. Called from
  /// worker threads; must be thread-safe.
  virtual Status RouteRemote(sim::Message message) = 0;

  virtual void SetRemoteDown(NodeId id, bool down) = 0;
  virtual bool IsRemoteDown(NodeId id) const = 0;
};

struct RuntimeOptions {
  /// Root seed; each node's RNG stream is SplitMix64-derived from
  /// (seed, node id), so streams are stable across thread interleavings.
  uint64_t seed = 42;
  /// Wall microseconds per sim::Time tick. Engines express timeouts in
  /// ticks; the runtime converts at this rate. 50µs keeps the dist
  /// pending-check cadence (tens of ticks) in the low-millisecond range.
  int64_t tick_us = 50;
  /// Per-node mailbox bound; cross-node senders block when it fills.
  size_t mailbox_capacity = 1 << 16;
  /// Consumer spin iterations before parking on the mailbox condvar.
  int spin_iterations = 256;
  /// Trace sink shared by all nodes, or nullptr for no tracing. The
  /// runtime serializes access and stamps records with wall ticks.
  obs::Tracer* tracer = nullptr;
};

/// Counters describing one run, aggregated over all cells at read time.
struct RuntimeStats {
  int64_t messages_delivered = 0;  // cross-node deliveries dispatched
  int64_t messages_parked = 0;     // deliveries deferred by a down node
  int64_t timers_fired = 0;        // delayed callbacks dispatched
  int64_t mailbox_parks = 0;       // consumer condvar waits (all cells)
  size_t max_mailbox_depth = 0;    // deepest queue seen on any cell
  size_t mailbox_depth = 0;        // gauge: tasks queued now, all cells
  int num_workers = 0;
};

/// Live execution backend: runs the unmodified engines and agents on real
/// threads. Each node becomes a *cell* — a worker thread draining a
/// bounded MPSC mailbox — so every node is single-threaded with respect
/// to its own state, exactly as under the virtual-time Simulator; only
/// the transport boundary is concurrent. Time is the monotonic wall
/// clock scaled to ticks (options.tick_us).
///
/// Lifecycle: construct -> systems call ContextFor() while assembling
/// (single-threaded) -> Start() spawns workers + timer thread -> drive
/// load with Post() -> Quiesce() waits for the system to go idle ->
/// inspect MergedMetrics()/engine state -> Shutdown() joins everything.
class Runtime : public sim::Backend {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Returns (creating on first use) the context for `id`. Must only be
  /// called before Start() — systems wire nodes during assembly.
  sim::Context* ContextFor(NodeId id) override;

  /// Spawns one worker per cell plus the timer thread.
  void Start();

  /// Injects `fn` into `node`'s mailbox from outside the runtime (the
  /// bench driver starting workflows, tests flipping failure switches).
  /// Blocks for backpressure while the mailbox is full.
  void Post(NodeId node, std::function<void()> fn);

  /// Blocks until the system is quiescent: every mailbox empty, every
  /// worker between tasks, and no pending or in-flight timers — checked
  /// twice with an unchanged global work counter, so no task can be in
  /// flight between the sweeps. Requires externally-driven load to have
  /// stopped (no more Post calls) and all nodes up (a down node parks
  /// work forever). Precondition: Start() was called.
  void Quiesce();

  /// Stops everything: closes mailboxes (remaining tasks drain, new work
  /// is dropped), stops the timer thread (pending timers discarded) and
  /// joins all threads. Idempotent. For a loss-free stop, Quiesce()
  /// first. After Shutdown the cells' state (engines, metrics shards)
  /// can be inspected from the calling thread — the joins order every
  /// worker write before the inspection.
  void Shutdown();

  /// Current wall time in ticks since construction.
  sim::Time now() const;
  int64_t tick_us() const { return options_.tick_us; }

  /// Sum of all per-cell metrics shards. Call only when quiescent (after
  /// Quiesce() or Shutdown()); each shard is single-writer by its cell.
  sim::Metrics MergedMetrics() const;

  /// Live (mid-run) merged metrics: asks every cell, on its own worker,
  /// to copy its shard into a locked snapshot slot, waits up to `wait`
  /// for the copies, then merges whatever snapshots exist. Cells that
  /// did not get to their copy task in time contribute their *previous*
  /// snapshot (possibly empty) — the wait is bounded, never exact. The
  /// single-writer shard discipline is preserved: no foreign thread
  /// ever reads a live shard. Safe before Start() and after Shutdown()
  /// (copies directly — the caller is then the only thread).
  sim::Metrics SampleMetrics(std::chrono::milliseconds wait);

  /// Merge of the snapshots taken by previous SampleMetrics calls,
  /// without requesting new copies. Cheap; callable from any thread.
  sim::Metrics LatestMetricsSnapshot() const;

  /// The serializing tracer shared by all cells — never null (a no-op
  /// wrapper when options.tracer was null). The socket transport takes
  /// this as its flow-span sink so sender-side spans serialize with the
  /// cells' own records.
  obs::Tracer* tracer() const;

  RuntimeStats Stats() const;

  /// Crash/recover a node, as sim::Simulator::InjectCrash does: down
  /// nodes park inbound messages; recovery flushes them in order.
  /// Timers for a down node still fire (the paper's model restarts
  /// engines with state recovered from the log, so self-probes survive).
  void SetNodeDown(NodeId id, bool down);
  bool IsNodeDown(NodeId id) const;

  /// Installs the router consulted for node ids with no local cell:
  /// sends fall through to it, and SetNodeDown/IsNodeDown on unknown ids
  /// delegate to it. Must be set before Start(); pass nullptr to clear.
  void SetRemoteRouter(RemoteRouter* router) { remote_router_ = router; }

  /// Delivers a message that arrived from a remote peer into its local
  /// destination cell, respecting down-parking (ForcePush path — never
  /// blocks, so transport threads cannot deadlock against full
  /// mailboxes). Thread-safe; callable while the runtime is live.
  Status DeliverRemote(sim::Message message);

  /// Registers a callback run on `id`'s own worker thread when the node
  /// recovers (SetNodeDown(id, false)), *before* any message parked
  /// during the outage is dispatched. This is the crash-recovery seam:
  /// the hook replays the node's write-ahead log (storage::Wal::Recover)
  /// to rebuild engine state ahead of the flushed backlog.
  void SetRecoveryHook(NodeId id, std::function<void()> hook);

  /// One all-quiet sweep: every mailbox idle, no pending or in-flight
  /// timers. A single true sweep is not termination — pair two sweeps
  /// around an unchanged AdmittedWork() (what Quiesce() does), or
  /// combine sweeps across processes for a cluster-level quiesce.
  bool LooksQuiet() const;
  /// Monotonic admission counter (mailbox pushes + timer fires).
  int64_t AdmittedWork() const;

  size_t num_nodes() const { return cells_.size(); }
  bool started() const { return started_; }

 private:
  struct Cell;
  class NodeTransport;
  class NodeScheduler;
  class NodeContext;
  class SerialTracer;

  struct TimerEntry {
    int64_t due_us;    // wall deadline, µs since start_
    uint64_t seq;      // tie-breaker: insertion order
    Cell* cell;
    Mailbox::Task fn;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.due_us != b.due_us) return a.due_us > b.due_us;
      return a.seq > b.seq;
    }
  };

  Cell* FindCell(NodeId id) const;
  /// Routes one message: counts it in the *sender's* shard, then either
  /// parks it (destination down) or enqueues a delivery task. Returns
  /// NotFound for unregistered destinations.
  Status Route(sim::Message message, sim::Time sent);
  /// Routes one delivery: lock-free mailbox push while the destination
  /// is up; route_mu slow path (park or push) while it is down.
  void EnqueueDelivery(Cell* cell, sim::Message message, sim::Time sent);
  /// Wraps `message` in the dispatch task and force-pushes it.
  void PushDelivery(Cell* cell, sim::Message message, sim::Time sent);
  /// Schedules `fn` on `cell` at absolute tick `at` via the timer thread
  /// (or directly if already due).
  void ScheduleTimer(Cell* cell, sim::Time at, Mailbox::Task fn);
  void WorkerLoop(Cell* cell);
  void TimerLoop();

  RuntimeOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::unique_ptr<SerialTracer> tracer_;

  /// Node id -> cell. Mutated only before Start() (node-pointer lookups
  /// during the run are concurrent reads of a frozen map).
  std::map<NodeId, std::unique_ptr<Cell>> cells_;
  /// Fallback for ids outside cells_. Set before Start(); read-only
  /// afterwards (the spawn of the worker threads publishes it).
  RemoteRouter* remote_router_ = nullptr;
  bool started_ = false;
  bool shut_down_ = false;

  // ---- timer thread ----
  std::thread timer_thread_;
  mutable std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  /// Binary heap via std::push_heap/pop_heap (same idiom as EventQueue:
  /// entries can be moved out on pop).
  std::vector<TimerEntry> timer_heap_;
  uint64_t timer_seq_ = 0;
  int timer_in_flight_ = 0;  // popped but not yet pushed to a mailbox
  bool timer_stop_ = false;
  std::atomic<int64_t> timers_fired_{0};
};

}  // namespace crew::rt

#endif  // CREW_RT_RUNTIME_H_
