#include "parallel/system.h"

#include <functional>

namespace crew::parallel {

ParallelSystem::ParallelSystem(sim::Backend* backend,
                               const runtime::ProgramRegistry* programs,
                               const model::Deployment* deployment,
                               const runtime::CoordinationSpec* coordination,
                               int num_engines, int num_agents,
                               central::EngineOptions options)
    : tracker_(coordination) {
  for (int i = 0; i < num_engines; ++i) {
    NodeId id = 1 + i;
    sim::Context* context = backend->ContextFor(id);
    engines_.push_back(std::make_unique<central::WorkflowEngine>(
        id, context, programs, deployment, coordination, options));
    engines_.back()->set_shared_tracker(&tracker_);
    engines_.back()->set_topology(this);
    engine_ids_.push_back(id);
    context->tracer().SetNodeName(id, "engine-" + std::to_string(id));
  }
  for (int i = 0; i < num_agents; ++i) {
    NodeId id = 1 + num_engines + i;
    sim::Context* context = backend->ContextFor(id);
    agents_.push_back(
        std::make_unique<central::ThinAgent>(id, context, programs));
    agent_ids_.push_back(id);
    context->tracer().SetNodeName(id, "agent-" + std::to_string(id));
  }
}

void ParallelSystem::RegisterSchema(model::CompiledSchemaPtr schema) {
  for (auto& engine : engines_) {
    engine->RegisterSchema(schema);
  }
}

central::WorkflowEngine& ParallelSystem::OwnerOf(
    const InstanceId& instance) {
  return *engines_[static_cast<size_t>(OwnerEngine(instance) - 1)];
}

const central::WorkflowEngine& ParallelSystem::OwnerOf(
    const InstanceId& instance) const {
  return *engines_[static_cast<size_t>(OwnerEngine(instance) - 1)];
}

Status ParallelSystem::StartWorkflow(const std::string& workflow,
                                     int64_t number,
                                     std::map<std::string, Value> inputs) {
  InstanceId instance{workflow, number};
  if (placement_ != nullptr) {
    // Sticky policies record the decision here; OwnerEngine recalls it.
    placement_->Place(instance, engine_ids_);
  }
  return OwnerOf(instance).StartWorkflow(workflow, number,
                                         std::move(inputs));
}

Status ParallelSystem::AbortWorkflow(const InstanceId& instance) {
  return OwnerOf(instance).AbortWorkflow(instance);
}

Status ParallelSystem::ChangeInputs(
    const InstanceId& instance, std::map<std::string, Value> new_inputs) {
  return OwnerOf(instance).ChangeInputs(instance, std::move(new_inputs));
}

runtime::WorkflowState ParallelSystem::QueryStatus(
    const InstanceId& instance) const {
  return OwnerOf(instance).QueryStatus(instance);
}

std::map<std::string, Value> ParallelSystem::FinalData(
    const InstanceId& instance) const {
  return OwnerOf(instance).FinalData(instance);
}

NodeId ParallelSystem::OwnerEngine(const InstanceId& instance) const {
  if (placement_ != nullptr) {
    NodeId owner = placement_->Owner(instance, engine_ids_);
    if (owner != kInvalidNode) return owner;
  }
  return engine_ids_[static_cast<size_t>(instance.number) %
                     engines_.size()];
}

NodeId ParallelSystem::LockOwnerEngine(const std::string& resource) const {
  return engine_ids_[std::hash<std::string>()(resource) % engines_.size()];
}

std::vector<NodeId> ParallelSystem::AllEngines() const {
  return engine_ids_;
}

int64_t ParallelSystem::committed_count() const {
  int64_t sum = 0;
  for (const auto& engine : engines_) sum += engine->committed_count();
  return sum;
}

int64_t ParallelSystem::aborted_count() const {
  int64_t sum = 0;
  for (const auto& engine : engines_) sum += engine->aborted_count();
  return sum;
}

}  // namespace crew::parallel
