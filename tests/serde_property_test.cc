// Property tests for the wire formats: randomly generated packets and
// messages must round-trip exactly, and parsers must survive random
// mutations of valid payloads (reject or parse, never crash).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/packet.h"
#include "runtime/wire.h"

namespace crew::runtime {
namespace {

Value RandomValue(Rng* rng) {
  switch (rng->Index(5)) {
    case 0: return Value();
    case 1: return Value(rng->Bernoulli(0.5));
    case 2: return Value(rng->Uniform(-1'000'000, 1'000'000));
    case 3: return Value(rng->NextDouble() * 1e6 - 5e5);
    default: {
      std::string s;
      int64_t length = rng->Uniform(0, 20);
      for (int64_t i = 0; i < length; ++i) {
        // Include separators, quotes and newlines to stress escaping.
        const char alphabet[] =
            "abcXYZ019 ;,=\"\\\n@#(){}";
        s += alphabet[rng->Index(sizeof(alphabet) - 1)];
      }
      return Value(s);
    }
  }
}

WorkflowPacket RandomPacket(Rng* rng) {
  WorkflowPacket p;
  p.instance.workflow = "WF" + std::to_string(rng->Uniform(0, 30));
  p.instance.number = rng->Uniform(1, 1'000'000);
  p.target_step = static_cast<StepId>(rng->Uniform(1, 40));
  p.epoch = rng->Uniform(0, 12);
  int64_t items = rng->Uniform(0, 12);
  for (int64_t i = 0; i < items; ++i) {
    p.data["S" + std::to_string(i) + ".O1"] = RandomValue(rng);
  }
  int64_t events = rng->Uniform(0, 10);
  for (int64_t i = 0; i < events; ++i) {
    p.events.push_back({"S" + std::to_string(i) + ".done",
                        rng->Uniform(1, 5), rng->Uniform(0, 3)});
  }
  int64_t by = rng->Uniform(0, 6);
  for (int64_t i = 0; i < by; ++i) {
    p.executed_by[static_cast<StepId>(i + 1)] =
        static_cast<NodeId>(rng->Uniform(1, 100));
  }
  if (rng->Bernoulli(0.5)) {
    p.ro_links.push_back({{"WF9", rng->Uniform(1, 9)},
                          static_cast<StepId>(rng->Uniform(1, 9)),
                          static_cast<StepId>(rng->Uniform(1, 9)),
                          rng->Bernoulli(0.5)});
  }
  if (rng->Bernoulli(0.3)) {
    p.rd_links.push_back({{"WF3", rng->Uniform(1, 9)},
                          static_cast<StepId>(rng->Uniform(1, 9)),
                          static_cast<StepId>(rng->Uniform(1, 9))});
  }
  return p;
}

TEST(SerdeProperty, RandomPacketsRoundTripExactly) {
  Rng rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    WorkflowPacket p = RandomPacket(&rng);
    Result<WorkflowPacket> q = WorkflowPacket::Parse(p.Serialize());
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q.value().instance, p.instance);
    EXPECT_EQ(q.value().target_step, p.target_step);
    EXPECT_EQ(q.value().epoch, p.epoch);
    EXPECT_EQ(q.value().data, p.data);
    ASSERT_EQ(q.value().events.size(), p.events.size());
    for (size_t i = 0; i < p.events.size(); ++i) {
      EXPECT_EQ(q.value().events[i].token, p.events[i].token);
      EXPECT_EQ(q.value().events[i].occ, p.events[i].occ);
      EXPECT_EQ(q.value().events[i].epoch, p.events[i].epoch);
    }
    EXPECT_EQ(q.value().executed_by, p.executed_by);
    EXPECT_EQ(q.value().ro_links.size(), p.ro_links.size());
    EXPECT_EQ(q.value().rd_links.size(), p.rd_links.size());
  }
}

TEST(SerdeProperty, MutatedPayloadsNeverCrashParsers) {
  Rng rng(4096);
  for (int trial = 0; trial < 300; ++trial) {
    std::string payload = RandomPacket(&rng).Serialize();
    // Apply 1-4 random byte mutations.
    int64_t mutations = rng.Uniform(1, 4);
    for (int64_t m = 0; m < mutations && !payload.empty(); ++m) {
      size_t pos = rng.Index(payload.size());
      switch (rng.Index(3)) {
        case 0:
          payload[pos] = static_cast<char>(rng.Uniform(32, 126));
          break;
        case 1:
          payload.erase(pos, 1);
          break;
        default:
          payload.insert(pos, 1,
                         static_cast<char>(rng.Uniform(32, 126)));
      }
    }
    // Must not crash; outcome (ok or error) is free.
    (void)WorkflowPacket::Parse(payload);
    (void)WorkflowStartMsg::Parse(payload);
    (void)WorkflowRollbackMsg::Parse(payload);
    (void)CompensateSetMsg::Parse(payload);
    (void)StepCompletedMsg::Parse(payload);
    (void)RunProgramMsg::Parse(payload);
  }
}

TEST(SerdeProperty, NestedPacketEscapingSurvivesHostileStrings) {
  // Rollback messages embed a serialized packet with escaped newlines;
  // data values full of backslashes and newlines must survive.
  WorkflowRollbackMsg m;
  m.instance = {"WF1", 1};
  m.origin_step = 2;
  m.new_epoch = 5;
  m.state.instance = m.instance;
  m.state.target_step = 2;
  m.state.data["S1.O1"] = Value("\\n\\\\weird\n\\\nmix\\n");
  m.state.data["S1.O2"] = Value("line1\nline2\nline3");
  Result<WorkflowRollbackMsg> parsed =
      WorkflowRollbackMsg::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().state.data.at("S1.O1"),
            Value("\\n\\\\weird\n\\\nmix\\n"));
  EXPECT_EQ(parsed.value().state.data.at("S1.O2"),
            Value("line1\nline2\nline3"));
}

TEST(SerdeProperty, RandomValuesRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    Value v = RandomValue(&rng);
    Result<Value> back = Value::Parse(v.ToString());
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(back.value(), v) << v.ToString();
    EXPECT_EQ(back.value().kind(), v.kind()) << v.ToString();
  }
}

}  // namespace
}  // namespace crew::runtime
