#include "net/control.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace crew::net {

namespace {

Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix path too long: " + path);
  }
  std::strncpy(addr->sun_path, path.c_str(), sizeof(addr->sun_path) - 1);
  return Status::OK();
}

}  // namespace

ControlServer::ControlServer(std::string path, Handler handler,
                             int io_timeout_ms)
    : path_(std::move(path)),
      handler_(std::move(handler)),
      io_timeout_ms_(io_timeout_ms) {}

ControlServer::~ControlServer() { Stop(); }

Status ControlServer::Start() {
  if (listen_fd_ >= 0) return Status::OK();
  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  sockaddr_un addr{};
  Status status = FillUnixAddr(path_, &addr);
  if (!status.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  unlink(path_.c_str());
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      listen(listen_fd_, 16) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("control bind(" + path_ +
                               "): " + std::strerror(errno));
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("pipe failed");
  }
  stop_read_fd_ = pipe_fds[0];
  stop_write_fd_ = pipe_fds[1];
  thread_ = std::thread(&ControlServer::Serve, this);
  return Status::OK();
}

void ControlServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (stop_write_fd_ >= 0) {
    char byte = 1;
    ssize_t ignored = write(stop_write_fd_, &byte, 1);
    (void)ignored;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (stop_read_fd_ >= 0) close(stop_read_fd_);
  if (stop_write_fd_ >= 0) close(stop_write_fd_);
  listen_fd_ = stop_read_fd_ = stop_write_fd_ = -1;
  unlink(path_.c_str());
}

void ControlServer::Serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_read_fd_, POLLIN, 0}};
    int rc = poll(fds, 2, -1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 || (fds[1].revents & POLLIN)) return;
    if (!(fds[0].revents & POLLIN)) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Bound every read/write: connections are served one at a time, so
    // a client that never sends its newline would otherwise block the
    // control thread — and with it quiescence polling and 'exit' —
    // forever. A timed-out read returns -1 (EAGAIN) and drops the
    // connection.
    timeval tv{};
    tv.tv_sec = io_timeout_ms_ / 1000;
    tv.tv_usec = (io_timeout_ms_ % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    std::string request;
    bool complete = false;
    char byte;
    while (request.size() < 4096) {
      ssize_t n = read(fd, &byte, 1);
      if (n <= 0) break;
      if (byte == '\n') {
        complete = true;
        break;
      }
      request.push_back(byte);
    }
    if (!complete) {
      close(fd);
      continue;
    }
    std::string reply = handler_(request) + "\n";
    size_t sent = 0;
    while (sent < reply.size()) {
      ssize_t n = write(fd, reply.data() + sent, reply.size() - sent);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    close(fd);
  }
}

Result<std::string> ControlRequest(const std::string& path,
                                   const std::string& request,
                                   int timeout_ms) {
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  sockaddr_un addr{};
  Status status = FillUnixAddr(path, &addr);
  if (!status.ok()) {
    close(fd);
    return status;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::Unavailable("control connect(" + path +
                               "): " + std::strerror(errno));
  }
  std::string line = request + "\n";
  size_t sent = 0;
  while (sent < line.size()) {
    ssize_t n = write(fd, line.data() + sent, line.size() - sent);
    if (n <= 0) {
      close(fd);
      return Status::Unavailable("control write failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char byte;
  for (;;) {
    ssize_t n = read(fd, &byte, 1);
    if (n <= 0) {
      close(fd);
      if (!reply.empty()) return reply;
      return Status::Unavailable("control read failed");
    }
    if (byte == '\n') break;
    reply.push_back(byte);
  }
  close(fd);
  return reply;
}

}  // namespace crew::net
