# Empty dependencies file for bench_sweep_scalability.
# This may be replaced when dependencies are built.
