#ifndef CREW_SIM_SIMULATOR_H_
#define CREW_SIM_SIMULATOR_H_

#include <memory>

#include "common/rng.h"
#include "obs/trace.h"
#include "sim/context.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/network.h"

namespace crew::sim {

/// Owns the shared simulation state: virtual clock / event queue, network,
/// metrics, trace sink, and the root RNG. One Simulator per experiment run.
///
/// As a Backend it hands every node the same Context — itself: one
/// thread, one clock, one metrics ledger. The live runtime (rt::Runtime)
/// is the other Backend; systems built over either run the same engines.
class Simulator : public Context, public Backend {
 public:
  explicit Simulator(uint64_t seed = 42);
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  EventQueue& queue() override { return queue_; }
  Network& network() override { return network_; }
  Metrics& metrics() override { return metrics_; }
  Rng& rng() override { return rng_; }

  /// The active trace sink. Never null: defaults to the no-op tracer, so
  /// instrumentation sites only pay an `enabled()` check when off.
  obs::Tracer& tracer() override { return *tracer_; }
  /// Installs a sink (nullptr restores the no-op default). Call before
  /// constructing engines/agents so node-name registration is captured.
  void set_tracer(obs::Tracer* tracer);

  /// Every node shares this simulator as its context.
  Context* ContextFor(NodeId /*id*/) override { return this; }

  Time now() const override { return queue_.now(); }

  /// Drains the event queue. Returns the number of events processed;
  /// `max_events` guards against livelock in buggy protocols.
  int64_t Run(int64_t max_events = 50'000'000) {
    return queue_.RunAll(max_events);
  }

 private:
  EventQueue queue_;
  Metrics metrics_;
  Rng rng_;
  Network network_;
  obs::Tracer* tracer_;
};

/// Crash/recovery injection: schedules a node to go down at `at` and come
/// back `outage` ticks later. Messages sent meanwhile are parked by the
/// Network (persistent queues), matching the paper's reliable-messaging
/// assumption.
void InjectCrash(Simulator* simulator, NodeId node, Time at, Time outage);

}  // namespace crew::sim

#endif  // CREW_SIM_SIMULATOR_H_
