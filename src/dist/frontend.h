#ifndef CREW_DIST_FRONTEND_H_
#define CREW_DIST_FRONTEND_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/compiled.h"
#include "model/deployment.h"
#include "runtime/coord.h"
#include "runtime/placement.h"
#include "runtime/wire.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace crew::dist {

/// The front-end database of distributed control (§4.1): the
/// administrative interface through which users execute, abort, change
/// and query workflows. It interacts only with coordination agents, holds
/// the global instance counter, and — acting as the paper's modelling
/// tool output — binds coordinated-execution requirements (RO/RD) for new
/// instances against the live instance set.
class FrontEnd : public sim::MessageHandler {
 public:
  FrontEnd(NodeId id, sim::Context* context,
           const model::Deployment* deployment,
           const runtime::CoordinationSpec* coordination);

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  void RegisterSchema(model::CompiledSchemaPtr schema);

  /// Installs the instance->coordination-agent placement policy
  /// (non-owning; null reverts to the deployment's static choice).
  /// Candidates are the start step's eligible agents, so placement
  /// never moves coordination outside the eligibility footprint.
  void set_placement(runtime::PlacementPolicy* placement) {
    placement_ = placement;
  }

  /// Coordination agent this front end placed `instance` at;
  /// kInvalidNode when the instance was routed statically.
  NodeId CoordinatorOf(const InstanceId& instance) const;

  /// Instantiates a workflow; assigns and returns the instance id.
  Result<InstanceId> StartWorkflow(const std::string& workflow,
                                   std::map<std::string, Value> inputs);

  /// Requests abort / input change / status from the coordination agent.
  Status RequestAbort(const InstanceId& instance);
  Status RequestChangeInputs(const InstanceId& instance,
                             std::map<std::string, Value> new_inputs);
  Status RequestStatus(const InstanceId& instance);

  /// Last known status (updated by coordination-agent replies).
  runtime::WorkflowState KnownStatus(const InstanceId& instance) const;

  void HandleMessage(const sim::Message& message) override;

  int64_t known_committed() const { return known_committed_; }
  int64_t known_aborted() const { return known_aborted_; }

 private:
  Result<NodeId> CoordinationAgentFor(const std::string& workflow) const;
  /// Per-instance routing: the placed coordinator when one was
  /// recorded, otherwise the schema's static coordination agent.
  Result<NodeId> RouteFor(const InstanceId& instance) const;

  NodeId id_;
  sim::Context* ctx_;
  const model::Deployment* deployment_;
  runtime::ConflictTracker tracker_;
  std::map<std::string, model::CompiledSchemaPtr> schemas_;
  std::map<InstanceId, runtime::WorkflowState> statuses_;
  runtime::PlacementPolicy* placement_ = nullptr;
  std::map<InstanceId, NodeId> coordinators_;  ///< placed routes
  int64_t next_instance_ = 1;
  int64_t known_committed_ = 0;
  int64_t known_aborted_ = 0;
};

}  // namespace crew::dist

#endif  // CREW_DIST_FRONTEND_H_
