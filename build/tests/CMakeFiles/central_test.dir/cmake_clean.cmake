file(REMOVE_RECURSE
  "CMakeFiles/central_test.dir/central_test.cc.o"
  "CMakeFiles/central_test.dir/central_test.cc.o.d"
  "central_test"
  "central_test.pdb"
  "central_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/central_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
