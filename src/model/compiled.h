#ifndef CREW_MODEL_COMPILED_H_
#define CREW_MODEL_COMPILED_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "model/schema.h"

namespace crew::model {

/// Static analysis of a Schema, produced once by the "compilation process"
/// the paper says runs before deployment (§4.2). All runtimes (central,
/// parallel, distributed) navigate from this structure.
class CompiledSchema {
 public:
  /// Analyzes the schema. The schema must have passed SchemaBuilder
  /// validation.
  static Result<std::shared_ptr<const CompiledSchema>> Compile(
      Schema schema);

  const Schema& schema() const { return schema_; }

  /// Outgoing forward arcs of a step (in declaration order).
  const std::vector<const ControlArc*>& forward_out(StepId id) const {
    return forward_out_[id];
  }
  /// Outgoing back-edges (loop arcs) of a step.
  const std::vector<const ControlArc*>& back_out(StepId id) const {
    return back_out_[id];
  }
  /// Incoming forward arcs.
  const std::vector<const ControlArc*>& forward_in(StepId id) const {
    return forward_in_[id];
  }
  /// Incoming back-edges.
  const std::vector<const ControlArc*>& back_in(StepId id) const {
    return back_in_[id];
  }

  /// Number of control-flow tokens the step waits for before firing:
  /// kAnd join => number of incoming forward arcs; otherwise 1.
  int required_incoming(StepId id) const { return required_incoming_[id]; }

  /// True if the step has conditional outgoing arcs (if-then-else split).
  bool is_choice_split(StepId id) const { return is_choice_split_[id]; }

  /// Terminal steps (no outgoing forward arcs).
  const std::vector<StepId>& terminal_steps() const {
    return terminal_steps_;
  }
  /// Index of the terminal group containing `id`; -1 if not terminal.
  int terminal_group_of(StepId id) const { return terminal_group_of_[id]; }
  int num_terminal_groups() const {
    return static_cast<int>(schema_.terminal_groups().size());
  }

  /// All steps strictly downstream of `id` through forward arcs. This is
  /// the set whose step.done events a rollback to `id` invalidates and
  /// whose threads HaltThread() must quiesce (§5.2). Includes `id` itself
  /// as the first element (the rollback origin also re-executes).
  const std::vector<StepId>& downstream_including(StepId id) const {
    return downstream_[id];
  }
  /// True if `maybe_down` is `id` or reachable from `id` forward.
  bool IsDownstream(StepId id, StepId maybe_down) const;

  /// Steps strictly upstream of `id` (can reach `id` forward).
  std::vector<StepId> UpstreamOf(StepId id) const;

  /// Topological order of the forward graph (start first).
  const std::vector<StepId>& topo_order() const { return topo_order_; }

  /// Comp-dep sets that contain `id` (indices into
  /// schema().comp_dep_sets()).
  const std::vector<int>& comp_dep_sets_of(StepId id) const {
    return comp_dep_sets_of_[id];
  }

 private:
  CompiledSchema() = default;

  Schema schema_;
  // Index 0 unused (step ids are 1-based).
  std::vector<std::vector<const ControlArc*>> forward_out_;
  std::vector<std::vector<const ControlArc*>> back_out_;
  std::vector<std::vector<const ControlArc*>> forward_in_;
  std::vector<std::vector<const ControlArc*>> back_in_;
  std::vector<int> required_incoming_;
  std::vector<bool> is_choice_split_;
  std::vector<StepId> terminal_steps_;
  std::vector<int> terminal_group_of_;
  std::vector<std::vector<StepId>> downstream_;
  std::vector<std::vector<int>> comp_dep_sets_of_;
  std::vector<StepId> topo_order_;
};

using CompiledSchemaPtr = std::shared_ptr<const CompiledSchema>;

}  // namespace crew::model

#endif  // CREW_MODEL_COMPILED_H_
