# Empty compiler generated dependencies file for crew_dist.
# This may be replaced when dependencies are built.
