#include "dist/system.h"

namespace crew::dist {

DistributedSystem::DistributedSystem(
    sim::Simulator* simulator, const runtime::ProgramRegistry* programs,
    const model::Deployment* deployment,
    const runtime::CoordinationSpec* coordination, int num_agents,
    AgentOptions options)
    : simulator_(simulator), deployment_(deployment) {
  front_end_ = std::make_unique<FrontEnd>(kFrontEndNode, simulator,
                                          deployment, coordination);
  simulator->tracer().SetNodeName(kFrontEndNode, "front-end-0");
  for (int i = 0; i < num_agents; ++i) {
    agent_ids_.push_back(1 + i);
    simulator->tracer().SetNodeName(1 + i,
                                    "agent-" + std::to_string(1 + i));
  }
  for (int i = 0; i < num_agents; ++i) {
    agents_.push_back(std::make_unique<Agent>(
        1 + i, simulator, programs, deployment, coordination, agent_ids_,
        options));
  }
}

void DistributedSystem::RegisterSchema(model::CompiledSchemaPtr schema) {
  schemas_[schema->schema().name()] = schema;
  front_end_->RegisterSchema(schema);
  for (auto& agent : agents_) {
    agent->RegisterSchema(schema);
  }
}

Agent* DistributedSystem::agent_by_id(NodeId id) {
  for (auto& agent : agents_) {
    if (agent->id() == id) return agent.get();
  }
  return nullptr;
}

runtime::WorkflowState DistributedSystem::CoordinationStatus(
    const InstanceId& instance) {
  auto it = schemas_.find(instance.workflow);
  if (it == schemas_.end()) return runtime::WorkflowState::kUnknown;
  Result<NodeId> coordination_agent =
      deployment_->CoordinationAgent(*it->second);
  if (!coordination_agent.ok()) return runtime::WorkflowState::kUnknown;
  Agent* agent = agent_by_id(coordination_agent.value());
  if (agent == nullptr) return runtime::WorkflowState::kUnknown;
  return agent->CoordinationStatus(instance);
}

std::map<std::string, Value> DistributedSystem::ArchivedData(
    const InstanceId& instance) {
  auto it = schemas_.find(instance.workflow);
  if (it == schemas_.end()) return {};
  Result<NodeId> coordination_agent =
      deployment_->CoordinationAgent(*it->second);
  if (!coordination_agent.ok()) return {};
  Agent* agent = agent_by_id(coordination_agent.value());
  if (agent == nullptr) return {};
  return agent->ArchivedData(instance);
}

int64_t DistributedSystem::committed_count() const {
  int64_t sum = 0;
  for (const auto& agent : agents_) sum += agent->committed_count();
  return sum;
}

int64_t DistributedSystem::aborted_count() const {
  int64_t sum = 0;
  for (const auto& agent : agents_) sum += agent->aborted_count();
  return sum;
}

}  // namespace crew::dist
