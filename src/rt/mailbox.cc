#include "rt/mailbox.h"

#include <algorithm>
#include <chrono>

namespace crew::rt {

// ---------------------------------------------------------------------------
// Construction / teardown

Mailbox::Mailbox(size_t capacity, int spin_iterations)
    : capacity_(capacity == 0 ? 1 : capacity),
      spin_iterations_(spin_iterations),
      pool_slots_(static_cast<uint32_t>(
          std::min<size_t>(capacity_ + 1, 1024))),
      pool_(new Node[pool_slots_]),
      free_head_(0) {
  for (uint32_t i = 0; i < pool_slots_; ++i) {
    pool_[i].pool_next.store(i + 1 < pool_slots_ ? i + 1 : kNilIndex,
                             std::memory_order_relaxed);
  }
  // The queue is never empty structurally: it always holds a stub node
  // (initially payload-free; after a pop, the just-consumed node).
  Node* stub = AcquireNode();
  stub->next.store(nullptr, std::memory_order_relaxed);
  head_.store(stub, std::memory_order_relaxed);
  tail_ = stub;
}

Mailbox::~Mailbox() {
  Close();
  // By contract all producers and the consumer have stopped (the runtime
  // joins its workers before destroying cells). Drain undelivered tasks,
  // destroying their payloads without running them.
  Node* node = tail_;
  while (node != nullptr) {
    Node* next = node->next.load(std::memory_order_acquire);
    if (node->drop != nullptr) node->drop(node->storage);
    if (!IsPoolNode(node)) delete node;
    node = next;
  }
}

// ---------------------------------------------------------------------------
// Node pool: a Treiber stack of indices into a fixed array. The head
// word packs {generation, index}; bumping the generation on every
// successful exchange makes the multi-producer pop immune to ABA. The
// free-list link (`pool_next`) is atomic only because a producer that
// loses the CAS race may read it while the winner already reuses the
// node — the stale value is discarded with the failed CAS.

Mailbox::Node* Mailbox::AcquireNode() {
  uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    uint32_t index = static_cast<uint32_t>(head);
    if (index == kNilIndex) break;  // pool exhausted
    Node* node = &pool_[index];
    uint64_t generation = head >> 32;
    uint64_t next =
        ((generation + 1) << 32) |
        node->pool_next.load(std::memory_order_relaxed);
    if (free_head_.compare_exchange_weak(head, next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return node;
    }
  }
  return new Node();  // deep queue: heap fallback, freed on release
}

void Mailbox::ReleaseNode(Node* node) {
  if (!IsPoolNode(node)) {
    delete node;
    return;
  }
  uint32_t index = static_cast<uint32_t>(node - pool_.get());
  uint64_t head = free_head_.load(std::memory_order_relaxed);
  for (;;) {
    node->pool_next.store(static_cast<uint32_t>(head),
                          std::memory_order_relaxed);
    uint64_t next = (((head >> 32) + 1) << 32) | index;
    if (free_head_.compare_exchange_weak(head, next,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Producers

bool Mailbox::Enqueue(Node* node) {
  // Admission races Close() on one word: whichever RMW lands first wins,
  // so a late push is refused (and undone) rather than silently lost,
  // and a push that won admission is guaranteed to be drained.
  uint64_t prev = state_.fetch_add(1, std::memory_order_seq_cst);
  if (prev & kClosedBit) {
    state_.fetch_sub(1, std::memory_order_acq_rel);
    node->drop(node->storage);
    node->run = nullptr;
    node->drop = nullptr;
    ReleaseNode(node);
    return false;
  }
  // Vyukov MPSC push: one exchange serializes producers; the release
  // store publishes the node (payload included) to the consumer. Between
  // the two, the chain has a gap the consumer bridges by checking the
  // admission count.
  node->next.store(nullptr, std::memory_order_relaxed);
  Node* prev_head = head_.exchange(node, std::memory_order_acq_rel);
  prev_head->next.store(node, std::memory_order_release);
  // Unpark: the seq_cst admission RMW above and this seq_cst load pair
  // with the consumer's seq_cst {park-flag store; admission re-check},
  // so either we observe the parked flag or the consumer observes our
  // admission — a wakeup is never missed (Dekker-style store/load).
  if (parked_.load(std::memory_order_seq_cst)) {
    { std::lock_guard<std::mutex> lock(mu_); }
    not_empty_.notify_one();
  }
  return true;
}

bool Mailbox::WaitForCapacity() {
  for (;;) {
    uint64_t s = state_.load(std::memory_order_acquire);
    if (s & kClosedBit) return false;
    uint64_t depth =
        (s & kCountMask) -
        static_cast<uint64_t>(popped_total_.load(std::memory_order_acquire));
    if (depth < capacity_) return true;
    std::unique_lock<std::mutex> lock(mu_);
    capacity_waiters_.fetch_add(1, std::memory_order_relaxed);
    // Timed wait: the consumer checks the waiter count without a full
    // barrier after publishing its pop, so a wakeup can race; the poll
    // period bounds that miss at 1ms on the (already blocking) slow
    // path instead of taxing every pop with a seq_cst fence.
    not_full_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      uint64_t now = state_.load(std::memory_order_acquire);
      return (now & kClosedBit) != 0 ||
             (now & kCountMask) -
                     static_cast<uint64_t>(
                         popped_total_.load(std::memory_order_acquire)) <
                 capacity_;
    });
    capacity_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Consumer

Mailbox::Popped Mailbox::Pop() {
  int spins = spin_iterations_;
  for (;;) {
    Node* next = tail_->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      // Depth high-water: sampled here, where depth is maximal (pushes
      // only grow it; the only shrink is this dequeue).
      uint64_t admitted =
          state_.load(std::memory_order_relaxed) & kCountMask;
      size_t depth =
          static_cast<size_t>(admitted - static_cast<uint64_t>(popped_));
      if (depth > max_depth_.load(std::memory_order_relaxed)) {
        max_depth_.store(depth, std::memory_order_relaxed);
      }
      Node* consumed = tail_;
      tail_ = next;
      ++popped_;
      popped_total_.store(popped_, std::memory_order_release);
      ReleaseNode(consumed);
      if (capacity_waiters_.load(std::memory_order_relaxed) > 0) {
        { std::lock_guard<std::mutex> lock(mu_); }
        not_full_.notify_all();
      }
      // The task stays in `next` (the new stub); the handle runs it in
      // place and the node is recycled by the pop after this one.
      return Popped(this, next);
    }
    uint64_t s = state_.load(std::memory_order_seq_cst);
    if ((s & kCountMask) > static_cast<uint64_t>(popped_)) {
      // In-flight gap: a producer won admission but has not linked its
      // node yet (two instructions away). Bridge it without parking.
      std::this_thread::yield();
      continue;
    }
    if (s & kClosedBit) return Popped();  // closed and drained
    if (spins-- > 0) {
      std::this_thread::yield();
      continue;
    }
    ParkConsumer();
    spins = spin_iterations_;
  }
}

void Mailbox::ParkConsumer() {
  std::unique_lock<std::mutex> lock(mu_);
  // Dekker pair with Enqueue: publish the parked flag, then re-check the
  // admission count, both seq_cst. Either the re-check sees a racing
  // admission (and we abort the park) or the producer's flag load sees
  // `true` (and it notifies under the mutex).
  parked_.store(true, std::memory_order_seq_cst);
  auto has_work = [this]() {
    uint64_t s = state_.load(std::memory_order_seq_cst);
    return (s & kClosedBit) != 0 ||
           (s & kCountMask) > static_cast<uint64_t>(popped_);
  };
  if (!has_work()) {
    parks_.fetch_add(1, std::memory_order_relaxed);
    not_empty_.wait(lock, has_work);
  }
  parked_.store(false, std::memory_order_relaxed);
}

void Mailbox::Close() {
  state_.fetch_or(kClosedBit, std::memory_order_seq_cst);
  // The empty critical section fences against a consumer (or capacity
  // waiter) that checked the flag and is about to wait: we can only
  // acquire the mutex before its check or after it is actually waiting,
  // so the notifications below cannot fall into the gap.
  { std::lock_guard<std::mutex> lock(mu_); }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool Mailbox::QuietNow() const {
  // Sample the completion count *first*: completed <= admitted always,
  // so reading them in this order can only under-report quiescence,
  // never claim it early. The acquire load pairs with the consumer's
  // release increment, ordering everything completed tasks wrote before
  // a true result.
  int64_t done = completed_total_.load(std::memory_order_acquire);
  uint64_t s = state_.load(std::memory_order_acquire);
  return static_cast<int64_t>(s & kCountMask) == done;
}

size_t Mailbox::size() const {
  // Same sampling-order trick: popped <= admitted, so popped first.
  int64_t popped = popped_total_.load(std::memory_order_acquire);
  uint64_t admitted = state_.load(std::memory_order_acquire) & kCountMask;
  return static_cast<size_t>(static_cast<int64_t>(admitted) - popped);
}

// ---------------------------------------------------------------------------
// Popped handle

void Mailbox::Popped::Run() {
  Node* node = node_;
  Mailbox* box = box_;
  node_ = nullptr;
  box_ = nullptr;
  auto run = node->run;
  node->run = nullptr;
  node->drop = nullptr;
  run(node->storage);
  box->CompleteTask();
}

void Mailbox::Popped::Discard() {
  if (node_ == nullptr) return;
  node_->drop(node_->storage);
  node_->run = nullptr;
  node_->drop = nullptr;
  box_->CompleteTask();
  node_ = nullptr;
  box_ = nullptr;
}

}  // namespace crew::rt
