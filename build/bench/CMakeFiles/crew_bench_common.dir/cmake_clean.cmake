file(REMOVE_RECURSE
  "CMakeFiles/crew_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/crew_bench_common.dir/bench_common.cc.o.d"
  "libcrew_bench_common.a"
  "libcrew_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
