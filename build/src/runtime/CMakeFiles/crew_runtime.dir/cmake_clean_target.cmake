file(REMOVE_RECURSE
  "libcrew_runtime.a"
)
