#ifndef CREW_COMMON_SMALL_VECTOR_H_
#define CREW_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace crew {

/// Vector with N elements of inline storage. Ordinary workflow packets
/// carry a handful of data items, events and links, so routing them
/// through std::vector meant several heap round trips per packet on the
/// serialize/parse hot path; with inline slots those packets allocate
/// nothing. Spills to the heap (and stays there) past N. Not
/// exception-safe for throwing T move constructors — wire-facing
/// payload types (pairs of ids, strings, Values) do not throw on move.
template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() : data_(inline_slots()), size_(0), capacity_(N) {}

  SmallVector(const SmallVector& o) : SmallVector() {
    reserve(o.size_);
    for (size_t i = 0; i < o.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(o.data_[i]);
    }
    size_ = o.size_;
  }

  SmallVector(SmallVector&& o) noexcept : SmallVector() {
    TakeFrom(std::move(o));
  }

  SmallVector& operator=(const SmallVector& o) {
    if (this != &o) {
      clear();
      reserve(o.size_);
      for (size_t i = 0; i < o.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(o.data_[i]);
      }
      size_ = o.size_;
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& o) noexcept {
    if (this != &o) {
      Release();
      TakeFrom(std::move(o));
    }
    return *this;
  }

  ~SmallVector() { Release(); }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  /// True while elements still live in the inline slots.
  bool is_inline() const { return data_ == inline_slots(); }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  void clear() {
    std::destroy_n(data_, size_);
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Insert-in-the-middle used by FlatMap's out-of-order fallback.
  template <typename... Args>
  iterator emplace(const_iterator pos, Args&&... args) {
    size_t index = static_cast<size_t>(pos - data_);
    if (index == size_) {
      emplace_back(std::forward<Args>(args)...);
      return data_ + index;
    }
    // Build the value first: args may alias an existing element that
    // the shift below is about to move.
    T value(std::forward<Args>(args)...);
    emplace_back(std::move(back()));
    std::move_backward(data_ + index, data_ + size_ - 2,
                       data_ + size_ - 1);
    data_[index] = std::move(value);
    return data_ + index;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) emplace_back(*first);
  }

  bool operator==(const SmallVector& o) const {
    return size_ == o.size_ && std::equal(begin(), end(), o.begin());
  }
  bool operator!=(const SmallVector& o) const { return !(*this == o); }

 private:
  T* inline_slots() {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  const T* inline_slots() const {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void Grow(size_t n) {
    size_t next = std::max(n, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(next * sizeof(T)));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
    }
    std::destroy_n(data_, size_);
    if (!is_inline()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = next;
  }

  /// Destroys elements and frees any heap block (size/pointers left
  /// stale — callers reset them).
  void Release() {
    std::destroy_n(data_, size_);
    if (!is_inline()) ::operator delete(data_);
  }

  void TakeFrom(SmallVector&& o) noexcept {
    if (o.is_inline()) {
      data_ = inline_slots();
      capacity_ = N;
      for (size_t i = 0; i < o.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(o.data_[i]));
      }
      size_ = o.size_;
      o.clear();
    } else {
      data_ = o.data_;
      size_ = o.size_;
      capacity_ = o.capacity_;
      o.data_ = o.inline_slots();
      o.size_ = 0;
      o.capacity_ = N;
    }
  }

  T* data_;
  size_t size_;
  size_t capacity_;
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

}  // namespace crew

#endif  // CREW_COMMON_SMALL_VECTOR_H_
