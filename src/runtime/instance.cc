#include "runtime/instance.h"

#include <algorithm>

#include "rules/event.h"

namespace crew::runtime {

void InstanceState::SetData(const std::string& item, Value value) {
  data_[item] = std::move(value);
}

std::optional<Value> InstanceState::GetData(const std::string& item) const {
  auto it = data_.find(item);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void InstanceState::MergeData(const std::map<std::string, Value>& data) {
  for (const auto& [name, value] : data) {
    data_[name] = value;
  }
}

void InstanceState::MergeData(const PacketDataMap& data) {
  for (const auto& [name, value] : data) {
    data_[name] = value;
  }
}

const StepRecord* InstanceState::FindStepRecord(StepId step) const {
  auto it = steps_.find(step);
  return it == steps_.end() ? nullptr : &it->second;
}

StepRunState InstanceState::StepState(StepId step) const {
  const StepRecord* record = FindStepRecord(step);
  return record == nullptr ? StepRunState::kUnknown : record->state;
}

void InstanceState::NoteForwarded(StepId step, NodeId agent) {
  std::vector<NodeId>& agents = forwarded_[step];
  if (std::find(agents.begin(), agents.end(), agent) == agents.end()) {
    agents.push_back(agent);
  }
}

void InstanceState::ClearForwarded() { forwarded_.clear(); }

bool InstanceState::MergeEvent(const EventOcc& event) {
  EventEntry& entry = events_[event.token];
  if (event.occ > entry.occ) {
    entry.occ = event.occ;
    entry.epoch = event.epoch;
    entry.valid = true;
    return true;
  }
  // Same or older occurrence: never resurrects an invalidated event.
  return false;
}

EventOcc InstanceState::PostLocalEvent(rules::EventToken token) {
  EventEntry& entry = events_[token];
  entry.occ += 1;
  entry.epoch = epoch_;
  entry.valid = true;
  return EventOcc{token, entry.occ, entry.epoch};
}

EventOcc InstanceState::PostLocalEvent(std::string_view token) {
  return PostLocalEvent(rules::InternToken(token));
}

std::vector<rules::EventToken> InstanceState::InvalidateDownstream(
    StepId origin, int64_t new_epoch) {
  std::vector<rules::EventToken> invalidated;
  if (!schema_) return invalidated;
  for (StepId step : schema_->downstream_including(origin)) {
    for (rules::EventToken token : {rules::event::StepDoneToken(step),
                                    rules::event::StepFailToken(step)}) {
      auto it = events_.find(token);
      if (it != events_.end() && it->second.valid &&
          it->second.epoch < new_epoch) {
        it->second.valid = false;
        invalidated.push_back(token);
      }
    }
  }
  return invalidated;
}

std::vector<EventOcc> InstanceState::ValidEvents() const {
  std::vector<EventOcc> out;
  out.reserve(events_.size());
  for (const auto& [token, entry] : events_) {
    if (entry.valid) out.push_back(EventOcc{token, entry.occ, entry.epoch});
  }
  // The table used to be a name-keyed std::map, so packets carried events
  // in name order; sort by name to keep the wire order (and everything
  // derived from it) byte-identical.
  std::sort(out.begin(), out.end(), [](const EventOcc& a, const EventOcc& b) {
    return a.name() < b.name();
  });
  return out;
}

bool InstanceState::EventValid(rules::EventToken token) const {
  auto it = events_.find(token);
  return it != events_.end() && it->second.valid;
}

bool InstanceState::EventValid(std::string_view token) const {
  rules::EventToken t = rules::FindToken(token);
  return t != rules::kInvalidEventToken && EventValid(t);
}

std::map<std::string, Value> InstanceState::ResolveInputs(
    StepId step) const {
  std::map<std::string, Value> inputs;
  if (!schema_) return inputs;
  for (const std::string& item : schema_->schema().step(step).inputs) {
    std::optional<Value> v = GetData(item);
    if (v.has_value()) inputs[item] = *v;
  }
  return inputs;
}

expr::FunctionEnvironment InstanceState::DataEnv() const {
  return expr::FunctionEnvironment(
      [this](const std::string& name) { return GetData(name); });
}

expr::FunctionEnvironment InstanceState::OcrEnv(StepId step) const {
  return expr::FunctionEnvironment(
      [this](const std::string& name) { return GetData(name); },
      [this, step](const std::string& name) -> std::optional<Value> {
        const StepRecord* record = FindStepRecord(step);
        if (record == nullptr) return std::nullopt;
        auto it = record->prev_inputs.find(name);
        if (it != record->prev_inputs.end()) return it->second;
        auto jt = record->prev_outputs.find(name);
        if (jt != record->prev_outputs.end()) return jt->second;
        return std::nullopt;
      });
}

void InstanceState::MergePacket(const WorkflowPacket& packet) {
  MergeData(packet.data);
  MergeRoLinks(packet.ro_links);
  MergeRdLinks(packet.rd_links);
  for (const auto& [step, agent] : packet.executed_by) {
    executed_by_[step] = agent;
  }
  if (packet.epoch > epoch_) {
    epoch_ = packet.epoch;
  }
  if (packet.coordinator != kInvalidNode) {
    set_coordinator(packet.coordinator);
  }
}

WorkflowPacket InstanceState::MakePacket(StepId target_step) const {
  WorkflowPacket packet;
  packet.instance = id_;
  packet.target_step = target_step;
  packet.epoch = epoch_;
  packet.coordinator = coordinator_;
  packet.data.assign(data_.begin(), data_.end());
  std::vector<EventOcc> events = ValidEvents();
  packet.events.assign(events.begin(), events.end());
  packet.executed_by.assign(executed_by_.begin(), executed_by_.end());
  packet.ro_links.assign(ro_links_.begin(), ro_links_.end());
  packet.rd_links.assign(rd_links_.begin(), rd_links_.end());
  return packet;
}

void InstanceState::SetExecutedBy(StepId step, NodeId agent) {
  executed_by_[step] = agent;
}

}  // namespace crew::runtime
