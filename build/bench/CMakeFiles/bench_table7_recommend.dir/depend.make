# Empty dependencies file for bench_table7_recommend.
# This may be replaced when dependencies are built.
