#ifndef CREW_BENCH_BENCH_COMMON_H_
#define CREW_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "analysis/model.h"
#include "analysis/recommend.h"
#include "workload/driver.h"

namespace crew::bench {

/// Maps a Table 4-6 mechanism to the metric categories it is measured
/// from.
sim::LoadCategory LoadCategoryOf(analysis::Mechanism mechanism);
sim::MsgCategory MsgCategoryOf(analysis::Mechanism mechanism);

/// Measured per-instance load (units of l) at the busiest node among
/// `nodes` for one mechanism.
double MeasuredLoad(const workload::RunResult& result,
                    analysis::Mechanism mechanism,
                    const std::vector<NodeId>& nodes, int64_t l);

/// Measured per-instance message count for one mechanism.
double MeasuredMessages(const workload::RunResult& result,
                        analysis::Mechanism mechanism);

/// Prints one paper table (load block + messages block) with columns:
/// mechanism | paper expression | paper value | measured. `nodes` are
/// the nodes whose load the "Load at Engine" block reports (the engine
/// for central, engines for parallel, agents for distributed).
void PrintTable(const std::string& title, const workload::Params& params,
                const workload::RunResult& result,
                const std::vector<analysis::ModelRow>& load_rows,
                const std::vector<analysis::ModelRow>& msg_rows,
                const std::vector<NodeId>& nodes);

/// Prints the Table 3 parameter header.
void PrintHeader(const std::string& title,
                 const workload::Params& params);

/// Node-id lists for the three architectures (matching the system
/// constructors' numbering).
std::vector<NodeId> CentralEngineNodes();
std::vector<NodeId> ParallelEngineNodes(int num_engines);
std::vector<NodeId> DistributedAgentNodes(int num_agents);

}  // namespace crew::bench

#endif  // CREW_BENCH_BENCH_COMMON_H_
