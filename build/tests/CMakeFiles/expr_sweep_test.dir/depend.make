# Empty dependencies file for expr_sweep_test.
# This may be replaced when dependencies are built.
