# Empty dependencies file for crew_parallel.
# This may be replaced when dependencies are built.
