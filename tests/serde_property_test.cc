// Property tests for the wire formats: randomly generated packets and
// messages must round-trip exactly, and parsers must survive random
// mutations of valid payloads (reject or parse, never crash). The last
// section stress-tests the socket framing layer (net/frame.h) against
// arbitrary TCP-style re-segmentation of the byte stream.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/frame.h"
#include "runtime/packet.h"
#include "runtime/wire.h"

namespace crew::runtime {
namespace {

Value RandomValue(Rng* rng) {
  switch (rng->Index(5)) {
    case 0: return Value();
    case 1: return Value(rng->Bernoulli(0.5));
    case 2: return Value(rng->Uniform(-1'000'000, 1'000'000));
    case 3: return Value(rng->NextDouble() * 1e6 - 5e5);
    default: {
      std::string s;
      int64_t length = rng->Uniform(0, 20);
      for (int64_t i = 0; i < length; ++i) {
        // Include separators, quotes and newlines to stress escaping.
        const char alphabet[] =
            "abcXYZ019 ;,=\"\\\n@#(){}";
        s += alphabet[rng->Index(sizeof(alphabet) - 1)];
      }
      return Value(s);
    }
  }
}

WorkflowPacket RandomPacket(Rng* rng) {
  WorkflowPacket p;
  p.instance.workflow = "WF" + std::to_string(rng->Uniform(0, 30));
  p.instance.number = rng->Uniform(1, 1'000'000);
  p.target_step = static_cast<StepId>(rng->Uniform(1, 40));
  p.epoch = rng->Uniform(0, 12);
  int64_t items = rng->Uniform(0, 12);
  for (int64_t i = 0; i < items; ++i) {
    p.data["S" + std::to_string(i) + ".O1"] = RandomValue(rng);
  }
  int64_t events = rng->Uniform(0, 10);
  for (int64_t i = 0; i < events; ++i) {
    p.events.push_back({"S" + std::to_string(i) + ".done",
                        rng->Uniform(1, 5), rng->Uniform(0, 3)});
  }
  int64_t by = rng->Uniform(0, 6);
  for (int64_t i = 0; i < by; ++i) {
    p.executed_by[static_cast<StepId>(i + 1)] =
        static_cast<NodeId>(rng->Uniform(1, 100));
  }
  if (rng->Bernoulli(0.5)) {
    p.ro_links.push_back({{"WF9", rng->Uniform(1, 9)},
                          static_cast<StepId>(rng->Uniform(1, 9)),
                          static_cast<StepId>(rng->Uniform(1, 9)),
                          rng->Bernoulli(0.5)});
  }
  if (rng->Bernoulli(0.3)) {
    p.rd_links.push_back({{"WF3", rng->Uniform(1, 9)},
                          static_cast<StepId>(rng->Uniform(1, 9)),
                          static_cast<StepId>(rng->Uniform(1, 9))});
  }
  return p;
}

TEST(SerdeProperty, RandomPacketsRoundTripExactly) {
  Rng rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    WorkflowPacket p = RandomPacket(&rng);
    Result<WorkflowPacket> q = WorkflowPacket::Parse(p.Serialize());
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q.value().instance, p.instance);
    EXPECT_EQ(q.value().target_step, p.target_step);
    EXPECT_EQ(q.value().epoch, p.epoch);
    EXPECT_EQ(q.value().data, p.data);
    ASSERT_EQ(q.value().events.size(), p.events.size());
    for (size_t i = 0; i < p.events.size(); ++i) {
      EXPECT_EQ(q.value().events[i].token, p.events[i].token);
      EXPECT_EQ(q.value().events[i].occ, p.events[i].occ);
      EXPECT_EQ(q.value().events[i].epoch, p.events[i].epoch);
    }
    EXPECT_EQ(q.value().executed_by, p.executed_by);
    EXPECT_EQ(q.value().ro_links.size(), p.ro_links.size());
    EXPECT_EQ(q.value().rd_links.size(), p.rd_links.size());
  }
}

TEST(SerdeProperty, MutatedPayloadsNeverCrashParsers) {
  Rng rng(4096);
  for (int trial = 0; trial < 300; ++trial) {
    std::string payload = RandomPacket(&rng).Serialize();
    // Apply 1-4 random byte mutations.
    int64_t mutations = rng.Uniform(1, 4);
    for (int64_t m = 0; m < mutations && !payload.empty(); ++m) {
      size_t pos = rng.Index(payload.size());
      switch (rng.Index(3)) {
        case 0:
          payload[pos] = static_cast<char>(rng.Uniform(32, 126));
          break;
        case 1:
          payload.erase(pos, 1);
          break;
        default:
          payload.insert(pos, 1,
                         static_cast<char>(rng.Uniform(32, 126)));
      }
    }
    // Must not crash; outcome (ok or error) is free.
    (void)WorkflowPacket::Parse(payload);
    (void)WorkflowStartMsg::Parse(payload);
    (void)WorkflowRollbackMsg::Parse(payload);
    (void)CompensateSetMsg::Parse(payload);
    (void)StepCompletedMsg::Parse(payload);
    (void)RunProgramMsg::Parse(payload);
  }
}

TEST(SerdeProperty, NestedPacketEscapingSurvivesHostileStrings) {
  // Rollback messages embed a serialized packet with escaped newlines;
  // data values full of backslashes and newlines must survive.
  WorkflowRollbackMsg m;
  m.instance = {"WF1", 1};
  m.origin_step = 2;
  m.new_epoch = 5;
  m.state.instance = m.instance;
  m.state.target_step = 2;
  m.state.data["S1.O1"] = Value("\\n\\\\weird\n\\\nmix\\n");
  m.state.data["S1.O2"] = Value("line1\nline2\nline3");
  Result<WorkflowRollbackMsg> parsed =
      WorkflowRollbackMsg::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().state.data.at("S1.O1"),
            Value("\\n\\\\weird\n\\\nmix\\n"));
  EXPECT_EQ(parsed.value().state.data.at("S1.O2"),
            Value("line1\nline2\nline3"));
}

TEST(SerdeProperty, RandomValuesRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    Value v = RandomValue(&rng);
    Result<Value> back = Value::Parse(v.ToString());
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(back.value(), v) << v.ToString();
    EXPECT_EQ(back.value().kind(), v.kind()) << v.ToString();
  }
}

// ---------------------------------------------------------------------------
// Socket framing: a stream of encoded frames must decode to the exact
// same frame sequence no matter how the bytes are re-chunked — single
// byte dribble, cuts inside the length prefix, several frames coalesced
// into one read. This is what a TCP/UDS receive path actually sees.

net::Frame RandomFrame(Rng* rng) {
  net::Frame frame;
  switch (rng->Index(3)) {
    case 0: {
      frame.kind = net::Frame::Kind::kHello;
      frame.endpoint = "unix:/tmp/ep" + std::to_string(rng->Uniform(0, 9)) +
                       ".sock";
      frame.incarnation = static_cast<uint64_t>(rng->Uniform(1, 1 << 20));
      // Clock-alignment stamp rides on HELLO; -1 (absent) must survive too.
      if (rng->Index(2) == 0) {
        frame.sent_ticks = rng->Uniform(0, 1 << 30);
      }
      break;
    }
    case 1: {
      frame.kind = net::Frame::Kind::kAck;
      frame.watermark = static_cast<uint64_t>(rng->Uniform(0, 1 << 30));
      frame.incarnation = static_cast<uint64_t>(rng->Uniform(1, 1 << 20));
      break;
    }
    default: {
      frame.kind = net::Frame::Kind::kData;
      frame.seq = static_cast<uint64_t>(rng->Uniform(1, 1 << 30));
      frame.message.from = static_cast<NodeId>(rng->Uniform(0, 64));
      frame.message.to = static_cast<NodeId>(rng->Uniform(0, 64));
      frame.message.type = "wi" + std::to_string(rng->Uniform(0, 30));
      frame.message.category = static_cast<sim::MsgCategory>(
          rng->Index(sim::kNumMsgCategories));
      // Trace context is optional: id 0 means untraced (fields elided
      // on the wire) and the send stamp then stays at its default.
      if (rng->Index(2) == 0) {
        frame.message.trace_id =
            (static_cast<uint64_t>(rng->Uniform(1, 1 << 16)) << 48) |
            static_cast<uint64_t>(rng->Uniform(1, 1 << 30));
        frame.message.trace_sent_ticks = rng->Uniform(0, 1 << 30);
      }
      // Payloads are raw bytes behind the header: stress newlines, NULs,
      // '=' and high bytes (a serialized packet is a benign subset).
      int64_t length = rng->Uniform(0, 300);
      for (int64_t i = 0; i < length; ++i) {
        frame.message.payload.push_back(
            static_cast<char>(rng->Uniform(0, 255)));
      }
      break;
    }
  }
  return frame;
}

void ExpectSameFrame(const net::Frame& got, const net::Frame& want,
                     int index) {
  ASSERT_EQ(static_cast<int>(got.kind), static_cast<int>(want.kind))
      << "frame " << index;
  switch (want.kind) {
    case net::Frame::Kind::kHello:
      EXPECT_EQ(got.endpoint, want.endpoint) << "frame " << index;
      EXPECT_EQ(got.incarnation, want.incarnation) << "frame " << index;
      EXPECT_EQ(got.sent_ticks, want.sent_ticks) << "frame " << index;
      break;
    case net::Frame::Kind::kAck:
      EXPECT_EQ(got.watermark, want.watermark) << "frame " << index;
      EXPECT_EQ(got.incarnation, want.incarnation) << "frame " << index;
      break;
    case net::Frame::Kind::kData:
      EXPECT_EQ(got.seq, want.seq) << "frame " << index;
      EXPECT_EQ(got.message.from, want.message.from) << "frame " << index;
      EXPECT_EQ(got.message.to, want.message.to) << "frame " << index;
      EXPECT_EQ(got.message.type, want.message.type) << "frame " << index;
      EXPECT_EQ(static_cast<int>(got.message.category),
                static_cast<int>(want.message.category))
          << "frame " << index;
      EXPECT_EQ(got.message.payload, want.message.payload)
          << "frame " << index;
      EXPECT_EQ(got.message.trace_id, want.message.trace_id)
          << "frame " << index;
      EXPECT_EQ(got.message.trace_sent_ticks, want.message.trace_sent_ticks)
          << "frame " << index;
      break;
    default:
      // The decoder normalizes to logical kinds; wire-form kinds must
      // never escape it.
      FAIL() << "non-logical frame kind " << static_cast<int>(want.kind);
  }
}

TEST(FrameProperty, RandomSplitsReproduceExactSequence) {
  Rng rng(7171);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<net::Frame> frames;
    std::string stream;
    int64_t count = rng.Uniform(1, 12);
    for (int64_t i = 0; i < count; ++i) {
      frames.push_back(RandomFrame(&rng));
      stream += net::EncodeFrame(frames.back());
    }
    net::FrameDecoder decoder;
    std::vector<net::Frame> decoded;
    size_t offset = 0;
    while (offset < stream.size()) {
      // Chunk sizes from 1 byte (dribble; cuts every length prefix and
      // header in half at some point) up to several whole frames.
      size_t chunk = static_cast<size_t>(rng.Uniform(1, 64));
      chunk = std::min(chunk, stream.size() - offset);
      decoder.Feed(std::string_view(stream).substr(offset, chunk));
      offset += chunk;
      net::Frame frame;
      while (decoder.Next(&frame)) decoded.push_back(std::move(frame));
      ASSERT_TRUE(decoder.ok()) << decoder.status().ToString();
    }
    ASSERT_EQ(decoded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      ExpectSameFrame(decoded[i], frames[i], static_cast<int>(i));
    }
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(FrameProperty, OneByteDribbleDecodesEveryFrame) {
  Rng rng(515);
  std::vector<net::Frame> frames;
  std::string stream;
  for (int i = 0; i < 8; ++i) {
    frames.push_back(RandomFrame(&rng));
    stream += net::EncodeFrame(frames.back());
  }
  net::FrameDecoder decoder;
  std::vector<net::Frame> decoded;
  for (char byte : stream) {
    decoder.Feed(std::string_view(&byte, 1));
    net::Frame frame;
    while (decoder.Next(&frame)) decoded.push_back(std::move(frame));
    ASSERT_TRUE(decoder.ok());
  }
  ASSERT_EQ(decoded.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    ExpectSameFrame(decoded[i], frames[i], static_cast<int>(i));
  }
}

TEST(FrameProperty, CutInsideLengthPrefixYieldsNothingUntilComplete) {
  net::Frame frame;
  frame.kind = net::Frame::Kind::kData;
  frame.seq = 9;
  frame.message.from = 1;
  frame.message.to = 2;
  frame.message.type = "wiWorkflowPacket";
  frame.message.payload = "k=v\nnested=line\n";
  std::string bytes = net::EncodeFrame(frame);

  net::FrameDecoder decoder;
  net::Frame out;
  // First two bytes of the u32 length prefix only.
  decoder.Feed(std::string_view(bytes).substr(0, 2));
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_TRUE(decoder.ok());
  // Rest of the prefix plus half the body.
  decoder.Feed(std::string_view(bytes).substr(2, bytes.size() / 2));
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_TRUE(decoder.ok());
  // Remainder: exactly one frame pops out.
  decoder.Feed(std::string_view(bytes).substr(2 + bytes.size() / 2));
  ASSERT_TRUE(decoder.Next(&out));
  ExpectSameFrame(out, frame, 0);
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameProperty, ConcatenatedFramesDecodeInOneFeed) {
  Rng rng(81);
  std::vector<net::Frame> frames;
  std::string stream;
  for (int i = 0; i < 10; ++i) {
    frames.push_back(RandomFrame(&rng));
    stream += net::EncodeFrame(frames.back());
  }
  net::FrameDecoder decoder;
  decoder.Feed(stream);
  net::Frame out;
  for (size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(decoder.Next(&out)) << "frame " << i;
    ExpectSameFrame(out, frames[i], static_cast<int>(i));
  }
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_TRUE(decoder.ok());
}

// ---------------------------------------------------------------------------
// Superframes (kBatch) and the binary wire form: the same re-chunking
// guarantees must hold when frames are coalesced under one envelope,
// whatever codec each inner frame used.

std::string EncodeWithRandomCodec(const net::Frame& frame, Rng* rng) {
  return net::EncodeFrame(frame, rng->Bernoulli(0.5)
                                     ? PayloadCodec::kBinary
                                     : PayloadCodec::kKv);
}

TEST(FrameProperty, BinaryFramesSurviveRandomSplits) {
  Rng rng(60221023);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<net::Frame> frames;
    std::string stream;
    int64_t count = rng.Uniform(1, 12);
    for (int64_t i = 0; i < count; ++i) {
      frames.push_back(RandomFrame(&rng));
      stream += net::EncodeFrame(frames.back(), PayloadCodec::kBinary);
    }
    net::FrameDecoder decoder;
    std::vector<net::Frame> decoded;
    size_t offset = 0;
    while (offset < stream.size()) {
      size_t chunk = static_cast<size_t>(rng.Uniform(1, 64));
      chunk = std::min(chunk, stream.size() - offset);
      decoder.Feed(std::string_view(stream).substr(offset, chunk));
      offset += chunk;
      net::Frame frame;
      while (decoder.Next(&frame)) decoded.push_back(std::move(frame));
      ASSERT_TRUE(decoder.ok()) << decoder.status().ToString();
    }
    ASSERT_EQ(decoded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      ExpectSameFrame(decoded[i], frames[i], static_cast<int>(i));
    }
  }
}

TEST(FrameProperty, DictionaryTypedDataNeedsTheHello) {
  // A binary DATA frame whose type is in the HELLO dictionary encodes it
  // as one varint id; the decoder must resolve it back to the name.
  net::Frame hello;
  hello.kind = net::Frame::Kind::kHello;
  hello.endpoint = "unix:/tmp/a.sock";
  hello.incarnation = 3;
  net::Frame data;
  data.kind = net::Frame::Kind::kData;
  data.seq = 1;
  data.message.from = 1;
  data.message.to = 2;
  data.message.type = WireTypeName(0);  // a real dictionary name
  data.message.payload = "x";
  ASSERT_GE(WireTypeId(data.message.type), 0);

  net::FrameDecoder decoder;
  decoder.Feed(net::EncodeFrame(hello, PayloadCodec::kBinary));
  decoder.Feed(net::EncodeFrame(data, PayloadCodec::kBinary));
  net::Frame out;
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out.kind, net::Frame::Kind::kHello);
  ASSERT_TRUE(decoder.Next(&out));
  ExpectSameFrame(out, data, 1);

  // Without the HELLO the dictionary id is undefined -> poisoned stream.
  net::FrameDecoder cold;
  cold.Feed(net::EncodeFrame(data, PayloadCodec::kBinary));
  EXPECT_FALSE(cold.Next(&out));
  EXPECT_FALSE(cold.ok());
}

TEST(FrameProperty, SuperframeOneByteDribbleDecodesEveryInnerFrame) {
  Rng rng(424242);
  std::vector<net::Frame> frames;
  std::vector<std::string> encoded;
  for (int i = 0; i < 6; ++i) {
    net::Frame frame = RandomFrame(&rng);
    frames.push_back(frame);
    encoded.push_back(EncodeWithRandomCodec(frame, &rng));
  }
  std::string stream = net::EncodeSuperframe(encoded);
  net::FrameDecoder decoder;
  std::vector<net::Frame> decoded;
  for (char byte : stream) {
    decoder.Feed(std::string_view(&byte, 1));
    net::Frame frame;
    while (decoder.Next(&frame)) decoded.push_back(std::move(frame));
    ASSERT_TRUE(decoder.ok()) << decoder.status().ToString();
  }
  ASSERT_EQ(decoded.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    ExpectSameFrame(decoded[i], frames[i], static_cast<int>(i));
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameProperty, SuperframeCutInsideLengthPrefixYieldsNothing) {
  Rng rng(90125);
  std::vector<std::string> encoded;
  std::vector<net::Frame> frames;
  for (int i = 0; i < 3; ++i) {
    frames.push_back(RandomFrame(&rng));
    encoded.push_back(net::EncodeFrame(frames[i], PayloadCodec::kBinary));
  }
  std::string bytes = net::EncodeSuperframe(encoded);
  net::FrameDecoder decoder;
  net::Frame out;
  // Two bytes of the superframe's u32 length prefix only.
  decoder.Feed(std::string_view(bytes).substr(0, 2));
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_TRUE(decoder.ok());
  // Up to the middle of the second inner frame.
  size_t mid = 5 + encoded[0].size() + encoded[1].size() / 2;
  decoder.Feed(std::string_view(bytes).substr(2, mid - 2));
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_TRUE(decoder.ok());
  // Remainder: all three inner frames pop at once.
  decoder.Feed(std::string_view(bytes).substr(mid));
  for (size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(decoder.Next(&out)) << "frame " << i;
    ExpectSameFrame(out, frames[i], static_cast<int>(i));
  }
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameProperty, CoalescedSuperframesAndBareFramesInterleave) {
  Rng rng(171717);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<net::Frame> frames;
    std::string stream;
    int64_t groups = rng.Uniform(1, 6);
    for (int64_t g = 0; g < groups; ++g) {
      if (rng.Bernoulli(0.4)) {
        // Bare frame between batches.
        frames.push_back(RandomFrame(&rng));
        stream += EncodeWithRandomCodec(frames.back(), &rng);
        continue;
      }
      std::vector<std::string> encoded;
      int64_t count = rng.Uniform(1, 6);
      for (int64_t i = 0; i < count; ++i) {
        frames.push_back(RandomFrame(&rng));
        encoded.push_back(EncodeWithRandomCodec(frames.back(), &rng));
      }
      stream += net::EncodeSuperframe(encoded);
    }
    net::FrameDecoder decoder;
    std::vector<net::Frame> decoded;
    size_t offset = 0;
    while (offset < stream.size()) {
      size_t chunk = static_cast<size_t>(rng.Uniform(1, 128));
      chunk = std::min(chunk, stream.size() - offset);
      decoder.Feed(std::string_view(stream).substr(offset, chunk));
      offset += chunk;
      net::Frame frame;
      while (decoder.Next(&frame)) decoded.push_back(std::move(frame));
      ASSERT_TRUE(decoder.ok()) << decoder.status().ToString();
    }
    ASSERT_EQ(decoded.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      ExpectSameFrame(decoded[i], frames[i], static_cast<int>(i));
    }
  }
}

TEST(FrameProperty, AppendBatchHeaderMatchesEncodeSuperframe) {
  Rng rng(5150);
  std::vector<std::string> encoded;
  size_t inner_bytes = 0;
  for (int i = 0; i < 9; ++i) {
    encoded.push_back(
        net::EncodeFrame(RandomFrame(&rng), PayloadCodec::kBinary));
    inner_bytes += encoded.back().size();
  }
  std::string incremental;
  net::AppendBatchHeader(&incremental, encoded.size(), inner_bytes);
  for (const std::string& f : encoded) incremental += f;
  EXPECT_EQ(incremental, net::EncodeSuperframe(encoded));
}

TEST(FrameProperty, CorruptInnerFramePoisonsOnlyThatStream) {
  Rng rng(31337);
  std::vector<std::string> encoded;
  for (int i = 0; i < 4; ++i) {
    net::Frame frame = RandomFrame(&rng);
    frame.kind = net::Frame::Kind::kData;  // force bodies with payloads
    encoded.push_back(net::EncodeFrame(frame, PayloadCodec::kBinary));
  }
  // Corrupt the second inner frame's kind byte to an unknown value. The
  // superframe header is [u32 len][kind][varint count] = 6 bytes here,
  // and the kind byte sits 4 bytes into an inner envelope.
  std::string bad = net::EncodeSuperframe(encoded);
  size_t second_kind = 6 + encoded[0].size() + 4;
  bad[second_kind] = '\x2f';
  net::FrameDecoder poisoned;
  poisoned.Feed(bad);
  net::Frame out;
  while (poisoned.Next(&out)) {
  }
  EXPECT_FALSE(poisoned.ok());
  // Poisoned for good.
  poisoned.Feed(net::EncodeSuperframe(encoded));
  EXPECT_FALSE(poisoned.Next(&out));

  // An independent decoder (another connection) is untouched: the same
  // batch uncorrupted decodes fully.
  net::FrameDecoder clean;
  clean.Feed(net::EncodeSuperframe(encoded));
  int count = 0;
  while (clean.Next(&out)) ++count;
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(count, 4);
}

TEST(FrameProperty, NestedBatchIsRejected) {
  Rng rng(808);
  std::vector<std::string> inner = {
      net::EncodeFrame(RandomFrame(&rng), PayloadCodec::kBinary)};
  std::vector<std::string> nested = {net::EncodeSuperframe(inner)};
  net::FrameDecoder decoder;
  decoder.Feed(net::EncodeSuperframe(nested));
  net::Frame out;
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_FALSE(decoder.ok());
}

TEST(FrameProperty, BatchNotExactlyTiledIsRejected) {
  Rng rng(6502);
  std::vector<std::string> encoded = {
      net::EncodeFrame(RandomFrame(&rng), PayloadCodec::kBinary)};
  std::string bytes = net::EncodeSuperframe(encoded);
  // Declare one extra body byte in the superframe length and append it:
  // the inner frames no longer tile the body exactly.
  uint32_t length = static_cast<uint8_t>(bytes[0]) |
                    (static_cast<uint8_t>(bytes[1]) << 8) |
                    (static_cast<uint8_t>(bytes[2]) << 16) |
                    (static_cast<uint8_t>(bytes[3]) << 24);
  ++length;
  bytes[0] = static_cast<char>(length & 0xff);
  bytes[1] = static_cast<char>((length >> 8) & 0xff);
  bytes[2] = static_cast<char>((length >> 16) & 0xff);
  bytes[3] = static_cast<char>((length >> 24) & 0xff);
  bytes.push_back('\x00');
  net::FrameDecoder decoder;
  decoder.Feed(bytes);
  net::Frame out;
  while (decoder.Next(&out)) {
  }
  EXPECT_FALSE(decoder.ok());
}

TEST(FrameProperty, CorruptLengthPoisonsStream) {
  net::Frame frame;
  frame.kind = net::Frame::Kind::kAck;
  frame.watermark = 3;
  std::string bytes = net::EncodeFrame(frame);
  bytes[3] = '\xff';  // implausible frame length
  net::FrameDecoder decoder;
  decoder.Feed(bytes);
  net::Frame out;
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_FALSE(decoder.ok());
  // Poisoned for good: further feeds stay rejected.
  decoder.Feed(net::EncodeFrame(frame));
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_FALSE(decoder.ok());
}

}  // namespace
}  // namespace crew::runtime
