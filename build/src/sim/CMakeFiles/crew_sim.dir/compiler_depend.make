# Empty compiler generated dependencies file for crew_sim.
# This may be replaced when dependencies are built.
