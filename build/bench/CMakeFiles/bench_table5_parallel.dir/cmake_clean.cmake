file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_parallel.dir/bench_table5_parallel.cc.o"
  "CMakeFiles/bench_table5_parallel.dir/bench_table5_parallel.cc.o.d"
  "bench_table5_parallel"
  "bench_table5_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
