file(REMOVE_RECURSE
  "libcrew_workload.a"
)
