file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_recommend.dir/bench_table7_recommend.cc.o"
  "CMakeFiles/bench_table7_recommend.dir/bench_table7_recommend.cc.o.d"
  "bench_table7_recommend"
  "bench_table7_recommend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_recommend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
