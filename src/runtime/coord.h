#ifndef CREW_RUNTIME_COORD_H_
#define CREW_RUNTIME_COORD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/schema.h"

namespace crew::sim {
class Metrics;
}  // namespace crew::sim

namespace crew::runtime {

/// The three coordinated-execution building blocks of §3, declared at the
/// class (schema) level and bound to concrete instance pairs at start
/// time.

/// Relative ordering: conflicting step pairs of two workflow classes must
/// execute in the same relative order. The first pair establishes which
/// instance leads; subsequent pairs inherit the direction.
struct RelativeOrderReq {
  std::string id;
  std::string workflow_a;
  std::string workflow_b;
  /// (step in A, step in B) pairs, first pair = ordering-establishing.
  std::vector<std::pair<StepId, StepId>> step_pairs;
};

/// Mutual exclusion: the named steps (across classes) must never execute
/// concurrently; modelled as a logical resource acquired for the step's
/// duration.
struct MutexReq {
  std::string id;
  std::string resource;
  std::vector<std::pair<std::string, StepId>> critical_steps;  // (wf, step)
};

/// Rollback dependency: when an instance of `workflow_a` rolls back to or
/// past `step_a`, bound instances of `workflow_b` must roll back to
/// `step_b`.
struct RollbackDepReq {
  std::string id;
  std::string workflow_a;
  StepId step_a = kInvalidStep;
  std::string workflow_b;
  StepId step_b = kInvalidStep;
};

/// All coordinated-execution requirements of a deployed system.
struct CoordinationSpec {
  std::vector<RelativeOrderReq> relative_orders;
  std::vector<MutexReq> mutexes;
  std::vector<RollbackDepReq> rollback_deps;

  /// Requirements whose workflow_a or workflow_b equals `workflow`.
  std::vector<const RelativeOrderReq*> RelativeOrdersOf(
      const std::string& workflow) const;
  std::vector<const MutexReq*> MutexesOf(const std::string& workflow,
                                         StepId step) const;
  std::vector<const RollbackDepReq*> RollbackDepsLeading(
      const std::string& workflow) const;

  /// Total per-step coordination intensity (me+ro+rd in the paper's
  /// Table 3 terms) for a workflow class, used for reporting.
  int RequirementCount(const std::string& workflow) const;
};

/// A concrete binding between two live instances, produced when a new
/// instance starts against the latest prior conflicting instance (order
/// processing semantics: earlier instance leads).
struct RoBinding {
  InstanceId leading;
  InstanceId lagging;
  /// (leading step, lagging step) pairs.
  std::vector<std::pair<StepId, StepId>> step_pairs;
};

/// Tracks the newest instance per workflow class and mints RO bindings
/// for new instances. Used by the front end / engines at instance start.
///
/// Thread-safe and *sharded*: parallel control shares one tracker across
/// all engines, which under the live runtime (src/rt) call in from their
/// own worker threads concurrently. Live-instance state is partitioned
/// into shards by a deterministic hash (FNV-1a) of the workflow class
/// name, each shard behind its own mutex, so engines serialize only when
/// they touch genuinely conflicting classes. Operations spanning several
/// classes (an RO binding reads the lead class while registering the new
/// one) lock their shard set in index order, which makes the cross-shard
/// case deadlock-free and exactly as atomic as the old global mutex.
class ConflictTracker {
 public:
  static constexpr int kDefaultShards = 16;

  explicit ConflictTracker(const CoordinationSpec* spec,
                           int shards = kDefaultShards);

  /// Registers the new instance and returns the RO bindings created
  /// against previously started instances (the new instance lags).
  std::vector<RoBinding> OnInstanceStart(const InstanceId& instance);

  /// Rollback-dependency fan-out: instances of workflow_b started while
  /// an instance of workflow_a was live. Returns (dependent instance,
  /// rollback-to step) pairs for a rollback of `instance` to `to_step`.
  std::vector<std::pair<InstanceId, StepId>> RollbackDependents(
      const InstanceId& instance, StepId to_step) const;

  /// Removes a terminated instance from conflict consideration.
  void OnInstanceEnd(const InstanceId& instance);

  int shard_count() const { return shard_count_; }
  /// Which shard `workflow` maps to (exposed for tests asserting that
  /// disjoint classes land on disjoint shards).
  int ShardOf(const std::string& workflow) const;

  /// Lock acquisitions across all shards, and how many of them found the
  /// shard mutex already held (lock-level contention).
  int64_t total_acquires() const;
  int64_t total_contended() const;
  /// Adds "conflict_tracker.{shards,acquires,contended}" counters.
  void ExportStats(sim::Metrics* metrics) const;

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    /// Live instances per class, in start order. Guarded by mu.
    std::map<std::string, std::vector<InstanceId>> live;
    std::atomic<int64_t> acquires{0};
    std::atomic<int64_t> contended{0};
  };

  /// RAII multi-shard lock: sorts and dedupes the shard indices, locks
  /// ascending, and counts try_lock misses as contention.
  class ShardLock {
   public:
    ShardLock(const ConflictTracker* tracker, std::vector<int> indices);
    ~ShardLock();
    ShardLock(const ShardLock&) = delete;
    ShardLock& operator=(const ShardLock&) = delete;

   private:
    const ConflictTracker* tracker_;
    std::vector<int> indices_;  // sorted, unique
  };

  const CoordinationSpec* spec_;
  const int shard_count_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace crew::runtime

#endif  // CREW_RUNTIME_COORD_H_
