#include <gtest/gtest.h>

#include <map>

#include "expr/eval.h"
#include "expr/lexer.h"
#include "expr/parser.h"

namespace crew::expr {
namespace {

class MapEnv : public Environment {
 public:
  std::map<std::string, Value> now;
  std::map<std::string, Value> before;

  std::optional<Value> Lookup(const std::string& name) const override {
    auto it = now.find(name);
    if (it == now.end()) return std::nullopt;
    return it->second;
  }
  std::optional<Value> LookupPrevious(
      const std::string& name) const override {
    auto it = before.find(name);
    if (it == before.end()) return std::nullopt;
    return it->second;
  }
};

Value Eval(const std::string& src, const Environment& env) {
  Result<NodePtr> parsed = ParseExpression(src);
  EXPECT_TRUE(parsed.ok()) << src << ": " << parsed.status().ToString();
  Result<Value> v = Evaluate(parsed.value(), env);
  EXPECT_TRUE(v.ok()) << src << ": " << v.status().ToString();
  return v.ok() ? v.value() : Value();
}

TEST(LexerTest, TokenizesOperatorsAndIdents) {
  Result<std::vector<Token>> tokens =
      Tokenize("S1.O2 >= 10 and not(x != \"s\")");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens.value().size(), 9u);
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens.value()[0].text, "S1.O2");
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kGe);
  EXPECT_EQ(tokens.value().back().kind, TokenKind::kEnd);
}

TEST(LexerTest, RejectsLoneEquals) {
  EXPECT_FALSE(Tokenize("a = b").ok());
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("\"abc").ok());
}

TEST(LexerTest, NumbersIntAndDouble) {
  Result<std::vector<Token>> tokens = Tokenize("42 4.5 1e3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens.value()[0].int_value, 42);
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens.value()[1].double_value, 4.5);
  EXPECT_EQ(tokens.value()[2].kind, TokenKind::kDouble);
}

TEST(ParserTest, PrecedenceArithmeticOverComparison) {
  MapEnv env;
  EXPECT_EQ(Eval("2 + 3 * 4", env), Value(int64_t{14}));
  EXPECT_EQ(Eval("(2 + 3) * 4", env), Value(int64_t{20}));
  EXPECT_EQ(Eval("2 + 3 * 4 == 14", env), Value(true));
}

TEST(ParserTest, LogicalPrecedence) {
  MapEnv env;
  EXPECT_EQ(Eval("true or false and false", env), Value(true));
  EXPECT_EQ(Eval("(true or false) and false", env), Value(false));
  EXPECT_EQ(Eval("not true or true", env), Value(true));
}

TEST(ParserTest, RejectsTrailingInput) {
  EXPECT_FALSE(ParseExpression("1 + 2 3").ok());
  EXPECT_FALSE(ParseExpression("(1 + 2").ok());
  EXPECT_FALSE(ParseExpression("").ok());
}

TEST(ParserTest, ToStringRoundTripsSemantics) {
  Result<NodePtr> parsed = ParseExpression("a + 2 * b >= 10 and c");
  ASSERT_TRUE(parsed.ok());
  Result<NodePtr> reparsed = ParseExpression(parsed.value()->ToString());
  ASSERT_TRUE(reparsed.ok());
  MapEnv env;
  env.now["a"] = Value(int64_t{4});
  env.now["b"] = Value(int64_t{3});
  env.now["c"] = Value(true);
  EXPECT_EQ(Evaluate(parsed.value(), env).value(),
            Evaluate(reparsed.value(), env).value());
}

TEST(EvalTest, VariablesResolveFromEnvironment) {
  MapEnv env;
  env.now["S1.O1"] = Value(int64_t{90});
  env.now["WF.I2"] = Value("Blower");
  EXPECT_EQ(Eval("S1.O1 / 2", env), Value(int64_t{45}));
  EXPECT_EQ(Eval("WF.I2 == \"Blower\"", env), Value(true));
}

TEST(EvalTest, UnboundVariableIsError) {
  MapEnv env;
  Result<NodePtr> parsed = ParseExpression("missing + 1");
  ASSERT_TRUE(parsed.ok());
  Result<Value> v = Evaluate(parsed.value(), env);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(EvalTest, ConditionFalseOnUnbound) {
  MapEnv env;
  Result<NodePtr> parsed = ParseExpression("missing > 1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(EvaluateCondition(parsed.value(), env));
}

TEST(EvalTest, NullConditionIsTrue) {
  MapEnv env;
  EXPECT_TRUE(EvaluateCondition(nullptr, env));
}

TEST(EvalTest, DivisionByZeroIsError) {
  MapEnv env;
  Result<NodePtr> parsed = ParseExpression("1 / 0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Evaluate(parsed.value(), env).ok());
}

TEST(EvalTest, StringConcatAndCompare) {
  MapEnv env;
  EXPECT_EQ(Eval("\"ab\" + \"cd\"", env), Value("abcd"));
  EXPECT_EQ(Eval("\"abc\" < \"abd\"", env), Value(true));
}

TEST(EvalTest, MixedNumericArithmetic) {
  MapEnv env;
  EXPECT_EQ(Eval("1 + 0.5", env), Value(1.5));
  EXPECT_EQ(Eval("7 % 3", env), Value(int64_t{1}));
  EXPECT_EQ(Eval("-(3)", env), Value(int64_t{-3}));
}

TEST(EvalTest, BuiltinExists) {
  MapEnv env;
  env.now["x"] = Value(int64_t{1});
  EXPECT_EQ(Eval("exists(x)", env), Value(true));
  EXPECT_EQ(Eval("exists(y)", env), Value(false));
}

TEST(EvalTest, BuiltinChangedComparesWithPrevious) {
  MapEnv env;
  env.now["x"] = Value(int64_t{5});
  env.before["x"] = Value(int64_t{5});
  EXPECT_EQ(Eval("changed(x)", env), Value(false));
  env.now["x"] = Value(int64_t{6});
  EXPECT_EQ(Eval("changed(x)", env), Value(true));
  // No previous record at all: treated as changed.
  EXPECT_EQ(Eval("changed(z)", env), Value(false));
  env.now["z"] = Value(int64_t{1});
  EXPECT_EQ(Eval("changed(z)", env), Value(true));
}

TEST(EvalTest, BuiltinsAbsMinMax) {
  MapEnv env;
  EXPECT_EQ(Eval("abs(-4)", env), Value(int64_t{4}));
  EXPECT_EQ(Eval("min(3, 7)", env), Value(int64_t{3}));
  EXPECT_EQ(Eval("max(3, 7.5)", env), Value(7.5));
}

TEST(EvalTest, UnknownBuiltinIsError) {
  MapEnv env;
  Result<NodePtr> parsed = ParseExpression("frobnicate(1)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Evaluate(parsed.value(), env).ok());
}

TEST(EvalTest, ShortCircuitSkipsErrors) {
  MapEnv env;
  // Right side would error (unbound), but left decides.
  EXPECT_EQ(Eval("false and missing > 1", env), Value(false));
  EXPECT_EQ(Eval("true or missing > 1", env), Value(true));
}

TEST(AstTest, CollectVariablesDeduplicates) {
  Result<NodePtr> parsed = ParseExpression("a + b * a - S1.O1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(CollectVariables(parsed.value()),
            (std::vector<std::string>{"S1.O1", "a", "b"}));
}

}  // namespace
}  // namespace crew::expr
