#ifndef CREW_DIST_AGENT_H_
#define CREW_DIST_AGENT_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "model/compiled.h"
#include "model/deployment.h"
#include "runtime/coord.h"
#include "runtime/instance.h"
#include "runtime/ocr.h"
#include "runtime/programs.h"
#include "rules/engine.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/database.h"

namespace crew::dist {

struct AgentOptions {
  /// Navigation-and-other load per step (Table 3's l).
  int64_t navigation_load = 100;
  /// Directory for the durable AGDB; empty => in-memory only.
  std::string agdb_dir;
  /// Simulated ticks a program run occupies before completing.
  sim::Time exec_latency = 2;
  /// Pending-rule timeout before the predecessor-failure protocol kicks
  /// in (§5.2), in ticks.
  sim::Time pending_timeout = 40;
  /// Delay before an aborted instance's purge broadcast (lets in-flight
  /// compensations land first).
  sim::Time purge_delay = 50;
  /// When true, leader election among eligible successor agents also
  /// exchanges StateInformation probes (metered as kElection traffic).
  /// The election itself is decided deterministically either way.
  bool election_probes = false;
  /// When true, end-of-instance purges go to *every* agent (the paper's
  /// literal reading, and the first scaling wall the cluster sweep
  /// hits: O(agents) admin messages per instance). The default sends
  /// them only to the instance's eligibility footprint — the agents
  /// that could ever hold its state.
  bool purge_broadcast = false;
};

/// The full agent of distributed workflow control (§4). Each agent plays
/// every role of the paper's taxonomy as needed:
///  - *execution agent*: navigates via its rule engine, executes step
///    programs locally, and forwards workflow packets to successor
///    agents;
///  - *termination agent*: reports terminal-step completion to the
///    instance's coordination agent via StepCompleted();
///  - *coordination agent*: for instances whose start step it owns —
///    handles WorkflowStart/Abort/ChangeInputs/Status, the commit
///    decision over terminal groups, and the purge broadcast.
///
/// All sixteen workflow interfaces of Table 1 (plus CompensateThread)
/// arrive as messages and are dispatched in HandleMessage.
class Agent : public sim::MessageHandler {
 public:
  Agent(NodeId id, sim::Context* context,
        const runtime::ProgramRegistry* programs,
        const model::Deployment* deployment,
        const runtime::CoordinationSpec* coordination,
        std::vector<NodeId> all_agents, AgentOptions options = {});

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  NodeId id() const { return id_; }

  void RegisterSchema(model::CompiledSchemaPtr schema);

  void HandleMessage(const sim::Message& message) override;

  /// Crash-restart recovery (§5.2): drops every piece of volatile state
  /// — exactly what dies with the process — then replays the durable
  /// AGDB through Database::RestartRecover and rebuilds the coordination
  /// summary, counters and in-flight coordination entries from it. The
  /// rt backend installs this as the node's recovery hook so the
  /// in-process crash path and a killed-and-restarted crew_node process
  /// run the same code. No-op for an in-memory (non-durable) AGDB.
  void RecoverFromLog();

  // ---- introspection ----
  runtime::WorkflowState CoordinationStatus(
      const InstanceId& instance) const;
  /// Final data archived by the coordination agent at commit.
  std::map<std::string, Value> ArchivedData(
      const InstanceId& instance) const;
  int64_t committed_count() const { return committed_count_; }
  int64_t aborted_count() const { return aborted_count_; }
  size_t live_instances() const { return instances_.size(); }
  const storage::Database& agdb() const { return agdb_; }
  /// Current number of in-flight local program executions.
  int64_t active_programs() const { return active_programs_; }

 private:
  /// Per-instance execution-agent state.
  struct AgentInstance {
    runtime::InstanceState state;
    rules::RuleEngine rules;
    model::CompiledSchemaPtr schema;
    std::set<StepId> starting;
    /// Steps whose comp-dep chain is out and awaiting the resume packet.
    std::set<StepId> awaiting_comp_resume;
    /// Branch taken at each choice split (successor entry), per agent.
    std::map<StepId, StepId> taken_branch;
    /// RO links for which the lagging-side registration was sent.
    std::set<rules::EventToken> ro_registered;
    /// ME resources granted for a step (by the arbiter).
    std::set<std::pair<StepId, std::string>> me_granted;
    std::set<std::pair<StepId, std::string>> me_pending;
    /// Highest halt epoch processed (dedupes halt storms).
    int64_t last_halt_epoch = -1;
    /// Progress marker at the last RD-induced rollback (ring guard).
    int64_t last_rd_rollback_seq = -1;
    /// Message category for traffic this instance generates right now.
    sim::MsgCategory mode = sim::MsgCategory::kNormal;
  };

  /// Coordination-agent state for instances started here.
  struct CoordInstance {
    model::CompiledSchemaPtr schema;
    runtime::WorkflowState status = runtime::WorkflowState::kExecuting;
    NodeId reply_to = kInvalidNode;
    /// group index -> highest epoch a completion was reported for.
    std::map<int, int64_t> groups_done;
    std::map<std::string, Value> results;
    InstanceId parent;  ///< non-empty workflow => nested child
    StepId parent_step = kInvalidStep;
    sim::Time started_at = 0;  ///< arrival tick (commit sojourn metric)
  };

  /// Lock table entry for resources this agent arbitrates.
  struct LockState {
    bool held = false;
    InstanceId holder;
    StepId holder_step = kInvalidStep;
    std::deque<std::tuple<InstanceId, StepId, NodeId>> waiters;
  };

  AgentInstance* FindInstance(const InstanceId& instance);
  AgentInstance* GetOrCreateInstance(const InstanceId& instance);
  model::CompiledSchemaPtr FindSchema(const std::string& workflow);

  void Send(NodeId to, const std::string& type, const std::string& payload,
            sim::MsgCategory category);

  // ---- WI handlers ----
  void OnWorkflowStart(const sim::Message& message);
  void OnStepExecute(const sim::Message& message);
  void OnStepCompleted(const sim::Message& message);
  void OnWorkflowRollback(const sim::Message& message);
  void OnHaltThread(const sim::Message& message);
  void OnCompensateSet(const sim::Message& message);
  void OnCompensateThread(const sim::Message& message);
  void OnStepCompensate(const sim::Message& message);
  void OnWorkflowAbort(const sim::Message& message);
  void OnWorkflowChangeInputs(const sim::Message& message);
  void OnInputsChanged(const sim::Message& message);
  void OnWorkflowStatus(const sim::Message& message);
  void OnStepStatus(const sim::Message& message);
  void OnStepStatusReply(const sim::Message& message);
  void OnStateInformation(const sim::Message& message);
  void OnAddRule(const sim::Message& message);
  void OnAddEvent(const sim::Message& message);
  void OnAddPrecondition(const sim::Message& message);
  void OnPurgeInstances(const sim::Message& message);

  // ---- execution-agent machinery ----
  void Pump(AgentInstance* inst);
  /// True if this agent is the elected executor for (instance, step).
  bool ElectedExecutor(AgentInstance* inst, StepId step);
  void StartStepLocal(AgentInstance* inst, StepId step);
  void RunProgramLocal(AgentInstance* inst, StepId step,
                       double cost_fraction);
  void CompensateLocal(AgentInstance* inst, StepId step,
                       std::function<void()> then);
  void OnStepDoneLocal(AgentInstance* inst, StepId step,
                       bool first_execution);
  void OnStepFailedLocal(AgentInstance* inst, StepId step);
  void ForwardPackets(AgentInstance* inst, StepId completed_step);
  void SendPacketTo(AgentInstance* inst, StepId target,
                    const std::vector<NodeId>& eligible);
  void HandleBranchSwitch(AgentInstance* inst, StepId split_step);
  void LocalHalt(AgentInstance* inst, StepId origin, int64_t new_epoch,
                 bool propagate);
  void ApplyRoGating(AgentInstance* inst);
  void NotifyRoRegistrants(const InstanceId& instance, StepId step);
  bool AcquireMutexesDistributed(AgentInstance* inst, StepId step);
  void ReleaseMutexesDistributed(AgentInstance* inst, StepId step);
  void LaunchSubWorkflow(AgentInstance* inst, StepId step);
  void SchedulePendingCheck(const InstanceId& instance);
  void CheckPendingRules(const InstanceId& instance);
  void PersistStepRecord(const InstanceId& instance, StepId step);

  /// Rebuilds summary_/counters and the coordinating_ entries of
  /// still-executing instances from the recovered AGDB tables.
  /// Idempotent (skips instances already in summary_), so it runs after
  /// every RegisterSchema — an executing instance can only be rebuilt
  /// once its schema is known — and again after RecoverFromLog.
  void RebuildFromAgdb();

  // ---- coordination-agent machinery ----
  void MaybeCommit(const InstanceId& instance);
  void BroadcastPurge(const InstanceId& instance);
  /// Agents a purge of `instance` must reach: all of them under
  /// `purge_broadcast`, otherwise the instance's eligibility footprint
  /// (union of eligible agents over every schema step — executors,
  /// coordinator, arbiters and RO registration sites all live there).
  std::vector<NodeId> PurgeTargets(const InstanceId& instance);
  NodeId CoordinationAgentOf(const AgentInstance& inst) const;

  /// Arbiter node for a mutual-exclusion resource: the lowest eligible
  /// agent of the requirement's first critical step.
  NodeId MutexArbiter(const runtime::MutexReq& req) const;

  NodeId id_;
  sim::Context* ctx_;
  const runtime::ProgramRegistry* programs_;
  const model::Deployment* deployment_;
  const runtime::CoordinationSpec* coordination_;
  std::vector<NodeId> all_agents_;
  AgentOptions options_;
  Rng rng_;

  std::map<std::string, model::CompiledSchemaPtr> schemas_;
  std::map<InstanceId, std::unique_ptr<AgentInstance>> instances_;
  std::map<InstanceId, CoordInstance> coordinating_;
  /// Coordination instance summary table (kept after purge).
  std::map<InstanceId, runtime::WorkflowState> summary_;
  std::map<InstanceId, std::map<std::string, Value>> archived_;

  /// RO registrations received via AddRule: (instance, step) -> list of
  /// (registrant agent, token to deliver).
  std::map<std::pair<InstanceId, StepId>,
           std::vector<std::pair<NodeId, std::string>>>
      ro_registrations_;
  /// Instances known ended (purge broadcasts) — registrations on them
  /// resolve immediately.
  std::set<InstanceId> ended_instances_;

  /// Lock tables for resources arbitrated here.
  std::map<std::string, LockState> locks_;

  /// Nested workflows launched from here: child -> (parent, step).
  std::map<InstanceId, std::pair<InstanceId, StepId>> children_;
  int64_t child_counter_ = 0;

  /// Predecessor-failure protocol: outstanding StepStatus polls.
  struct StatusPoll {
    InstanceId instance;
    StepId step = kInvalidStep;
    int outstanding = 0;
    int skipped_down = 0;  ///< eligible agents unreachable when polled
    bool any_done = false;
    bool any_executing = false;
  };

  /// Acts on a completed StepStatus poll round (§5.2): someone has the
  /// result -> wait for its packet; all reachable agents unknown and a
  /// query step (or nobody unreachable at all, so the work is simply
  /// lost) -> re-request execution at the elected living agent; an
  /// update step with an unreachable agent -> wait and re-poll after the
  /// recovery window.
  void ResolvePoll(const StatusPoll& poll);
  std::map<std::pair<InstanceId, StepId>, StatusPoll> polls_;
  /// Rate limiter: last poll time per (instance, step).
  std::map<std::pair<InstanceId, StepId>, sim::Time> last_poll_;

  storage::Database agdb_;
  int64_t committed_count_ = 0;
  int64_t aborted_count_ = 0;
  int64_t active_programs_ = 0;
};

}  // namespace crew::dist

#endif  // CREW_DIST_AGENT_H_
