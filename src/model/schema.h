#ifndef CREW_MODEL_SCHEMA_H_
#define CREW_MODEL_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/ast.h"
#include "model/step.h"

namespace crew::model {

/// A control arc orders two steps. A non-null `condition` makes it an
/// if-then-else branch arc (exclusive with its sibling arcs); `is_else`
/// marks the default branch. `is_back_edge` marks a loop's closing arc so
/// graph analyses do not cycle.
struct ControlArc {
  StepId from = kInvalidStep;
  StepId to = kInvalidStep;
  expr::NodePtr condition;  // null => unconditional
  bool is_else = false;
  bool is_back_edge = false;
};

/// A data arc: `item` produced at (or flowing through) `from` is consumed
/// by `to`. Data arcs are implied by Step::inputs; explicit ones exist for
/// cross-branch data flow documentation and validation.
struct DataArc {
  StepId from = kInvalidStep;
  StepId to = kInvalidStep;
  std::string item;
};

/// A compensation dependent set (§3): its member steps must be compensated
/// in reverse execution order. Stored in schema (execution) order.
struct CompDepSet {
  std::vector<StepId> steps;
};

/// A workflow schema (class definition): the directed graph of steps the
/// paper's modeling tool produces. Immutable after Build(); shared by all
/// instances of the class.
class Schema {
 public:
  Schema() = default;

  const std::string& name() const { return name_; }
  int version() const { return version_; }

  /// Steps are stored with ids 1..n; step(id) is O(1).
  const Step& step(StepId id) const { return steps_[id - 1]; }
  Step& mutable_step(StepId id) { return steps_[id - 1]; }
  bool has_step(StepId id) const {
    return id >= 1 && static_cast<size_t>(id) <= steps_.size();
  }
  int num_steps() const { return static_cast<int>(steps_.size()); }
  const std::vector<Step>& steps() const { return steps_; }

  const std::vector<ControlArc>& control_arcs() const {
    return control_arcs_;
  }
  const std::vector<DataArc>& data_arcs() const { return data_arcs_; }
  const std::vector<CompDepSet>& comp_dep_sets() const {
    return comp_dep_sets_;
  }

  /// Entry step of the workflow. The coordination agent of an instance is
  /// the agent that executes this step (§4.1).
  StepId start_step() const { return start_step_; }

  /// Terminal-step groups: the workflow commits when every group has at
  /// least one completed member (parallel branches => separate groups;
  /// if-then-else alternatives => same group). See DESIGN.md §5.
  const std::vector<std::vector<StepId>>& terminal_groups() const {
    return terminal_groups_;
  }

  /// Declared workflow input items (names like "WF.I1").
  const std::vector<std::string>& workflow_inputs() const {
    return workflow_inputs_;
  }

  /// Finds a step id by name; kInvalidStep if absent.
  StepId FindStepByName(const std::string& name) const;

  /// Multi-line structural dump for docs/debugging.
  std::string Describe() const;

 private:
  friend class SchemaBuilder;

  std::string name_;
  int version_ = 1;
  std::vector<Step> steps_;
  std::vector<ControlArc> control_arcs_;
  std::vector<DataArc> data_arcs_;
  std::vector<CompDepSet> comp_dep_sets_;
  std::vector<std::vector<StepId>> terminal_groups_;
  std::vector<std::string> workflow_inputs_;
  StepId start_step_ = kInvalidStep;
};

}  // namespace crew::model

#endif  // CREW_MODEL_SCHEMA_H_
