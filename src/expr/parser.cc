#include "expr/parser.h"

#include <algorithm>
#include <utility>

#include "expr/lexer.h"

namespace crew::expr {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

std::string Node::ToString() const {
  switch (kind) {
    case NodeKind::kLiteral:
      return literal.ToString();
    case NodeKind::kVariable:
      return name;
    case NodeKind::kUnary: {
      std::string inner = children[0]->ToString();
      return unary_op == UnaryOp::kNot ? "(not " + inner + ")"
                                       : "(-" + inner + ")";
    }
    case NodeKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(binary_op) +
             " " + children[1]->ToString() + ")";
    case NodeKind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

NodePtr MakeLiteral(Value v) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kLiteral;
  n->literal = std::move(v);
  return n;
}

NodePtr MakeVariable(std::string name) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kVariable;
  n->name = std::move(name);
  return n;
}

NodePtr MakeUnary(UnaryOp op, NodePtr operand) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kUnary;
  n->unary_op = op;
  n->children.push_back(std::move(operand));
  return n;
}

NodePtr MakeBinary(BinaryOp op, NodePtr lhs, NodePtr rhs) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kBinary;
  n->binary_op = op;
  n->children.push_back(std::move(lhs));
  n->children.push_back(std::move(rhs));
  return n;
}

NodePtr MakeCall(std::string name, std::vector<NodePtr> args) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kCall;
  n->name = std::move(name);
  n->children = std::move(args);
  return n;
}

namespace {

void CollectInto(const NodePtr& node, std::vector<std::string>* out) {
  if (node->kind == NodeKind::kVariable) out->push_back(node->name);
  for (const auto& c : node->children) CollectInto(c, out);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<NodePtr> Parse() {
    Result<NodePtr> e = ParseOr();
    if (!e.ok()) return e;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) {
    return Status::ParseError(what + " (near offset " +
                              std::to_string(Peek().offset) + ", token '" +
                              TokenKindName(Peek().kind) + "')");
  }

  Result<NodePtr> ParseOr() {
    Result<NodePtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (Accept(TokenKind::kOr)) {
      Result<NodePtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      node = MakeBinary(BinaryOp::kOr, node, std::move(rhs).value());
    }
    return node;
  }

  Result<NodePtr> ParseAnd() {
    Result<NodePtr> lhs = ParseCmp();
    if (!lhs.ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (Accept(TokenKind::kAnd)) {
      Result<NodePtr> rhs = ParseCmp();
      if (!rhs.ok()) return rhs;
      node = MakeBinary(BinaryOp::kAnd, node, std::move(rhs).value());
    }
    return node;
  }

  Result<NodePtr> ParseCmp() {
    Result<NodePtr> lhs = ParseSum();
    if (!lhs.ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default:
        return node;
    }
    Take();
    Result<NodePtr> rhs = ParseSum();
    if (!rhs.ok()) return rhs;
    return MakeBinary(op, node, std::move(rhs).value());
  }

  Result<NodePtr> ParseSum() {
    Result<NodePtr> lhs = ParseTerm();
    if (!lhs.ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return node;
      }
      Take();
      Result<NodePtr> rhs = ParseTerm();
      if (!rhs.ok()) return rhs;
      node = MakeBinary(op, node, std::move(rhs).value());
    }
  }

  Result<NodePtr> ParseTerm() {
    Result<NodePtr> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    NodePtr node = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return node;
      }
      Take();
      Result<NodePtr> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      node = MakeBinary(op, node, std::move(rhs).value());
    }
  }

  Result<NodePtr> ParseUnary() {
    if (Accept(TokenKind::kNot)) {
      Result<NodePtr> inner = ParseUnary();
      if (!inner.ok()) return inner;
      return MakeUnary(UnaryOp::kNot, std::move(inner).value());
    }
    if (Accept(TokenKind::kMinus)) {
      Result<NodePtr> inner = ParseUnary();
      if (!inner.ok()) return inner;
      return MakeUnary(UnaryOp::kNegate, std::move(inner).value());
    }
    return ParsePrimary();
  }

  Result<NodePtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        Token t = Take();
        return MakeLiteral(Value(t.int_value));
      }
      case TokenKind::kDouble: {
        Token t = Take();
        return MakeLiteral(Value(t.double_value));
      }
      case TokenKind::kString: {
        Token t = Take();
        return MakeLiteral(Value(std::move(t.text)));
      }
      case TokenKind::kTrue:
        Take();
        return MakeLiteral(Value(true));
      case TokenKind::kFalse:
        Take();
        return MakeLiteral(Value(false));
      case TokenKind::kNull:
        Take();
        return MakeLiteral(Value());
      case TokenKind::kLParen: {
        Take();
        Result<NodePtr> inner = ParseOr();
        if (!inner.ok()) return inner;
        if (!Accept(TokenKind::kRParen)) return Error("expected ')'");
        return inner;
      }
      case TokenKind::kIdent: {
        Token t = Take();
        if (Accept(TokenKind::kLParen)) {
          std::vector<NodePtr> args;
          if (!Accept(TokenKind::kRParen)) {
            while (true) {
              Result<NodePtr> arg = ParseOr();
              if (!arg.ok()) return arg;
              args.push_back(std::move(arg).value());
              if (Accept(TokenKind::kRParen)) break;
              if (!Accept(TokenKind::kComma)) {
                return Error("expected ',' or ')' in call arguments");
              }
            }
          }
          return MakeCall(std::move(t.text), std::move(args));
        }
        return MakeVariable(std::move(t.text));
      }
      default:
        return Error("expected a value, identifier, or '('");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<std::string> CollectVariables(const NodePtr& root) {
  std::vector<std::string> out;
  CollectInto(root, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<NodePtr> ParseExpression(const std::string& source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace crew::expr
