#ifndef CREW_ANALYSIS_MODEL_H_
#define CREW_ANALYSIS_MODEL_H_

#include <string>
#include <vector>

#include "workload/params.h"

namespace crew::analysis {

/// The five mechanisms whose load/messages Tables 4-6 break out.
enum class Mechanism {
  kNormal = 0,
  kInputChange,
  kAbort,
  kFailureHandling,
  kCoordination,
};
const char* MechanismName(Mechanism mechanism);
inline constexpr int kNumMechanisms = 5;

/// One analytic row: the paper's expression text, its value in units of
/// l (for loads) or messages (for message rows).
struct ModelRow {
  Mechanism mechanism = Mechanism::kNormal;
  std::string expression;
  double value = 0.0;
};

/// Closed-form per-instance load at the (busiest) engine/agent node for
/// each mechanism — the expressions of Tables 4, 5, 6, evaluated on
/// `params`. Loads are in units of l.
std::vector<ModelRow> CentralLoad(const workload::Params& params);
std::vector<ModelRow> ParallelLoad(const workload::Params& params);
std::vector<ModelRow> DistributedLoad(const workload::Params& params);

/// Closed-form per-instance physical message counts per mechanism.
std::vector<ModelRow> CentralMessages(const workload::Params& params);
std::vector<ModelRow> ParallelMessages(const workload::Params& params);
std::vector<ModelRow> DistributedMessages(const workload::Params& params);

}  // namespace crew::analysis

#endif  // CREW_ANALYSIS_MODEL_H_
