#ifndef CREW_COMMON_IDS_H_
#define CREW_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace crew {

/// Index of a step within a workflow schema, 1-based (step 0 is invalid;
/// the paper numbers steps S1..Sn).
using StepId = int32_t;
inline constexpr StepId kInvalidStep = 0;

/// Identifies a node in the system: an agent or an engine. Nodes are the
/// unit of message exchange and of load accounting.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;
/// The front-end database is modelled as a distinguished node.
inline constexpr NodeId kFrontEndNode = 0;

/// A workflow *class* (schema) is identified by name; instances by a
/// system-wide unique number paired with the class name.
struct InstanceId {
  std::string workflow;   ///< schema (class) name, e.g. "OrderProcessing"
  int64_t number = 0;     ///< unique instance number

  bool operator==(const InstanceId& o) const {
    return number == o.number && workflow == o.workflow;
  }
  bool operator!=(const InstanceId& o) const { return !(*this == o); }
  bool operator<(const InstanceId& o) const {
    if (workflow != o.workflow) return workflow < o.workflow;
    return number < o.number;
  }

  /// "WF2#4" style rendering used in logs and packets.
  std::string ToString() const {
    return workflow + "#" + std::to_string(number);
  }
};

struct InstanceIdHash {
  size_t operator()(const InstanceId& id) const {
    return std::hash<std::string>()(id.workflow) * 1315423911u ^
           std::hash<int64_t>()(id.number);
  }
};

}  // namespace crew

#endif  // CREW_COMMON_IDS_H_
