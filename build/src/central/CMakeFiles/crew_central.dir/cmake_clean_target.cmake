file(REMOVE_RECURSE
  "libcrew_central.a"
)
