#include "workload/driver.h"

#include <memory>
#include <sstream>

#include "central/system.h"
#include "dist/system.h"
#include "obs/trace.h"
#include "parallel/system.h"
#include "sim/simulator.h"

namespace crew::workload {

const char* ArchitectureName(Architecture architecture) {
  switch (architecture) {
    case Architecture::kCentral: return "central";
    case Architecture::kParallel: return "parallel";
    case Architecture::kDistributed: return "distributed";
  }
  return "?";
}

double RunResult::NormalizedMaxLoad(sim::LoadCategory category,
                                    int64_t l) const {
  // Per-node maximum over nodes with any load in the category.
  int64_t best = 0;
  for (NodeId node : metrics.LoadedNodes()) {
    best = std::max(best, metrics.LoadAt(node, category));
  }
  return static_cast<double>(best) /
         (static_cast<double>(l) * instances());
}

double RunResult::NormalizedTotalLoad(sim::LoadCategory category,
                                      int64_t l) const {
  return static_cast<double>(metrics.TotalLoad(category)) /
         (static_cast<double>(l) * instances());
}

std::string RunResult::Describe() const {
  std::ostringstream os;
  os << ArchitectureName(architecture) << ": started=" << started
     << " committed=" << committed << " aborted=" << aborted
     << " ticks=" << sim_ticks << "\n"
     << metrics.Report();
  return os.str();
}

namespace {

/// Common pieces of a run shared by the three architecture variants.
struct Workbench {
  explicit Workbench(const Params& params)
      : simulator(params.seed), generator(params, &simulator.rng()) {}

  Status Prepare() {
    Result<std::vector<GeneratedSchema>> generated =
        generator.GenerateAll();
    if (!generated.ok()) return generated.status();
    schemas = std::move(generated).value();
    coordination = generator.MakeCoordinationSpec(schemas);
    generator.RegisterPrograms(schemas, &programs);
    return Status::OK();
  }

  void AssignDeployment(const std::vector<NodeId>& agents,
                        int eligible_per_step) {
    for (const GeneratedSchema& generated : schemas) {
      deployment.AssignRandom(*generated.schema, agents,
                              eligible_per_step, &simulator.rng());
    }
  }

  sim::Simulator simulator;
  WorkloadGenerator generator;
  std::vector<GeneratedSchema> schemas;
  runtime::CoordinationSpec coordination;
  runtime::ProgramRegistry programs;
  model::Deployment deployment;
};

/// Stagger between instance starts, in ticks: enough that consecutive
/// instances overlap (exercising coordination) without unbounded queues.
constexpr sim::Time kStartStagger = 3;
/// Delay after an instance's start before its scheduled disruption
/// (input change or abort) fires.
constexpr sim::Time kDisruptionDelay = 8;

RunResult FinishRun(Architecture architecture, Workbench* bench,
                    int64_t started, int64_t committed, int64_t aborted) {
  RunResult result;
  result.architecture = architecture;
  result.started = started;
  result.committed = committed;
  result.aborted = aborted;
  result.sim_ticks = bench->simulator.now();
  result.metrics = bench->simulator.metrics();
  return result;
}

RunResult RunCentralLike(const Params& params, Architecture architecture,
                         obs::Tracer* tracer) {
  Workbench bench(params);
  // Attach before system construction so node-name registrations land.
  if (tracer != nullptr) bench.simulator.set_tracer(tracer);
  Status prepared = bench.Prepare();
  if (!prepared.ok()) {
    RunResult failed;
    failed.architecture = architecture;
    return failed;
  }

  const bool parallel = architecture == Architecture::kParallel;
  const int engines = parallel ? params.num_engines : 1;
  central::EngineOptions options;
  options.navigation_load = params.navigation_load;

  std::unique_ptr<central::CentralSystem> central_system;
  std::unique_ptr<parallel::ParallelSystem> parallel_system;
  std::vector<NodeId> agent_ids;
  if (parallel) {
    parallel_system = std::make_unique<parallel::ParallelSystem>(
        &bench.simulator, &bench.programs, &bench.deployment,
        &bench.coordination, engines, params.num_agents, options);
    agent_ids = parallel_system->agent_ids();
  } else {
    central_system = std::make_unique<central::CentralSystem>(
        &bench.simulator, &bench.programs, &bench.deployment,
        &bench.coordination, params.num_agents, options);
    agent_ids = central_system->agent_ids();
  }
  bench.AssignDeployment(agent_ids, params.eligible_per_step);
  for (const GeneratedSchema& generated : bench.schemas) {
    if (parallel) {
      parallel_system->RegisterSchema(generated.schema);
    } else {
      central_system->engine().RegisterSchema(generated.schema);
    }
  }

  auto start_instance = [&](const std::string& workflow, int64_t number,
                            bool fail) {
    std::map<std::string, Value> inputs{{"WF.I1", Value(int64_t{10})}};
    if (fail) inputs["WF.FAIL1"] = Value(true);
    if (parallel) {
      (void)parallel_system->StartWorkflow(workflow, number,
                                           std::move(inputs));
    } else {
      (void)central_system->engine().StartWorkflow(workflow, number,
                                                   std::move(inputs));
    }
  };
  auto abort_instance = [&](const InstanceId& instance) {
    if (parallel) {
      (void)parallel_system->AbortWorkflow(instance);
    } else {
      (void)central_system->engine().AbortWorkflow(instance);
    }
  };
  auto change_inputs = [&](const InstanceId& instance) {
    std::map<std::string, Value> inputs{{"WF.I1", Value(int64_t{77})}};
    if (parallel) {
      (void)parallel_system->ChangeInputs(instance, std::move(inputs));
    } else {
      (void)central_system->engine().ChangeInputs(instance,
                                                  std::move(inputs));
    }
  };

  int64_t started = 0;
  sim::Time at = 0;
  for (size_t index = 0; index < bench.schemas.size(); ++index) {
    const std::string name =
        bench.schemas[index].schema->schema().name();
    for (int64_t n = 1; n <= params.instances_per_schema; ++n) {
      ++started;
      at += kStartStagger;
      bool fail = bench.generator.failing_instances(static_cast<int>(index))
                      .count(n) > 0;
      bench.simulator.queue().ScheduleAt(at, [=]() {
        start_instance(name, n, fail);
      });
      InstanceId instance{name, n};
      if (bench.generator.abort_instances(static_cast<int>(index))
              .count(n) > 0) {
        bench.simulator.queue().ScheduleAt(
            at + kDisruptionDelay, [=]() { abort_instance(instance); });
      } else if (bench.generator
                     .input_change_instances(static_cast<int>(index))
                     .count(n) > 0) {
        bench.simulator.queue().ScheduleAt(
            at + kDisruptionDelay, [=]() { change_inputs(instance); });
      }
    }
  }
  bench.simulator.Run();

  int64_t committed = parallel ? parallel_system->committed_count()
                               : central_system->engine().committed_count();
  int64_t aborted = parallel ? parallel_system->aborted_count()
                             : central_system->engine().aborted_count();
  return FinishRun(architecture, &bench, started, committed, aborted);
}

RunResult RunDistributedImpl(const Params& params, obs::Tracer* tracer) {
  Workbench bench(params);
  if (tracer != nullptr) bench.simulator.set_tracer(tracer);
  Status prepared = bench.Prepare();
  if (!prepared.ok()) {
    RunResult failed;
    failed.architecture = Architecture::kDistributed;
    return failed;
  }

  dist::AgentOptions options;
  options.navigation_load = params.navigation_load;
  dist::DistributedSystem system(&bench.simulator, &bench.programs,
                                 &bench.deployment, &bench.coordination,
                                 params.num_agents, options);
  bench.AssignDeployment(system.agent_ids(), params.eligible_per_step);
  for (const GeneratedSchema& generated : bench.schemas) {
    system.RegisterSchema(generated.schema);
  }

  int64_t started = 0;
  sim::Time at = 0;
  dist::FrontEnd* front_end = &system.front_end();
  for (size_t index = 0; index < bench.schemas.size(); ++index) {
    const std::string name =
        bench.schemas[index].schema->schema().name();
    for (int64_t n = 1; n <= params.instances_per_schema; ++n) {
      ++started;
      at += kStartStagger;
      bool abort = bench.generator.abort_instances(static_cast<int>(index))
                       .count(n) > 0;
      bool change =
          bench.generator.input_change_instances(static_cast<int>(index))
              .count(n) > 0;
      bool fail = bench.generator.failing_instances(static_cast<int>(index))
                      .count(n) > 0;
      sim::Time when = at;
      bench.simulator.queue().ScheduleAt(when, [=]() {
        std::map<std::string, Value> inputs{{"WF.I1", Value(int64_t{10})}};
        if (fail) inputs["WF.FAIL1"] = Value(true);
        (void)front_end->StartWorkflow(name, std::move(inputs));
      });
      if (abort || change) {
        // The front end assigns sequential numbers in start order, and
        // starts are scheduled at strictly increasing times, so this
        // start receives instance number `started`.
        int64_t number = started;
        bench.simulator.queue().ScheduleAt(
            when + kDisruptionDelay, [=]() {
              InstanceId instance{name, number};
              if (abort) {
                (void)front_end->RequestAbort(instance);
              } else {
                (void)front_end->RequestChangeInputs(
                    instance, {{"WF.I1", Value(int64_t{77})}});
              }
            });
      }
    }
  }
  bench.simulator.Run();
  return FinishRun(Architecture::kDistributed, &bench, started,
                   system.committed_count(), system.aborted_count());
}

}  // namespace

RunResult RunWorkload(const Params& params, Architecture architecture,
                      obs::Tracer* tracer) {
  if (architecture == Architecture::kDistributed) {
    return RunDistributedImpl(params, tracer);
  }
  return RunCentralLike(params, architecture, tracer);
}

}  // namespace crew::workload
