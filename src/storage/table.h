#ifndef CREW_STORAGE_TABLE_H_
#define CREW_STORAGE_TABLE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace crew::storage {

/// One row: named, typed fields. Rows are schemaless — the workflow tables
/// the paper names (class table, instance table, step table, coordination
/// instance summary table) are all row sets keyed by a string primary key.
class Row {
 public:
  void Set(const std::string& field, Value value);
  std::optional<Value> Get(const std::string& field) const;
  bool Has(const std::string& field) const;
  void Erase(const std::string& field);
  size_t size() const { return fields_.size(); }

  const std::map<std::string, Value>& fields() const { return fields_; }

  /// "field=value;field=value" — values use Value::ToString().
  std::string Serialize() const;
  static Result<Row> Deserialize(const std::string& text);

 private:
  std::map<std::string, Value> fields_;
};

/// An ordered key->Row table with a change journal hook so the owning
/// Database can WAL every mutation.
class Table {
 public:
  using MutationHook =
      std::function<void(const std::string& table, const std::string& key,
                         const Row* row /*null == delete*/)>;

  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Inserts or fully replaces a row.
  void Put(const std::string& key, Row row);
  /// Merges fields into an existing row (creating it if absent).
  void Update(const std::string& key, const Row& fields);
  const Row* Get(const std::string& key) const;
  Row* GetMutable(const std::string& key);
  bool Delete(const std::string& key);
  bool Contains(const std::string& key) const;
  size_t size() const { return rows_.size(); }

  std::vector<std::string> Keys() const;
  const std::map<std::string, Row>& rows() const { return rows_; }

  /// Rows whose field `field` equals `value` (full scan).
  std::vector<const Row*> Select(const std::string& field,
                                 const Value& value) const;

  void set_mutation_hook(MutationHook hook) { hook_ = std::move(hook); }

  /// Applies a journaled mutation without re-journaling (recovery path).
  void ApplyRaw(const std::string& key, const Row* row);

  /// Drops every row without journaling. Recovery-only: used to reset
  /// in-memory state before replaying the log after a crash-restart.
  void ClearRaw() { rows_.clear(); }

 private:
  void Journal(const std::string& key, const Row* row);

  std::string name_;
  std::map<std::string, Row> rows_;
  MutationHook hook_;
};

}  // namespace crew::storage

#endif  // CREW_STORAGE_TABLE_H_
