#include "common/value.h"

#include <cmath>
#include <cstdlib>

namespace crew {
namespace {

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

Result<std::string> UnquoteString(const std::string& text) {
  if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
    return Status::ParseError("not a quoted string: " + text);
  }
  std::string out;
  for (size_t i = 1; i + 1 < text.size(); ++i) {
    char c = text[i];
    if (c == '\\') {
      if (i + 2 >= text.size() + 1) {
        return Status::ParseError("dangling escape in: " + text);
      }
      ++i;
      char e = text[i];
      if (e == 'n') {
        out += '\n';
      } else {
        out += e;
      }
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool Value::Truthy() const {
  switch (kind()) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return AsBool();
    case Kind::kInt:
      return AsInt() != 0;
    case Kind::kDouble:
      return AsDouble() != 0.0;
    case Kind::kString:
      return !AsString().empty();
  }
  return false;
}

bool Value::operator==(const Value& o) const {
  if (is_numeric() && o.is_numeric()) {
    return NumericValue() == o.NumericValue();
  }
  return v_ == o.v_;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return AsBool() ? "true" : "false";
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kDouble: {
      // Emit enough digits to round-trip, with a trailing marker so
      // Parse can distinguish 4.0 from int 4.
      char buf[64];
      snprintf(buf, sizeof(buf), "%.17g", AsDouble());
      std::string s(buf);
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Kind::kString:
      return QuoteString(AsString());
  }
  return "null";
}

Result<Value> Value::Parse(const std::string& text) {
  if (text.empty()) return Status::ParseError("empty value text");
  if (text == "null") return Value();
  if (text == "true") return Value(true);
  if (text == "false") return Value(false);
  if (text.front() == '"') {
    Result<std::string> s = UnquoteString(text);
    if (!s.ok()) return s.status();
    return Value(std::move(s).value());
  }
  // Numeric: integer if it parses fully as one and has no '.', 'e', inf/nan.
  bool looks_double = text.find('.') != std::string::npos ||
                      text.find('e') != std::string::npos ||
                      text.find('E') != std::string::npos ||
                      text.find("inf") != std::string::npos ||
                      text.find("nan") != std::string::npos;
  char* end = nullptr;
  if (!looks_double) {
    long long i = strtoll(text.c_str(), &end, 10);
    if (end && *end == '\0') return Value(static_cast<int64_t>(i));
  }
  double d = strtod(text.c_str(), &end);
  if (end && *end == '\0') return Value(d);
  return Status::ParseError("unparseable value: " + text);
}

}  // namespace crew
